//! Physical address layout of a PU's rank.
//!
//! Each PU owns one rank and sees its partition's arrays at fixed base
//! addresses (the host writes these to memory-mapped registers, §3.5).
//! Regions are spaced far apart so they never alias within a 4 GB rank.

/// Byte sizes of the stored elements.
pub const PTR_BYTES: u64 = 8;
/// Bytes per index element (32-bit, §3.2).
pub const IDX_BYTES: u64 = 4;
/// Bytes per value element (32-bit).
pub const VAL_BYTES: u64 = 4;
/// Memory block (transaction) size.
pub const BLOCK_BYTES: u64 = 64;

/// Base addresses of the arrays a PU works on within its rank.
///
/// The input matrix partition is CSR (`row_ptr`, `col_idx`, `values`);
/// intermediate merge rounds ping-pong between two COO regions, each with
/// separate row/column/value arrays so accesses exploit bank-level
/// parallelism (§3.1); the output is CSC (`out_ptr`, `out_idx`,
/// `out_val`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressLayout {
    /// Input CSR row pointer array base.
    pub row_ptr: u64,
    /// Input CSR column index array base.
    pub col_idx: u64,
    /// Input CSR value array base.
    pub values: u64,
    /// COO region bases, ping-pong buffered: `[region][array]` where array
    /// 0 = row indices, 1 = column indices, 2 = values.
    pub coo: [[u64; 3]; 2],
    /// Output CSC column pointer array base.
    pub out_ptr: u64,
    /// Output CSC row index array base.
    pub out_idx: u64,
    /// Output CSC value array base.
    pub out_val: u64,
    /// Auxiliary pointer array base (SpMV, §3.6).
    pub aux_ptr: u64,
    /// Input vector base (SpMV).
    pub vector: u64,
}

impl AddressLayout {
    /// The default layout: 256 MB regions within a 4 GB rank, each
    /// staggered by one 8 KB DRAM row so concurrently streamed arrays land
    /// in *different banks* (the bank-level parallelism §3.1 prescribes
    /// for the COO intermediates; without the stagger every array base
    /// would decode to bank 0 and concurrent streams would ping-pong one
    /// row buffer).
    pub fn rank_default() -> Self {
        const M256: u64 = 256 << 20;
        // 40 KB = one bank-group stride (32 KB) + one bank stride (8 KB)
        // under the RoBaRaCoCh mapping, so consecutive regions rotate both
        // the bank group (different tCCD_S domains) and the bank.
        const STAGGER: u64 = 40 << 10;
        let base = |k: u64| k * M256 + k * STAGGER;
        Self {
            row_ptr: base(0),
            col_idx: base(1),
            values: base(2),
            coo: [[base(3), base(4), base(5)], [base(6), base(7), base(8)]],
            out_ptr: base(9),
            out_idx: base(10),
            out_val: base(11),
            aux_ptr: base(12),
            vector: base(13),
        }
    }

    /// Address of pointer entry `i`.
    pub fn ptr_addr(&self, base: u64, i: u64) -> u64 {
        base + i * PTR_BYTES
    }

    /// Address of 4-byte element `i` of the array at `base`.
    pub fn elem_addr(&self, base: u64, i: u64) -> u64 {
        base + i * IDX_BYTES
    }

    /// The 64 B-aligned block containing byte address `a`.
    pub fn block_of(a: u64) -> u64 {
        a & !(BLOCK_BYTES - 1)
    }

    /// Blocks covered by elements `[start, end)` of a 4-byte array at
    /// `base` (an iterator of block addresses).
    pub fn elem_blocks(&self, base: u64, start: u64, end: u64) -> impl Iterator<Item = u64> {
        let range = if end > start {
            let first = Self::block_of(base + start * IDX_BYTES) / BLOCK_BYTES;
            let last = Self::block_of(base + (end - 1) * IDX_BYTES) / BLOCK_BYTES;
            first..last + 1
        } else {
            1..1 // empty
        };
        range.map(|b| b * BLOCK_BYTES)
    }
}

impl Default for AddressLayout {
    fn default() -> Self {
        Self::rank_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        let l = AddressLayout::rank_default();
        let mut bases = vec![
            l.row_ptr, l.col_idx, l.values, l.out_ptr, l.out_idx, l.out_val, l.aux_ptr, l.vector,
        ];
        for r in &l.coo {
            bases.extend_from_slice(r);
        }
        bases.sort_unstable();
        for w in bases.windows(2) {
            assert!(w[1] - w[0] >= 256 << 20);
        }
        assert!(*bases.last().unwrap() < 4 << 30);
    }

    #[test]
    fn block_alignment() {
        assert_eq!(AddressLayout::block_of(0), 0);
        assert_eq!(AddressLayout::block_of(63), 0);
        assert_eq!(AddressLayout::block_of(64), 64);
        assert_eq!(AddressLayout::block_of(130), 128);
    }

    #[test]
    fn elem_blocks_counts() {
        let l = AddressLayout::rank_default();
        // 16 elements of 4 B = 64 B starting at an aligned base: one block.
        assert_eq!(l.elem_blocks(l.col_idx, 0, 16).count(), 1);
        // 17 elements cross into a second block.
        assert_eq!(l.elem_blocks(l.col_idx, 0, 17).count(), 2);
        // Unaligned start.
        assert_eq!(l.elem_blocks(l.col_idx, 15, 17).count(), 2);
        // Empty range: no blocks.
        assert_eq!(l.elem_blocks(l.col_idx, 5, 5).count(), 0);
    }

    #[test]
    fn addresses_scale_with_index() {
        let l = AddressLayout::rank_default();
        assert_eq!(l.ptr_addr(l.row_ptr, 3), 24);
        assert_eq!(l.elem_addr(l.col_idx, 3), l.col_idx + 12);
    }
}
