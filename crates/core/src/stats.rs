use menda_dram::DramStats;
use menda_trace::TraceReport;

/// Statistics of one merge-sort iteration on one PU.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IterationStats {
    /// PU cycles spent in this iteration.
    pub cycles: u64,
    /// Nonzeros emitted by the root.
    pub nz_emitted: u64,
    /// Merge rounds executed.
    pub rounds: u64,
    /// Block load requests issued (post coalescing).
    pub loads_issued: u64,
    /// Load requests merged into an existing queue entry by coalescing.
    pub loads_coalesced: u64,
    /// Block store requests issued.
    pub stores_issued: u64,
    /// Cycles the root wanted to pop but no packet was ready.
    pub root_stall_cycles: u64,
    /// Cycles the root was blocked by output-buffer back-pressure.
    pub output_stall_cycles: u64,
    /// DRAM row hits during this iteration (delta of the rank's stats).
    pub dram_row_hits: u64,
    /// DRAM row misses during this iteration.
    pub dram_row_misses: u64,
    /// DRAM row conflicts during this iteration — the §6.7 metric behind
    /// the N6-vs-N7 discussion.
    pub dram_row_conflicts: u64,
}

impl IterationStats {
    /// Bytes moved to/from memory this iteration (64 B per block request).
    pub fn traffic_bytes(&self) -> u64 {
        (self.loads_issued + self.stores_issued) * 64
    }

    /// Fraction of this iteration's DRAM accesses that were row conflicts.
    pub fn row_conflict_rate(&self) -> f64 {
        let total = self.dram_row_hits + self.dram_row_misses + self.dram_row_conflicts;
        if total == 0 {
            return 0.0;
        }
        self.dram_row_conflicts as f64 / total as f64
    }

    /// Serializes every counter for checkpointing.
    pub(crate) fn save_state(&self, enc: &mut menda_dram::Encoder) {
        enc.u64(self.cycles);
        enc.u64(self.nz_emitted);
        enc.u64(self.rounds);
        enc.u64(self.loads_issued);
        enc.u64(self.loads_coalesced);
        enc.u64(self.stores_issued);
        enc.u64(self.root_stall_cycles);
        enc.u64(self.output_stall_cycles);
        enc.u64(self.dram_row_hits);
        enc.u64(self.dram_row_misses);
        enc.u64(self.dram_row_conflicts);
    }

    /// Restores counters saved by [`IterationStats::save_state`].
    pub(crate) fn restore_state(
        dec: &mut menda_dram::Decoder<'_>,
    ) -> Result<Self, menda_dram::SnapError> {
        Ok(Self {
            cycles: dec.u64()?,
            nz_emitted: dec.u64()?,
            rounds: dec.u64()?,
            loads_issued: dec.u64()?,
            loads_coalesced: dec.u64()?,
            stores_issued: dec.u64()?,
            root_stall_cycles: dec.u64()?,
            output_stall_cycles: dec.u64()?,
            dram_row_hits: dec.u64()?,
            dram_row_misses: dec.u64()?,
            dram_row_conflicts: dec.u64()?,
        })
    }
}

/// Statistics of a complete multi-iteration execution on one PU.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PuStats {
    /// Per-iteration breakdown.
    pub iterations: Vec<IterationStats>,
    /// DRAM-side statistics of the PU's rank.
    pub dram: DramStats,
}

impl PuStats {
    /// Total PU cycles across iterations.
    pub fn total_cycles(&self) -> u64 {
        self.iterations.iter().map(|i| i.cycles).sum()
    }

    /// Total memory traffic in bytes.
    pub fn total_traffic_bytes(&self) -> u64 {
        self.iterations.iter().map(|i| i.traffic_bytes()).sum()
    }

    /// Total loads merged by request coalescing.
    pub fn total_coalesced(&self) -> u64 {
        self.iterations.iter().map(|i| i.loads_coalesced).sum()
    }

    /// Number of iterations executed.
    pub fn num_iterations(&self) -> usize {
        self.iterations.len()
    }
}

/// Aggregated statistics of one engine run across all PUs — the shared
/// reduction every kernel driver previously reimplemented: execution time
/// is the *maximum* over PUs (they run concurrently, §3.5), traffic is the
/// *sum*, and the per-PU breakdown is kept for reporting.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Execution time in device cycles (maximum over PUs).
    pub cycles: u64,
    /// Execution time in seconds at the backend's device clock.
    pub seconds: f64,
    /// The accelerator backend that produced these statistics (see
    /// [`crate::backend::AcceleratorBackend::name`]; `"menda"` for the
    /// default merge-tree PU).
    pub backend: &'static str,
    /// Per-PU statistics, indexed by PU id.
    pub pu_stats: Vec<PuStats>,
    /// Aggregated instrumentation report across PUs, present only when
    /// [`crate::MendaConfig::trace`] enables a sink. Chrome pids identify
    /// the originating PU.
    pub trace: Option<TraceReport>,
}

/// Equality over the *simulated* results only — the `trace` field is
/// deliberately excluded so the differential test suite can assert that
/// traced and untraced runs produce identical statistics.
impl PartialEq for RunStats {
    fn eq(&self, other: &Self) -> bool {
        self.cycles == other.cycles
            && self.seconds == other.seconds
            && self.backend == other.backend
            && self.pu_stats == other.pu_stats
    }
}

impl Default for RunStats {
    fn default() -> Self {
        Self::collect(800, Vec::new())
    }
}

impl RunStats {
    /// Aggregates per-PU statistics at the given device clock frequency.
    /// The backend label defaults to `"menda"`; the engine overwrites it
    /// with the executing backend's name.
    pub fn collect(frequency_mhz: u64, pu_stats: Vec<PuStats>) -> Self {
        let cycles = pu_stats.iter().map(|s| s.total_cycles()).max().unwrap_or(0);
        let seconds = cycles as f64 / (frequency_mhz as f64 * 1e6);
        Self {
            cycles,
            seconds,
            backend: "menda",
            pu_stats,
            trace: None,
        }
    }

    /// Total memory traffic across PUs, in bytes.
    pub fn total_traffic_bytes(&self) -> u64 {
        self.pu_stats.iter().map(|s| s.total_traffic_bytes()).sum()
    }

    /// The largest number of iterations any PU needed.
    pub fn max_iterations(&self) -> usize {
        self.pu_stats
            .iter()
            .map(|s| s.num_iterations())
            .max()
            .unwrap_or(0)
    }

    /// Throughput in `units` per second (0 when no time elapsed).
    pub fn throughput(&self, units: u64) -> f64 {
        if self.seconds > 0.0 {
            units as f64 / self.seconds
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_counts_loads_and_stores() {
        let it = IterationStats {
            loads_issued: 10,
            stores_issued: 5,
            ..Default::default()
        };
        assert_eq!(it.traffic_bytes(), 15 * 64);
    }

    #[test]
    fn conflict_rate_handles_zero_and_counts() {
        assert_eq!(IterationStats::default().row_conflict_rate(), 0.0);
        let it = IterationStats {
            dram_row_hits: 6,
            dram_row_misses: 1,
            dram_row_conflicts: 3,
            ..Default::default()
        };
        assert!((it.row_conflict_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn totals_aggregate_iterations() {
        let stats = PuStats {
            iterations: vec![
                IterationStats {
                    cycles: 100,
                    loads_issued: 4,
                    loads_coalesced: 1,
                    ..Default::default()
                },
                IterationStats {
                    cycles: 50,
                    stores_issued: 2,
                    loads_coalesced: 2,
                    ..Default::default()
                },
            ],
            dram: DramStats::default(),
        };
        assert_eq!(stats.total_cycles(), 150);
        assert_eq!(stats.total_traffic_bytes(), 6 * 64);
        assert_eq!(stats.total_coalesced(), 3);
        assert_eq!(stats.num_iterations(), 2);
    }

    #[test]
    fn run_stats_take_max_cycles_and_sum_traffic() {
        let pu = |cycles: u64, loads: u64| PuStats {
            iterations: vec![IterationStats {
                cycles,
                loads_issued: loads,
                ..Default::default()
            }],
            dram: DramStats::default(),
        };
        let run = RunStats::collect(800, vec![pu(100, 2), pu(400, 3), pu(250, 1)]);
        assert_eq!(run.cycles, 400);
        assert!((run.seconds - 400.0 / 800e6).abs() < 1e-15);
        assert_eq!(run.total_traffic_bytes(), 6 * 64);
        assert_eq!(run.max_iterations(), 1);
        assert!(run.throughput(800) > 0.0);
    }

    #[test]
    fn run_stats_equality_ignores_trace() {
        let base = RunStats::collect(800, Vec::new());
        let mut traced = base.clone();
        traced.trace = Some(TraceReport::default());
        assert_eq!(base, traced);
    }

    #[test]
    fn run_stats_empty_is_zero() {
        let run = RunStats::collect(800, Vec::new());
        assert_eq!(run.cycles, 0);
        assert_eq!(run.seconds, 0.0);
        assert_eq!(run.throughput(100), 0.0);
        assert_eq!(run.max_iterations(), 0);
    }
}
