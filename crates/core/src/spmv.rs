//! The SpMV adaptation of MeNDA (§3.6).
//!
//! Outer-product SpMV has the same multi-way merge dataflow as
//! transposition: each column of the (horizontally partitioned, CSC-stored)
//! matrix is a sorted stream of row indices; scaling each column by its
//! vector element and merging all columns by row index yields the output
//! vector. MeNDA adds:
//!
//! * a vectorized floating-point multiplier next to the prefetch buffers
//!   (values are scaled as they are fetched — iteration 0 only),
//! * an auxiliary pointer array marking which pointer-array blocks contain
//!   non-empty columns, so pointer and vector loads for empty columns are
//!   skipped,
//! * vector-element fetches issued alongside pointer fetches (the delay
//!   buffer of §3.6 covers response reordering; modeled as traffic),
//! * a reduction unit (three pipelined FP adders) behind the root PE that
//!   merges packets with equal row index,
//! * dense output: intermediate runs are (index, value) pairs, the final
//!   vector is written densely.

use menda_sparse::partition::RowPartition;
use menda_sparse::CsrMatrix;

use crate::backend::{AcceleratorBackend, BackendKind, MendaBackend};
use crate::config::MendaConfig;
use crate::engine::{Engine, KernelSpec};
use crate::job::{FinalOutput, IntermediateFormat, JobSource, PuJob};
use crate::layout::{AddressLayout, BLOCK_BYTES, PTR_BYTES};
use crate::prefetch::{StreamDescriptor, StreamKind};
use crate::pu::{PtrGate, PuResult};
use crate::stats::{PuStats, RunStats};

/// Result of an SpMV execution on the MeNDA system.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmvResult {
    /// The output vector `y = A·x`.
    pub y: Vec<f32>,
    /// Execution time in PU cycles (max over PUs).
    pub cycles: u64,
    /// Execution time in seconds.
    pub seconds: f64,
    /// Giga-traversed-edges per second (edges = nonzeros; the paper's
    /// GTEPS metric).
    pub gteps: f64,
    /// Per-PU statistics.
    pub pu_stats: Vec<PuStats>,
    /// Aggregated instrumentation report, present only when
    /// [`MendaConfig::trace`] enables a sink.
    pub trace: Option<menda_trace::TraceReport>,
}

impl SpmvResult {
    /// Iso-bandwidth throughput in GTEPS per GB/s of internal bandwidth
    /// (the paper's fair-comparison metric against HBM designs, §6.8).
    pub fn gteps_per_gbs(&self, internal_bandwidth_gbs: f64) -> f64 {
        if internal_bandwidth_gbs == 0.0 {
            return 0.0;
        }
        self.gteps / internal_bandwidth_gbs
    }
}

/// Options for the SpMV dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmvOptions {
    /// Use the auxiliary pointer array (§3.6): skip pointer/vector block
    /// loads for regions with only empty columns. Disable to measure its
    /// contribution.
    pub aux_pointer_array: bool,
}

impl Default for SpmvOptions {
    fn default() -> Self {
        Self {
            aux_pointer_array: true,
        }
    }
}

/// Runs `y = A·x` on the MeNDA system.
///
/// The input matrix is given as CSR for convenience; each PU's partition is
/// converted to the partitioned CSC format the paper prescribes before
/// simulation (this conversion models the *storage format*, not timed
/// preprocessing — CoSPARSE-style frameworks already store the sparse-
/// iteration operand in CSC, §4.1).
///
/// # Panics
///
/// Panics if `x.len() != a.ncols()`.
pub fn run(config: &MendaConfig, a: &CsrMatrix, x: &[f32]) -> SpmvResult {
    run_with_options(config, a, x, SpmvOptions::default())
}

/// [`run`] with explicit [`SpmvOptions`].
///
/// # Panics
///
/// Panics if `x.len() != a.ncols()`.
pub fn run_with_options(
    config: &MendaConfig,
    a: &CsrMatrix,
    x: &[f32],
    options: SpmvOptions,
) -> SpmvResult {
    run_on(config, a, x, options, MendaBackend)
}

/// [`run_with_options`] on an arbitrary [`AcceleratorBackend`]. Output
/// values match the MeNDA backend to floating-point tolerance (reduction
/// order is backend-specific), not bit for bit.
///
/// # Panics
///
/// Panics if `x.len() != a.ncols()`.
pub fn run_on<B: AcceleratorBackend>(
    config: &MendaConfig,
    a: &CsrMatrix,
    x: &[f32],
    options: SpmvOptions,
    backend: B,
) -> SpmvResult {
    assert_eq!(x.len(), a.ncols(), "vector length must equal ncols");
    let spec = make_spec(a, x, options, config.num_pus());
    Engine::with_backend(config, backend).run(&spec)
}

/// Builds the engine spec [`run_on`] executes, for callers that need the
/// [`KernelSpec`] itself (the checkpointing entry points).
pub(crate) fn make_spec<'m>(
    a: &'m CsrMatrix,
    x: &'m [f32],
    options: SpmvOptions,
    pus: usize,
) -> SpmvSpec<'m> {
    assert_eq!(x.len(), a.ncols(), "vector length must equal ncols");
    SpmvSpec {
        a,
        x,
        partition: RowPartition::by_nnz(a, pus),
        options,
    }
}

/// Runtime-selected backend variant of [`run_with_options`].
pub fn run_with_backend(
    config: &MendaConfig,
    a: &CsrMatrix,
    x: &[f32],
    options: SpmvOptions,
    kind: BackendKind,
) -> SpmvResult {
    match kind {
        BackendKind::Menda => run_on(config, a, x, options, MendaBackend),
        BackendKind::Pim => run_on(config, a, x, options, crate::pim::PimBackend),
    }
}

/// SpMV as an engine kernel: one gated scaled-column merge job per
/// partition with pair intermediates and a dense final output, assembled
/// by summing each PU's partial vector into `y`.
///
/// Crate-visible so the preemptible job path ([`crate::jobspec`]) can
/// drive SpMV through the checkpointing engine entry points.
pub(crate) struct SpmvSpec<'m> {
    a: &'m CsrMatrix,
    x: &'m [f32],
    partition: RowPartition,
    options: SpmvOptions,
}

impl KernelSpec for SpmvSpec<'_> {
    type Output = SpmvResult;

    #[allow(clippy::needless_range_loop)] // c is a column id into several arrays
    fn make_job(&self, p: usize) -> PuJob {
        let part = self.partition.extract(self.a, p);
        let offset = self.partition.range(p).start as u32;
        let csc = part.to_csc();
        let layout = AddressLayout::rank_default();

        // Global row indices so every PU's output lands directly in y.
        let rows_global: Vec<u32> = csc.row_idx().iter().map(|&r| r + offset).collect();
        let vals: Vec<f32> = csc.values().to_vec();

        // Streams: non-empty columns, scaled by the vector element.
        // Pointer gating: only aux-marked pointer blocks are read (§3.6).
        let entries_per_block = BLOCK_BYTES / PTR_BYTES; // 8
        let mut descriptors = Vec::new();
        let mut needed_blocks: Vec<u64> = Vec::new();
        let mut release_block: Vec<u64> = Vec::new();
        for c in 0..csc.ncols() {
            let (s, e) = (csc.col_ptr()[c], csc.col_ptr()[c + 1]);
            if s == e {
                continue;
            }
            descriptors.push(StreamDescriptor {
                start: s as u64,
                end: e as u64,
                kind: StreamKind::SpmvCol { scale: self.x[c] },
            });
            let b0 = c as u64 / entries_per_block;
            let b1 = (c as u64 + 1) / entries_per_block;
            for b in [b0, b1] {
                if needed_blocks.last() != Some(&b) {
                    needed_blocks.push(b);
                }
            }
            release_block.push(b1);
        }
        needed_blocks.dedup();
        if !self.options.aux_pointer_array {
            // Without the auxiliary array the controller streams the whole
            // pointer array, empty-column regions included.
            let total = (csc.ncols() as u64 + 1).div_ceil(entries_per_block);
            needed_blocks = (0..total).collect();
        }
        let release_after: Vec<usize> = release_block
            .iter()
            .map(|b| needed_blocks.partition_point(|&x| x <= *b))
            .collect();
        let gate = PtrGate {
            ptr_base: layout.row_ptr,
            blocks: needed_blocks,
            release_after,
            vector_base: Some(layout.vector),
        };

        PuJob {
            descriptors,
            source: JobSource::ScaledCsc {
                rows: rows_global,
                vals,
            },
            gate: Some(gate),
            intermediate: IntermediateFormat::Pair,
            final_out: FinalOutput::Dense {
                rows: part.nrows() as u64,
            },
            reduce: true,
        }
    }

    fn assemble(&self, results: Vec<PuResult>, run: RunStats) -> SpmvResult {
        let mut y = vec![0.0f32; self.a.nrows()];
        for r in &results {
            for (&row, &v) in r.majors.iter().zip(&r.values) {
                y[row as usize] += v;
            }
        }
        SpmvResult {
            y,
            cycles: run.cycles,
            seconds: run.seconds,
            gteps: run.throughput(self.a.nnz() as u64) / 1e9,
            pu_stats: run.pu_stats,
            trace: run.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menda_sparse::gen;

    fn check_spmv(a: &CsrMatrix, seed: u64) {
        let x: Vec<f32> = (0..a.ncols())
            .map(|i| ((i as u64 * 2654435761 + seed) % 17) as f32 * 0.25 - 2.0)
            .collect();
        let golden = a.spmv(&x);
        let r = run(&MendaConfig::small_test(), a, &x);
        assert_eq!(r.y.len(), golden.len());
        for (i, (got, want)) in r.y.iter().zip(&golden).enumerate() {
            assert!(
                (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                "row {i}: got {got}, want {want}"
            );
        }
        assert!(r.cycles > 0);
        assert!(r.gteps > 0.0);
    }

    #[test]
    fn spmv_matches_golden_uniform() {
        check_spmv(&gen::uniform(96, 800, 31), 1);
    }

    #[test]
    fn spmv_matches_golden_power_law() {
        check_spmv(&gen::rmat(128, 1024, gen::RmatParams::PAPER, 32), 2);
    }

    #[test]
    fn spmv_multi_iteration() {
        // 200 non-empty columns per partition on a 16-leaf tree forces
        // multiple iterations with pair intermediates.
        let a = gen::uniform(256, 3000, 33);
        let x: Vec<f32> = (0..256).map(|i| (i % 5) as f32).collect();
        let r = run(&MendaConfig::small_test(), &a, &x);
        let golden = a.spmv(&x);
        for (got, want) in r.y.iter().zip(&golden) {
            assert!((got - want).abs() <= 1e-3 * want.abs().max(1.0));
        }
        assert!(r.pu_stats.iter().any(|s| s.num_iterations() > 1));
    }

    #[test]
    fn empty_matrix_yields_zero_vector() {
        let a = CsrMatrix::zeros(16, 16);
        let r = run(&MendaConfig::small_test(), &a, &[1.0; 16]);
        assert!(r.y.iter().all(|&v| v == 0.0));
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn gteps_per_gbs_is_scaled() {
        let a = gen::uniform(64, 512, 35);
        let x = vec![1.0f32; 64];
        let r = run(&MendaConfig::small_test(), &a, &x);
        let cfg = MendaConfig::small_test();
        let iso = r.gteps_per_gbs(cfg.internal_bandwidth_gbs());
        assert!(iso > 0.0);
        assert!(iso < r.gteps);
    }

    #[test]
    fn aux_pointer_array_reduces_pointer_loads() {
        // Very sparse matrix: most pointer blocks cover only empty
        // columns, which the auxiliary array skips (§3.6).
        let a = gen::uniform(1 << 11, 600, 37);
        let x = vec![1.0f32; 1 << 11];
        let with_aux = run_with_options(
            &MendaConfig::small_test(),
            &a,
            &x,
            SpmvOptions {
                aux_pointer_array: true,
            },
        );
        let without = run_with_options(
            &MendaConfig::small_test(),
            &a,
            &x,
            SpmvOptions {
                aux_pointer_array: false,
            },
        );
        for (g, w) in with_aux.y.iter().zip(&without.y) {
            assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0));
        }
        let loads = |r: &SpmvResult| -> u64 {
            r.pu_stats
                .iter()
                .flat_map(|s| s.iterations.iter())
                .map(|i| i.loads_issued)
                .sum()
        };
        assert!(
            loads(&with_aux) < loads(&without),
            "aux array did not reduce loads: {} vs {}",
            loads(&with_aux),
            loads(&without)
        );
        assert!(with_aux.cycles <= without.cycles);
    }

    #[test]
    #[should_panic(expected = "vector length")]
    fn wrong_vector_length_panics() {
        let a = gen::uniform(8, 16, 36);
        let _ = run(&MendaConfig::small_test(), &a, &[1.0; 4]);
    }
}
