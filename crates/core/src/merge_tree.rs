//! The structural hardware merge tree of Fig. 5.
//!
//! An `l`-leaf tree has `l - 1` processing elements (PEs) arranged in
//! `log2 l` levels. Each PE owns two input FIFOs fed by its children (child
//! PEs, or prefetch buffers at the leaf level). A PE pops the packet with
//! the smaller sort key when both inputs are valid and forwards it to its
//! parent; the root PE emits one packet per cycle into the output buffer.
//! End-of-line (EOL) markers delimit sorted streams and let consecutive
//! rounds of merge sort flow through the tree back to back (§3.3, Fig. 6).
//!
//! # Data-oriented layout
//!
//! The PE FIFOs are not individual queues: all `2 * (l - 1)` of them live
//! in one contiguous struct-of-arrays slab (`keys`/`vals` ring storage plus
//! `head`/`len` arrays), indexed by `fifo = 2 * pe + side`. Packets are
//! stored pre-packed: the (major, minor) sort key occupies one `u64`
//! (`major << 32 | minor`) with EOL as `u64::MAX`, so the merge decision at
//! every PE is a single integer compare — EOL sorts after every nonzero,
//! which reproduces the "a nonzero overtakes a waiting EOL" rule for free.
//! A paper-scale tree (1024 leaves) thus keeps its entire FIFO state in a
//! few contiguous KiB instead of ~2k separately allocated deques.

use std::collections::VecDeque;

/// A merge-tree data packet.
///
/// The hardware packet carries a valid bit, 32-bit row index, 32-bit column
/// index and 32-bit value (§3.2), plus the end-of-line bit of §3.3. Here
/// the indices are generalized to a (major, minor) sort key so the same
/// tree serves transposition (major = column, minor = row) and SpMV
/// (major = row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Packet {
    /// A nonzero element.
    Nz {
        /// Primary sort key (column index for transposition, row index for
        /// SpMV).
        major: u32,
        /// Secondary sort key (row index for transposition).
        minor: u32,
        /// The element value.
        value: f32,
    },
    /// End-of-line marker: the sorted stream on this path has ended.
    Eol,
}

/// Packed sort key of an EOL marker; sorts after every nonzero key, which
/// is exactly the merge priority EOL markers need.
const EOL_KEY: u64 = u64::MAX;

impl Packet {
    /// Creates a nonzero packet.
    pub fn nz(major: u32, minor: u32, value: f32) -> Self {
        Packet::Nz {
            major,
            minor,
            value,
        }
    }

    /// The sort key, or `None` for EOL markers.
    pub fn key(&self) -> Option<(u32, u32)> {
        match self {
            Packet::Nz { major, minor, .. } => Some((*major, *minor)),
            Packet::Eol => None,
        }
    }

    /// Whether this is an EOL marker.
    pub fn is_eol(&self) -> bool {
        matches!(self, Packet::Eol)
    }

    /// Packs into the SoA (key, value) representation.
    #[inline]
    fn pack(self) -> (u64, f32) {
        match self {
            Packet::Nz {
                major,
                minor,
                value,
            } => {
                let key = ((major as u64) << 32) | minor as u64;
                debug_assert_ne!(key, EOL_KEY, "nonzero key collides with EOL sentinel");
                (key, value)
            }
            Packet::Eol => (EOL_KEY, 0.0),
        }
    }

    /// Unpacks from the SoA (key, value) representation.
    #[inline]
    fn unpack(key: u64, value: f32) -> Self {
        if key == EOL_KEY {
            Packet::Eol
        } else {
            Packet::Nz {
                major: (key >> 32) as u32,
                minor: key as u32,
                value,
            }
        }
    }

    /// Serializes one packet (tag byte + payload for nonzeros).
    pub(crate) fn save_state(&self, enc: &mut menda_dram::Encoder) {
        match *self {
            Packet::Nz {
                major,
                minor,
                value,
            } => {
                enc.u8(0);
                enc.u32(major);
                enc.u32(minor);
                enc.f32(value);
            }
            Packet::Eol => enc.u8(1),
        }
    }

    /// Decodes one packet saved by [`Packet::save_state`].
    pub(crate) fn restore_state(
        dec: &mut menda_dram::Decoder<'_>,
    ) -> Result<Self, menda_dram::SnapError> {
        match dec.u8()? {
            0 => Ok(Packet::Nz {
                major: dec.u32()?,
                minor: dec.u32()?,
                value: dec.f32()?,
            }),
            1 => Ok(Packet::Eol),
            _ => Err(menda_dram::SnapError::BadValue),
        }
    }
}

/// Supplies packets to the leaf input ports of a [`MergeTree`].
///
/// Port `p` of an `l`-leaf tree (`0 <= p < l`) corresponds to prefetch
/// buffer `p`. The tree pulls at most one packet per port per cycle.
pub trait LeafSource {
    /// The packet at the head of port `p`, if any.
    fn peek(&self, port: usize) -> Option<Packet>;
    /// Removes the head packet of port `p`.
    ///
    /// Only called after `peek` returned `Some`.
    fn pop(&mut self, port: usize);
}

/// A [`LeafSource`] over in-memory queues, used by tests and by the
/// functional golden model.
#[derive(Debug, Clone, Default)]
pub struct SliceLeafSource {
    ports: Vec<VecDeque<Packet>>,
}

impl SliceLeafSource {
    /// Creates a source with `ports` empty ports.
    pub fn new(ports: usize) -> Self {
        Self {
            ports: (0..ports).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Builds a source where each port holds one sorted stream followed by
    /// an EOL marker.
    pub fn from_streams(ports: usize, streams: Vec<Vec<Packet>>) -> Self {
        assert!(streams.len() <= ports, "more streams than ports");
        let mut src = Self::new(ports);
        for (p, s) in streams.into_iter().enumerate() {
            for pkt in s {
                src.ports[p].push_back(pkt);
            }
            src.ports[p].push_back(Packet::Eol);
        }
        // Ports without a stream still emit a bare EOL so the round
        // terminates.
        for p in src.ports.iter_mut() {
            if p.is_empty() {
                p.push_back(Packet::Eol);
            }
        }
        src
    }

    /// Appends a packet to port `p`.
    pub fn push(&mut self, port: usize, packet: Packet) {
        self.ports[port].push_back(packet);
    }

    /// Total packets across ports.
    pub fn remaining(&self) -> usize {
        self.ports.iter().map(|p| p.len()).sum()
    }
}

impl LeafSource for SliceLeafSource {
    fn peek(&self, port: usize) -> Option<Packet> {
        self.ports[port].front().copied()
    }

    fn pop(&mut self, port: usize) {
        self.ports[port].pop_front();
    }
}

/// A fixed-universe set of active element indexes, stored as a bitmask:
/// insertion is cheap, membership is deduplicated for free, and draining
/// yields ascending order — replacing a sort-and-dedup worklist on the
/// per-cycle hot paths of the merge tree and the prefetch buffers. An
/// any-member flag makes the emptiness probe O(1) — which the
/// fast-forward quiescence check hits every cycle — while keeping the
/// insert path a branch-free load/or/store (the broad wake policy
/// inserts up to four times per packet move, so a per-insert membership
/// count would be paid millions of times per simulated iteration).
#[derive(Debug, Clone)]
pub(crate) struct ActiveSet {
    words: Vec<u128>,
    any: bool,
}

impl ActiveSet {
    /// Creates an empty set over the universe `0..n`.
    pub(crate) fn new(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(128).max(1)],
            any: false,
        }
    }

    /// Adds `idx` to the set.
    #[inline]
    pub(crate) fn insert(&mut self, idx: usize) {
        self.words[idx >> 7] |= 1u128 << (idx & 127);
        self.any = true;
    }

    /// Whether the set has no members.
    pub(crate) fn is_empty(&self) -> bool {
        !self.any
    }

    /// Appends the members to `out` in ascending order and clears the set.
    pub(crate) fn drain_into(&mut self, out: &mut Vec<u32>) {
        if !self.any {
            return;
        }
        self.any = false;
        for (wi, word) in self.words.iter_mut().enumerate() {
            let mut w = *word;
            *word = 0;
            while w != 0 {
                out.push(((wi as u32) << 7) | w.trailing_zeros());
                w &= w - 1;
            }
        }
    }

    /// Serializes the membership bitmask (each `u128` word as two `u64`
    /// halves, low first).
    pub(crate) fn save_state(&self, enc: &mut menda_dram::Encoder) {
        enc.seq(self.words.len());
        for &w in &self.words {
            enc.u64(w as u64);
            enc.u64((w >> 64) as u64);
        }
    }

    /// Restores a bitmask saved by [`ActiveSet::save_state`] into a set of
    /// the same universe; the any-member flag is recomputed from the words.
    pub(crate) fn restore_state(
        &mut self,
        dec: &mut menda_dram::Decoder<'_>,
    ) -> Result<(), menda_dram::SnapError> {
        let n = dec.len_capped(16)?;
        if n != self.words.len() {
            return Err(menda_dram::SnapError::BadValue);
        }
        let mut any = false;
        for w in self.words.iter_mut() {
            let lo = dec.u64()?;
            let hi = dec.u64()?;
            *w = (lo as u128) | ((hi as u128) << 64);
            any |= *w != 0;
        }
        self.any = any;
        Ok(())
    }
}

/// The structural merge tree.
///
/// PEs live in heap order: PE 0 is the root; the children of PE `i` are
/// PEs `2i+1` and `2i+2`. With `l` leaves there are `l-1` PEs; the last
/// `l/2` are leaf PEs whose inputs pull from [`LeafSource`] ports
/// (leaf PE `j` pulls ports `2j` and `2j+1` where `j` counts leaf PEs from
/// the left).
///
/// Simulation is activity-driven: only PEs that might move a packet are
/// visited, so a quiescent or memory-stalled tree costs almost nothing per
/// cycle while remaining cycle-exact (packets advance one level per cycle,
/// bounded by FIFO capacity and the one-pop-per-cycle root).
#[derive(Debug)]
pub struct MergeTree {
    leaves: usize,
    fifo_cap: usize,
    /// Packed sort keys of the FIFO slab: FIFO `2*pe + side` occupies ring
    /// slots `[fifo * fifo_cap, (fifo + 1) * fifo_cap)`.
    keys: Vec<u64>,
    /// Values parallel to `keys`.
    vals: Vec<f32>,
    /// Per-FIFO control word: ring head slot in the low 16 bits,
    /// occupancy in the high 16. One word instead of two parallel `u16`
    /// arrays keeps the per-visit probes (`len == 0`, `len == cap`, head
    /// slot) to a single indexed load each — `step_pe` runs for every
    /// worklist entry every cycle, and most visits are probe-only
    /// (the broad wake policy schedules ~2.6× more visits than moves).
    ctrl: Vec<u32>,
    /// PEs scheduled to run next `tick`.
    active: ActiveSet,
    /// Reused backing storage for the per-cycle working set (the active
    /// set drains into it each `tick`, so it never reallocates in steady
    /// state).
    work_scratch: Vec<u32>,
    /// Root pops produced (NZ packets only).
    pops: u64,
    /// EOLs popped from the root (= completed merge rounds).
    rounds_completed: u64,
}

impl MergeTree {
    /// Creates an `l`-leaf tree with the given per-FIFO capacity.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is not a power of two ≥ 2 or `fifo_cap` is zero.
    pub fn new(leaves: usize, fifo_cap: usize) -> Self {
        assert!(
            leaves.is_power_of_two() && leaves >= 2,
            "leaves must be a power of two >= 2"
        );
        assert!(fifo_cap > 0, "fifo capacity must be positive");
        assert!(fifo_cap <= u16::MAX as usize, "fifo capacity too large");
        let n = leaves - 1;
        let mut active = ActiveSet::new(n);
        for pe in 0..n {
            active.insert(pe);
        }
        Self {
            leaves,
            fifo_cap,
            keys: vec![0; 2 * n * fifo_cap],
            vals: vec![0.0; 2 * n * fifo_cap],
            ctrl: vec![0; 2 * n],
            active,
            work_scratch: Vec::with_capacity(n),
            pops: 0,
            rounds_completed: 0,
        }
    }

    /// Number of leaf ports.
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Number of levels (`log2 leaves`).
    pub fn levels(&self) -> u32 {
        self.leaves.trailing_zeros()
    }

    /// NZ packets popped from the root so far.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Merge rounds completed (root EOLs observed).
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed
    }

    /// Whether every FIFO is empty.
    pub fn is_drained(&self) -> bool {
        self.ctrl.iter().all(|&c| c >> 16 == 0)
    }

    /// Total packets currently buffered in the inter-PE FIFOs — the tree
    /// fill level sampled by the instrumentation layer. Bounded by
    /// `(leaves - 1) * 2 * fifo_entries`.
    pub fn occupancy(&self) -> usize {
        self.ctrl.iter().map(|&c| (c >> 16) as usize).sum()
    }

    /// Occupancy of FIFO `f`.
    #[inline]
    fn fifo_len(&self, f: usize) -> usize {
        (self.ctrl[f] >> 16) as usize
    }

    /// Whether no PE is scheduled for the next `tick` — the cheap core
    /// of [`MergeTree::is_quiescent`], without the root-merge probe.
    /// The fast-forward epoch drain in `pu.rs` breaks on this after a
    /// popless cycle: with the work list empty the tree cannot act
    /// until an external wake, so control returns to the outer loop's
    /// full quiescence calculus.
    pub fn no_scheduled_pes(&self) -> bool {
        self.active.is_empty()
    }

    /// Marks the leaf PE serving `port` as active (call when the backing
    /// prefetch buffer gains data).
    pub fn wake_port(&mut self, port: usize) {
        debug_assert!(port < self.leaves);
        let leaf_pe = self.first_leaf_pe() + port / 2;
        self.activate(leaf_pe);
    }

    fn first_leaf_pe(&self) -> usize {
        self.leaves / 2 - 1
    }

    fn activate(&mut self, pe: usize) {
        self.active.insert(pe);
    }

    /// Front key of FIFO `f`; only meaningful when its occupancy is
    /// non-zero. The hot path in [`MergeTree::step_pe`] inlines this
    /// against an already-loaded control word; this helper serves the
    /// differential test's diagnostics.
    #[cfg(test)]
    fn front_key(&self, f: usize) -> u64 {
        self.keys[f * self.fifo_cap + (self.ctrl[f] & 0xFFFF) as usize]
    }

    /// Pops the front of FIFO `f`; caller guarantees it is non-empty.
    #[inline]
    fn fifo_pop(&mut self, f: usize) -> (u64, f32) {
        let c = self.ctrl[f];
        let h = (c & 0xFFFF) as usize;
        let slot = f * self.fifo_cap + h;
        let mut nh = h + 1;
        if nh == self.fifo_cap {
            nh = 0;
        }
        self.ctrl[f] = (nh as u32) | ((c & 0xFFFF_0000) - (1 << 16));
        (self.keys[slot], self.vals[slot])
    }

    /// Pushes onto FIFO `f`; caller guarantees occupancy below capacity.
    #[inline]
    fn fifo_push(&mut self, f: usize, key: u64, val: f32) {
        let c = self.ctrl[f];
        let mut pos = (c & 0xFFFF) as usize + (c >> 16) as usize;
        if pos >= self.fifo_cap {
            pos -= self.fifo_cap;
        }
        let slot = f * self.fifo_cap + pos;
        self.keys[slot] = key;
        self.vals[slot] = val;
        self.ctrl[f] = c + (1 << 16);
    }

    /// Advances one cycle.
    ///
    /// `root_space` is the number of packets the output side can accept
    /// this cycle (0 or more; the root emits at most one). Returns the
    /// packet popped from the root, if any. EOL markers are consumed
    /// internally and counted in [`MergeTree::rounds_completed`]; they are
    /// also returned so callers can track run boundaries.
    ///
    /// Generic over the source so the per-PU port adapters monomorphize
    /// (no virtual dispatch on the per-packet path); `?Sized` keeps
    /// `&mut dyn LeafSource` callers working.
    pub fn tick<S: LeafSource + ?Sized>(
        &mut self,
        src: &mut S,
        root_space: usize,
    ) -> Option<Packet> {
        // Root must be considered every cycle the sink has space (external
        // availability isn't tracked by internal activation).
        if root_space > 0 {
            self.activate(0);
        }
        // Drain the active set into the retained-capacity scratch Vec
        // (ascending, deduplicated by construction); activations made
        // while stepping schedule PEs for the next cycle. Ascending order
        // is semantic: a parent always steps before its children, so a
        // slot it frees this cycle can be refilled this cycle.
        let mut work = std::mem::take(&mut self.work_scratch);
        self.active.drain_into(&mut work);
        let mut rooted = None;
        let n = self.leaves - 1;
        for &pe in &work {
            let pe = pe as usize;
            let moved = self.step_pe(pe, root_space, &mut rooted) != 0;
            let pulled = self.pull_leaf(pe, src);
            // The broad wake (self, parent, both children, even on a
            // bare pull) is SEMANTIC, not an over-approximation to be
            // tightened: a spuriously woken PE sits in the next cycle's
            // ascending work list, where an earlier-indexed PE (its
            // parent) may free its output mid-tick and let it move that
            // same cycle. Targeted wakes (popped-side children,
            // sibling-gated parent) arrive one cycle later in exactly
            // those races — see `activity_driven_tick_matches_legacy`,
            // which pins this policy against refinement attempts.
            if moved || pulled {
                self.activate(pe);
                if pe > 0 {
                    self.activate((pe - 1) / 2);
                }
                let (c0, c1) = (2 * pe + 1, 2 * pe + 2);
                if c0 < n {
                    self.activate(c0);
                }
                if c1 < n {
                    self.activate(c1);
                }
            }
        }
        work.clear();
        self.work_scratch = work;
        rooted
    }

    /// Reference single cycle running the broad legacy wake policy: any
    /// PE that moved or pulled reactivates itself, its parent, and both
    /// children unconditionally. This is the timing the absolute cycle
    /// fingerprints pin; the targeted wake-ups in [`MergeTree::tick`]
    /// must visit a superset of every PE that acts under this policy at
    /// the same cycle. The differential test drives both against random
    /// traffic and compares FIFO states and root pops per cycle.
    #[cfg(test)]
    pub(crate) fn tick_legacy<S: LeafSource + ?Sized>(
        &mut self,
        src: &mut S,
        root_space: usize,
    ) -> Option<Packet> {
        if root_space > 0 {
            self.activate(0);
        }
        let mut work = std::mem::take(&mut self.work_scratch);
        self.active.drain_into(&mut work);
        let mut rooted = None;
        let n = self.leaves - 1;
        for &pe in &work {
            let pe = pe as usize;
            let moved = self.step_pe(pe, root_space, &mut rooted) != 0;
            let pulled = self.pull_leaf(pe, src);
            if moved || pulled {
                self.activate(pe);
                if pe > 0 {
                    self.activate((pe - 1) / 2);
                }
                let (c0, c1) = (2 * pe + 1, 2 * pe + 2);
                if c0 < n {
                    self.activate(c0);
                }
                if c1 < n {
                    self.activate(c1);
                }
            }
        }
        work.clear();
        self.work_scratch = work;
        rooted
    }

    /// Whether a `tick` with this `root_space` and `src` would provably
    /// change nothing: no PE is scheduled to run and the root cannot make
    /// progress. Conservative — `false` merely means a tick might do
    /// work. Used by the fast-forward path in `pu.rs` to decide that the
    /// tree contributes no events.
    ///
    /// With the worklist empty, every packet movement since the last
    /// activity has been accounted; the only external stimulus `tick`
    /// adds is activating the root when `root_space > 0`. That activation
    /// is a no-op unless the root can merge (both FIFO heads present) or
    /// — on a 2-leaf tree, where the root is also the leaf PE — it can
    /// pull from `src`.
    pub fn is_quiescent<S: LeafSource + ?Sized>(&self, src: &S, root_space: usize) -> bool {
        if !self.active.is_empty() {
            return false;
        }
        if root_space == 0 {
            return true;
        }
        if self.fifo_len(0) > 0 && self.fifo_len(1) > 0 {
            return false;
        }
        if self.leaves == 2
            && ((self.fifo_len(0) < self.fifo_cap && src.peek(0).is_some())
                || (self.fifo_len(1) < self.fifo_cap && src.peek(1).is_some()))
        {
            return false;
        }
        true
    }

    /// Performs the merge-move of PE `pe` (at most one packet toward the
    /// parent). Returns a bitmask of the input sides popped (bit 0 =
    /// FIFO `2*pe`, bit 1 = FIFO `2*pe+1`); `0` means no move. The mask
    /// drives the targeted child wake-ups in [`MergeTree::tick`].
    ///
    /// Both input heads must be valid for a move; with packed keys the
    /// whole priority rule is `key0 <= key1` (EOL = `u64::MAX` sorts
    /// last), with the one special case that a pair of EOLs merges into a
    /// single forwarded EOL.
    #[inline]
    fn step_pe(&mut self, pe: usize, root_space: usize, rooted: &mut Option<Packet>) -> u8 {
        // Check output capacity.
        if pe == 0 {
            if root_space == 0 || rooted.is_some() {
                return 0;
            }
        } else {
            let pfifo = pe - 1; // == 2 * parent + side
            if self.fifo_len(pfifo) >= self.fifo_cap {
                return 0;
            }
        }
        // One control-word load per input FIFO answers both the
        // emptiness probe (high half zero ⟺ whole word below 2^16) and
        // the head slot for the front-key fetch.
        let (f0, f1) = (2 * pe, 2 * pe + 1);
        let (c0, c1) = (self.ctrl[f0], self.ctrl[f1]);
        if c0 < 1 << 16 || c1 < 1 << 16 {
            return 0;
        }
        let cap = self.fifo_cap;
        let k0 = self.keys[f0 * cap + (c0 & 0xFFFF) as usize];
        let k1 = self.keys[f1 * cap + (c1 & 0xFFFF) as usize];
        let (key, val, sides) = if k0 == EOL_KEY && k1 == EOL_KEY {
            self.fifo_pop(f0);
            self.fifo_pop(f1);
            (EOL_KEY, 0.0, 3u8)
        } else if k0 <= k1 {
            let (k, v) = self.fifo_pop(f0);
            (k, v, 1u8)
        } else {
            let (k, v) = self.fifo_pop(f1);
            (k, v, 2u8)
        };
        if pe == 0 {
            if key == EOL_KEY {
                self.rounds_completed += 1;
            } else {
                self.pops += 1;
            }
            *rooted = Some(Packet::unpack(key, val));
        } else {
            self.fifo_push(pe - 1, key, val);
        }
        sides
    }

    /// Pulls up to one packet per input port from the leaf source into a
    /// leaf PE's FIFOs. Returns whether anything was pulled.
    #[inline]
    fn pull_leaf<S: LeafSource + ?Sized>(&mut self, pe: usize, src: &mut S) -> bool {
        let first = self.first_leaf_pe();
        if pe < first {
            return false;
        }
        let base_port = 2 * (pe - first);
        let (f0, f1) = (2 * pe, 2 * pe + 1);
        let mut pulled = false;
        if self.fifo_len(f0) < self.fifo_cap {
            if let Some(pkt) = src.peek(base_port) {
                src.pop(base_port);
                let (key, val) = pkt.pack();
                self.fifo_push(f0, key, val);
                pulled = true;
            }
        }
        if self.fifo_len(f1) < self.fifo_cap {
            if let Some(pkt) = src.peek(base_port + 1) {
                src.pop(base_port + 1);
                let (key, val) = pkt.pack();
                self.fifo_push(f1, key, val);
                pulled = true;
            }
        }
        pulled
    }

    /// Serializes the full FIFO slab and progress counters. The geometry
    /// (`leaves`, `fifo_cap`) is not written — it is derived from the
    /// configuration when the fresh tree is built for restore. The
    /// packed control words are written as the two separate `u16`
    /// head/occupancy arrays of the original snapshot format, so
    /// checkpoints stay byte-compatible across the packing.
    pub(crate) fn save_state(&self, enc: &mut menda_dram::Encoder) {
        enc.u64s(&self.keys);
        enc.f32s(&self.vals);
        let head: Vec<u16> = self.ctrl.iter().map(|&c| (c & 0xFFFF) as u16).collect();
        let len: Vec<u16> = self.ctrl.iter().map(|&c| (c >> 16) as u16).collect();
        enc.u16s(&head);
        enc.u16s(&len);
        self.active.save_state(enc);
        enc.u64(self.pops);
        enc.u64(self.rounds_completed);
    }

    /// Restores state saved by [`MergeTree::save_state`] into a freshly
    /// built tree of the same geometry. Slab lengths and ring indices are
    /// validated against this tree's capacity, so corrupt bytes yield a
    /// typed error instead of out-of-bounds indexing later.
    pub(crate) fn restore_state(
        &mut self,
        dec: &mut menda_dram::Decoder<'_>,
    ) -> Result<(), menda_dram::SnapError> {
        use menda_dram::SnapError;
        let keys = dec.u64s()?;
        let vals = dec.f32s()?;
        let head = dec.u16s()?;
        let len = dec.u16s()?;
        if keys.len() != self.keys.len()
            || vals.len() != self.vals.len()
            || head.len() != self.ctrl.len()
            || len.len() != self.ctrl.len()
        {
            return Err(SnapError::BadValue);
        }
        if head.iter().any(|&h| h as usize >= self.fifo_cap)
            || len.iter().any(|&l| l as usize > self.fifo_cap)
        {
            return Err(SnapError::BadValue);
        }
        self.keys = keys;
        self.vals = vals;
        self.ctrl = head
            .iter()
            .zip(&len)
            .map(|(&h, &l)| h as u32 | ((l as u32) << 16))
            .collect();
        self.active.restore_state(dec)?;
        self.pops = dec.u64()?;
        self.rounds_completed = dec.u64()?;
        Ok(())
    }

    /// Functional reference: merges `streams` (each sorted by key) into one
    /// sorted stream, bypassing timing. Used as the golden model in tests.
    pub fn merge_functional(streams: &[Vec<Packet>]) -> Vec<Packet> {
        let mut all: Vec<Packet> = streams
            .iter()
            .flat_map(|s| s.iter().copied())
            .filter(|p| !p.is_eol())
            .collect();
        all.sort_by_key(|p| p.key());
        all
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the tree until `count` NZ pops plus `rounds` EOLs, with a cycle
    /// bound.
    fn run_tree(
        tree: &mut MergeTree,
        src: &mut SliceLeafSource,
        rounds: u64,
        max_cycles: u64,
    ) -> (Vec<Packet>, u64) {
        let mut out = Vec::new();
        let mut cycles = 0;
        while tree.rounds_completed() < rounds {
            if let Some(p) = tree.tick(src, 1) {
                if !p.is_eol() {
                    out.push(p);
                }
            }
            cycles += 1;
            assert!(cycles < max_cycles, "tree deadlocked after {cycles} cycles");
        }
        (out, cycles)
    }

    fn nz(major: u32) -> Packet {
        Packet::nz(major, 0, major as f32)
    }

    #[test]
    fn merges_four_sorted_streams() {
        let streams = vec![
            vec![nz(1), nz(5), nz(9)],
            vec![nz(2), nz(6)],
            vec![nz(3), nz(7), nz(11)],
            vec![nz(4)],
        ];
        let mut src = SliceLeafSource::from_streams(4, streams.clone());
        let mut tree = MergeTree::new(4, 2);
        let (out, _) = run_tree(&mut tree, &mut src, 1, 1000);
        assert_eq!(out, MergeTree::merge_functional(&streams));
        assert_eq!(tree.pops(), 9);
        assert!(tree.is_drained());
    }

    #[test]
    fn occupancy_tracks_fifo_fill_and_drains_to_zero() {
        let streams = vec![
            vec![nz(1), nz(5), nz(9)],
            vec![nz(2), nz(6)],
            vec![nz(3), nz(7), nz(11)],
            vec![nz(4)],
        ];
        let mut src = SliceLeafSource::from_streams(4, streams);
        let mut tree = MergeTree::new(4, 2);
        assert_eq!(tree.occupancy(), 0);
        let cap = (tree.leaves() - 1) * 2 * 2;
        let mut peak = 0;
        while tree.rounds_completed() < 1 {
            tree.tick(&mut src, 1);
            peak = peak.max(tree.occupancy());
            assert!(tree.occupancy() <= cap);
        }
        assert!(peak > 0, "tree never buffered a packet");
        // Drained tree reads back as empty.
        assert_eq!(
            tree.is_drained(),
            tree.occupancy() == 0,
            "occupancy and is_drained disagree"
        );
    }

    #[test]
    fn secondary_key_breaks_ties() {
        let streams = vec![vec![Packet::nz(5, 2, 1.0)], vec![Packet::nz(5, 1, 2.0)]];
        let mut src = SliceLeafSource::from_streams(2, streams);
        let mut tree = MergeTree::new(2, 2);
        let (out, _) = run_tree(&mut tree, &mut src, 1, 100);
        assert_eq!(out[0], Packet::nz(5, 1, 2.0));
        assert_eq!(out[1], Packet::nz(5, 2, 1.0));
    }

    #[test]
    fn empty_ports_emit_single_eol_round() {
        let mut src = SliceLeafSource::from_streams(8, vec![vec![nz(3)]]);
        let mut tree = MergeTree::new(8, 2);
        let (out, _) = run_tree(&mut tree, &mut src, 1, 1000);
        assert_eq!(out, vec![nz(3)]);
        assert_eq!(tree.rounds_completed(), 1);
    }

    #[test]
    fn back_to_back_rounds_do_not_mix() {
        // Round 1 has large keys, round 2 small keys; output must keep
        // rounds separate (round 2's 0-keys must not pass round 1's).
        let mut src = SliceLeafSource::new(4);
        for port in 0..4u32 {
            src.push(port as usize, Packet::nz(100 + port, 0, 0.0));
            src.push(port as usize, Packet::Eol);
            src.push(port as usize, Packet::nz(port, 0, 0.0));
            src.push(port as usize, Packet::Eol);
        }
        let mut tree = MergeTree::new(4, 2);
        let mut out: Vec<(u64, Packet)> = Vec::new();
        let mut cycles = 0u64;
        while tree.rounds_completed() < 2 {
            if let Some(p) = tree.tick(&mut src, 1) {
                out.push((tree.rounds_completed(), p));
            }
            cycles += 1;
            assert!(cycles < 1000);
        }
        let round1: Vec<u32> = out
            .iter()
            .filter(|(r, p)| *r == 0 && !p.is_eol())
            .map(|(_, p)| p.key().unwrap().0)
            .collect();
        let round2: Vec<u32> = out
            .iter()
            .filter(|(r, p)| *r == 1 && !p.is_eol())
            .map(|(_, p)| p.key().unwrap().0)
            .collect();
        assert_eq!(round1, vec![100, 101, 102, 103]);
        assert_eq!(round2, vec![0, 1, 2, 3]);
    }

    #[test]
    fn seamless_execution_has_no_bubble_between_rounds() {
        // With data always available at the leaves, the root must sustain
        // one pop per cycle across a round boundary (the §3.3 claim).
        let per_stream = 32;
        let mut src = SliceLeafSource::new(4);
        for port in 0..4usize {
            for round in 0..2u32 {
                for i in 0..per_stream {
                    src.push(port, Packet::nz(round * 1000 + i * 4 + port as u32, 0, 0.0));
                }
                src.push(port, Packet::Eol);
            }
        }
        let mut tree = MergeTree::new(4, 2);
        let mut pops_at: Vec<u64> = Vec::new();
        let mut cycles = 0u64;
        while tree.rounds_completed() < 2 {
            if let Some(p) = tree.tick(&mut src, 1) {
                if !p.is_eol() {
                    pops_at.push(cycles);
                }
            }
            cycles += 1;
            assert!(cycles < 10_000);
        }
        assert_eq!(pops_at.len(), 4 * per_stream as usize * 2);
        // After the pipeline fills, pops are consecutive; the only extra
        // cycles are the fill (levels) and the two EOL pop cycles.
        let total = pops_at.len() as u64;
        let span = pops_at.last().unwrap() - pops_at.first().unwrap() + 1;
        assert!(
            span <= total + 2,
            "rounds did not flow seamlessly: {total} pops over {span} cycles"
        );
    }

    #[test]
    fn throughput_is_one_per_cycle_when_fed() {
        let n = 256u32;
        let streams: Vec<Vec<Packet>> = (0..16)
            .map(|p| (0..n / 16).map(|i| nz(i * 16 + p)).collect())
            .collect();
        let mut src = SliceLeafSource::from_streams(16, streams);
        let mut tree = MergeTree::new(16, 2);
        let (out, cycles) = run_tree(&mut tree, &mut src, 1, 10_000);
        assert_eq!(out.len(), n as usize);
        // Fill latency is log2(16)=4; allow small overhead.
        assert!(cycles <= n as u64 + 16, "{cycles} cycles for {n} elements");
    }

    /// Splitmix64 — deterministic test RNG without external crates.
    fn next_rand(s: &mut u64) -> u64 {
        *s = s.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Pins the production `tick` to the frozen legacy wake policy in
    /// [`MergeTree::tick_legacy`], cycle by cycle, under randomized
    /// traffic: staggered packet arrival (with the `wake_port` contract
    /// honored on both sides), random root back-pressure, multiple
    /// rounds, and varying geometry. The wake set is timing-semantic —
    /// a "tighter" policy that skips provably-unmergeable wakes still
    /// diverges, because a spuriously woken PE reacts in the same cycle
    /// to its parent freeing a slot mid-tick (ascending visit order),
    /// one cycle earlier than any wake issued at the pop itself. Any
    /// future activation-policy change must either reproduce the exact
    /// state evolution here or consciously re-baseline the absolute
    /// cycle fingerprints.
    #[test]
    fn activity_driven_tick_matches_legacy_policy() {
        let mut seed = 0x5EED_CAFE_u64;
        for case in 0..64u64 {
            let leaves = 1usize << (1 + next_rand(&mut seed) % 5); // 2..32
            let fifo_cap = 1 + (next_rand(&mut seed) % 3) as usize;
            let rounds = 1 + next_rand(&mut seed) % 2;
            let mut lazy = MergeTree::new(leaves, fifo_cap);
            let mut gold = MergeTree::new(leaves, fifo_cap);
            let mut lazy_src = SliceLeafSource::new(leaves);
            let mut gold_src = SliceLeafSource::new(leaves);
            // Pending per-port streams delivered a few packets at a time.
            let mut pending: Vec<VecDeque<Packet>> = (0..leaves)
                .map(|p| {
                    let mut q = VecDeque::new();
                    for r in 0..rounds {
                        let n = next_rand(&mut seed) % 6;
                        let mut key = 0u32;
                        for _ in 0..n {
                            key += (next_rand(&mut seed) % 7) as u32;
                            q.push_back(Packet::nz(key, p as u32, 1.0));
                        }
                        let _ = r;
                        q.push_back(Packet::Eol);
                    }
                    q
                })
                .collect();
            for cycle in 0..4096u64 {
                // Staggered arrival: each port delivers with p=1/4.
                for (port, queue) in pending.iter_mut().enumerate().take(leaves) {
                    if next_rand(&mut seed).is_multiple_of(4) {
                        if let Some(pkt) = queue.pop_front() {
                            lazy_src.push(port, pkt);
                            gold_src.push(port, pkt);
                            lazy.wake_port(port);
                            gold.wake_port(port);
                        }
                    }
                }
                let root_space = usize::from(!next_rand(&mut seed).is_multiple_of(4));
                let a = lazy.tick(&mut lazy_src, root_space);
                let b = gold.tick_legacy(&mut gold_src, root_space);
                assert_eq!(
                    a, b,
                    "case {case} cycle {cycle}: root pop diverged \
                     (leaves={leaves} cap={fifo_cap})"
                );
                if !(lazy.keys == gold.keys
                    && lazy.ctrl == gold.ctrl
                    && lazy.pops == gold.pops
                    && lazy.rounds_completed == gold.rounds_completed)
                {
                    for f in 0..lazy.ctrl.len() {
                        if lazy.fifo_len(f) != gold.fifo_len(f)
                            || (lazy.fifo_len(f) > 0 && lazy.front_key(f) != gold.front_key(f))
                        {
                            eprintln!(
                                "  fifo {f} (pe {}): lazy len={} gold len={}",
                                f / 2,
                                lazy.fifo_len(f),
                                gold.fifo_len(f)
                            );
                        }
                    }
                    panic!(
                        "case {case} cycle {cycle}: FIFO state diverged \
                         (leaves={leaves} cap={fifo_cap})"
                    );
                }
                if gold.rounds_completed >= rounds && gold.is_drained() {
                    break;
                }
            }
            assert!(
                gold.rounds_completed >= rounds,
                "case {case}: legacy tree did not finish (leaves={leaves})"
            );
            assert_eq!(
                lazy.rounds_completed, gold.rounds_completed,
                "case {case}: activity-driven tree fell behind"
            );
        }
    }

    #[test]
    fn root_backpressure_stalls_tree() {
        let streams = vec![vec![nz(1), nz(2)], vec![nz(3)]];
        let mut src = SliceLeafSource::from_streams(2, streams);
        let mut tree = MergeTree::new(2, 2);
        // No root space: nothing pops, tree holds packets.
        for _ in 0..50 {
            assert_eq!(tree.tick(&mut src, 0), None);
        }
        assert_eq!(tree.pops(), 0);
        // Release: everything flows.
        let (out, _) = run_tree(&mut tree, &mut src, 1, 100);
        assert_eq!(out, vec![nz(1), nz(2), nz(3)]);
    }

    #[test]
    fn pipeline_latency_is_at_least_levels() {
        // A single element at a leaf takes >= log2(l) cycles to reach the
        // root (§3.2: "at least log2 l cycles ... from a leaf PE to the
        // root PE").
        let mut src = SliceLeafSource::from_streams(16, vec![vec![nz(7)]]);
        let mut tree = MergeTree::new(16, 2);
        let mut first_pop = None;
        for cycle in 0..100 {
            if let Some(p) = tree.tick(&mut src, 1) {
                if !p.is_eol() {
                    first_pop = Some(cycle);
                    break;
                }
            }
        }
        let latency = first_pop.expect("element must emerge") + 1;
        assert!(latency >= tree.levels() as u64, "latency {latency}");
    }

    #[test]
    fn large_tree_merges_correctly() {
        let leaves = 128;
        let streams: Vec<Vec<Packet>> = (0..leaves as u32)
            .map(|p| (0..5).map(|i| nz(i * leaves as u32 + p)).collect())
            .collect();
        let mut src = SliceLeafSource::from_streams(leaves, streams.clone());
        let mut tree = MergeTree::new(leaves, 2);
        let (out, _) = run_tree(&mut tree, &mut src, 1, 100_000);
        assert_eq!(out, MergeTree::merge_functional(&streams));
    }

    #[test]
    fn wake_port_reactivates_quiescent_tree() {
        let mut src = SliceLeafSource::new(4);
        let mut tree = MergeTree::new(4, 2);
        // Spin until quiescent (no packets anywhere).
        for _ in 0..20 {
            tree.tick(&mut src, 1);
        }
        // Now feed a full round and wake only the touched ports.
        for p in 0..4 {
            src.push(p, if p == 2 { nz(9) } else { Packet::Eol });
            if p == 2 {
                src.push(p, Packet::Eol);
            }
            tree.wake_port(p);
        }
        let (out, _) = run_tree(&mut tree, &mut src, 1, 200);
        assert_eq!(out, vec![nz(9)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_leaf_count_panics() {
        let _ = MergeTree::new(6, 2);
    }

    #[test]
    fn scratch_reuse_keeps_output_identical_across_rounds() {
        // Many back-to-back rounds exercise the worklist/scratch swap in
        // steady state; the merged output must match the functional model
        // round by round, and the scratch buffers must not grow beyond
        // the PE count (they'd reallocate every cycle otherwise).
        let leaves = 16;
        let rounds = 8u64;
        let mut src = SliceLeafSource::new(leaves);
        let mut per_round: Vec<Vec<Packet>> = Vec::new();
        for round in 0..rounds as u32 {
            let mut expected = Vec::new();
            for port in 0..leaves as u32 {
                for i in 0..3 {
                    let p = Packet::nz(round * 1000 + i * leaves as u32 + port, port, 1.0);
                    src.push(port as usize, p);
                    expected.push(p);
                }
                src.push(port as usize, Packet::Eol);
            }
            expected.sort_by_key(|p| p.key());
            per_round.push(expected);
        }
        let mut tree = MergeTree::new(leaves, 2);
        let mut out: Vec<Vec<Packet>> = vec![Vec::new()];
        let mut cycles = 0u64;
        while tree.rounds_completed() < rounds {
            let before = tree.rounds_completed();
            if let Some(p) = tree.tick(&mut src, 1) {
                if !p.is_eol() {
                    out[before as usize].push(p);
                } else if tree.rounds_completed() < rounds {
                    out.push(Vec::new());
                }
            }
            assert!(tree.work_scratch.capacity() <= 2 * (leaves - 1));
            cycles += 1;
            assert!(cycles < 100_000, "tree deadlocked");
        }
        assert_eq!(out, per_round);
    }

    #[test]
    fn quiescence_predicate_matches_tick_behavior() {
        let mut src = SliceLeafSource::new(4);
        let mut tree = MergeTree::new(4, 2);
        // Fresh tree has a full worklist: not quiescent.
        assert!(!tree.is_quiescent(&src, 1));
        // Drain to a true fixpoint.
        for _ in 0..20 {
            tree.tick(&mut src, 1);
        }
        assert!(tree.is_quiescent(&src, 1));
        // A quiescent tree must stay bit-identical under further ticks.
        assert_eq!(tree.tick(&mut src, 1), None);
        assert!(tree.is_quiescent(&src, 1));
        // New leaf data (after wake_port) ends quiescence...
        src.push(0, nz(5));
        tree.wake_port(0);
        assert!(!tree.is_quiescent(&src, 1));
        for _ in 0..20 {
            tree.tick(&mut src, 1);
        }
        // ...and a root holding data with zero root space is quiescent,
        // but wakes as soon as space appears.
        src.push(1, Packet::Eol);
        src.push(2, Packet::Eol);
        src.push(3, Packet::Eol);
        for p in 1..4 {
            tree.wake_port(p);
        }
        for _ in 0..20 {
            tree.tick(&mut src, 0);
        }
        assert!(tree.is_quiescent(&src, 0));
        assert!(!tree.is_quiescent(&src, 1));
    }

    #[test]
    fn two_leaf_quiescence_sees_leaf_source() {
        // On a 2-leaf tree the root is also the leaf PE: pending source
        // packets must defeat quiescence even with an empty tree.
        let mut src = SliceLeafSource::new(2);
        let mut tree = MergeTree::new(2, 2);
        for _ in 0..10 {
            tree.tick(&mut src, 1);
        }
        assert!(tree.is_quiescent(&src, 1));
        src.push(0, nz(1));
        assert!(!tree.is_quiescent(&src, 1));
    }
}
