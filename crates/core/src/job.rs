//! Per-PU job descriptions and the shared multi-iteration driver.
//!
//! Every MeNDA kernel — transposition (§3.1), SpMV (§3.6) and the SpGEMM
//! merge phase — runs the same loop on a PU: an iteration-0 merge over
//! kernel-specific streams, then `ceil(log_l streams) - 1` further merges
//! over ping-pong intermediate runs, with the last iteration writing the
//! final output format. [`PuJob`] captures everything that differs between
//! kernels and [`execute`] runs the loop, so the kernel drivers contain no
//! per-iteration plumbing of their own.

use menda_sparse::CsrMatrix;

use crate::layout::{AddressLayout, BLOCK_BYTES, PTR_BYTES};
use crate::prefetch::{StreamDescriptor, StreamKind};
use crate::pu::{
    iterations_needed, pair_runs_to_descriptors, runs_to_descriptors, IterSource, IterationSetup,
    OutputMode, ProcessingUnit, PtrGate, PuResult,
};
use crate::stats::PuStats;

/// The iteration-0 data a job owns. Jobs own their inputs (rather than
/// borrowing them) so the engine can build and run them on worker threads.
#[derive(Debug, Clone)]
pub enum JobSource {
    /// Transposition: the PU's CSR partition (streams are rows).
    Csr(CsrMatrix),
    /// SpMV: CSC row indices (already globalized) and values; each
    /// stream descriptor carries the scale factor of its column.
    ScaledCsc {
        /// Row index per nonzero.
        rows: Vec<u32>,
        /// Value per nonzero.
        vals: Vec<f32>,
    },
    /// Pre-materialized COO runs (SpGEMM partial products). `minors` and
    /// `majors` are the output key order: packets are emitted as
    /// `(major, minor, value)`.
    Coo {
        /// Minor sort key per element (e.g. C's column index).
        minors: Vec<u32>,
        /// Major sort key per element (e.g. C's row index).
        majors: Vec<u32>,
        /// Value per element.
        vals: Vec<f32>,
    },
}

impl JobSource {
    pub(crate) fn iter_source(&self) -> IterSource<'_> {
        match self {
            JobSource::Csr(m) => IterSource::Csr {
                cols: m.col_idx(),
                vals: m.values(),
            },
            JobSource::ScaledCsc { rows, vals } => IterSource::ScaledCsc { rows, vals },
            JobSource::Coo {
                minors,
                majors,
                vals,
            } => IterSource::Coo {
                rows: minors,
                cols: majors,
                vals,
            },
        }
    }
}

/// The intermediate-run format between iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntermediateFormat {
    /// 12-byte COO triples (transposition, SpGEMM).
    Coo,
    /// 8-byte (index, value) pairs (SpMV, §3.6).
    Pair,
}

/// The final iteration's output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalOutput {
    /// CSC index/value arrays plus a paced column pointer array.
    Csc {
        /// Columns in the output pointer array.
        ncols: u64,
    },
    /// A dense vector, 4 bytes per row (SpMV).
    Dense {
        /// Rows of the output vector partition.
        rows: u64,
    },
}

/// One PU's complete work for one kernel launch.
///
/// The first intermediate iteration writes ping-pong region 0, so
/// iteration-0 `descriptors` that read a COO region (SpGEMM) must
/// reference region 1.
#[derive(Debug, Clone)]
pub struct PuJob {
    /// Iteration-0 stream descriptors in assignment order.
    pub descriptors: Vec<StreamDescriptor>,
    /// Iteration-0 backing data.
    pub source: JobSource,
    /// Iteration-0 pointer-read gating, if the controller must stream the
    /// pointer array before stream addresses are known.
    pub gate: Option<PtrGate>,
    /// Format of intermediate runs between iterations.
    pub intermediate: IntermediateFormat,
    /// Format of the last iteration's output.
    pub final_out: FinalOutput,
    /// Merge packets with equal (major, minor) keys at the root (the
    /// reduction unit of §3.6).
    pub reduce: bool,
}

/// Builds the transposition job for one CSR partition whose local row 0
/// is global row `row_offset` (§3.1: one gated stream per non-empty row,
/// COO intermediates, CSC output).
pub fn transpose_job(part: CsrMatrix, row_offset: usize) -> PuJob {
    let layout = AddressLayout::rank_default();
    let entries_per_block = BLOCK_BYTES / PTR_BYTES; // 8
    let mut descriptors = Vec::new();
    let mut release_after = Vec::new();
    let row_ptr = part.row_ptr();
    for r in 0..part.nrows() {
        let (s, e) = (row_ptr[r], row_ptr[r + 1]);
        if s == e {
            continue;
        }
        descriptors.push(StreamDescriptor {
            start: s as u64,
            end: e as u64,
            kind: StreamKind::CsrRow {
                row: (row_offset + r) as u32,
            },
        });
        // Needs pointer entries r and r+1.
        release_after.push(((r as u64 + 1) / entries_per_block + 1) as usize);
    }
    let total_ptr_blocks = (part.nrows() as u64 + 1).div_ceil(entries_per_block);
    let gate = PtrGate {
        ptr_base: layout.row_ptr,
        blocks: (0..total_ptr_blocks).collect(),
        release_after: release_after
            .iter()
            .map(|&b| b.min(total_ptr_blocks as usize))
            .collect(),
        vector_base: None,
    };
    let ncols = part.ncols() as u64;
    PuJob {
        descriptors,
        source: JobSource::Csr(part),
        gate: Some(gate),
        intermediate: IntermediateFormat::Coo,
        final_out: FinalOutput::Csc { ncols },
        reduce: false,
    }
}

/// Executes `job` on `pu`: iteration 0 over the job's own streams, then
/// merges of the ping-pong intermediates until a single run remains.
///
/// A job with no streams finishes immediately with empty output and zero
/// iterations — the uniform empty-work accounting all kernels share.
pub fn execute(pu: &mut ProcessingUnit, job: PuJob) -> PuResult {
    let l = pu.leaves() as u64;
    let mut stats = PuStats::default();
    let iterations = iterations_needed(job.descriptors.len() as u64, l);
    if iterations == 0 {
        stats.dram = pu.dram_stats();
        return PuResult {
            majors: Vec::new(),
            minors: Vec::new(),
            values: Vec::new(),
            stats,
        };
    }

    let out_mode = |is_final: bool, region: u8| {
        if is_final {
            match job.final_out {
                FinalOutput::Csc { ncols } => OutputMode::FinalCsc { ncols },
                FinalOutput::Dense { rows } => OutputMode::FinalDense { rows },
            }
        } else {
            match job.intermediate {
                IntermediateFormat::Coo => OutputMode::Intermediate { region },
                IntermediateFormat::Pair => OutputMode::IntermediatePair { region },
            }
        }
    };

    // Iteration 0 over the job's own streams; intermediates land in
    // ping-pong region 0.
    let mut cur_region = 0u8;
    let setup = IterationSetup {
        descriptors: job.descriptors,
        source: job.source.iter_source(),
        gate: job.gate,
        out: out_mode(iterations <= 1, cur_region),
        reduce: job.reduce,
    };
    let (mut emitted, mut boundaries, it0) = pu.run_rounds(setup);
    stats.iterations.push(it0);

    // Further iterations over the previous iteration's runs. Feeding the
    // raw (minors, majors) back as the COO (rows, cols) arrays re-emits
    // each element with unchanged keys, for every kernel.
    for it in 1..iterations {
        let (minors, majors, values) = emitted;
        let descriptors = match job.intermediate {
            IntermediateFormat::Coo => runs_to_descriptors(&boundaries, cur_region),
            IntermediateFormat::Pair => pair_runs_to_descriptors(&boundaries, cur_region),
        };
        let source = match job.intermediate {
            IntermediateFormat::Coo => IterSource::Coo {
                rows: &minors,
                cols: &majors,
                vals: &values,
            },
            IntermediateFormat::Pair => IterSource::Pair {
                idx: &majors,
                vals: &values,
            },
        };
        let setup = IterationSetup {
            descriptors,
            source,
            gate: None,
            out: out_mode(it + 1 == iterations, 1 - cur_region),
            reduce: job.reduce,
        };
        let (e, b, s) = pu.run_rounds(setup);
        emitted = e;
        boundaries = b;
        stats.iterations.push(s);
        cur_region = 1 - cur_region;
    }

    stats.dram = pu.dram_stats();
    PuResult {
        majors: emitted.1,
        minors: emitted.0,
        values: emitted.2,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MendaConfig;
    use menda_sparse::gen;

    #[test]
    fn transpose_job_gates_all_pointer_blocks() {
        let m = gen::uniform(64, 512, 3);
        let job = transpose_job(m.clone(), 0);
        let gate = job.gate.as_ref().expect("transpose is gated");
        assert_eq!(gate.blocks.len(), (64usize + 1).div_ceil(8));
        assert_eq!(gate.release_after.len(), job.descriptors.len());
        assert!(gate.vector_base.is_none());
        assert_eq!(job.final_out, FinalOutput::Csc { ncols: 64 });
        assert!(!job.reduce);
    }

    #[test]
    fn empty_job_reports_zero_iterations() {
        let job = transpose_job(CsrMatrix::zeros(16, 16), 0);
        let mut pu = ProcessingUnit::new(&MendaConfig::small_test());
        let r = execute(&mut pu, job);
        assert!(r.majors.is_empty());
        assert_eq!(r.stats.num_iterations(), 0);
        assert_eq!(r.stats.total_cycles(), 0);
        assert_eq!(r.stats.total_traffic_bytes(), 0);
    }

    #[test]
    fn executed_job_matches_pu_transpose() {
        let m = gen::rmat(64, 512, gen::RmatParams::PAPER, 9);
        let mut pu = ProcessingUnit::new(&MendaConfig::small_test());
        let direct = pu.transpose(&m, 5);
        let mut pu2 = ProcessingUnit::new(&MendaConfig::small_test());
        let via_job = execute(&mut pu2, transpose_job(m.clone(), 5));
        assert_eq!(direct, via_job);
    }
}
