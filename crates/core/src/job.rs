//! Per-PU job descriptions and the shared multi-iteration driver.
//!
//! Every MeNDA kernel — transposition (§3.1), SpMV (§3.6) and the SpGEMM
//! merge phase — runs the same loop on a PU: an iteration-0 merge over
//! kernel-specific streams, then `ceil(log_l streams) - 1` further merges
//! over ping-pong intermediate runs, with the last iteration writing the
//! final output format. [`PuJob`] captures everything that differs between
//! kernels and [`execute`] runs the loop, so the kernel drivers contain no
//! per-iteration plumbing of their own.

use menda_dram::{fnv1a, Decoder, Encoder, SnapError};
use menda_sparse::CsrMatrix;

use crate::layout::{AddressLayout, BLOCK_BYTES, PTR_BYTES};
use crate::prefetch::{StreamDescriptor, StreamKind};
use crate::pu::{
    iterations_needed, pair_runs_to_descriptors, runs_to_descriptors, EmittedTriples, IterParams,
    IterSource, IterState, OutputMode, ProcessingUnit, PtrGate, PuResult,
};
use crate::stats::{IterationStats, PuStats};

/// The iteration-0 data a job owns. Jobs own their inputs (rather than
/// borrowing them) so the engine can build and run them on worker threads.
#[derive(Debug, Clone)]
pub enum JobSource {
    /// Transposition: the PU's CSR partition (streams are rows).
    Csr(CsrMatrix),
    /// SpMV: CSC row indices (already globalized) and values; each
    /// stream descriptor carries the scale factor of its column.
    ScaledCsc {
        /// Row index per nonzero.
        rows: Vec<u32>,
        /// Value per nonzero.
        vals: Vec<f32>,
    },
    /// Pre-materialized COO runs (SpGEMM partial products). `minors` and
    /// `majors` are the output key order: packets are emitted as
    /// `(major, minor, value)`.
    Coo {
        /// Minor sort key per element (e.g. C's column index).
        minors: Vec<u32>,
        /// Major sort key per element (e.g. C's row index).
        majors: Vec<u32>,
        /// Value per element.
        vals: Vec<f32>,
    },
}

impl JobSource {
    pub(crate) fn iter_source(&self) -> IterSource<'_> {
        match self {
            JobSource::Csr(m) => IterSource::Csr {
                cols: m.col_idx(),
                vals: m.values(),
            },
            JobSource::ScaledCsc { rows, vals } => IterSource::ScaledCsc { rows, vals },
            JobSource::Coo {
                minors,
                majors,
                vals,
            } => IterSource::Coo {
                rows: minors,
                cols: majors,
                vals,
            },
        }
    }
}

/// The intermediate-run format between iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntermediateFormat {
    /// 12-byte COO triples (transposition, SpGEMM).
    Coo,
    /// 8-byte (index, value) pairs (SpMV, §3.6).
    Pair,
}

/// The final iteration's output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalOutput {
    /// CSC index/value arrays plus a paced column pointer array.
    Csc {
        /// Columns in the output pointer array.
        ncols: u64,
    },
    /// A dense vector, 4 bytes per row (SpMV).
    Dense {
        /// Rows of the output vector partition.
        rows: u64,
    },
}

/// One PU's complete work for one kernel launch.
///
/// The first intermediate iteration writes ping-pong region 0, so
/// iteration-0 `descriptors` that read a COO region (SpGEMM) must
/// reference region 1.
#[derive(Debug, Clone)]
pub struct PuJob {
    /// Iteration-0 stream descriptors in assignment order.
    pub descriptors: Vec<StreamDescriptor>,
    /// Iteration-0 backing data.
    pub source: JobSource,
    /// Iteration-0 pointer-read gating, if the controller must stream the
    /// pointer array before stream addresses are known.
    pub gate: Option<PtrGate>,
    /// Format of intermediate runs between iterations.
    pub intermediate: IntermediateFormat,
    /// Format of the last iteration's output.
    pub final_out: FinalOutput,
    /// Merge packets with equal (major, minor) keys at the root (the
    /// reduction unit of §3.6).
    pub reduce: bool,
}

/// Builds the transposition job for one CSR partition whose local row 0
/// is global row `row_offset` (§3.1: one gated stream per non-empty row,
/// COO intermediates, CSC output).
pub fn transpose_job(part: CsrMatrix, row_offset: usize) -> PuJob {
    let layout = AddressLayout::rank_default();
    let entries_per_block = BLOCK_BYTES / PTR_BYTES; // 8
    let mut descriptors = Vec::new();
    let mut release_after = Vec::new();
    let row_ptr = part.row_ptr();
    for r in 0..part.nrows() {
        let (s, e) = (row_ptr[r], row_ptr[r + 1]);
        if s == e {
            continue;
        }
        descriptors.push(StreamDescriptor {
            start: s as u64,
            end: e as u64,
            kind: StreamKind::CsrRow {
                row: (row_offset + r) as u32,
            },
        });
        // Needs pointer entries r and r+1.
        release_after.push(((r as u64 + 1) / entries_per_block + 1) as usize);
    }
    let total_ptr_blocks = (part.nrows() as u64 + 1).div_ceil(entries_per_block);
    let gate = PtrGate {
        ptr_base: layout.row_ptr,
        blocks: (0..total_ptr_blocks).collect(),
        release_after: release_after
            .iter()
            .map(|&b| b.min(total_ptr_blocks as usize))
            .collect(),
        vector_base: None,
    };
    let ncols = part.ncols() as u64;
    PuJob {
        descriptors,
        source: JobSource::Csr(part),
        gate: Some(gate),
        intermediate: IntermediateFormat::Coo,
        final_out: FinalOutput::Csc { ncols },
        reduce: false,
    }
}

/// Executes `job` on `pu`: iteration 0 over the job's own streams, then
/// merges of the ping-pong intermediates until a single run remains.
///
/// A job with no streams finishes immediately with empty output and zero
/// iterations — the uniform empty-work accounting all kernels share.
///
/// Thin wrapper over [`JobRun`] with no pause target, so the
/// straight-through path and the checkpointable path are the same code.
pub fn execute(pu: &mut ProcessingUnit, job: PuJob) -> PuResult {
    let mut run = JobRun::new(pu.leaves() as u64, job);
    let done = run.run_until(pu, None);
    debug_assert!(done, "unbounded job run must finish");
    run.finish(pu)
}

/// The output mode of iteration `it` out of `iterations`. Intermediate
/// iterations ping-pong between the two COO regions: iteration `it`
/// writes region `it % 2` (and therefore reads region `(it - 1) % 2`).
fn out_mode(job: &PuJob, it: u32, iterations: u32) -> OutputMode {
    if it + 1 >= iterations {
        match job.final_out {
            FinalOutput::Csc { ncols } => OutputMode::FinalCsc { ncols },
            FinalOutput::Dense { rows } => OutputMode::FinalDense { rows },
        }
    } else {
        let region = (it % 2) as u8;
        match job.intermediate {
            IntermediateFormat::Coo => OutputMode::Intermediate { region },
            IntermediateFormat::Pair => OutputMode::IntermediatePair { region },
        }
    }
}

/// One PU's multi-iteration job execution as a pausable state machine —
/// the checkpoint seam of the MeNDA backend.
///
/// Between calls the run is parked either *between iterations* (`paused`
/// empty: the next call starts iteration `it` from scratch) or *mid
/// iteration* (`paused` holds the in-flight [`IterState`], frozen at the
/// top of the cycle loop). Both parking positions serialize; everything
/// derivable from the job (descriptor lists of later iterations, output
/// modes, geometry) is recomputed at restore rather than stored.
///
/// The type is public only so it can serve as
/// [`crate::backend::ResumableBackend::Run`] for the MeNDA backend;
/// construct and drive it through the [`crate::Engine`] checkpoint entry
/// points.
#[derive(Debug)]
pub struct JobRun {
    job: PuJob,
    /// Total iterations this job needs (`ceil(log_l streams)`).
    iterations: u32,
    /// Current iteration index; `== iterations` once finished.
    it: u32,
    finished: bool,
    /// Statistics of completed iterations.
    iter_stats: Vec<IterationStats>,
    /// Output of the most recently completed iteration: the next
    /// iteration's input, or the final output once finished.
    prev: EmittedTriples,
    /// Run boundaries of the most recently completed iteration.
    boundaries: Vec<usize>,
    /// Descriptors of the current iteration when `it > 0` (iteration 0
    /// reads the job's own descriptors). Recomputed from `boundaries`.
    descriptors: Vec<StreamDescriptor>,
    /// The in-flight iteration, parked at a cycle boundary.
    paused: Option<IterState>,
}

impl JobRun {
    /// Prepares `job` for execution on a PU with `leaves` merge-tree
    /// leaves without running any cycles. A job with no streams is
    /// finished immediately (zero iterations, empty output).
    pub(crate) fn new(leaves: u64, job: PuJob) -> Self {
        let iterations = iterations_needed(job.descriptors.len() as u64, leaves);
        Self {
            job,
            iterations,
            it: 0,
            finished: iterations == 0,
            iter_stats: Vec::new(),
            prev: (Vec::new(), Vec::new(), Vec::new()),
            boundaries: Vec::new(),
            descriptors: Vec::new(),
            paused: None,
        }
    }

    /// PU cycles of completed iterations (the current iteration's partial
    /// cycles are inside `paused`).
    fn base_cycles(&self) -> u64 {
        self.iter_stats.iter().map(|s| s.cycles).sum()
    }

    /// Total PU cycles simulated so far, including the in-flight
    /// iteration.
    pub fn cycles_so_far(&self) -> u64 {
        self.base_cycles() + self.paused.as_ref().map_or(0, |st| st.cycles)
    }

    /// Whether the job has run to completion.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Advances the job until it finishes (returns `true`) or the PU's
    /// cumulative cycle count for this job reaches `pause_at` (returns
    /// `false`, parked at a cycle boundary). Resuming — in this process or
    /// after a serialize/restore round trip — continues bit-identically to
    /// an unpaused run.
    pub(crate) fn run_until(&mut self, pu: &mut ProcessingUnit, pause_at: Option<u64>) -> bool {
        while !self.finished {
            let base = self.base_cycles();
            if self.paused.is_none() {
                if let Some(t) = pause_at {
                    if t <= base {
                        return false;
                    }
                }
            }
            let out = out_mode(&self.job, self.it, self.iterations);
            let (descriptors, source, gate): (
                &[StreamDescriptor],
                IterSource<'_>,
                Option<&PtrGate>,
            ) = if self.it == 0 {
                (
                    &self.job.descriptors,
                    self.job.source.iter_source(),
                    self.job.gate.as_ref(),
                )
            } else {
                // Feeding the raw (minors, majors) back as the COO
                // (rows, cols) arrays re-emits each element with
                // unchanged keys, for every kernel.
                let source = match self.job.intermediate {
                    IntermediateFormat::Coo => IterSource::Coo {
                        rows: &self.prev.0,
                        cols: &self.prev.1,
                        vals: &self.prev.2,
                    },
                    IntermediateFormat::Pair => IterSource::Pair {
                        idx: &self.prev.1,
                        vals: &self.prev.2,
                    },
                };
                (&self.descriptors, source, None)
            };
            let p = IterParams {
                descriptors,
                source,
                gate,
                out,
                reduce: self.job.reduce,
            };
            let mut st = match self.paused.take() {
                Some(st) => st,
                None => {
                    let st = IterState::new(pu, &p);
                    if st.trivially_done {
                        // Mirror `run_rounds`: no trace span, default
                        // statistics, empty output.
                        self.iter_stats.push(st.it);
                        self.prev = (Vec::new(), Vec::new(), Vec::new());
                        self.boundaries.clear();
                        self.advance_iteration();
                        continue;
                    }
                    pu.begin_iteration_trace();
                    st
                }
            };
            let local = pause_at.map(|t| t.saturating_sub(base));
            if pu.iter_loop(&p, &mut st, local) {
                let (emitted, bounds, s) = pu.finish_iteration(st);
                self.iter_stats.push(s);
                self.prev = emitted;
                self.boundaries = bounds;
                self.advance_iteration();
            } else {
                self.paused = Some(st);
                return false;
            }
        }
        true
    }

    /// Moves to the next iteration: recomputes its stream descriptors from
    /// the completed iteration's run boundaries, or marks the job done.
    fn advance_iteration(&mut self) {
        self.it += 1;
        if self.it >= self.iterations {
            self.finished = true;
            self.descriptors = Vec::new();
        } else {
            let read_region = ((self.it - 1) % 2) as u8;
            self.descriptors = match self.job.intermediate {
                IntermediateFormat::Coo => runs_to_descriptors(&self.boundaries, read_region),
                IntermediateFormat::Pair => pair_runs_to_descriptors(&self.boundaries, read_region),
            };
        }
    }

    /// Consumes a finished run into the shared per-PU result.
    pub(crate) fn finish(self, pu: &ProcessingUnit) -> PuResult {
        debug_assert!(self.finished, "finish on an unfinished job run");
        let stats = PuStats {
            iterations: self.iter_stats,
            dram: pu.dram_stats(),
        };
        PuResult {
            majors: self.prev.1,
            minors: self.prev.0,
            values: self.prev.2,
            stats,
        }
    }

    /// Serializes the run's dynamic state. The job itself is *not*
    /// written — the restore side rebuilds it deterministically and the
    /// container layer guards the pairing with [`job_fingerprint`].
    pub(crate) fn save_state(&self, enc: &mut Encoder) {
        enc.u32(self.it);
        enc.bool(self.finished);
        enc.seq(self.iter_stats.len());
        for s in &self.iter_stats {
            s.save_state(enc);
        }
        enc.u32s(&self.prev.0);
        enc.u32s(&self.prev.1);
        enc.f32s(&self.prev.2);
        enc.seq(self.boundaries.len());
        for &b in &self.boundaries {
            enc.usize(b);
        }
        match &self.paused {
            Some(st) => {
                enc.u8(1);
                st.save_state(enc);
            }
            None => enc.u8(0),
        }
    }

    /// Rebuilds a run from bytes written by [`JobRun::save_state`],
    /// validating every structural quantity against what `job` implies so
    /// corrupt bytes yield a typed error, never a panic or a partially
    /// restored state.
    pub(crate) fn restore_state(
        pu: &ProcessingUnit,
        job: PuJob,
        dec: &mut Decoder<'_>,
    ) -> Result<Self, SnapError> {
        let iterations = iterations_needed(job.descriptors.len() as u64, pu.leaves() as u64);
        let it = dec.u32()?;
        let finished = dec.bool()?;
        if it > iterations || finished != (it >= iterations) {
            return Err(SnapError::BadValue);
        }
        let n_stats = dec.len_capped(88)?;
        if n_stats != if finished { iterations } else { it } as usize {
            return Err(SnapError::BadValue);
        }
        let iter_stats = (0..n_stats)
            .map(|_| IterationStats::restore_state(dec))
            .collect::<Result<Vec<_>, _>>()?;
        let prev = (dec.u32s()?, dec.u32s()?, dec.f32s()?);
        if prev.1.len() != prev.0.len() || prev.2.len() != prev.0.len() {
            return Err(SnapError::BadValue);
        }
        let n_bounds = dec.len_capped(8)?;
        let mut boundaries = Vec::with_capacity(n_bounds);
        let mut last = 0usize;
        for _ in 0..n_bounds {
            let b = dec.usize()?;
            if b < last || b > prev.0.len() {
                return Err(SnapError::BadValue);
            }
            last = b;
            boundaries.push(b);
        }
        let has_paused = match dec.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapError::BadValue),
        };
        if has_paused && finished {
            return Err(SnapError::BadValue);
        }
        let mut run = Self {
            job,
            iterations,
            it,
            finished,
            iter_stats,
            prev,
            boundaries,
            descriptors: Vec::new(),
            paused: None,
        };
        if !run.finished && run.it > 0 {
            let read_region = ((run.it - 1) % 2) as u8;
            run.descriptors = match run.job.intermediate {
                IntermediateFormat::Coo => runs_to_descriptors(&run.boundaries, read_region),
                IntermediateFormat::Pair => pair_runs_to_descriptors(&run.boundaries, read_region),
            };
        }
        if has_paused {
            let out = out_mode(&run.job, run.it, run.iterations);
            let (descriptors, source, gate): (
                &[StreamDescriptor],
                IterSource<'_>,
                Option<&PtrGate>,
            ) = if run.it == 0 {
                (
                    &run.job.descriptors,
                    run.job.source.iter_source(),
                    run.job.gate.as_ref(),
                )
            } else {
                let source = match run.job.intermediate {
                    IntermediateFormat::Coo => IterSource::Coo {
                        rows: &run.prev.0,
                        cols: &run.prev.1,
                        vals: &run.prev.2,
                    },
                    IntermediateFormat::Pair => IterSource::Pair {
                        idx: &run.prev.1,
                        vals: &run.prev.2,
                    },
                };
                (&run.descriptors, source, None)
            };
            let p = IterParams {
                descriptors,
                source,
                gate,
                out,
                reduce: run.job.reduce,
            };
            let st = IterState::restore_state(pu, &p, dec)?;
            run.paused = Some(st);
        }
        Ok(run)
    }
}

/// FNV-1a fingerprint over a canonical encoding of everything a job
/// contains — descriptors, source data, gating, formats and the reduce
/// flag. A snapshot records it per unit; restore recomputes it from the
/// kernel's regenerated job and refuses a mismatch, so a checkpoint can
/// never silently resume against different input data.
pub(crate) fn job_fingerprint(job: &PuJob) -> u64 {
    let mut enc = Encoder::new();
    enc.seq(job.descriptors.len());
    for d in &job.descriptors {
        d.save_state(&mut enc);
    }
    match &job.source {
        JobSource::Csr(m) => {
            enc.u8(0);
            enc.usize(m.nrows());
            enc.usize(m.ncols());
            enc.seq(m.row_ptr().len());
            for &x in m.row_ptr() {
                enc.usize(x);
            }
            enc.u32s(m.col_idx());
            enc.f32s(m.values());
        }
        JobSource::ScaledCsc { rows, vals } => {
            enc.u8(1);
            enc.u32s(rows);
            enc.f32s(vals);
        }
        JobSource::Coo {
            minors,
            majors,
            vals,
        } => {
            enc.u8(2);
            enc.u32s(minors);
            enc.u32s(majors);
            enc.f32s(vals);
        }
    }
    match &job.gate {
        Some(g) => {
            enc.u8(1);
            enc.u64(g.ptr_base);
            enc.u64s(&g.blocks);
            enc.seq(g.release_after.len());
            for &r in &g.release_after {
                enc.usize(r);
            }
            enc.opt_u64(g.vector_base);
        }
        None => enc.u8(0),
    }
    enc.u8(match job.intermediate {
        IntermediateFormat::Coo => 0,
        IntermediateFormat::Pair => 1,
    });
    match job.final_out {
        FinalOutput::Csc { ncols } => {
            enc.u8(0);
            enc.u64(ncols);
        }
        FinalOutput::Dense { rows } => {
            enc.u8(1);
            enc.u64(rows);
        }
    }
    enc.bool(job.reduce);
    fnv1a(enc.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MendaConfig;
    use menda_sparse::gen;

    #[test]
    fn transpose_job_gates_all_pointer_blocks() {
        let m = gen::uniform(64, 512, 3);
        let job = transpose_job(m.clone(), 0);
        let gate = job.gate.as_ref().expect("transpose is gated");
        assert_eq!(gate.blocks.len(), (64usize + 1).div_ceil(8));
        assert_eq!(gate.release_after.len(), job.descriptors.len());
        assert!(gate.vector_base.is_none());
        assert_eq!(job.final_out, FinalOutput::Csc { ncols: 64 });
        assert!(!job.reduce);
    }

    #[test]
    fn empty_job_reports_zero_iterations() {
        let job = transpose_job(CsrMatrix::zeros(16, 16), 0);
        let mut pu = ProcessingUnit::new(&MendaConfig::small_test());
        let r = execute(&mut pu, job);
        assert!(r.majors.is_empty());
        assert_eq!(r.stats.num_iterations(), 0);
        assert_eq!(r.stats.total_cycles(), 0);
        assert_eq!(r.stats.total_traffic_bytes(), 0);
    }

    #[test]
    fn executed_job_matches_pu_transpose() {
        let m = gen::rmat(64, 512, gen::RmatParams::PAPER, 9);
        let mut pu = ProcessingUnit::new(&MendaConfig::small_test());
        let direct = pu.transpose(&m, 5);
        let mut pu2 = ProcessingUnit::new(&MendaConfig::small_test());
        let via_job = execute(&mut pu2, transpose_job(m.clone(), 5));
        assert_eq!(direct, via_job);
    }

    #[test]
    fn paused_job_run_matches_straight_execution() {
        let m = gen::rmat(96, 900, gen::RmatParams::PAPER, 31);
        let cfg = MendaConfig::small_test();
        let mut pu = ProcessingUnit::new(&cfg);
        let direct = execute(&mut pu, transpose_job(m.clone(), 0));

        // Drive the same job in many small slices; every pause lands at a
        // different cycle boundary.
        let mut pu2 = ProcessingUnit::new(&cfg);
        let mut run = JobRun::new(pu2.leaves() as u64, transpose_job(m.clone(), 0));
        let mut target = 97u64;
        let mut slices = 0;
        while !run.run_until(&mut pu2, Some(target)) {
            assert!(run.cycles_so_far() <= target);
            target += 97;
            slices += 1;
        }
        assert!(slices > 3, "test must actually pause ({slices} slices)");
        assert_eq!(direct, run.finish(&pu2));
    }

    #[test]
    fn job_run_serializes_mid_flight_bit_identically() {
        let m = gen::rmat(80, 700, gen::RmatParams::PAPER, 41);
        let cfg = MendaConfig::small_test();
        let mut pu = ProcessingUnit::new(&cfg);
        let direct = execute(&mut pu, transpose_job(m.clone(), 0));
        let total = direct.stats.total_cycles();

        for frac in [1u64, 3, 7, 9] {
            let cut = total * frac / 10;
            let mut pu_a = ProcessingUnit::new(&cfg);
            let mut run = JobRun::new(pu_a.leaves() as u64, transpose_job(m.clone(), 0));
            assert!(!run.run_until(&mut pu_a, Some(cut)));
            let mut enc = Encoder::new();
            pu_a.save_unit_state(&mut enc);
            run.save_state(&mut enc);
            let bytes = enc.into_bytes();

            let mut pu_b = ProcessingUnit::new(&cfg);
            let mut dec = Decoder::new(&bytes);
            pu_b.restore_unit_state(&mut dec).expect("unit restore");
            let mut restored = JobRun::restore_state(&pu_b, transpose_job(m.clone(), 0), &mut dec)
                .expect("run restore");
            assert!(dec.is_empty(), "trailing bytes at cut {cut}");
            assert!(restored.run_until(&mut pu_b, None));
            assert_eq!(direct, restored.finish(&pu_b), "cut {cut}");
        }
    }

    #[test]
    fn job_fingerprint_tracks_content() {
        let a = transpose_job(gen::uniform(32, 256, 1), 0);
        let b = transpose_job(gen::uniform(32, 256, 2), 0);
        assert_eq!(job_fingerprint(&a), job_fingerprint(&a));
        assert_ne!(job_fingerprint(&a), job_fingerprint(&b));
        let mut c = a.clone();
        c.reduce = true;
        assert_ne!(job_fingerprint(&a), job_fingerprint(&c));
    }
}
