//! The heterogeneous programming model of §4.
//!
//! The host allocates and partitions data structures (`alloc_csr`),
//! launches non-blocking NMP kernels (`transpose`, `spmv`) that set the
//! PUs' start signals through memory-mapped registers, blocks on
//! completion (`wait`, a condition variable over the PUs' finish signals),
//! and queries the per-rank addresses of the transposed partitions
//! (`addr_of`). Under simulation the kernel executes eagerly at launch,
//! but results are only observable through `wait`, preserving the paper's
//! API contract (Fig. 8).

use menda_sparse::partition::RowPartition;
use menda_sparse::CsrMatrix;

use crate::config::MendaConfig;
use crate::spgemm::{self, SpgemmResult};
use crate::spmv::{self, SpmvResult};
use crate::system::{MendaSystem, TransposeResult};

/// Handle to a matrix allocated on the NMP device with the §3.5 layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixHandle(usize);

/// Handle to an in-flight transposition (returned by the non-blocking
/// launch).
#[derive(Debug, PartialEq, Eq)]
#[must_use = "transposition results are only observable through wait()"]
pub struct TransposeHandle(usize);

/// Handle to an in-flight SpMV.
#[derive(Debug, PartialEq, Eq)]
#[must_use = "SpMV results are only observable through wait_spmv()"]
pub struct SpmvHandle(usize);

/// Handle to an in-flight SpGEMM.
#[derive(Debug, PartialEq, Eq)]
#[must_use = "SpGEMM results are only observable through wait_spgemm()"]
pub struct SpgemmHandle(usize);

/// Per-rank addresses of a transposed partition, as exposed through the
/// memory-mapped registers (`NMP::getAddr(i)` in Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankAddrs {
    /// Rows `[start, end)` of the partition this rank holds (in CSC).
    pub row_start: usize,
    /// One past the last row.
    pub row_end: usize,
    /// Base address of the partition's column pointer array.
    pub col_ptr_addr: u64,
    /// Base address of the partition's row index array.
    pub row_idx_addr: u64,
    /// Base address of the partition's value array.
    pub values_addr: u64,
}

#[derive(Debug)]
struct Allocation {
    matrix: CsrMatrix,
    partition: RowPartition,
}

/// The NMP device façade.
///
/// # Example
///
/// The Fig. 8 workload shape — allocate, launch, overlap host work, wait,
/// then read the per-rank addresses:
///
/// ```
/// use menda_core::host::NmpDevice;
/// use menda_core::MendaConfig;
/// use menda_sparse::gen;
///
/// let mut dev = NmpDevice::new(MendaConfig::small_test());
/// let m = gen::uniform(64, 512, 3);
/// let h = dev.alloc_csr(m.clone());
/// let t = dev.transpose(h);
/// // ... host executes other kernels concurrently ...
/// let result = dev.wait(t);
/// assert_eq!(result.output, m.to_csc());
/// let addrs = dev.addr_of(h, 0);
/// assert_eq!(addrs.row_start, 0);
/// ```
#[derive(Debug)]
pub struct NmpDevice {
    config: MendaConfig,
    allocations: Vec<Allocation>,
    transposes: Vec<Option<TransposeResult>>,
    spmvs: Vec<Option<SpmvResult>>,
    spgemms: Vec<Option<SpgemmResult>>,
}

impl NmpDevice {
    /// Creates a device with the given system configuration.
    pub fn new(config: MendaConfig) -> Self {
        config.pu.validate();
        Self {
            config,
            allocations: Vec::new(),
            transposes: Vec::new(),
            spmvs: Vec::new(),
            spgemms: Vec::new(),
        }
    }

    /// Number of PUs (ranks) on the device.
    pub fn num_pus(&self) -> usize {
        self.config.num_pus()
    }

    /// Sets the number of host simulation threads for subsequent kernel
    /// launches ([`crate::SimOptions::threads`]). Results are bit-identical
    /// for any thread count; only simulation wall-clock changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.sim.threads = Some(threads);
        self
    }

    /// Allocates a CSR matrix on the device: performs the NNZ-balanced
    /// partitioning of §3.5 and writes the partition metadata to the
    /// (modeled) memory-mapped registers.
    pub fn alloc_csr(&mut self, matrix: CsrMatrix) -> MatrixHandle {
        let partition = RowPartition::by_nnz(&matrix, self.config.num_pus());
        self.allocations.push(Allocation { matrix, partition });
        MatrixHandle(self.allocations.len() - 1)
    }

    /// The NNZ imbalance of an allocation's partitioning (1.0 = perfect).
    ///
    /// # Panics
    ///
    /// Panics if `h` is not a live handle from this device.
    pub fn partition_imbalance(&self, h: MatrixHandle) -> f64 {
        let a = &self.allocations[h.0];
        a.partition.imbalance(&a.matrix)
    }

    /// Launches a (non-blocking) transposition of `h`. The host may run
    /// other kernels before calling [`NmpDevice::wait`] — though §4 warns
    /// that co-running memory-intensive kernels hurts both tasks.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not a live handle from this device.
    pub fn transpose(&mut self, h: MatrixHandle) -> TransposeHandle {
        let a = &self.allocations[h.0];
        let mut system = MendaSystem::new(self.config.clone());
        let result = system.transpose(&a.matrix);
        self.transposes.push(Some(result));
        TransposeHandle(self.transposes.len() - 1)
    }

    /// Blocks until the transposition finishes and returns its result
    /// (the `NMP::wait()` of Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if the handle was already waited on.
    pub fn wait(&mut self, h: TransposeHandle) -> TransposeResult {
        self.transposes[h.0]
            .take()
            .expect("transpose handle already waited on")
    }

    /// Launches a (non-blocking) SpMV of `h` against `x`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not live or `x` has the wrong length.
    pub fn spmv(&mut self, h: MatrixHandle, x: &[f32]) -> SpmvHandle {
        let a = &self.allocations[h.0];
        let result = spmv::run(&self.config, &a.matrix, x);
        self.spmvs.push(Some(result));
        SpmvHandle(self.spmvs.len() - 1)
    }

    /// Blocks until the SpMV finishes and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the handle was already waited on.
    pub fn wait_spmv(&mut self, h: SpmvHandle) -> SpmvResult {
        self.spmvs[h.0]
            .take()
            .expect("spmv handle already waited on")
    }

    /// Launches a (non-blocking) SpGEMM `C = A·B` of two allocations (the
    /// extensibility demonstration).
    ///
    /// # Panics
    ///
    /// Panics if either handle is stale or the inner dimensions disagree.
    pub fn spgemm(&mut self, a: MatrixHandle, b: MatrixHandle) -> SpgemmHandle {
        let result = spgemm::run(
            &self.config,
            &self.allocations[a.0].matrix,
            &self.allocations[b.0].matrix,
        );
        self.spgemms.push(Some(result));
        SpgemmHandle(self.spgemms.len() - 1)
    }

    /// Blocks until the SpGEMM finishes and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the handle was already waited on.
    pub fn wait_spgemm(&mut self, h: SpgemmHandle) -> SpgemmResult {
        self.spgemms[h.0]
            .take()
            .expect("spgemm handle already waited on")
    }

    /// Per-rank addresses of partition `rank` of allocation `h`
    /// (`NMP::getAddr(i)`, Fig. 8 line 12).
    ///
    /// # Panics
    ///
    /// Panics if `h` is not live or `rank >= self.num_pus()`.
    pub fn addr_of(&self, h: MatrixHandle, rank: usize) -> RankAddrs {
        let a = &self.allocations[h.0];
        let range = a.partition.range(rank);
        let layout = crate::layout::AddressLayout::rank_default();
        RankAddrs {
            row_start: range.start,
            row_end: range.end,
            col_ptr_addr: layout.out_ptr,
            row_idx_addr: layout.out_idx,
            values_addr: layout.out_val,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menda_sparse::gen;

    #[test]
    fn alloc_transpose_wait_roundtrip() {
        let mut dev = NmpDevice::new(MendaConfig::small_test());
        let m = gen::uniform(96, 700, 41);
        let h = dev.alloc_csr(m.clone());
        let t = dev.transpose(h);
        let r = dev.wait(t);
        assert_eq!(r.output, m.to_csc());
    }

    #[test]
    fn spmv_through_device() {
        let mut dev = NmpDevice::new(MendaConfig::small_test());
        let m = gen::uniform(64, 400, 42);
        let x: Vec<f32> = (0..64).map(|i| (i % 7) as f32).collect();
        let h = dev.alloc_csr(m.clone());
        let s = dev.spmv(h, &x);
        let r = dev.wait_spmv(s);
        let golden = m.spmv(&x);
        for (got, want) in r.y.iter().zip(&golden) {
            assert!((got - want).abs() <= 1e-3 * want.abs().max(1.0));
        }
    }

    #[test]
    fn addr_of_reports_partition_ranges() {
        let mut dev = NmpDevice::new(MendaConfig::small_test());
        let m = gen::uniform(64, 512, 43);
        let h = dev.alloc_csr(m);
        let pus = dev.num_pus();
        let mut next = 0;
        for r in 0..pus {
            let a = dev.addr_of(h, r);
            assert_eq!(a.row_start, next);
            next = a.row_end;
        }
        assert_eq!(next, 64);
    }

    #[test]
    fn imbalance_is_reported() {
        let mut dev = NmpDevice::new(MendaConfig::small_test());
        let m = gen::rmat(512, 4096, gen::RmatParams::PAPER, 44);
        let h = dev.alloc_csr(m);
        assert!(dev.partition_imbalance(h) < 1.8);
    }

    #[test]
    fn spgemm_through_device() {
        let mut dev = NmpDevice::new(MendaConfig::small_test());
        let a = gen::uniform(40, 250, 48);
        let ha = dev.alloc_csr(a.clone());
        let h = dev.spgemm(ha, ha);
        let r = dev.wait_spgemm(h);
        let golden = crate::spgemm::spgemm_golden(&a, &a);
        assert_eq!(r.c.nnz(), golden.nnz());
    }

    #[test]
    #[should_panic(expected = "already waited")]
    fn double_wait_panics() {
        let mut dev = NmpDevice::new(MendaConfig::small_test());
        let m = gen::uniform(16, 64, 45);
        let h = dev.alloc_csr(m);
        let t = dev.transpose(h);
        let t2 = TransposeHandle(0);
        let _ = dev.wait(t);
        let _ = dev.wait(t2);
    }

    #[test]
    fn threads_knob_does_not_change_device_results() {
        let m = gen::rmat(128, 1024, gen::RmatParams::PAPER, 49);
        let run = |threads| {
            let mut dev = NmpDevice::new(MendaConfig::small_test().with_ranks_per_channel(4))
                .with_threads(threads);
            let h = dev.alloc_csr(m.clone());
            let t = dev.transpose(h);
            dev.wait(t)
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.output, parallel.output);
        assert_eq!(serial.cycles, parallel.cycles);
        assert_eq!(serial.pu_stats, parallel.pu_stats);
    }

    #[test]
    fn multiple_allocations_coexist() {
        let mut dev = NmpDevice::new(MendaConfig::small_test());
        let m1 = gen::uniform(32, 128, 46);
        let m2 = gen::uniform(48, 256, 47);
        let h1 = dev.alloc_csr(m1.clone());
        let h2 = dev.alloc_csr(m2.clone());
        let t2 = dev.transpose(h2);
        let t1 = dev.transpose(h1);
        assert_eq!(dev.wait(t1).output, m1.to_csc());
        assert_eq!(dev.wait(t2).output, m2.to_csc());
    }
}
