//! Checkpoint/replay for simulator runs.
//!
//! A checkpoint captures the *complete dynamic state* of an in-flight
//! kernel launch — every unit's accelerator state (merge-tree PEs,
//! prefetch buffers, request queues, parked buckets, coalescing entries —
//! or the PIM phase machine), the per-rank DRAM simulators (bank/rank
//! timing shadow, controller queues, refresh counters, command-log
//! position, protocol-checker shadow), and the engine-level job progress —
//! into a self-describing binary container. Restoring the container into a
//! freshly built engine of the same configuration and running to
//! completion is **bit-identical** to the uninterrupted run: same outputs,
//! same cycle counts, same statistics, same DRAM command log. The
//! differential suite `tests/checkpoint_equivalence.rs` enforces that
//! contract for both backends, both execution disciplines (per-cycle
//! reference and event-driven fast-forward) and any host thread count.
//!
//! # Container format (version 1)
//!
//! ```text
//! magic    8 B   b"MENDACKP"
//! version  4 B   little-endian u32, currently 1
//! config   8 B   fnv1a fingerprint of the simulated-machine configuration
//! backend  var   length-prefixed backend name ("menda", "pim", ...)
//! units    var   unit count, then one length-prefixed blob per unit:
//!                  job fingerprint (8 B) + unit state + run state
//! checksum 8 B   fnv1a over all preceding bytes
//! ```
//!
//! The config fingerprint covers everything that shapes simulated
//! behavior (PU/PIM parameters, channel/rank topology, the full DRAM
//! organization/timing/policy) and deliberately excludes the host-side
//! knobs that provably don't ([`crate::SimOptions::threads`],
//! [`crate::SimOptions::fast_forward`], tracing): a checkpoint taken under
//! the per-cycle reference path restores into a fast-forwarding engine and
//! vice versa.
//!
//! Corrupt or mismatched snapshots are rejected with a typed
//! [`SnapshotError`] before any state is touched — restore never panics
//! and never partially applies. A *forged* snapshot (checksum recomputed
//! over tampered bytes) that decodes into an unreachable machine state is
//! caught one layer deeper: restored runs execute under `catch_unwind`,
//! so in-simulator assertions such as the PU deadlock watchdog surface as
//! [`SnapshotError::Corrupt`] instead of unwinding into the caller.

use std::fmt;

use menda_dram::{fnv1a, Decoder, Encoder, MappingScheme, RowPolicy, SnapError};

use crate::backend::ResumableBackend;
use crate::config::MendaConfig;
use crate::engine::{Engine, KernelSpec};
use crate::job::job_fingerprint;
use crate::pu::PuResult;
use crate::stats::RunStats;

/// Magic bytes opening every snapshot container.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"MENDACKP";

/// Container format version written (and required) by this build.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be produced or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with [`SNAPSHOT_MAGIC`] (or are shorter
    /// than a header).
    BadMagic,
    /// The container checksum does not match its payload — the snapshot
    /// was truncated or corrupted in storage/transit.
    ChecksumMismatch,
    /// The container is a [`SNAPSHOT_VERSION`] this build cannot read.
    BadVersion,
    /// The snapshot was taken under a different simulated-machine
    /// configuration (PU/PIM parameters, topology or DRAM config differ).
    ConfigMismatch,
    /// The snapshot was taken on a different accelerator backend.
    BackendMismatch,
    /// The snapshot was taken for a different kernel/input (per-unit job
    /// fingerprints differ).
    JobMismatch,
    /// The payload is structurally invalid (truncated fields, impossible
    /// values) even though the checksum matched.
    Corrupt,
    /// Checkpointing is refused while instrumentation is active — trace
    /// sinks are host-side observers, not simulated machine state.
    TracingActive,
    /// The operation is not available for this kernel or backend.
    Unsupported(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a MeNDA snapshot (bad magic)"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::BadVersion => write!(f, "unsupported snapshot format version"),
            SnapshotError::ConfigMismatch => {
                write!(f, "snapshot was taken under a different configuration")
            }
            SnapshotError::BackendMismatch => {
                write!(f, "snapshot was taken on a different backend")
            }
            SnapshotError::JobMismatch => {
                write!(f, "snapshot was taken for a different kernel or input")
            }
            SnapshotError::Corrupt => write!(f, "snapshot payload is corrupt"),
            SnapshotError::TracingActive => {
                write!(f, "checkpointing is not supported while tracing is active")
            }
            SnapshotError::Unsupported(what) => write!(f, "checkpointing unsupported: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapError> for SnapshotError {
    fn from(_: SnapError) -> Self {
        SnapshotError::Corrupt
    }
}

/// Fingerprint of the parts of a [`MendaConfig`] that shape simulated
/// behavior.
///
/// Includes the PU and PIM parameters, the channel/rank topology and the
/// complete per-rank DRAM configuration (organization, all timing
/// parameters, address mapping, queue depths, clock, refresh, row policy,
/// and the command-log/protocol-checker switches, which add serialized
/// state to the DRAM snapshot). Excludes host-simulation knobs that are
/// proven results-neutral — [`crate::SimOptions`] and tracing — so
/// checkpoints restore across `threads`/`fast_forward` settings.
pub fn config_fingerprint(config: &MendaConfig) -> u64 {
    let mut e = Encoder::new();
    let pu = &config.pu;
    e.u64(pu.frequency_mhz);
    e.usize(pu.leaves);
    e.usize(pu.fifo_entries);
    e.usize(pu.prefetch_buffer_entries);
    e.usize(pu.read_queue_entries);
    e.usize(pu.write_queue_entries);
    e.bool(pu.stall_reducing_prefetch);
    e.bool(pu.request_coalescing);
    e.usize(pu.output_buffer_bytes);
    e.usize(pu.pointer_read_depth);
    e.opt_u64(pu.host_read_interval);
    let pim = &config.pim;
    e.u64(pim.frequency_mhz);
    e.usize(pim.dpus_per_rank);
    e.usize(pim.wram_bytes);
    e.u64(pim.elem_cpi);
    e.u64(pim.sort_cpi);
    e.u64(pim.merge_cpi);
    e.usize(config.channels);
    e.usize(config.ranks_per_channel);
    let d = &config.dram;
    e.usize(d.org.channels);
    e.usize(d.org.ranks);
    e.usize(d.org.bank_groups);
    e.usize(d.org.banks_per_group);
    e.usize(d.org.rows);
    e.usize(d.org.columns);
    e.usize(d.org.transaction_bytes);
    let t = &d.timing;
    for v in [
        t.t_rc, t.t_rcd, t.t_cl, t.t_cwl, t.t_rp, t.t_ras, t.t_bl, t.t_ccd_s, t.t_ccd_l, t.t_rrd_s,
        t.t_rrd_l, t.t_faw, t.t_wtr, t.t_wr, t.t_rtp, t.t_refi, t.t_rfc,
    ] {
        e.u64(v);
    }
    e.u8(match d.mapping {
        MappingScheme::RoBaRaCoCh => 0,
        MappingScheme::ChRaBaRoCo => 1,
        MappingScheme::RoCoBaRaCh => 2,
    });
    e.usize(d.read_queue);
    e.usize(d.write_queue);
    e.u64(d.clock_mhz);
    e.bool(d.refresh_enabled);
    e.bool(d.log_commands);
    e.bool(d.check_protocol);
    e.u8(match d.row_policy {
        RowPolicy::OpenPage => 0,
        RowPolicy::ClosedPage => 1,
    });
    fnv1a(e.as_bytes())
}

/// Outcome of a bounded checkpoint run: either the kernel finished before
/// the pause target, or it paused and serialized.
#[derive(Debug, Clone)]
pub enum SnapshotOutcome<T> {
    /// The kernel ran to completion; no snapshot was produced.
    Finished(T),
    /// The run paused at the target cycle; the container restores it.
    Paused(Vec<u8>),
}

impl<T> SnapshotOutcome<T> {
    /// The snapshot bytes, if the run paused.
    pub fn snapshot(self) -> Option<Vec<u8>> {
        match self {
            SnapshotOutcome::Paused(bytes) => Some(bytes),
            SnapshotOutcome::Finished(_) => None,
        }
    }

    /// The kernel output, if the run finished.
    pub fn finished(self) -> Option<T> {
        match self {
            SnapshotOutcome::Finished(out) => Some(out),
            SnapshotOutcome::Paused(_) => None,
        }
    }

    /// Whether the run paused (and so produced a snapshot).
    pub fn is_paused(&self) -> bool {
        matches!(self, SnapshotOutcome::Paused(_))
    }
}

/// Per-unit worker outcome inside a checkpoint run.
type UnitOutcome = (Option<Vec<u8>>, Option<PuResult>);

impl<'a, B: ResumableBackend> Engine<'a, B> {
    /// Runs `spec` until every unit finishes or reaches device cycle
    /// `pause_at`, whichever comes first. Units that reach the target
    /// serialize; if *any* unit paused the whole launch is captured as a
    /// snapshot (finished units serialize their terminal state alongside).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TracingActive`] when instrumentation is enabled.
    pub fn run_to_cycle<S: KernelSpec>(
        &self,
        spec: &S,
        pause_at: u64,
    ) -> Result<SnapshotOutcome<S::Output>, SnapshotError> {
        self.checkpoint_run(spec, None, Some(pause_at))
    }

    /// Restores a snapshot produced by [`Engine::run_to_cycle`] (or
    /// [`Engine::resume_to_cycle`]) and runs the kernel to completion.
    ///
    /// `spec` must describe the same kernel launch the snapshot was taken
    /// from — the engine revalidates the configuration fingerprint, the
    /// backend and every per-unit job fingerprint before touching any
    /// state.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] variant describing why the snapshot cannot
    /// be restored; the engine state is untouched on error.
    pub fn resume<S: KernelSpec>(
        &self,
        spec: &S,
        snapshot: &[u8],
    ) -> Result<S::Output, SnapshotError> {
        match self.checkpoint_run(spec, Some(snapshot), None)? {
            SnapshotOutcome::Finished(out) => Ok(out),
            SnapshotOutcome::Paused(_) => unreachable!("unbounded resume cannot pause"),
        }
    }

    /// Restores a snapshot and runs until completion or `pause_at`,
    /// producing a new snapshot in the latter case — the building block of
    /// incremental/preemptible simulation.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::resume`].
    pub fn resume_to_cycle<S: KernelSpec>(
        &self,
        spec: &S,
        snapshot: &[u8],
        pause_at: u64,
    ) -> Result<SnapshotOutcome<S::Output>, SnapshotError> {
        self.checkpoint_run(spec, Some(snapshot), Some(pause_at))
    }

    fn checkpoint_run<S: KernelSpec>(
        &self,
        spec: &S,
        snapshot: Option<&[u8]>,
        pause_at: Option<u64>,
    ) -> Result<SnapshotOutcome<S::Output>, SnapshotError> {
        if self.config().trace.enabled() || self.config().dram.trace.enabled() {
            return Err(SnapshotError::TracingActive);
        }
        let pus = self.config().num_pus();
        let unit_blobs: Option<Vec<&[u8]>> = match snapshot {
            Some(bytes) => Some(self.parse_container(bytes, pus)?),
            None => None,
        };
        // A *forged* snapshot (valid checksum over tampered bytes) can
        // decode into a machine state the simulator could never reach.
        // The in-simulator assertions that then fire — the PU deadlock
        // watchdog, slice bounds during result assembly — must surface
        // as `Corrupt`, not unwind into the caller, so the whole
        // restored flow runs under `catch_unwind`.
        if unit_blobs.is_some() {
            return std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.checkpoint_run_inner(spec, unit_blobs, pause_at)
            }))
            .unwrap_or(Err(SnapshotError::Corrupt));
        }
        self.checkpoint_run_inner(spec, unit_blobs, pause_at)
    }

    fn checkpoint_run_inner<S: KernelSpec>(
        &self,
        spec: &S,
        unit_blobs: Option<Vec<&[u8]>>,
        pause_at: Option<u64>,
    ) -> Result<SnapshotOutcome<S::Output>, SnapshotError> {
        let pus = self.config().num_pus();
        let threads = self.config().sim.effective_threads(pus);
        let outcomes: Vec<Result<UnitOutcome, SnapshotError>> = if threads <= 1 {
            (0..pus)
                .map(|p| self.checkpoint_pu(spec, p, unit_blobs.as_ref().map(|b| b[p]), pause_at))
                .collect()
        } else {
            self.checkpoint_parallel(spec, pus, threads, unit_blobs.as_deref(), pause_at)
        };
        let mut blobs = Vec::with_capacity(pus);
        let mut results = Vec::with_capacity(pus);
        for outcome in outcomes {
            let (blob, result) = outcome?;
            blobs.push(blob);
            results.push(result);
        }
        if results.iter().all(|r| r.is_some()) {
            let results: Vec<PuResult> = results.into_iter().map(|r| r.unwrap()).collect();
            let mut run = RunStats::collect(
                self.backend().frequency_mhz(self.config()),
                results.iter().map(|r| r.stats.clone()).collect(),
            );
            run.backend = self.backend().name();
            Ok(SnapshotOutcome::Finished(spec.assemble(results, run)))
        } else {
            debug_assert!(pause_at.is_some(), "unbounded run left unfinished units");
            let blobs: Vec<Vec<u8>> = blobs
                .into_iter()
                .map(|b| b.expect("paused run must serialize every unit"))
                .collect();
            Ok(SnapshotOutcome::Paused(self.encode_container(&blobs)))
        }
    }

    /// Runs one unit: restore (or start) its job, advance to the pause
    /// target, and serialize unless the launch is unbounded.
    ///
    /// When restoring, the per-unit work runs under its own
    /// `catch_unwind` so a forged unit blob is contained before it can
    /// unwind through the threaded scheduler in
    /// [`Engine::checkpoint_parallel`] (whose join would otherwise
    /// re-panic); [`Engine::checkpoint_run`] holds the outer net around
    /// result assembly.
    fn checkpoint_pu<S: KernelSpec>(
        &self,
        spec: &S,
        p: usize,
        unit_blob: Option<&[u8]>,
        pause_at: Option<u64>,
    ) -> Result<UnitOutcome, SnapshotError> {
        if unit_blob.is_some() {
            return std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.checkpoint_pu_inner(spec, p, unit_blob, pause_at)
            }))
            .unwrap_or(Err(SnapshotError::Corrupt));
        }
        self.checkpoint_pu_inner(spec, p, unit_blob, pause_at)
    }

    fn checkpoint_pu_inner<S: KernelSpec>(
        &self,
        spec: &S,
        p: usize,
        unit_blob: Option<&[u8]>,
        pause_at: Option<u64>,
    ) -> Result<UnitOutcome, SnapshotError> {
        let backend = self.backend();
        let mut unit = backend.build_unit(self.config());
        if backend.tracing_active(&unit) {
            return Err(SnapshotError::TracingActive);
        }
        let job = spec.make_job(p);
        let fingerprint = job_fingerprint(&job);
        let mut run = match unit_blob {
            Some(bytes) => {
                let mut dec = Decoder::new(bytes);
                if dec.u64()? != fingerprint {
                    return Err(SnapshotError::JobMismatch);
                }
                backend.restore_unit(&mut unit, &mut dec)?;
                let run = backend.restore_run(&unit, job, &mut dec)?;
                if !dec.is_empty() {
                    return Err(SnapshotError::Corrupt);
                }
                run
            }
            None => backend.start_job(&unit, job),
        };
        let done = backend.advance(&mut unit, &mut run, pause_at);
        let blob = pause_at.map(|_| {
            let mut enc = Encoder::new();
            enc.u64(fingerprint);
            backend.save_unit(&unit, &mut enc);
            backend.save_run(&run, &mut enc);
            enc.into_bytes()
        });
        let result = done.then(|| backend.finish_run(&unit, run));
        Ok((blob, result))
    }

    fn checkpoint_parallel<S: KernelSpec>(
        &self,
        spec: &S,
        pus: usize,
        threads: usize,
        unit_blobs: Option<&[&[u8]]>,
        pause_at: Option<u64>,
    ) -> Vec<Result<UnitOutcome, SnapshotError>> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, Result<UnitOutcome, SnapshotError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut done = Vec::new();
                            loop {
                                let p = next.fetch_add(1, Ordering::Relaxed);
                                if p >= pus {
                                    break;
                                }
                                let blob = unit_blobs.map(|b| b[p]);
                                done.push((p, self.checkpoint_pu(spec, p, blob, pause_at)));
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("checkpoint worker panicked"))
                    .collect()
            });
        indexed.sort_unstable_by_key(|&(p, _)| p);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Assembles the versioned container around per-unit payloads.
    fn encode_container(&self, unit_blobs: &[Vec<u8>]) -> Vec<u8> {
        let mut e = Encoder::new();
        for &b in SNAPSHOT_MAGIC.iter() {
            e.u8(b);
        }
        e.u32(SNAPSHOT_VERSION);
        e.u64(config_fingerprint(self.config()));
        e.bytes(self.backend().name().as_bytes());
        e.seq(unit_blobs.len());
        for blob in unit_blobs {
            e.bytes(blob);
        }
        let checksum = fnv1a(e.as_bytes());
        e.u64(checksum);
        e.into_bytes()
    }

    /// Validates the container envelope and splits out the per-unit
    /// payloads. Precedence: magic, checksum, version, configuration,
    /// backend, then structure.
    fn parse_container<'s>(
        &self,
        bytes: &'s [u8],
        pus: usize,
    ) -> Result<Vec<&'s [u8]>, SnapshotError> {
        if bytes.len() < SNAPSHOT_MAGIC.len() || bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        // Magic + version + config fingerprint + trailing checksum.
        if bytes.len() < SNAPSHOT_MAGIC.len() + 4 + 8 + 8 {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let body = &bytes[..bytes.len() - 8];
        let mut tail = Decoder::new(&bytes[bytes.len() - 8..]);
        let stored = tail.u64().expect("8-byte tail");
        if fnv1a(body) != stored {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let mut dec = Decoder::new(&body[SNAPSHOT_MAGIC.len()..]);
        if dec.u32()? != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion);
        }
        if dec.u64()? != config_fingerprint(self.config()) {
            return Err(SnapshotError::ConfigMismatch);
        }
        if dec.bytes()? != self.backend().name().as_bytes() {
            return Err(SnapshotError::BackendMismatch);
        }
        let n = dec.len_capped(1)?;
        if n != pus {
            return Err(SnapshotError::ConfigMismatch);
        }
        let mut units = Vec::with_capacity(n);
        for _ in 0..n {
            units.push(dec.bytes()?);
        }
        if !dec.is_empty() {
            return Err(SnapshotError::Corrupt);
        }
        Ok(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MendaBackend;
    use crate::system::TransposeSpec;
    use menda_sparse::gen;
    use menda_sparse::partition::RowPartition;

    fn spec<'m>(m: &'m menda_sparse::CsrMatrix, cfg: &MendaConfig) -> TransposeSpec<'m> {
        TransposeSpec::new(m, RowPartition::by_nnz(m, cfg.num_pus()))
    }

    #[test]
    fn fingerprint_ignores_host_knobs_but_tracks_machine() {
        let base = MendaConfig::small_test();
        let fp = config_fingerprint(&base);
        assert_eq!(
            fp,
            config_fingerprint(&base.clone().with_threads(7).with_fast_forward(false)),
            "host-simulation knobs must not change the fingerprint"
        );
        assert_ne!(fp, config_fingerprint(&base.clone().with_channels(2)));
        let mut other = base.clone();
        other.pu.leaves *= 2;
        assert_ne!(fp, config_fingerprint(&other));
        let mut dram = base.clone();
        dram.dram.timing.t_rcd += 1;
        assert_ne!(fp, config_fingerprint(&dram));
    }

    #[test]
    fn pause_restore_resume_matches_straight_run() {
        let cfg = MendaConfig::small_test();
        let m = gen::rmat(96, 768, gen::RmatParams::PAPER, 11);
        let engine = Engine::new(&cfg);
        let direct = engine.run(&spec(&m, &cfg));
        let outcome = engine.run_to_cycle(&spec(&m, &cfg), 500).unwrap();
        let snapshot = outcome.snapshot().expect("run must pause at cycle 500");
        let resumed = engine.resume(&spec(&m, &cfg), &snapshot).unwrap();
        assert_eq!(direct.output, resumed.output);
        assert_eq!(direct.cycles, resumed.cycles);
        assert_eq!(direct.pu_stats, resumed.pu_stats);
    }

    #[test]
    fn pim_backend_pause_resume_matches_straight_run() {
        let cfg = MendaConfig::small_test();
        let m = gen::rmat(96, 768, gen::RmatParams::PAPER, 13);
        let engine = Engine::with_backend(&cfg, crate::pim::PimBackend);
        let direct = engine.run(&spec(&m, &cfg));
        let outcome = engine.run_to_cycle(&spec(&m, &cfg), 700).unwrap();
        let snapshot = outcome.snapshot().expect("run must pause at cycle 700");
        let resumed = engine.resume(&spec(&m, &cfg), &snapshot).unwrap();
        assert_eq!(direct.output, resumed.output);
        assert_eq!(direct.cycles, resumed.cycles);
        assert_eq!(direct.pu_stats, resumed.pu_stats);
    }

    #[test]
    fn pause_past_completion_finishes() {
        let cfg = MendaConfig::small_test();
        let m = gen::uniform(24, 96, 3);
        let engine = Engine::new(&cfg);
        let direct = engine.run(&spec(&m, &cfg));
        let outcome = engine.run_to_cycle(&spec(&m, &cfg), u64::MAX).unwrap();
        let finished = outcome.finished().expect("must run to completion");
        assert_eq!(direct.output, finished.output);
        assert_eq!(direct.cycles, finished.cycles);
    }

    #[test]
    fn tracing_refuses_checkpointing() {
        let cfg = MendaConfig::small_test().with_trace(menda_trace::TraceConfig::counting());
        let m = gen::uniform(16, 64, 5);
        let engine = Engine::new(&cfg);
        assert_eq!(
            engine.run_to_cycle(&spec(&m, &cfg), 10).unwrap_err(),
            SnapshotError::TracingActive
        );
    }

    #[test]
    fn container_rejects_tampering_with_typed_errors() {
        let cfg = MendaConfig::small_test();
        let m = gen::uniform(48, 384, 9);
        let engine = Engine::<MendaBackend>::new(&cfg);
        let snapshot = engine
            .run_to_cycle(&spec(&m, &cfg), 300)
            .unwrap()
            .snapshot()
            .unwrap();

        // Bad magic.
        let mut bad = snapshot.clone();
        bad[0] ^= 0xff;
        assert_eq!(
            engine.resume(&spec(&m, &cfg), &bad).unwrap_err(),
            SnapshotError::BadMagic
        );
        // Any mid-payload bit flip trips the checksum.
        let mut bad = snapshot.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert_eq!(
            engine.resume(&spec(&m, &cfg), &bad).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );
        // Truncation trips the checksum too.
        let short = &snapshot[..snapshot.len() - 9];
        assert_eq!(
            engine.resume(&spec(&m, &cfg), short).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );
        // A version bump with a refreshed checksum is rejected as such.
        let mut bad = snapshot.clone();
        bad[8] = 0xfe;
        refresh_checksum(&mut bad);
        assert_eq!(
            engine.resume(&spec(&m, &cfg), &bad).unwrap_err(),
            SnapshotError::BadVersion
        );
        // The untouched snapshot still restores.
        assert!(engine.resume(&spec(&m, &cfg), &snapshot).is_ok());
    }

    #[test]
    fn config_and_job_mismatches_are_detected() {
        let cfg = MendaConfig::small_test();
        let m = gen::uniform(48, 384, 9);
        let engine = Engine::new(&cfg);
        let snapshot = engine
            .run_to_cycle(&spec(&m, &cfg), 300)
            .unwrap()
            .snapshot()
            .unwrap();

        // Different machine configuration.
        let other_cfg = MendaConfig::small_test().with_ranks_per_channel(4);
        let other_engine = Engine::new(&other_cfg);
        assert_eq!(
            other_engine
                .resume(&spec(&m, &other_cfg), &snapshot)
                .unwrap_err(),
            SnapshotError::ConfigMismatch
        );
        // Same configuration, different input matrix.
        let m2 = gen::uniform(48, 384, 10);
        assert_eq!(
            engine.resume(&spec(&m2, &cfg), &snapshot).unwrap_err(),
            SnapshotError::JobMismatch
        );
    }

    /// Recomputes the trailing checksum after deliberate header edits.
    fn refresh_checksum(bytes: &mut [u8]) {
        let n = bytes.len();
        let sum = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
    }
}
