//! MeNDA: a near-memory multi-way merge accelerator for sparse
//! transposition and dataflows — cycle-level simulator.
//!
//! This crate implements the paper's contribution end to end:
//!
//! * [`Packet`] — the 97-bit data packet (valid + 32-bit row + 32-bit
//!   column + 32-bit value) with the end-of-line signal of §3.3,
//! * [`MergeTree`] — the structural hardware merge tree of Fig. 5: `l-1`
//!   processing elements in `log2 l` levels connected by 2-entry FIFOs,
//!   popping one packet per cycle and propagating end-of-line signals for
//!   seamless back-to-back merge sort (the Fig. 6 pipeline),
//! * [`PrefetchBuffer`] — per-leaf multi-bank-SRAM prefetch buffers with
//!   the stall-reducing prefetching policy of §3.4,
//! * [`CoalescingQueue`] — the CAM-equipped read request queue that merges
//!   duplicate block loads (§3.4),
//! * [`ProcessingUnit`] — one PU beside one DRAM rank: controller FSM,
//!   request queues, memory interface unit backed by the cycle-level
//!   [`menda_dram`] simulator, and the multi-iteration merge-sort
//!   transposition dataflow of §3.1 with COO intermediates,
//! * [`MendaSystem`] — the multi-PU system with the NNZ-balanced
//!   input-operand co-location of §3.5 (one PU per rank, no inter-PU
//!   communication),
//! * [`Engine`] — the unified execution engine all three kernels dispatch
//!   through: a [`KernelSpec`] maps the kernel onto per-PU [`PuJob`]s and
//!   assembles the results; PUs share nothing, so the engine can simulate
//!   them on multiple host threads ([`SimOptions::threads`]) with
//!   bit-identical output,
//! * [`spmv`] — the SpMV adaptation of §3.6 (auxiliary pointer array,
//!   vector staging in the prefetch buffers, delay buffer, floating-point
//!   reduction at the root),
//! * [`spgemm`] — an extension demonstrating the paper's extensibility
//!   claim: the merge phase of outer-product SpGEMM on the same tree,
//! * [`host`] — the heterogeneous programming model of §4
//!   (`alloc → transpose → wait → addr_of`),
//! * [`energy`] — the area/power/EDP model calibrated to the paper's 40 nm
//!   synthesis results (§6.2, §6.7).
//!
//! # Quick start
//!
//! ```
//! use menda_core::{MendaConfig, MendaSystem};
//! use menda_sparse::gen;
//!
//! let matrix = gen::uniform(256, 2048, 42);
//! let mut system = MendaSystem::new(MendaConfig::small_test());
//! let result = system.transpose(&matrix);
//! assert_eq!(result.output, matrix.to_csc());
//! assert!(result.cycles > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
pub mod checkpoint;
mod coalesce;
mod config;
pub mod energy;
mod engine;
pub mod host;
mod job;
pub mod jobspec;
mod layout;
mod merge_tree;
pub mod pim;
mod prefetch;
mod pu;
pub mod spgemm;
pub mod spmv;
mod stats;
mod system;

pub use backend::{AcceleratorBackend, BackendKind, MendaBackend, ResumableBackend};
pub use checkpoint::{
    config_fingerprint, SnapshotError, SnapshotOutcome, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use coalesce::CoalescingQueue;
pub use config::{MendaConfig, PimConfig, PuConfig, SimOptions};
pub use engine::{Engine, KernelSpec};
pub use job::{transpose_job, FinalOutput, IntermediateFormat, JobRun, JobSource, PuJob};
pub use jobspec::{
    Digest, DramProfile, JobError, JobKernel, JobOutcome, JobProgress, JobSpec, MatrixSource,
    PuSummary,
};
pub use layout::{AddressLayout, BLOCK_BYTES, IDX_BYTES, PTR_BYTES, VAL_BYTES};
pub use merge_tree::{LeafSource, MergeTree, Packet, SliceLeafSource};
pub use pim::PimBackend;
pub use prefetch::{PrefetchBuffer, StreamDescriptor, StreamKind};
pub use pu::{ProcessingUnit, PtrGate, PuResult};
pub use stats::{IterationStats, PuStats, RunStats};
pub use system::{MendaSystem, TransposeResult, TransposeSpec};
// Convenience re-exports so downstream users can configure and consume
// instrumentation without naming `menda-trace` directly.
pub use menda_trace::{TraceConfig, TraceMode, TraceReport};
