//! Prefetch buffers (§3.2, §3.4).
//!
//! Each merge-tree leaf port is fed by one prefetch buffer implemented as
//! multi-bank SRAM in hardware. A buffer walks a queue of stream
//! descriptors (one per merge round, enabling seamless back-to-back merge
//! sort), fetches the stream's elements block by block through the read
//! request queue, and presents decoded packets to the leaf PE, appending an
//! end-of-line marker after each stream.
//!
//! With **stall-reducing prefetching** (§3.4) a buffer issues the next
//! chunk's loads whenever the chunk fits in its free space; without it, a
//! buffer only issues loads once it has fully drained. Either way a buffer
//! keeps at most one chunk outstanding — the paper found it better to keep
//! every buffer non-empty than to serially fill each one.

use std::collections::VecDeque;
use std::ops::Range;

use crate::layout::{AddressLayout, BLOCK_BYTES, IDX_BYTES};
use crate::merge_tree::Packet;

/// What kind of data a stream reads, which determines the arrays fetched
/// per element and how packets are decoded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamKind {
    /// Iteration-0 transposition stream: one CSR row. Fetches the column
    /// index and value arrays; the row index is implicit.
    CsrRow {
        /// The row this stream carries (becomes the packet's minor key).
        row: u32,
    },
    /// Intermediate COO stream in ping-pong `region`. Fetches row, column
    /// and value arrays.
    Coo {
        /// Ping-pong region index (0 or 1).
        region: u8,
    },
    /// SpMV iteration-0 stream: one CSC column, values pre-scaled by the
    /// matching vector element (the vectorized multiplier of §3.6).
    SpmvCol {
        /// The vector element this column is multiplied by.
        scale: f32,
    },
    /// SpMV intermediate stream: (index, value) pairs in `region`.
    Pair {
        /// Ping-pong region index (0 or 1).
        region: u8,
    },
}

/// A sorted stream for the merge tree: elements `[start, end)` of the
/// arrays selected by `kind`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamDescriptor {
    /// First element offset.
    pub start: u64,
    /// One past the last element offset (may equal `start` for a bare-EOL
    /// placeholder stream).
    pub end: u64,
    /// Data kind.
    pub kind: StreamKind,
}

impl StreamKind {
    /// Serializes the kind as a tag byte plus payload.
    pub(crate) fn save_state(&self, enc: &mut menda_dram::Encoder) {
        match *self {
            StreamKind::CsrRow { row } => {
                enc.u8(0);
                enc.u32(row);
            }
            StreamKind::Coo { region } => {
                enc.u8(1);
                enc.u8(region);
            }
            StreamKind::SpmvCol { scale } => {
                enc.u8(2);
                enc.f32(scale);
            }
            StreamKind::Pair { region } => {
                enc.u8(3);
                enc.u8(region);
            }
        }
    }

    /// Decodes a kind saved by [`StreamKind::save_state`].
    pub(crate) fn restore_state(
        dec: &mut menda_dram::Decoder<'_>,
    ) -> Result<Self, menda_dram::SnapError> {
        Ok(match dec.u8()? {
            0 => StreamKind::CsrRow { row: dec.u32()? },
            1 => StreamKind::Coo { region: dec.u8()? },
            2 => StreamKind::SpmvCol { scale: dec.f32()? },
            3 => StreamKind::Pair { region: dec.u8()? },
            _ => return Err(menda_dram::SnapError::BadValue),
        })
    }
}

impl StreamDescriptor {
    /// An empty placeholder stream that only emits an EOL marker.
    pub fn empty() -> Self {
        Self {
            start: 0,
            end: 0,
            kind: StreamKind::CsrRow { row: 0 },
        }
    }

    /// Serializes the descriptor.
    pub(crate) fn save_state(&self, enc: &mut menda_dram::Encoder) {
        enc.u64(self.start);
        enc.u64(self.end);
        self.kind.save_state(enc);
    }

    /// Decodes a descriptor saved by [`StreamDescriptor::save_state`].
    /// Rejects ranges whose end precedes their start.
    pub(crate) fn restore_state(
        dec: &mut menda_dram::Decoder<'_>,
    ) -> Result<Self, menda_dram::SnapError> {
        let start = dec.u64()?;
        let end = dec.u64()?;
        if end < start {
            return Err(menda_dram::SnapError::BadValue);
        }
        Ok(Self {
            start,
            end,
            kind: StreamKind::restore_state(dec)?,
        })
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the stream has no elements.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A fixed-capacity inline list of block addresses. Chunk plans are built
/// on the per-cycle fetch-planning path of every prefetch buffer, so their
/// block lists live on the stack instead of allocating a `Vec` per plan
/// (and another per committed chunk). Dereferences to a slice, so it reads
/// like a `Vec<u64>` at the call sites.
#[derive(Debug, Clone, Copy)]
pub struct BlockList {
    items: [u64; Self::CAP],
    len: u8,
}

impl BlockList {
    /// Upper bound on blocks per chunk: `max_fetch_blocks` (capped at the
    /// read-queue size, 32) plus one extra unaligned leading window per
    /// backing array (at most 3).
    pub const CAP: usize = 36;

    fn new() -> Self {
        Self {
            items: [0; Self::CAP],
            len: 0,
        }
    }

    fn push(&mut self, block: u64) {
        assert!((self.len as usize) < Self::CAP, "chunk plan overflows");
        self.items[self.len as usize] = block;
        self.len += 1;
    }

    fn swap_remove(&mut self, pos: usize) {
        debug_assert!(pos < self.len as usize);
        self.len -= 1;
        self.items[pos] = self.items[self.len as usize];
    }

    fn save_state(&self, enc: &mut menda_dram::Encoder) {
        enc.u8(self.len);
        for &b in self.iter() {
            enc.u64(b);
        }
    }

    fn restore_state(dec: &mut menda_dram::Decoder<'_>) -> Result<Self, menda_dram::SnapError> {
        let len = dec.u8()?;
        if len as usize > Self::CAP {
            return Err(menda_dram::SnapError::BadValue);
        }
        let mut list = Self::new();
        for _ in 0..len {
            list.push(dec.u64()?);
        }
        Ok(list)
    }
}

impl std::ops::Deref for BlockList {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        &self.items[..self.len as usize]
    }
}

impl PartialEq for BlockList {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<'a> IntoIterator for &'a BlockList {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Outcome of a [`PrefetchBuffer::plan_fetch`] attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchPlan {
    /// Nothing can be fetched right now (chunk in flight, streams
    /// exhausted, or not enough free buffer space).
    None,
    /// The next chunk needs `blocks` read-queue slots but the caller
    /// offered fewer. Nothing was committed; retry when the queue drains.
    Blocked {
        /// Slots the chunk's loads would occupy.
        blocks: usize,
    },
    /// The chunk was planned and recorded as in flight; the caller must
    /// now enqueue every address in [`PrefetchBuffer::pending_blocks`].
    Planned {
        /// Elements covered by the chunk.
        elems: Range<u64>,
        /// Whether this chunk ends the stream.
        last: bool,
    },
}

#[derive(Debug, Clone)]
struct PendingChunk {
    elems: Range<u64>,
    awaiting: BlockList,
    last: bool,
}

/// One prefetch buffer.
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    id: u32,
    capacity: usize,
    max_fetch_blocks: usize,
    prefetch: bool,
    layout: AddressLayout,
    streams: VecDeque<StreamDescriptor>,
    current: Option<(StreamDescriptor, u64)>,
    pending: Option<PendingChunk>,
    packets: VecDeque<Packet>,
    nz_held: usize,
    /// Lower bound on the free space a [`PrefetchBuffer::plan_fetch`] call
    /// needs to do anything, learned from the last refusal and reset on
    /// every state change that could unblock a fetch. Purely a wakeup
    /// filter for the event-driven fast path ([`PrefetchBuffer::fetch_ready`]);
    /// never read by `plan_fetch` itself, so the per-cycle reference path
    /// is unaffected.
    need_free: usize,
}

impl PrefetchBuffer {
    /// Creates buffer `id` holding up to `capacity` nonzeros.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(id: u32, capacity: usize, prefetch: bool, layout: AddressLayout) -> Self {
        Self::with_fetch_limit(id, capacity, 16, prefetch, layout)
    }

    /// Like [`PrefetchBuffer::new`] with an explicit bound on block loads
    /// per fetch (must not exceed the read request queue capacity, or the
    /// fetch could never be enqueued atomically).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `max_fetch_blocks` is zero.
    pub fn with_fetch_limit(
        id: u32,
        capacity: usize,
        max_fetch_blocks: usize,
        prefetch: bool,
        layout: AddressLayout,
    ) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(max_fetch_blocks > 0, "max_fetch_blocks must be positive");
        assert!(
            max_fetch_blocks + 3 <= BlockList::CAP,
            "max_fetch_blocks exceeds the inline chunk-plan capacity"
        );
        Self {
            id,
            capacity,
            max_fetch_blocks,
            prefetch,
            layout,
            streams: VecDeque::new(),
            current: None,
            pending: None,
            packets: VecDeque::new(),
            nz_held: 0,
            need_free: 0,
        }
    }

    /// This buffer's id (its leaf port number).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Appends stream descriptors for upcoming rounds.
    pub fn assign_streams<I: IntoIterator<Item = StreamDescriptor>>(&mut self, streams: I) {
        self.streams.extend(streams);
        self.need_free = 0;
    }

    /// Whether all assigned streams have been fully decoded and consumed.
    pub fn is_done(&self) -> bool {
        self.streams.is_empty()
            && self.current.is_none()
            && self.pending.is_none()
            && self.packets.is_empty()
    }

    /// Nonzeros currently held.
    pub fn held(&self) -> usize {
        self.nz_held
    }

    /// The packet at the head, for the leaf PE.
    pub fn peek(&self) -> Option<Packet> {
        self.packets.front().copied()
    }

    /// Pops the head packet (leaf PE consumed it).
    pub fn pop(&mut self) {
        if let Some(p) = self.packets.pop_front() {
            if !p.is_eol() {
                self.nz_held -= 1;
            }
        }
    }

    /// Advances stream bookkeeping and, following the §3.4 policy, plans
    /// the chunk whose loads should be issued now, if any. `avail_slots`
    /// is the number of read-queue slots the caller can offer: a chunk
    /// needing more is reported as [`FetchPlan::Blocked`] *without* being
    /// committed (and without even materializing its block list — this
    /// sits on the per-cycle path of every buffer, and queue pressure
    /// makes discarded plans common).
    ///
    /// Zero-length streams are consumed here directly (they emit only an
    /// EOL marker and need no memory traffic).
    pub fn plan_fetch(&mut self, avail_slots: usize) -> FetchPlan {
        if self.pending.is_some() {
            return FetchPlan::None; // at most one outstanding chunk (§3.4)
        }
        // Start the next stream if none is active.
        while self.current.is_none() {
            let Some(desc) = self.streams.pop_front() else {
                // Nothing to fetch until new streams arrive; assign_streams
                // resets the threshold.
                self.need_free = usize::MAX;
                return FetchPlan::None;
            };
            if desc.is_empty() {
                self.packets.push_back(Packet::Eol);
            } else {
                self.current = Some((desc, desc.start));
            }
        }
        let (desc, next) = self.current.expect("active stream");
        // Chunk: as many elements as fit in the free space, §3.4 ("load
        // requests are sent whenever a prefetch buffer can fit the
        // requested data"), bounded to whole block windows past the first.
        let per_block = BLOCK_BYTES / IDX_BYTES; // 16
        let free = self.capacity.saturating_sub(self.nz_held);
        let may_issue = if self.prefetch {
            free > 0
        } else {
            self.nz_held == 0 && self.packets.is_empty()
        };
        if !may_issue {
            // Prefetch mode refuses only when completely full; baseline
            // mode until fully drained.
            self.need_free = if self.prefetch { 1 } else { self.capacity };
            return FetchPlan::None;
        }
        let (bases, n_arrays) = self.array_bases(&desc);
        let arrays = n_arrays as u64;
        let max_windows = ((self.max_fetch_blocks as u64 / arrays).max(1)) * per_block;
        let budget = (if self.prefetch { free } else { self.capacity } as u64)
            .min(max_windows.saturating_sub(next % per_block));
        let first_window_end = ((next / per_block + 1) * per_block).min(desc.end);
        let first_span = first_window_end - next;
        // Wait until the whole first window fits — unless it can *never*
        // fit this buffer, in which case a partial-window fetch is the only
        // way to make progress (the remainder of the block is re-fetched
        // later; coalescing absorbs most of the duplicate traffic).
        if budget < first_span && first_span as usize <= self.capacity {
            self.need_free = first_span as usize;
            return FetchPlan::None;
        }
        self.need_free = 0;
        let mut chunk_end = (next + budget).min(desc.end);
        if chunk_end > first_window_end && chunk_end < desc.end {
            // Multi-window chunk: trim to a whole window boundary so later
            // chunks stay block-aligned.
            chunk_end -= chunk_end % per_block;
            chunk_end = chunk_end.max(first_window_end);
        }
        debug_assert!(chunk_end > next, "chunk must make progress");
        // Count the loads analytically before building anything: a chunk
        // the queue cannot take is refused here, cheaply.
        let mut nblocks = 0usize;
        for &base in &bases[..n_arrays] {
            let first = AddressLayout::block_of(base + next * IDX_BYTES);
            let last = AddressLayout::block_of(base + (chunk_end - 1) * IDX_BYTES);
            nblocks += ((last - first) / BLOCK_BYTES) as usize + 1;
        }
        if nblocks > avail_slots {
            return FetchPlan::Blocked { blocks: nblocks };
        }
        let mut blocks = BlockList::new();
        for &base in &bases[..n_arrays] {
            let first = AddressLayout::block_of(base + next * IDX_BYTES);
            let last = AddressLayout::block_of(base + (chunk_end - 1) * IDX_BYTES);
            let mut b = first;
            while b <= last {
                blocks.push(b);
                b += BLOCK_BYTES;
            }
        }
        let elems = next..chunk_end;
        let last = chunk_end == desc.end;
        self.pending = Some(PendingChunk {
            elems: elems.clone(),
            awaiting: blocks,
            last,
        });
        FetchPlan::Planned { elems, last }
    }

    /// Block addresses the in-flight chunk is waiting on; empty when no
    /// chunk is pending. Right after [`FetchPlan::Planned`] this is the
    /// full load list the caller must enqueue.
    pub fn pending_blocks(&self) -> &[u64] {
        self.pending.as_ref().map_or(&[], |p| &p.awaiting)
    }

    /// The base addresses of the arrays stream `desc` reads (one block load
    /// per covered window per array), as a fixed-size array plus its live
    /// length — this sits on the per-cycle fetch-planning path, so it must
    /// not allocate.
    fn array_bases(&self, desc: &StreamDescriptor) -> ([u64; 3], usize) {
        let l = &self.layout;
        match desc.kind {
            StreamKind::CsrRow { .. } | StreamKind::SpmvCol { .. } => ([l.col_idx, l.values, 0], 2),
            StreamKind::Coo { region } => (l.coo[region as usize], 3),
            StreamKind::Pair { region } => {
                let r = &l.coo[region as usize];
                ([r[0], r[2], 0], 2)
            }
        }
    }

    /// Whether a fetched chunk is still in flight. While one is, a
    /// [`PrefetchBuffer::plan_fetch`] call is a guaranteed no-op (§3.4
    /// allows at most one outstanding chunk), so event-driven callers need
    /// not re-poll this buffer until the chunk completes.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Whether a [`PrefetchBuffer::plan_fetch`] call offered fewer than
    /// [`PrefetchBuffer::MIN_FETCH_SLOTS`] queue slots is a guaranteed
    /// no-op for this buffer: a chunk is already in flight, or a stream is
    /// mid-fetch (every real chunk loads at least one block per backing
    /// array, so it could only be refused). The one case that must still
    /// run is `current == None`: starting the next stream consumes
    /// leading empty streams and emits their EOL markers — a simulated
    /// state change that happens regardless of queue space.
    pub fn plan_is_noop_without_slots(&self) -> bool {
        self.pending.is_some() || self.current.is_some()
    }

    /// Minimum read-queue slots any real chunk needs: one block per
    /// backing array, and every stream kind reads at least two arrays.
    pub const MIN_FETCH_SLOTS: usize = 2;

    /// Whether a [`PrefetchBuffer::plan_fetch`] call could possibly make
    /// progress right now. The event-driven fast path uses this to avoid
    /// waking the fetch planner on pops that provably cannot unblock it
    /// (a chunk is in flight, or less space has freed up than the planner's
    /// last refusal demanded). The per-cycle reference path never consults
    /// it and polls unconditionally.
    pub fn fetch_ready(&self) -> bool {
        self.pending.is_none() && self.capacity.saturating_sub(self.nz_held) >= self.need_free
    }

    /// Notifies the buffer that `block` arrived. Returns the element range
    /// to materialize when the whole chunk is now present.
    pub fn block_arrived(&mut self, block: u64) -> Option<(StreamDescriptor, Range<u64>, bool)> {
        let pending = self.pending.as_mut()?;
        if let Some(pos) = pending.awaiting.iter().position(|&b| b == block) {
            pending.awaiting.swap_remove(pos);
        }
        if pending.awaiting.is_empty() {
            self.need_free = 0;
            let done = self.pending.take().expect("pending");
            let (desc, _) = self.current.expect("active stream");
            if done.last {
                self.current = None;
            } else {
                self.current = Some((desc, done.elems.end));
            }
            return Some((desc, done.elems, done.last));
        }
        None
    }

    /// Delivers decoded packets for a ready chunk, draining `packets` (the
    /// caller's buffer keeps its allocation for reuse); appends an EOL
    /// marker if the stream ended.
    pub fn deliver(&mut self, packets: &mut Vec<Packet>, stream_ended: bool) {
        for p in packets.drain(..) {
            debug_assert!(!p.is_eol());
            self.nz_held += 1;
            self.packets.push_back(p);
        }
        if stream_ended {
            self.packets.push_back(Packet::Eol);
        }
    }

    /// Serializes the buffer's dynamic state. Configuration fields (`id`,
    /// `capacity`, `max_fetch_blocks`, `prefetch`, `layout`) are not
    /// written — the restore target is a freshly built buffer carrying
    /// them already.
    pub(crate) fn save_state(&self, enc: &mut menda_dram::Encoder) {
        enc.seq(self.streams.len());
        for d in &self.streams {
            d.save_state(enc);
        }
        match &self.current {
            Some((desc, next)) => {
                enc.u8(1);
                desc.save_state(enc);
                enc.u64(*next);
            }
            None => enc.u8(0),
        }
        match &self.pending {
            Some(chunk) => {
                enc.u8(1);
                enc.u64(chunk.elems.start);
                enc.u64(chunk.elems.end);
                chunk.awaiting.save_state(enc);
                enc.bool(chunk.last);
            }
            None => enc.u8(0),
        }
        enc.seq(self.packets.len());
        for pkt in &self.packets {
            pkt.save_state(enc);
        }
        enc.usize(self.need_free);
    }

    /// Restores state saved by [`PrefetchBuffer::save_state`]. The held
    /// nonzero count is recomputed from the restored packets rather than
    /// trusted from the payload.
    pub(crate) fn restore_state(
        &mut self,
        dec: &mut menda_dram::Decoder<'_>,
    ) -> Result<(), menda_dram::SnapError> {
        use menda_dram::SnapError;
        let n_streams = dec.len_capped(17)?;
        let mut streams = VecDeque::with_capacity(n_streams);
        for _ in 0..n_streams {
            streams.push_back(StreamDescriptor::restore_state(dec)?);
        }
        let current = match dec.u8()? {
            0 => None,
            1 => {
                let desc = StreamDescriptor::restore_state(dec)?;
                let next = dec.u64()?;
                if next < desc.start || next > desc.end {
                    return Err(SnapError::BadValue);
                }
                Some((desc, next))
            }
            _ => return Err(SnapError::BadValue),
        };
        let pending = match dec.u8()? {
            0 => None,
            1 => {
                let start = dec.u64()?;
                let end = dec.u64()?;
                if end < start {
                    return Err(SnapError::BadValue);
                }
                let awaiting = BlockList::restore_state(dec)?;
                let last = dec.bool()?;
                // A pending chunk only exists while a stream is active.
                if current.is_none() {
                    return Err(SnapError::BadValue);
                }
                Some(PendingChunk {
                    elems: start..end,
                    awaiting,
                    last,
                })
            }
            _ => return Err(SnapError::BadValue),
        };
        let n_packets = dec.len_capped(1)?;
        let mut packets = VecDeque::with_capacity(n_packets);
        let mut nz_held = 0usize;
        for _ in 0..n_packets {
            let pkt = Packet::restore_state(dec)?;
            nz_held += usize::from(!pkt.is_eol());
            packets.push_back(pkt);
        }
        if nz_held > self.capacity {
            return Err(SnapError::BadValue);
        }
        self.streams = streams;
        self.current = current;
        self.pending = pending;
        self.packets = packets;
        self.nz_held = nz_held;
        self.need_free = dec.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> AddressLayout {
        AddressLayout::rank_default()
    }

    fn csr_stream(row: u32, start: u64, end: u64) -> StreamDescriptor {
        StreamDescriptor {
            start,
            end,
            kind: StreamKind::CsrRow { row },
        }
    }

    /// Unwraps a [`FetchPlan::Planned`].
    fn planned(p: FetchPlan) -> (Range<u64>, bool) {
        match p {
            FetchPlan::Planned { elems, last } => (elems, last),
            other => panic!("expected a planned chunk, got {other:?}"),
        }
    }

    #[test]
    fn empty_stream_emits_bare_eol() {
        let mut b = PrefetchBuffer::new(0, 32, true, layout());
        b.assign_streams([StreamDescriptor::empty()]);
        assert_eq!(b.plan_fetch(32), FetchPlan::None);
        assert_eq!(b.peek(), Some(Packet::Eol));
        b.pop();
        assert!(b.is_done());
    }

    #[test]
    fn chunk_fills_free_space_across_windows() {
        let mut b = PrefetchBuffer::new(0, 32, true, layout());
        // Elements 10..40 fit the 32-entry buffer entirely: one chunk
        // covering three block windows per array (bytes 40..160).
        b.assign_streams([csr_stream(5, 10, 40)]);
        let (elems, last) = planned(b.plan_fetch(32));
        assert_eq!(elems, 10..40);
        assert!(last);
        assert_eq!(b.pending_blocks().len(), 6); // 3 windows x (idx + val)
                                                 // One outstanding chunk max (§3.4).
        assert_eq!(b.plan_fetch(32), FetchPlan::None);
    }

    #[test]
    fn long_stream_chunk_snaps_to_window_boundary() {
        let mut b = PrefetchBuffer::new(0, 24, true, layout());
        // 24 free entries against a long stream: chunk ends at the last
        // whole window boundary (element 16), not mid-window.
        b.assign_streams([csr_stream(5, 0, 100)]);
        let (elems, last) = planned(b.plan_fetch(32));
        assert_eq!(elems, 0..16);
        assert!(!last);
    }

    #[test]
    fn blocked_chunk_commits_nothing() {
        let mut b = PrefetchBuffer::new(0, 32, true, layout());
        b.assign_streams([csr_stream(5, 10, 40)]);
        // The chunk needs 6 slots; offering fewer refuses it cheaply.
        assert_eq!(b.plan_fetch(5), FetchPlan::Blocked { blocks: 6 });
        assert!(!b.has_pending());
        assert!(b.pending_blocks().is_empty());
        // A refused chunk stays plannable.
        assert!(b.fetch_ready());
        let (elems, _) = planned(b.plan_fetch(6));
        assert_eq!(elems, 10..40);
    }

    /// Completes every awaited block of the pending chunk, delivering
    /// synthetic packets.
    fn complete_plan(b: &mut PrefetchBuffer) {
        let blocks = b.pending_blocks().to_vec();
        for blk in blocks {
            if let Some((_, range, ended)) = b.block_arrived(blk) {
                let mut pk: Vec<Packet> = (range.start..range.end)
                    .map(|i| Packet::nz(i as u32, 0, 0.0))
                    .collect();
                b.deliver(&mut pk, ended);
            }
        }
    }

    #[test]
    fn chunk_sequence_covers_stream() {
        let mut b = PrefetchBuffer::new(0, 64, true, layout());
        b.assign_streams([csr_stream(1, 0, 40)]);
        let mut covered = 0;
        while let FetchPlan::Planned { elems, last } = b.plan_fetch(32) {
            covered += elems.end - elems.start;
            let blocks = b.pending_blocks().to_vec();
            let mut out = None;
            for blk in blocks {
                out = b.block_arrived(blk);
            }
            let (desc, range, ended) = out.expect("chunk complete");
            assert_eq!(ended, last);
            let mut packets: Vec<Packet> = (range.start..range.end)
                .map(|i| Packet::nz(i as u32, desc.start as u32, 0.0))
                .collect();
            b.deliver(&mut packets, ended);
            assert!(packets.is_empty(), "deliver drains the staging buffer");
            if ended {
                break;
            }
        }
        assert_eq!(covered, 40);
        // 40 NZs + 1 EOL present.
        let mut count = 0;
        while let Some(p) = b.peek() {
            b.pop();
            if p.is_eol() {
                break;
            }
            count += 1;
        }
        assert_eq!(count, 40);
        assert!(b.is_done());
    }

    #[test]
    fn baseline_only_fetches_when_empty() {
        let mut b = PrefetchBuffer::new(0, 32, false, layout());
        b.assign_streams([csr_stream(1, 0, 48)]);
        let (elems, _) = planned(b.plan_fetch(32));
        assert_eq!(elems, 0..32); // fills the whole buffer
        complete_plan(&mut b);
        // Buffer holds 32 NZs: baseline must NOT issue the next chunk
        // until fully drained.
        assert_eq!(b.held(), 32);
        assert_eq!(b.plan_fetch(32), FetchPlan::None);
        for _ in 0..31 {
            b.pop();
        }
        assert_eq!(b.plan_fetch(32), FetchPlan::None);
        b.pop();
        let (next, _) = planned(b.plan_fetch(32));
        assert_eq!(next, 32..48);
    }

    #[test]
    fn prefetch_issues_when_space_fits() {
        let mut b = PrefetchBuffer::new(0, 32, true, layout());
        b.assign_streams([csr_stream(1, 0, 64)]);
        let (e1, _) = planned(b.plan_fetch(32));
        assert_eq!(e1, 0..32);
        complete_plan(&mut b);
        // Full: no prefetch.
        assert_eq!(b.plan_fetch(32), FetchPlan::None);
        // Pop 16: the next 16-NZ window fits → prefetch fires (§3.4's
        // "whenever a prefetch buffer can fit the requested data").
        for _ in 0..16 {
            b.pop();
        }
        let (e2, _) = planned(b.plan_fetch(32));
        assert_eq!(e2, 32..48);
    }

    #[test]
    fn prefetch_waits_when_chunk_does_not_fit() {
        let mut b = PrefetchBuffer::new(0, 16, true, layout());
        b.assign_streams([csr_stream(1, 0, 64)]);
        planned(b.plan_fetch(32));
        complete_plan(&mut b);
        assert_eq!(b.held(), 16);
        // Full: cannot prefetch.
        assert_eq!(b.plan_fetch(32), FetchPlan::None);
        // Pop 15: still can't fit a 16-NZ chunk.
        for _ in 0..15 {
            b.pop();
        }
        assert_eq!(b.plan_fetch(32), FetchPlan::None);
        b.pop();
        assert!(matches!(b.plan_fetch(32), FetchPlan::Planned { .. }));
    }

    #[test]
    fn coo_streams_need_three_blocks() {
        let mut b = PrefetchBuffer::new(0, 32, true, layout());
        b.assign_streams([StreamDescriptor {
            start: 0,
            end: 8,
            kind: StreamKind::Coo { region: 1 },
        }]);
        let (_, last) = planned(b.plan_fetch(32));
        assert_eq!(b.pending_blocks().len(), 3);
        assert!(last);
    }

    #[test]
    fn back_to_back_streams_queue_up() {
        let mut b = PrefetchBuffer::new(0, 32, true, layout());
        b.assign_streams([csr_stream(1, 0, 4), csr_stream(9, 100, 104)]);
        let (_, last) = planned(b.plan_fetch(32));
        assert!(last);
        complete_plan(&mut b);
        // Immediately plans the second stream (seamless §3.3).
        let (e2, _) = planned(b.plan_fetch(32));
        assert_eq!(e2, 100..104);
    }
}
