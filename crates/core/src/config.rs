use menda_dram::DramConfig;
use menda_trace::TraceConfig;

/// Configuration of one MeNDA processing unit (Table 1, bottom).
#[derive(Debug, Clone, PartialEq)]
pub struct PuConfig {
    /// PU clock frequency in MHz (nominal 800).
    pub frequency_mhz: u64,
    /// Number of merge-tree leaves, i.e. input ports / prefetch buffers
    /// (nominal 1024). Must be a power of two ≥ 2.
    pub leaves: usize,
    /// Entries per inter-PE FIFO (nominal 2).
    pub fifo_entries: usize,
    /// Nonzeros a prefetch buffer can hold (nominal 32).
    pub prefetch_buffer_entries: usize,
    /// PU-side read request queue entries (nominal 32).
    pub read_queue_entries: usize,
    /// PU-side write request queue entries (nominal 32).
    pub write_queue_entries: usize,
    /// Stall-reducing prefetching (§3.4) enabled.
    pub stall_reducing_prefetch: bool,
    /// Request coalescing (§3.4) enabled.
    pub request_coalescing: bool,
    /// Output buffer capacity in bytes (stores are sent at 64 B
    /// granularity).
    pub output_buffer_bytes: usize,
    /// Maximum outstanding pointer-array block reads held by the
    /// controller FSM.
    pub pointer_read_depth: usize,
    /// Concurrent host access (§4): when set, the host injects one 64 B
    /// read into this PU's rank every `N` PU cycles while the PU runs.
    /// The paper supports concurrent access (via \[11\]) but warns that a
    /// memory-intensive co-runner hurts both tasks — this knob lets the
    /// harness quantify that.
    pub host_read_interval: Option<u64>,
}

impl PuConfig {
    /// The paper's nominal PU: 800 MHz, 1024 leaves, 2-entry FIFOs,
    /// 32-entry prefetch buffers and request queues, both optimizations on.
    pub fn paper() -> Self {
        Self {
            frequency_mhz: 800,
            leaves: 1024,
            fifo_entries: 2,
            prefetch_buffer_entries: 32,
            read_queue_entries: 32,
            write_queue_entries: 32,
            stall_reducing_prefetch: true,
            request_coalescing: true,
            output_buffer_bytes: 256,
            pointer_read_depth: 8,
            host_read_interval: None,
        }
    }

    /// A small PU for fast unit tests (16 leaves).
    pub fn small_test() -> Self {
        Self {
            leaves: 16,
            ..Self::paper()
        }
    }

    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is not a power of two ≥ 2, or any queue/FIFO
    /// capacity is zero.
    pub fn validate(&self) {
        assert!(
            self.leaves.is_power_of_two() && self.leaves >= 2,
            "leaves must be a power of two >= 2, got {}",
            self.leaves
        );
        assert!(self.fifo_entries > 0, "fifo_entries must be positive");
        assert!(
            self.prefetch_buffer_entries > 0,
            "prefetch_buffer_entries must be positive"
        );
        assert!(self.read_queue_entries > 0);
        assert!(self.write_queue_entries > 0);
        assert!(self.output_buffer_bytes >= 64);
        assert!(self.pointer_read_depth > 0);
    }

    /// Number of merge-tree levels (`log2 leaves`).
    pub fn levels(&self) -> u32 {
        self.leaves.trailing_zeros()
    }

    /// With or without stall-reducing prefetching.
    pub fn with_prefetch(mut self, on: bool) -> Self {
        self.stall_reducing_prefetch = on;
        self
    }

    /// With or without request coalescing.
    pub fn with_coalescing(mut self, on: bool) -> Self {
        self.request_coalescing = on;
        self
    }

    /// With a different leaf count.
    pub fn with_leaves(mut self, leaves: usize) -> Self {
        self.leaves = leaves;
        self
    }

    /// With a different prefetch buffer capacity.
    pub fn with_buffer_entries(mut self, entries: usize) -> Self {
        self.prefetch_buffer_entries = entries;
        self
    }

    /// With a different clock frequency.
    pub fn with_frequency(mut self, mhz: u64) -> Self {
        self.frequency_mhz = mhz;
        self
    }

    /// With concurrent host reads every `interval` PU cycles (§4).
    pub fn with_host_interference(mut self, interval: u64) -> Self {
        self.host_read_interval = Some(interval.max(1));
        self
    }
}

impl Default for PuConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Configuration of the SparseP-style UPMEM PIM backend
/// ([`crate::pim::PimBackend`]): many DPU-like cores beside one rank,
/// each with a local scratchpad, 1D stream partitioning and a rank-level
/// merge engine. Ignored by the MeNDA backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PimConfig {
    /// DPU clock frequency in MHz (UPMEM DPUs run at ~350 MHz).
    pub frequency_mhz: u64,
    /// DPU-like cores per rank (a UPMEM rank hosts 64 DPUs).
    pub dpus_per_rank: usize,
    /// Per-DPU scratchpad (WRAM) capacity in bytes (64 KiB on UPMEM).
    pub wram_bytes: usize,
    /// DPU cycles to ingest and process one element (scale/compare plus
    /// loop overhead on the in-order pipeline).
    pub elem_cpi: u64,
    /// DPU cycles per element per local merge-sort pass
    /// (`n·ceil(log2 n)` passes total).
    pub sort_cpi: u64,
    /// Rank-level merge engine cycles per merged output element.
    pub merge_cpi: u64,
}

impl PimConfig {
    /// A full UPMEM-style rank: 64 DPUs at 350 MHz with 64 KiB WRAM.
    pub fn upmem_rank() -> Self {
        Self {
            frequency_mhz: 350,
            dpus_per_rank: 64,
            wram_bytes: 64 << 10,
            elem_cpi: 4,
            sort_cpi: 2,
            merge_cpi: 2,
        }
    }

    /// A small PIM configuration for fast unit tests (8 DPUs).
    pub fn small_test() -> Self {
        Self {
            dpus_per_rank: 8,
            ..Self::upmem_rank()
        }
    }

    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if any capacity, core count or cost parameter is zero.
    pub fn validate(&self) {
        assert!(self.frequency_mhz > 0, "frequency_mhz must be positive");
        assert!(self.dpus_per_rank > 0, "dpus_per_rank must be positive");
        assert!(self.wram_bytes >= 1024, "wram_bytes must be at least 1 KiB");
        assert!(self.elem_cpi > 0, "elem_cpi must be positive");
        assert!(self.sort_cpi > 0, "sort_cpi must be positive");
        assert!(self.merge_cpi > 0, "merge_cpi must be positive");
    }

    /// With a different DPU count per rank.
    pub fn with_dpus(mut self, dpus: usize) -> Self {
        self.dpus_per_rank = dpus;
        self
    }

    /// With a different DPU clock frequency.
    pub fn with_frequency(mut self, mhz: u64) -> Self {
        self.frequency_mhz = mhz;
        self
    }
}

impl Default for PimConfig {
    fn default() -> Self {
        Self::upmem_rank()
    }
}

/// Host-simulation options — knobs of the *simulator*, not the modeled
/// hardware. They never change simulated results, only how fast the host
/// computes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Worker threads the execution engine uses to simulate PUs
    /// concurrently. `None` (the default) picks
    /// `min(available_parallelism, num_pus)`; `Some(n)` clamps `n` to
    /// `[1, num_pus]`. PUs share nothing (§3.5), so any thread count
    /// produces bit-identical outputs and statistics.
    pub threads: Option<usize>,
    /// Event-driven fast-forwarding: the PU and DRAM models jump over
    /// provably event-free cycle spans instead of simulating them one by
    /// one (on by default). Results are bit-identical either way — the
    /// differential suites in `crates/core/tests/fast_forward_equivalence.rs`
    /// and `crates/dram/tests/fast_forward.rs` enforce it; `false` keeps
    /// the per-cycle reference path.
    pub fast_forward: bool,
    /// Coarse-grained epoch batching on the fast-forward path: the PU
    /// computes a lower bound on how many cycles the merge tree's
    /// observable inputs cannot change (no read response, no host
    /// injection, no issue-gate transition) and drains that many cycles
    /// in one fused loop, flushing DRAM ticks in bulk. On by default;
    /// has no effect when `fast_forward` is off. Results are
    /// bit-identical either way — the absolute cycle fingerprints in
    /// `crates/core/tests/activation_fingerprints.rs` enforce it.
    pub epoch: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            threads: None,
            fast_forward: true,
            epoch: true,
        }
    }
}

impl SimOptions {
    /// The worker-thread count to use for a run over `pus` PUs.
    pub fn effective_threads(&self, pus: usize) -> usize {
        let cap = pus.max(1);
        match self.threads {
            Some(n) => n.clamp(1, cap),
            None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(cap),
        }
    }
}

/// Configuration of a complete MeNDA system: one PU per DRAM rank.
#[derive(Debug, Clone, PartialEq)]
pub struct MendaConfig {
    /// Per-PU configuration (the MeNDA backend).
    pub pu: PuConfig,
    /// Per-rank PIM configuration (the SparseP-style backend,
    /// [`crate::pim::PimBackend`]). Ignored unless that backend is
    /// selected.
    pub pim: PimConfig,
    /// Memory channels populated with MeNDA DIMMs.
    pub channels: usize,
    /// Ranks (and therefore PUs) per channel.
    pub ranks_per_channel: usize,
    /// DRAM configuration of each rank (one PU sees one rank's worth of
    /// DDR4-2400 bandwidth through the DIMM buffer chip).
    pub dram: DramConfig,
    /// Host-simulation options (threading of the execution engine).
    pub sim: SimOptions,
    /// Instrumentation configuration (see `menda-trace`). Purely
    /// observational: changing it never changes simulated results, only
    /// whether a [`crate::stats::RunStats::trace`] report is produced.
    /// Defaults to the `MENDA_TRACE` environment variable (off when
    /// unset).
    pub trace: TraceConfig,
}

impl MendaConfig {
    /// The paper's evaluation system: 4 channels × 2 ranks = 8 PUs with
    /// nominal PU parameters.
    pub fn paper() -> Self {
        Self {
            pu: PuConfig::paper(),
            pim: PimConfig::upmem_rank(),
            channels: 4,
            ranks_per_channel: 2,
            dram: DramConfig::ddr4_2400r(),
            sim: SimOptions::default(),
            trace: TraceConfig::from_env(),
        }
    }

    /// A small configuration for fast unit tests: 2 PUs with 16-leaf trees
    /// and refresh disabled.
    pub fn small_test() -> Self {
        let mut dram = DramConfig::ddr4_2400r();
        dram.refresh_enabled = false;
        Self {
            pu: PuConfig::small_test(),
            pim: PimConfig::small_test(),
            channels: 1,
            ranks_per_channel: 2,
            dram,
            sim: SimOptions::default(),
            trace: TraceConfig::from_env(),
        }
    }

    /// Total number of PUs (= total ranks).
    pub fn num_pus(&self) -> usize {
        self.channels * self.ranks_per_channel
    }

    /// With a different channel count (the Fig. 13 sweep).
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// With a different per-channel rank count.
    pub fn with_ranks_per_channel(mut self, ranks: usize) -> Self {
        self.ranks_per_channel = ranks;
        self
    }

    /// With an explicit engine worker-thread count (`1` = serial host
    /// simulation). Outputs are identical for every setting; only the
    /// host's wall-clock time changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.sim.threads = Some(threads);
        self
    }

    /// With event-driven fast-forwarding on (`true`, the default) or the
    /// per-cycle reference simulation path (`false`). Simulated results
    /// are bit-identical for both settings; only host wall-clock time
    /// changes.
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.sim.fast_forward = on;
        self
    }

    /// With epoch batching on the fast-forward path on (`true`, the
    /// default) or per-cycle fast-forward stepping (`false`). Simulated
    /// results are bit-identical for both settings; only host wall-clock
    /// time changes. No effect when fast-forwarding is off.
    pub fn with_epoch(mut self, on: bool) -> Self {
        self.sim.epoch = on;
        self
    }

    /// With a different PIM backend configuration.
    pub fn with_pim(mut self, pim: PimConfig) -> Self {
        self.pim = pim;
        self
    }

    /// With a specific instrumentation configuration (overrides the
    /// `MENDA_TRACE` default).
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Aggregate internal memory bandwidth exposed to the PUs, in GB/s
    /// (each rank's PU sees a full DDR4-2400 interface).
    pub fn internal_bandwidth_gbs(&self) -> f64 {
        19.2 * self.num_pus() as f64
    }

    /// DRAM bus cycles per PU cycle numerator/denominator
    /// (bus 1200 MHz : PU 800 MHz = 3 : 2 at nominal frequency).
    pub fn dram_ticks_ratio(&self) -> (u64, u64) {
        (self.dram.clock_mhz, self.pu.frequency_mhz)
    }
}

impl Default for MendaConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table1() {
        let c = PuConfig::paper();
        assert_eq!(c.frequency_mhz, 800);
        assert_eq!(c.leaves, 1024);
        assert_eq!(c.fifo_entries, 2);
        assert_eq!(c.prefetch_buffer_entries, 32);
        assert_eq!(c.read_queue_entries, 32);
        assert_eq!(c.write_queue_entries, 32);
        assert_eq!(c.levels(), 10);
        c.validate();
    }

    #[test]
    fn system_pu_count() {
        let s = MendaConfig::paper();
        assert_eq!(s.num_pus(), 8);
        assert!((s.internal_bandwidth_gbs() - 153.6).abs() < 0.1);
        assert_eq!(s.with_channels(1).num_pus(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_leaves_rejected() {
        PuConfig::paper().with_leaves(48).validate();
    }

    #[test]
    fn builders_compose() {
        let c = PuConfig::paper()
            .with_prefetch(false)
            .with_coalescing(false)
            .with_leaves(64)
            .with_buffer_entries(16)
            .with_frequency(600);
        assert!(!c.stall_reducing_prefetch);
        assert!(!c.request_coalescing);
        assert_eq!(c.leaves, 64);
        assert_eq!(c.prefetch_buffer_entries, 16);
        assert_eq!(c.frequency_mhz, 600);
        c.validate();
    }

    #[test]
    fn dram_tick_ratio_nominal() {
        let c = MendaConfig::paper();
        assert_eq!(c.dram_ticks_ratio(), (1200, 800));
    }

    #[test]
    fn trace_knob_defaults_off_and_overrides() {
        // The test environment never sets MENDA_TRACE, so the default is
        // off and tracing costs nothing.
        assert!(!MendaConfig::small_test().trace.enabled());
        let c = MendaConfig::small_test().with_trace(TraceConfig::counting());
        assert!(c.trace.enabled());
    }

    #[test]
    fn thread_knob_clamps_to_pu_count() {
        let c = MendaConfig::paper().with_threads(64);
        assert_eq!(c.sim.effective_threads(8), 8);
        assert_eq!(c.sim.effective_threads(1), 1);
        let c = MendaConfig::paper().with_threads(0);
        assert_eq!(c.sim.effective_threads(8), 1);
        // Auto mode never exceeds the PU count either.
        let auto = SimOptions::default();
        assert!(auto.effective_threads(2) <= 2);
        assert!(auto.effective_threads(1) == 1);
    }

    #[test]
    fn fast_forward_defaults_on_and_toggles() {
        assert!(SimOptions::default().fast_forward);
        assert!(MendaConfig::small_test().sim.fast_forward);
        let c = MendaConfig::small_test().with_fast_forward(false);
        assert!(!c.sim.fast_forward);
        assert!(c.with_fast_forward(true).sim.fast_forward);
    }

    #[test]
    fn epoch_defaults_on_and_toggles() {
        assert!(SimOptions::default().epoch);
        assert!(MendaConfig::small_test().sim.epoch);
        let c = MendaConfig::small_test().with_epoch(false);
        assert!(!c.sim.epoch);
        assert!(c.with_epoch(true).sim.epoch);
    }
}
