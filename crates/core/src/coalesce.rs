//! The PU-side read request queue with CAM-style request coalescing (§3.4).
//!
//! Each entry of the read request queue carries a comparator so an incoming
//! load to a block already queued merges into the existing slot instead of
//! issuing a duplicate DRAM access. Because the memory response is
//! broadcast to all prefetch buffers, the queue only records *which*
//! buffers wait on a block so the simulator can deliver data; the hardware
//! needs no requester tracking.

/// Outcome of enqueueing a block load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// A new queue slot was allocated.
    Queued,
    /// The request merged into an existing slot for the same block.
    Coalesced,
    /// The queue is full; retry later.
    Full,
}

#[derive(Debug, Clone)]
struct Entry {
    block: u64,
    waiters: Vec<u32>,
    issued: bool,
}

/// Read request queue with optional coalescing.
///
/// # Example
///
/// ```
/// use menda_core::CoalescingQueue;
///
/// let mut q = CoalescingQueue::new(4, true);
/// q.enqueue(0x40, 0);
/// q.enqueue(0x40, 1); // coalesces
/// assert_eq!(q.len(), 1);
/// assert_eq!(q.next_to_issue(), Some(0x40));
/// q.mark_issued(0x40);
/// assert_eq!(q.complete(0x40), vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct CoalescingQueue {
    capacity: usize,
    entries: Vec<Entry>,
    coalescing: bool,
    coalesced_count: u64,
    queued_count: u64,
    /// Entries with `issued == false`, kept in sync by
    /// `enqueue`/`mark_issued`/`complete` so `has_unissued` is O(1).
    ///
    /// Issue order is FIFO, so issued entries form a prefix of `entries`
    /// and the oldest unissued entry sits at `len - unissued` — making
    /// `next_to_issue` O(1) on the per-cycle hot path (with a linear
    /// fallback should a caller ever issue out of order).
    unissued: usize,
    /// Recycled waiter vectors: completions return their (cleared) waiter
    /// storage here and enqueues reuse it, so the steady-state loop
    /// allocates nothing.
    waiter_pool: Vec<Vec<u32>>,
}

impl CoalescingQueue {
    /// Creates a queue with `capacity` slots; `coalescing` enables the CAM
    /// match.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, coalescing: bool) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
            coalescing,
            coalesced_count: 0,
            queued_count: 0,
            unissued: 0,
            waiter_pool: Vec::new(),
        }
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether all slots are occupied.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Requests that merged into existing slots so far.
    pub fn coalesced_count(&self) -> u64 {
        self.coalesced_count
    }

    /// Requests that allocated a new slot so far.
    pub fn queued_count(&self) -> u64 {
        self.queued_count
    }

    /// Enqueues a load of `block` on behalf of `waiter`.
    pub fn enqueue(&mut self, block: u64, waiter: u32) -> EnqueueOutcome {
        if self.coalescing {
            if let Some(e) = self.entries.iter_mut().find(|e| e.block == block) {
                e.waiters.push(waiter);
                self.coalesced_count += 1;
                return EnqueueOutcome::Coalesced;
            }
        }
        if self.is_full() {
            return EnqueueOutcome::Full;
        }
        let mut waiters = self.waiter_pool.pop().unwrap_or_default();
        waiters.push(waiter);
        self.entries.push(Entry {
            block,
            waiters,
            issued: false,
        });
        self.queued_count += 1;
        self.unissued += 1;
        EnqueueOutcome::Queued
    }

    /// Whether any entry is still waiting to be issued — O(1), equivalent
    /// to `next_to_issue().is_some()` without the slot scan.
    pub fn has_unissued(&self) -> bool {
        self.unissued > 0
    }

    /// The oldest block not yet issued to the memory interface.
    pub fn next_to_issue(&self) -> Option<u64> {
        if self.unissued == 0 {
            return None;
        }
        let first = self.entries.len() - self.unissued;
        let e = &self.entries[first];
        if !e.issued {
            return Some(e.block);
        }
        // A caller issued out of FIFO order; fall back to the slot scan.
        self.entries.iter().find(|e| !e.issued).map(|e| e.block)
    }

    /// Marks `block` as issued (it stays resident until completion so late
    /// arrivals can still coalesce).
    pub fn mark_issued(&mut self, block: u64) {
        if self.unissued == 0 {
            return;
        }
        let first = self.entries.len() - self.unissued;
        let pos = if self.entries[first].block == block && !self.entries[first].issued {
            Some(first)
        } else {
            self.entries
                .iter()
                .position(|e| e.block == block && !e.issued)
        };
        if let Some(pos) = pos {
            self.entries[pos].issued = true;
            self.unissued -= 1;
        }
    }

    /// Completes `block`: removes its slot and appends the waiters to
    /// notify onto `out` (nothing if the block was not resident). The
    /// entry's waiter storage is recycled, so steady-state completions
    /// are allocation-free.
    pub fn complete_into(&mut self, block: u64, out: &mut Vec<u32>) {
        if let Some(pos) = self.entries.iter().position(|e| e.block == block) {
            let mut entry = self.entries.remove(pos);
            if !entry.issued {
                self.unissued -= 1;
            }
            out.extend_from_slice(&entry.waiters);
            entry.waiters.clear();
            self.waiter_pool.push(entry.waiters);
        }
    }

    /// Completes `block`: removes its slot and returns the waiters to
    /// notify (empty if the block was not resident). Allocating
    /// convenience wrapper over [`CoalescingQueue::complete_into`].
    pub fn complete(&mut self, block: u64) -> Vec<u32> {
        let mut out = Vec::new();
        self.complete_into(block, &mut out);
        out
    }

    /// Serializes the resident entries and counters. The waiter pool is
    /// recycling storage only and is not written; `capacity` and
    /// `coalescing` come from the configuration of the restore target.
    pub(crate) fn save_state(&self, enc: &mut menda_dram::Encoder) {
        enc.seq(self.entries.len());
        for e in &self.entries {
            enc.u64(e.block);
            enc.u32s(&e.waiters);
            enc.bool(e.issued);
        }
        enc.u64(self.coalesced_count);
        enc.u64(self.queued_count);
    }

    /// Restores state saved by [`CoalescingQueue::save_state`] into a
    /// freshly built queue of the same configuration. The unissued count
    /// is recomputed from the restored entries.
    pub(crate) fn restore_state(
        &mut self,
        dec: &mut menda_dram::Decoder<'_>,
    ) -> Result<(), menda_dram::SnapError> {
        use menda_dram::SnapError;
        let n = dec.len_capped(17)?;
        if n > self.capacity {
            return Err(SnapError::BadValue);
        }
        let mut entries = Vec::with_capacity(self.capacity.max(n));
        let mut unissued = 0usize;
        for _ in 0..n {
            let block = dec.u64()?;
            let waiters = dec.u32s()?;
            let issued = dec.bool()?;
            if waiters.is_empty() {
                return Err(SnapError::BadValue);
            }
            unissued += usize::from(!issued);
            entries.push(Entry {
                block,
                waiters,
                issued,
            });
        }
        self.entries = entries;
        self.unissued = unissued;
        self.coalesced_count = dec.u64()?;
        self.queued_count = dec.u64()?;
        self.waiter_pool.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_duplicate_blocks() {
        let mut q = CoalescingQueue::new(4, true);
        assert_eq!(q.enqueue(0x100, 1), EnqueueOutcome::Queued);
        assert_eq!(q.enqueue(0x100, 2), EnqueueOutcome::Coalesced);
        assert_eq!(q.enqueue(0x140, 3), EnqueueOutcome::Queued);
        assert_eq!(q.len(), 2);
        assert_eq!(q.coalesced_count(), 1);
        assert_eq!(q.queued_count(), 2);
    }

    #[test]
    fn disabled_coalescing_allocates_slots() {
        let mut q = CoalescingQueue::new(4, false);
        assert_eq!(q.enqueue(0x100, 1), EnqueueOutcome::Queued);
        assert_eq!(q.enqueue(0x100, 2), EnqueueOutcome::Queued);
        assert_eq!(q.len(), 2);
        assert_eq!(q.coalesced_count(), 0);
    }

    #[test]
    fn full_queue_rejects_new_blocks_but_coalesces() {
        let mut q = CoalescingQueue::new(2, true);
        q.enqueue(0x0, 0);
        q.enqueue(0x40, 1);
        assert_eq!(q.enqueue(0x80, 2), EnqueueOutcome::Full);
        // Coalescing into resident entries still works when full.
        assert_eq!(q.enqueue(0x40, 3), EnqueueOutcome::Coalesced);
    }

    #[test]
    fn issue_order_is_fifo() {
        let mut q = CoalescingQueue::new(4, true);
        q.enqueue(0xA0, 0);
        q.enqueue(0x40, 1);
        assert_eq!(q.next_to_issue(), Some(0xA0));
        q.mark_issued(0xA0);
        assert_eq!(q.next_to_issue(), Some(0x40));
        q.mark_issued(0x40);
        assert_eq!(q.next_to_issue(), None);
    }

    #[test]
    fn late_coalesce_into_issued_entry() {
        let mut q = CoalescingQueue::new(4, true);
        q.enqueue(0x40, 1);
        q.mark_issued(0x40);
        assert_eq!(q.enqueue(0x40, 2), EnqueueOutcome::Coalesced);
        assert_eq!(q.complete(0x40), vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn complete_unknown_block_is_empty() {
        let mut q = CoalescingQueue::new(2, true);
        assert!(q.complete(0xdea_dc0).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = CoalescingQueue::new(0, true);
    }
}
