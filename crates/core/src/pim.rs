//! A SparseP-style UPMEM PIM backend (arXiv:2204.00900).
//!
//! Where the MeNDA PU is a hardware merge tree beside the rank, SparseP's
//! substrate is a commodity UPMEM rank: many in-order DPU cores, each with
//! a small WRAM scratchpad, computing only on rank-local DRAM. This module
//! models that design on the *same* cycle-level [`menda_dram`] rank and
//! executes the same backend-agnostic [`PuJob`] descriptions, so the two
//! architectures are compared under identical memory timing, statistics
//! and energy accounting.
//!
//! The execution model is the natural SparseP mapping of the multi-way
//! merge kernels (1D partitioning across cores, local compute, host-free
//! rank-level combine):
//!
//! * **Phase A — stream-in and local sort.** The job's streams are
//!   1D-partitioned contiguously across the rank's DPUs, balanced by
//!   element count. Each DPU streams its partitions' blocks from rank
//!   DRAM (pointer/vector blocks of a gated job are streamed first by the
//!   rank dispatcher), ingests elements at [`PimConfig::elem_cpi`], merge-
//!   sorts them locally (`n·ceil(log2 n)·sort_cpi`; sorts that overflow
//!   WRAM pay extra MRAM-resident passes), then writes its sorted run to
//!   the intermediate region.
//! * **Phase B — rank-level merge and write-back.** The sorted runs are
//!   streamed back and combined by a `d`-way merge at
//!   [`PimConfig::merge_cpi`] cycles per input element (reducing equal
//!   keys when the job asks for it), and the merged result is written in
//!   the job's final output format.
//!
//! Differences from the MeNDA PU worth knowing when reading numbers:
//! DPUs have no inter-core request coalescing, so blocks shared by
//! adjacent stream partitions are fetched once per consumer
//! (`loads_coalesced` stays 0); floating-point reduction order is
//! per-run-then-merge rather than the root's global order, so reducing
//! kernels (SpMV/SpGEMM) match MeNDA to tolerance while transposition is
//! bit-identical; and concurrent host traffic
//! ([`crate::PuConfig::host_read_interval`]) does not apply — a UPMEM
//! rank is not host-accessible while kernels run.
//!
//! Both the per-cycle reference and the event-driven fast-forward path
//! ([`crate::SimOptions::fast_forward`]) are supported with bit-identical
//! results, using the same quiescence-skip bound as the PU.

use menda_dram::{MemRequest, MemorySystem, ReqKind};
use menda_trace::TraceReport;

use crate::backend::AcceleratorBackend;
use crate::config::{MendaConfig, PimConfig};
use crate::job::{FinalOutput, IntermediateFormat, PuJob};
use crate::layout::{AddressLayout, BLOCK_BYTES, PTR_BYTES};
use crate::merge_tree::Packet;
use crate::prefetch::{StreamDescriptor, StreamKind};
use crate::pu::PuResult;
use crate::stats::{IterationStats, PuStats};

/// Bytes of one sorted-run element resident in WRAM during a local sort.
const COO_ELEM_BYTES: u64 = 12;
/// Cost multiplier of a sort pass whose working set lives in MRAM rather
/// than WRAM (streaming MRAM accesses on a DPU are several times slower
/// than WRAM; SparseP §3).
const MRAM_PASS_FACTOR: u64 = 4;

/// The SparseP-style UPMEM PIM design as an [`AcceleratorBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PimBackend;

impl AcceleratorBackend for PimBackend {
    type Unit = PimUnit;
    type UnitResult = PimRankResult;

    fn name(&self) -> &'static str {
        "pim"
    }

    fn frequency_mhz(&self, config: &MendaConfig) -> u64 {
        config.pim.frequency_mhz
    }

    fn build_unit(&self, config: &MendaConfig) -> PimUnit {
        PimUnit::new(config)
    }

    fn execute_job(&self, unit: &mut PimUnit, job: PuJob) -> PimRankResult {
        unit.execute_job(job)
    }

    fn next_event_cycle(&self, unit: &PimUnit) -> Option<u64> {
        unit.next_event_cycle()
    }

    fn take_trace_report(&self, unit: &mut PimUnit) -> Option<TraceReport> {
        unit.take_trace_report()
    }
}

/// One job's output from a PIM rank, convertible into the shared
/// [`PuResult`] for backend-agnostic kernel assembly.
#[derive(Debug, Clone, PartialEq)]
pub struct PimRankResult {
    /// Major sort keys of the merged output, ascending.
    pub majors: Vec<u32>,
    /// Minor sort keys (ascending within each major).
    pub minors: Vec<u32>,
    /// Values, aligned with the key arrays.
    pub values: Vec<f32>,
    /// Execution statistics: iteration 0 is phase A (stream-in + local
    /// sort), iteration 1 phase B (rank merge + write-back).
    pub stats: PuStats,
}

impl From<PimRankResult> for PuResult {
    fn from(r: PimRankResult) -> PuResult {
        PuResult {
            majors: r.majors,
            minors: r.minors,
            values: r.values,
            stats: r.stats,
        }
    }
}

/// One simulated UPMEM-style rank: `dpus_per_rank` DPU cores beside one
/// cycle-level DRAM rank, plus the rank-level dispatcher/merge engine.
#[derive(Debug)]
pub struct PimUnit {
    cfg: PimConfig,
    /// DRAM bus cycles per DPU cycle as a (numerator, denominator) ratio.
    ticks: (u64, u64),
    layout: AddressLayout,
    mem: MemorySystem,
    dram_tick_accum: u64,
    next_req_id: u64,
    /// DPU-clock cycles elapsed across every job run on this unit.
    cycles: u64,
    fast_forward: bool,
    /// Whether to emit a [`TraceReport`]; counters live on the unit.
    traced: bool,
    trace_loads: u64,
    trace_stores: u64,
    trace_sorted: u64,
    trace_merged: u64,
}

impl PimUnit {
    /// Creates a PIM rank with its own single-rank memory system,
    /// mirroring [`crate::ProcessingUnit::new`]'s per-rank scoping.
    ///
    /// # Panics
    ///
    /// Panics if the PIM configuration is invalid.
    pub fn new(config: &MendaConfig) -> Self {
        config.pim.validate();
        let mut dram = config.dram.clone().with_channels(1).with_ranks(1);
        dram.trace = config.trace;
        Self {
            cfg: config.pim.clone(),
            ticks: (config.dram.clock_mhz, config.pim.frequency_mhz),
            layout: AddressLayout::rank_default(),
            mem: MemorySystem::new(dram),
            dram_tick_accum: 0,
            next_req_id: 0,
            cycles: 0,
            fast_forward: config.sim.fast_forward,
            traced: config.trace.enabled(),
            trace_loads: 0,
            trace_stores: 0,
            trace_sorted: 0,
            trace_merged: 0,
        }
    }

    /// The earliest future bus cycle at which this rank can change
    /// observable state (`None` when inert) — the fast-forward seam.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.mem.next_event_cycle()
    }

    /// Ends instrumentation and returns this rank's trace report (DPU
    /// counters plus the rank's DRAM events), or `None` when tracing is
    /// off.
    pub fn take_trace_report(&mut self) -> Option<TraceReport> {
        if !self.traced {
            return None;
        }
        self.traced = false;
        let mut report = TraceReport::default();
        report.add_counter("pim.cycles", self.cycles);
        report.add_counter("pim.blocks_loaded", self.trace_loads);
        report.add_counter("pim.blocks_stored", self.trace_stores);
        report.add_counter("pim.elems_sorted", self.trace_sorted);
        report.add_counter("pim.elems_merged", self.trace_merged);
        if let Some(dram) = self.mem.take_trace_report() {
            report.merge(dram);
        }
        Some(report)
    }

    /// Executes one job on this rank: phase A (stream-in + local sorts)
    /// then phase B (rank-level merge + write-back). A job with no
    /// streams finishes immediately with empty output and zero
    /// iterations, matching the MeNDA PU's empty-work accounting.
    pub fn execute_job(&mut self, job: PuJob) -> PimRankResult {
        let mut stats = PuStats::default();
        if job.descriptors.is_empty() {
            stats.dram = self.mem.stats();
            return PimRankResult {
                majors: Vec::new(),
                minors: Vec::new(),
                values: Vec::new(),
                stats,
            };
        }
        let d = self.cfg.dpus_per_rank;
        let start_cycle = self.cycles;

        // Decode stream contents up front; the DRAM simulator provides
        // timing, `IterSource` provides data (same split as the PU).
        let source = job.source.iter_source();
        let mut scratch = Vec::new();
        let mut elems: Vec<Vec<(u32, u32, f32)>> = Vec::with_capacity(job.descriptors.len());
        for desc in &job.descriptors {
            source.materialize_into(desc, desc.start..desc.end, &mut scratch);
            elems.push(
                scratch
                    .iter()
                    .map(|p| match *p {
                        Packet::Nz {
                            major,
                            minor,
                            value,
                        } => (major, minor, value),
                        Packet::Eol => unreachable!("materialized streams carry no EOL"),
                    })
                    .collect(),
            );
        }

        // 1D partitioning: contiguous stream ranges per DPU, balanced by
        // element count (SparseP's equal-nnz 1D scheme).
        let lens: Vec<u64> = job.descriptors.iter().map(|s| s.end - s.start).collect();
        let parts = partition_streams(&lens, d);

        // ---- Phase A: stream-in, local sort, run write-back. ----
        let dram_before = self.mem.stats();
        let mut it_a = IterationStats::default();

        // The dispatcher (tag `d`) streams pointer/vector blocks of a
        // gated job; each DPU (tag `i`) streams its partitions' arrays.
        // Requests interleave round-robin across cores at the rank port.
        let mut lists: Vec<Vec<(u64, usize)>> = Vec::with_capacity(d + 1);
        for (i, part) in parts.iter().enumerate() {
            let mut list = Vec::new();
            for desc in &job.descriptors[part.clone()] {
                push_stream_blocks(&self.layout, desc, i, &mut list);
            }
            lists.push(list);
        }
        let mut gate_list = Vec::new();
        if let Some(gate) = &job.gate {
            for &b in &gate.blocks {
                gate_list.push((gate.ptr_base + b * BLOCK_BYTES, d));
                if let Some(vb) = gate.vector_base {
                    gate_list.push((vb + b * BLOCK_BYTES, d));
                }
            }
        }
        lists.push(gate_list);
        let reads = round_robin(lists);
        let mut arrivals = vec![start_cycle; d + 1];
        self.drive(&reads, false, &mut it_a, &mut arrivals);

        // Each DPU computes once its own blocks (and the dispatcher's
        // pointer stream) have arrived; the phase barrier is the slowest
        // core.
        let dispatch_done = arrivals[d];
        let mut barrier = self.cycles;
        let mut active = 0u64;
        for (i, part) in parts.iter().enumerate() {
            let n: u64 = lens[part.clone()].iter().sum();
            if n == 0 {
                continue;
            }
            active += 1;
            let compute = n * self.cfg.elem_cpi + self.local_sort_cycles(n);
            barrier = barrier.max(arrivals[i].max(dispatch_done) + compute);
        }
        self.advance_to(barrier);

        // Local sorts: one run per non-empty DPU, in core order.
        let mut runs: Vec<Vec<(u32, u32, f32)>> = Vec::new();
        for part in &parts {
            let mut run: Vec<(u32, u32, f32)> =
                elems[part.clone()].iter().flatten().copied().collect();
            if run.is_empty() {
                continue;
            }
            run.sort_by_key(|&(ma, mi, _)| (ma, mi));
            if job.reduce {
                run = reduce_sorted(run);
            }
            runs.push(run);
        }
        let total_run_elems: u64 = runs.iter().map(|r| r.len() as u64).sum();
        self.trace_sorted += total_run_elems;

        // Write the sorted runs to the intermediate region (region 0 of
        // the ping-pong COO space, in the job's intermediate format).
        let run_blocks = self.intermediate_blocks(job.intermediate, total_run_elems);
        self.drive(&run_blocks, true, &mut it_a, &mut arrivals);
        it_a.cycles = self.cycles - start_cycle;
        it_a.rounds = active;
        it_a.nz_emitted = total_run_elems;
        set_dram_delta(&mut it_a, &dram_before, &self.mem.stats());
        stats.iterations.push(it_a);

        // ---- Phase B: rank-level d-way merge, final write-back. ----
        let phase_b_start = self.cycles;
        let dram_before = self.mem.stats();
        let mut it_b = IterationStats::default();
        let mut merge_arrival = vec![self.cycles; 1];
        let read_back: Vec<(u64, usize)> = run_blocks.iter().map(|&(addr, _)| (addr, 0)).collect();
        self.drive(&read_back, false, &mut it_b, &mut merge_arrival);

        let (majors, minors, values) = rank_merge(&runs, job.reduce);
        self.trace_merged += majors.len() as u64;
        self.advance_to(merge_arrival[0] + total_run_elems * self.cfg.merge_cpi);

        let out_blocks = self.output_blocks(job.final_out, majors.len() as u64);
        self.drive(&out_blocks, true, &mut it_b, &mut merge_arrival);
        it_b.cycles = self.cycles - phase_b_start;
        it_b.rounds = runs.len() as u64;
        it_b.nz_emitted = majors.len() as u64;
        set_dram_delta(&mut it_b, &dram_before, &self.mem.stats());
        stats.iterations.push(it_b);

        stats.dram = self.mem.stats();
        PimRankResult {
            majors,
            minors,
            values,
            stats,
        }
    }

    /// DPU cycles to merge-sort `n` resident elements:
    /// `n·ceil(log2 n)·sort_cpi`, with passes whose working set exceeds
    /// half the WRAM (double-buffered) charged [`MRAM_PASS_FACTOR`]×.
    fn local_sort_cycles(&self, n: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        let passes = ceil_log2(n);
        let chunk = (self.cfg.wram_bytes as u64 / COO_ELEM_BYTES / 2).max(1);
        let chunks = n.div_ceil(chunk);
        let spill = if chunks > 1 { ceil_log2(chunks) } else { 0 };
        let wram = passes - spill;
        n * wram * self.cfg.sort_cpi + n * spill * self.cfg.sort_cpi * MRAM_PASS_FACTOR
    }

    /// Block addresses of `total` intermediate-format elements in
    /// ping-pong region 0, arrays interleaved (all tagged 0).
    fn intermediate_blocks(&self, fmt: IntermediateFormat, total: u64) -> Vec<(u64, usize)> {
        let region = &self.layout.coo[0];
        let bases: &[u64] = match fmt {
            IntermediateFormat::Coo => &region[..],
            IntermediateFormat::Pair => &[region[0], region[2]],
        };
        let lists = bases
            .iter()
            .map(|&b| {
                self.layout
                    .elem_blocks(b, 0, total)
                    .map(|a| (a, 0))
                    .collect()
            })
            .collect();
        round_robin(lists)
    }

    /// Block addresses of the final output: CSC index/value arrays plus
    /// the column pointer array, or the dense vector (all tagged 0).
    fn output_blocks(&self, out: FinalOutput, n_out: u64) -> Vec<(u64, usize)> {
        let l = &self.layout;
        match out {
            FinalOutput::Csc { ncols } => {
                let idx = l.elem_blocks(l.out_idx, 0, n_out).map(|a| (a, 0)).collect();
                let val = l.elem_blocks(l.out_val, 0, n_out).map(|a| (a, 0)).collect();
                let entries_per_block = BLOCK_BYTES / PTR_BYTES;
                let ptr = (0..(ncols + 1).div_ceil(entries_per_block))
                    .map(|b| (l.out_ptr + b * BLOCK_BYTES, 0))
                    .collect();
                round_robin(vec![idx, val, ptr])
            }
            FinalOutput::Dense { rows } => {
                l.elem_blocks(l.out_val, 0, rows).map(|a| (a, 0)).collect()
            }
        }
    }

    /// Issues `reqs` through the rank port in order, one per DPU cycle
    /// when the channel accepts, ticking DRAM at the clock ratio, until
    /// every request has been issued and the rank is idle. Records each
    /// read's completion cycle in `arrivals[tag]` (last arrival wins —
    /// callers key tags so that the *latest* arrival is what gates
    /// compute). With fast-forwarding on, provably event-free spans are
    /// skipped with the same bound as the PU; results are bit-identical.
    fn drive(
        &mut self,
        reqs: &[(u64, usize)],
        write: bool,
        it: &mut IterationStats,
        arrivals: &mut [u64],
    ) {
        let (num, den) = self.ticks;
        let id_base = self.next_req_id;
        let mut next = 0usize;
        loop {
            if next >= reqs.len() && self.mem.is_idle() {
                break;
            }
            if self.fast_forward {
                let can_issue = next < reqs.len() && {
                    let probe_id = self.next_req_id;
                    let probe = if write {
                        MemRequest::write(reqs[next].0, probe_id)
                    } else {
                        MemRequest::read(reqs[next].0, probe_id)
                    };
                    self.mem.can_accept(&probe)
                };
                let resp_ready = self
                    .mem
                    .next_response_at()
                    .is_some_and(|t| t <= self.mem.now());
                if !can_issue && !resp_ready {
                    // Longest skip that keeps the DRAM side unobserved
                    // (same bound as the PU's quiescence skip).
                    let ev = self
                        .mem
                        .next_event_cycle()
                        .expect("PIM deadlock suspected: quiescent with no pending events");
                    let span = (ev - self.mem.now()) * den;
                    let n = 1 + (span - 1 - self.dram_tick_accum) / num;
                    let ticks = self.dram_tick_accum + n * num;
                    self.mem.advance(ticks / den);
                    self.dram_tick_accum = ticks % den;
                    self.cycles += n;
                    continue;
                }
            }
            self.cycles += 1;
            // 1. Responses that completed by now.
            while let Some(resp) = self.mem.pop_response() {
                if resp.kind == ReqKind::Read {
                    let tag = reqs[(resp.id - id_base) as usize].1;
                    arrivals[tag] = self.cycles;
                }
            }
            // 2. Issue the next request if the channel accepts it.
            if next < reqs.len() {
                let (addr, _) = reqs[next];
                let req = if write {
                    MemRequest::write(addr, self.next_req_id)
                } else {
                    MemRequest::read(addr, self.next_req_id)
                };
                // Probe before enqueueing so a full queue is not counted
                // as a rejection (the fast-forward path never attempts
                // one; statistics must match it bit for bit).
                if self.mem.can_accept(&req) && self.mem.try_enqueue(req) {
                    self.next_req_id += 1;
                    next += 1;
                    if write {
                        it.stores_issued += 1;
                        self.trace_stores += 1;
                    } else {
                        it.loads_issued += 1;
                        self.trace_loads += 1;
                    }
                }
            }
            // 3. DRAM clock (bus runs num : den faster than the DPUs).
            self.dram_tick_accum += num;
            while self.dram_tick_accum >= den {
                self.mem.tick();
                self.dram_tick_accum -= den;
            }
        }
    }

    /// Advances to DPU cycle `cycle` during a compute-only span. The rank
    /// is idle here, so the tick-exact [`MemorySystem::advance`] is
    /// bit-identical to per-cycle ticking in both execution disciplines.
    fn advance_to(&mut self, cycle: u64) {
        if cycle <= self.cycles {
            return;
        }
        let (num, den) = self.ticks;
        let ticks = self.dram_tick_accum + (cycle - self.cycles) * num;
        self.mem.advance(ticks / den);
        self.dram_tick_accum = ticks % den;
        self.cycles = cycle;
    }
}

/// Ceiling of log2 for `n >= 1`.
fn ceil_log2(n: u64) -> u64 {
    (64 - (n - 1).leading_zeros() as u64).max(1) * u64::from(n > 1)
}

/// Contiguous stream ranges per DPU, balanced by cumulative element
/// count; the last core takes any remainder.
fn partition_streams(lens: &[u64], d: usize) -> Vec<std::ops::Range<usize>> {
    let total: u64 = lens.iter().sum();
    let mut parts = Vec::with_capacity(d);
    let mut s = 0usize;
    let mut acc = 0u64;
    for k in 0..d {
        let start = s;
        let target = total * (k as u64 + 1) / d as u64;
        while s < lens.len() && (acc < target || k + 1 == d) {
            acc += lens[s];
            s += 1;
        }
        parts.push(start..s);
    }
    parts
}

/// Appends the block loads of one stream (arrays interleaved) tagged with
/// the consuming DPU. Mirrors the PU prefetcher's per-kind array bases.
fn push_stream_blocks(
    layout: &AddressLayout,
    desc: &StreamDescriptor,
    tag: usize,
    out: &mut Vec<(u64, usize)>,
) {
    let bases: Vec<u64> = match desc.kind {
        StreamKind::CsrRow { .. } | StreamKind::SpmvCol { .. } => {
            vec![layout.col_idx, layout.values]
        }
        StreamKind::Coo { region } => layout.coo[region as usize].to_vec(),
        StreamKind::Pair { region } => {
            let r = &layout.coo[region as usize];
            vec![r[0], r[2]]
        }
    };
    let lists = bases
        .iter()
        .map(|&b| {
            layout
                .elem_blocks(b, desc.start, desc.end)
                .map(|a| (a, tag))
                .collect()
        })
        .collect();
    out.extend(round_robin(lists));
}

/// Interleaves several request lists one entry at a time — the rank port
/// services cores (or arrays) round-robin.
fn round_robin(lists: Vec<Vec<(u64, usize)>>) -> Vec<(u64, usize)> {
    let mut iters: Vec<_> = lists.into_iter().map(|l| l.into_iter()).collect();
    let mut out = Vec::new();
    loop {
        let mut any = false;
        for it in &mut iters {
            if let Some(x) = it.next() {
                out.push(x);
                any = true;
            }
        }
        if !any {
            return out;
        }
    }
}

/// Sums adjacent elements with equal (major, minor) keys in a sorted run.
fn reduce_sorted(run: Vec<(u32, u32, f32)>) -> Vec<(u32, u32, f32)> {
    let mut out: Vec<(u32, u32, f32)> = Vec::with_capacity(run.len());
    for (ma, mi, v) in run {
        match out.last_mut() {
            Some(last) if last.0 == ma && last.1 == mi => last.2 += v,
            _ => out.push((ma, mi, v)),
        }
    }
    out
}

/// Stable `d`-way merge of sorted runs by (major, minor) — ties go to the
/// earliest run, so reduction order is deterministic for any thread count.
fn rank_merge(runs: &[Vec<(u32, u32, f32)>], reduce: bool) -> (Vec<u32>, Vec<u32>, Vec<f32>) {
    let mut pos = vec![0usize; runs.len()];
    let mut majors = Vec::new();
    let mut minors = Vec::new();
    let mut values = Vec::new();
    loop {
        let mut best: Option<(u32, u32, usize)> = None;
        for (r, run) in runs.iter().enumerate() {
            if let Some(&(ma, mi, _)) = run.get(pos[r]) {
                if best.is_none_or(|(bma, bmi, _)| (ma, mi) < (bma, bmi)) {
                    best = Some((ma, mi, r));
                }
            }
        }
        let Some((ma, mi, r)) = best else {
            return (majors, minors, values);
        };
        let v = runs[r][pos[r]].2;
        pos[r] += 1;
        if reduce && majors.last() == Some(&ma) && minors.last() == Some(&mi) {
            *values.last_mut().expect("non-empty on duplicate key") += v;
        } else {
            majors.push(ma);
            minors.push(mi);
            values.push(v);
        }
    }
}

/// Stores the phase's DRAM row-locality deltas into `it` (the same
/// per-iteration accounting the PU keeps).
fn set_dram_delta(
    it: &mut IterationStats,
    before: &menda_dram::DramStats,
    after: &menda_dram::DramStats,
) {
    it.dram_row_hits = after.row_hits - before.row_hits;
    it.dram_row_misses = after.row_misses - before.row_misses;
    it.dram_row_conflicts = after.row_conflicts - before.row_conflicts;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::transpose_job;
    use menda_sparse::gen;

    fn pim_transpose(cfg: &MendaConfig, m: &menda_sparse::CsrMatrix) -> PimRankResult {
        let mut unit = PimUnit::new(cfg);
        unit.execute_job(transpose_job(m.clone(), 0))
    }

    #[test]
    fn transpose_output_matches_csc_order() {
        let m = gen::rmat(64, 512, gen::RmatParams::PAPER, 11);
        let cfg = MendaConfig::small_test();
        let r = pim_transpose(&cfg, &m);
        let csc = m.to_csc();
        // Flatten the expected CSC into (col, row, val) triples.
        let mut expect = Vec::new();
        for c in 0..m.ncols() {
            for e in csc.col_ptr()[c]..csc.col_ptr()[c + 1] {
                expect.push((c as u32, csc.row_idx()[e], csc.values()[e]));
            }
        }
        let got: Vec<(u32, u32, f32)> = r
            .majors
            .iter()
            .zip(&r.minors)
            .zip(&r.values)
            .map(|((&ma, &mi), &v)| (ma, mi, v))
            .collect();
        assert_eq!(got, expect);
        assert!(r.stats.total_cycles() > 0);
        assert_eq!(r.stats.num_iterations(), 2);
        assert!(r.stats.total_traffic_bytes() > 0);
    }

    #[test]
    fn empty_job_is_free() {
        let cfg = MendaConfig::small_test();
        let r = pim_transpose(&cfg, &menda_sparse::CsrMatrix::zeros(16, 16));
        assert!(r.majors.is_empty());
        assert_eq!(r.stats.num_iterations(), 0);
        assert_eq!(r.stats.total_cycles(), 0);
    }

    #[test]
    fn fast_forward_is_bit_identical() {
        let m = gen::rmat(64, 768, gen::RmatParams::PAPER, 23);
        let base = MendaConfig::small_test();
        let ff = pim_transpose(&base.clone().with_fast_forward(true), &m);
        let reference = pim_transpose(&base.clone().with_fast_forward(false), &m);
        assert_eq!(ff, reference);
    }

    #[test]
    fn more_dpus_do_not_change_the_output() {
        let m = gen::uniform(48, 600, 5);
        let base = MendaConfig::small_test();
        let a = pim_transpose(
            &base.clone().with_pim(PimConfig::small_test().with_dpus(2)),
            &m,
        );
        let b = pim_transpose(
            &base.clone().with_pim(PimConfig::small_test().with_dpus(16)),
            &m,
        );
        assert_eq!(a.majors, b.majors);
        assert_eq!(a.minors, b.minors);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn partition_is_contiguous_and_complete() {
        let lens = [5u64, 0, 9, 1, 1, 7, 3];
        let parts = partition_streams(&lens, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].start, 0);
        assert_eq!(parts.last().unwrap().end, lens.len());
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn sort_cost_charges_wram_spills() {
        let cfg = MendaConfig::small_test();
        let unit = PimUnit::new(&cfg);
        assert_eq!(unit.local_sort_cycles(1), 0);
        let small = unit.local_sort_cycles(1000);
        assert_eq!(small, 1000 * 10 * cfg.pim.sort_cpi);
        // 10_000 elements exceed the 64 KiB WRAM working set, so some
        // passes pay the MRAM factor.
        let big = unit.local_sort_cycles(10_000);
        assert!(big > 10_000 * 14 * cfg.pim.sort_cpi);
    }

    #[test]
    fn rank_merge_reduces_across_runs() {
        let runs = vec![
            vec![(1, 1, 1.0), (2, 0, 2.0)],
            vec![(1, 1, 3.0), (3, 0, 4.0)],
        ];
        let (ma, mi, v) = rank_merge(&runs, true);
        assert_eq!(ma, vec![1, 2, 3]);
        assert_eq!(mi, vec![1, 0, 0]);
        assert_eq!(v, vec![4.0, 2.0, 4.0]);
        let (ma, _, v) = rank_merge(&runs, false);
        assert_eq!(ma, vec![1, 1, 2, 3]);
        assert_eq!(v, vec![1.0, 3.0, 2.0, 4.0]);
    }
}
