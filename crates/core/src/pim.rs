//! A SparseP-style UPMEM PIM backend (arXiv:2204.00900).
//!
//! Where the MeNDA PU is a hardware merge tree beside the rank, SparseP's
//! substrate is a commodity UPMEM rank: many in-order DPU cores, each with
//! a small WRAM scratchpad, computing only on rank-local DRAM. This module
//! models that design on the *same* cycle-level [`menda_dram`] rank and
//! executes the same backend-agnostic [`PuJob`] descriptions, so the two
//! architectures are compared under identical memory timing, statistics
//! and energy accounting.
//!
//! The execution model is the natural SparseP mapping of the multi-way
//! merge kernels (1D partitioning across cores, local compute, host-free
//! rank-level combine):
//!
//! * **Phase A — stream-in and local sort.** The job's streams are
//!   1D-partitioned contiguously across the rank's DPUs, balanced by
//!   element count. Each DPU streams its partitions' blocks from rank
//!   DRAM (pointer/vector blocks of a gated job are streamed first by the
//!   rank dispatcher), ingests elements at [`PimConfig::elem_cpi`], merge-
//!   sorts them locally (`n·ceil(log2 n)·sort_cpi`; sorts that overflow
//!   WRAM pay extra MRAM-resident passes), then writes its sorted run to
//!   the intermediate region.
//! * **Phase B — rank-level merge and write-back.** The sorted runs are
//!   streamed back and combined by a `d`-way merge at
//!   [`PimConfig::merge_cpi`] cycles per input element (reducing equal
//!   keys when the job asks for it), and the merged result is written in
//!   the job's final output format.
//!
//! Differences from the MeNDA PU worth knowing when reading numbers:
//! DPUs have no inter-core request coalescing, so blocks shared by
//! adjacent stream partitions are fetched once per consumer
//! (`loads_coalesced` stays 0); floating-point reduction order is
//! per-run-then-merge rather than the root's global order, so reducing
//! kernels (SpMV/SpGEMM) match MeNDA to tolerance while transposition is
//! bit-identical; and concurrent host traffic
//! ([`crate::PuConfig::host_read_interval`]) does not apply — a UPMEM
//! rank is not host-accessible while kernels run.
//!
//! Both the per-cycle reference and the event-driven fast-forward path
//! ([`crate::SimOptions::fast_forward`]) are supported with bit-identical
//! results, using the same quiescence-skip bound as the PU.

use menda_dram::{Decoder, DramStats, Encoder, MemRequest, MemorySystem, ReqKind, SnapError};
use menda_trace::TraceReport;

use crate::backend::{AcceleratorBackend, ResumableBackend};
use crate::config::{MendaConfig, PimConfig};
use crate::job::{FinalOutput, IntermediateFormat, PuJob};
use crate::layout::{AddressLayout, BLOCK_BYTES, PTR_BYTES};
use crate::merge_tree::Packet;
use crate::prefetch::{StreamDescriptor, StreamKind};
use crate::pu::PuResult;
use crate::stats::{IterationStats, PuStats};

/// Bytes of one sorted-run element resident in WRAM during a local sort.
const COO_ELEM_BYTES: u64 = 12;
/// Cost multiplier of a sort pass whose working set lives in MRAM rather
/// than WRAM (streaming MRAM accesses on a DPU are several times slower
/// than WRAM; SparseP §3).
const MRAM_PASS_FACTOR: u64 = 4;

/// The SparseP-style UPMEM PIM design as an [`AcceleratorBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PimBackend;

impl AcceleratorBackend for PimBackend {
    type Unit = PimUnit;
    type UnitResult = PimRankResult;

    fn name(&self) -> &'static str {
        "pim"
    }

    fn frequency_mhz(&self, config: &MendaConfig) -> u64 {
        config.pim.frequency_mhz
    }

    fn build_unit(&self, config: &MendaConfig) -> PimUnit {
        PimUnit::new(config)
    }

    fn execute_job(&self, unit: &mut PimUnit, job: PuJob) -> PimRankResult {
        unit.execute_job(job)
    }

    fn next_event_cycle(&self, unit: &PimUnit) -> Option<u64> {
        unit.next_event_cycle()
    }

    fn take_trace_report(&self, unit: &mut PimUnit) -> Option<TraceReport> {
        unit.take_trace_report()
    }
}

/// One job's output from a PIM rank, convertible into the shared
/// [`PuResult`] for backend-agnostic kernel assembly.
#[derive(Debug, Clone, PartialEq)]
pub struct PimRankResult {
    /// Major sort keys of the merged output, ascending.
    pub majors: Vec<u32>,
    /// Minor sort keys (ascending within each major).
    pub minors: Vec<u32>,
    /// Values, aligned with the key arrays.
    pub values: Vec<f32>,
    /// Execution statistics: iteration 0 is phase A (stream-in + local
    /// sort), iteration 1 phase B (rank merge + write-back).
    pub stats: PuStats,
}

impl From<PimRankResult> for PuResult {
    fn from(r: PimRankResult) -> PuResult {
        PuResult {
            majors: r.majors,
            minors: r.minors,
            values: r.values,
            stats: r.stats,
        }
    }
}

/// One simulated UPMEM-style rank: `dpus_per_rank` DPU cores beside one
/// cycle-level DRAM rank, plus the rank-level dispatcher/merge engine.
#[derive(Debug)]
pub struct PimUnit {
    cfg: PimConfig,
    /// DRAM bus cycles per DPU cycle as a (numerator, denominator) ratio.
    ticks: (u64, u64),
    layout: AddressLayout,
    mem: MemorySystem,
    dram_tick_accum: u64,
    next_req_id: u64,
    /// DPU-clock cycles elapsed across every job run on this unit.
    cycles: u64,
    fast_forward: bool,
    /// Whether to emit a [`TraceReport`]; counters live on the unit.
    traced: bool,
    trace_loads: u64,
    trace_stores: u64,
    trace_sorted: u64,
    trace_merged: u64,
}

impl PimUnit {
    /// Creates a PIM rank with its own single-rank memory system,
    /// mirroring [`crate::ProcessingUnit::new`]'s per-rank scoping.
    ///
    /// # Panics
    ///
    /// Panics if the PIM configuration is invalid.
    pub fn new(config: &MendaConfig) -> Self {
        config.pim.validate();
        let mut dram = config.dram.clone().with_channels(1).with_ranks(1);
        dram.trace = config.trace;
        Self {
            cfg: config.pim.clone(),
            ticks: (config.dram.clock_mhz, config.pim.frequency_mhz),
            layout: AddressLayout::rank_default(),
            mem: MemorySystem::new(dram),
            dram_tick_accum: 0,
            next_req_id: 0,
            cycles: 0,
            fast_forward: config.sim.fast_forward,
            traced: config.trace.enabled(),
            trace_loads: 0,
            trace_stores: 0,
            trace_sorted: 0,
            trace_merged: 0,
        }
    }

    /// The earliest future bus cycle at which this rank can change
    /// observable state (`None` when inert) — the fast-forward seam.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.mem.next_event_cycle()
    }

    /// The rank's DRAM command log (empty unless
    /// [`menda_dram::DramConfig::log_commands`] is set) — mirrors
    /// [`crate::ProcessingUnit::dram_command_log`] so differential suites
    /// can compare command streams across backends and restore points.
    pub fn dram_command_log(&self) -> &[menda_dram::CommandRecord] {
        self.mem.command_log(0)
    }

    /// Ends instrumentation and returns this rank's trace report (DPU
    /// counters plus the rank's DRAM events), or `None` when tracing is
    /// off.
    pub fn take_trace_report(&mut self) -> Option<TraceReport> {
        if !self.traced {
            return None;
        }
        self.traced = false;
        let mut report = TraceReport::default();
        report.add_counter("pim.cycles", self.cycles);
        report.add_counter("pim.blocks_loaded", self.trace_loads);
        report.add_counter("pim.blocks_stored", self.trace_stores);
        report.add_counter("pim.elems_sorted", self.trace_sorted);
        report.add_counter("pim.elems_merged", self.trace_merged);
        if let Some(dram) = self.mem.take_trace_report() {
            report.merge(dram);
        }
        Some(report)
    }

    /// Executes one job on this rank: phase A (stream-in + local sorts)
    /// then phase B (rank-level merge + write-back). A job with no
    /// streams finishes immediately with empty output and zero
    /// iterations, matching the MeNDA PU's empty-work accounting.
    ///
    /// Thin wrapper over the checkpointable [`PimRun`] phase machine with
    /// no pause target, so the straight-through path and the
    /// pause/restore path cannot diverge.
    pub fn execute_job(&mut self, job: PuJob) -> PimRankResult {
        let mut run = PimRun::new(self, job);
        let done = run.run_until(self, None);
        debug_assert!(done, "unbounded PIM job run must finish");
        run.finish(self)
    }

    /// DPU cycles to merge-sort `n` resident elements:
    /// `n·ceil(log2 n)·sort_cpi`, with passes whose working set exceeds
    /// half the WRAM (double-buffered) charged [`MRAM_PASS_FACTOR`]×.
    fn local_sort_cycles(&self, n: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        let passes = ceil_log2(n);
        let chunk = (self.cfg.wram_bytes as u64 / COO_ELEM_BYTES / 2).max(1);
        let chunks = n.div_ceil(chunk);
        let spill = if chunks > 1 { ceil_log2(chunks) } else { 0 };
        let wram = passes - spill;
        n * wram * self.cfg.sort_cpi + n * spill * self.cfg.sort_cpi * MRAM_PASS_FACTOR
    }

    /// Block addresses of `total` intermediate-format elements in
    /// ping-pong region 0, arrays interleaved (all tagged 0).
    fn intermediate_blocks(&self, fmt: IntermediateFormat, total: u64) -> Vec<(u64, usize)> {
        let region = &self.layout.coo[0];
        let bases: &[u64] = match fmt {
            IntermediateFormat::Coo => &region[..],
            IntermediateFormat::Pair => &[region[0], region[2]],
        };
        let lists = bases
            .iter()
            .map(|&b| {
                self.layout
                    .elem_blocks(b, 0, total)
                    .map(|a| (a, 0))
                    .collect()
            })
            .collect();
        round_robin(lists)
    }

    /// Block addresses of the final output: CSC index/value arrays plus
    /// the column pointer array, or the dense vector (all tagged 0).
    fn output_blocks(&self, out: FinalOutput, n_out: u64) -> Vec<(u64, usize)> {
        let l = &self.layout;
        match out {
            FinalOutput::Csc { ncols } => {
                let idx = l.elem_blocks(l.out_idx, 0, n_out).map(|a| (a, 0)).collect();
                let val = l.elem_blocks(l.out_val, 0, n_out).map(|a| (a, 0)).collect();
                let entries_per_block = BLOCK_BYTES / PTR_BYTES;
                let ptr = (0..(ncols + 1).div_ceil(entries_per_block))
                    .map(|b| (l.out_ptr + b * BLOCK_BYTES, 0))
                    .collect();
                round_robin(vec![idx, val, ptr])
            }
            FinalOutput::Dense { rows } => {
                l.elem_blocks(l.out_val, 0, rows).map(|a| (a, 0)).collect()
            }
        }
    }

    /// Advances to DPU cycle `cycle` during a compute-only span. The rank
    /// is idle here, so the tick-exact [`MemorySystem::advance`] is
    /// bit-identical to per-cycle ticking in both execution disciplines
    /// (and to any split of the span — the tick accumulator carries the
    /// remainder, so `advance_to(a); advance_to(b)` equals
    /// `advance_to(b)` by the floor-division identity).
    fn advance_to(&mut self, cycle: u64) {
        if cycle <= self.cycles {
            return;
        }
        let (num, den) = self.ticks;
        let ticks = self.dram_tick_accum + (cycle - self.cycles) * num;
        self.mem.advance(ticks / den);
        self.dram_tick_accum = ticks % den;
        self.cycles = cycle;
    }

    /// Serializes the unit-level dynamic state: clocks, request ids, the
    /// trace counters and the rank's DRAM simulator.
    pub(crate) fn save_unit_state(&self, enc: &mut Encoder) {
        enc.u64(self.cycles);
        enc.u64(self.dram_tick_accum);
        enc.u64(self.next_req_id);
        enc.u64(self.trace_loads);
        enc.u64(self.trace_stores);
        enc.u64(self.trace_sorted);
        enc.u64(self.trace_merged);
        self.mem.save_state(enc);
    }

    /// Restores state saved by [`PimUnit::save_unit_state`] into a
    /// freshly built unit of the same configuration.
    pub(crate) fn restore_unit_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapError> {
        self.cycles = dec.u64()?;
        let accum = dec.u64()?;
        if accum >= self.ticks.1 {
            return Err(SnapError::BadValue);
        }
        self.dram_tick_accum = accum;
        self.next_req_id = dec.u64()?;
        self.trace_loads = dec.u64()?;
        self.trace_stores = dec.u64()?;
        self.trace_sorted = dec.u64()?;
        self.trace_merged = dec.u64()?;
        self.mem.restore_state(dec)
    }
}

/// Where a [`PimRun`] stands in the two-phase execution pipeline. Tags
/// are stable for serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PimPhase {
    /// Phase A stream-in: DPU partition blocks plus the dispatcher's
    /// pointer/vector stream.
    LoadStreams,
    /// Phase A compute: element ingest + local merge sorts, gated by the
    /// slowest core.
    SortBarrier,
    /// Phase A write-back of the sorted runs to the intermediate region.
    WriteRuns,
    /// Phase B read-back of the runs into the rank merge engine.
    ReadRuns,
    /// Phase B merge compute span.
    MergeBarrier,
    /// Phase B final-output write-back.
    WriteOut,
    /// Everything finished; [`PimRun::finish`] may consume the run.
    Done,
}

impl PimPhase {
    fn tag(self) -> u8 {
        match self {
            PimPhase::LoadStreams => 0,
            PimPhase::SortBarrier => 1,
            PimPhase::WriteRuns => 2,
            PimPhase::ReadRuns => 3,
            PimPhase::MergeBarrier => 4,
            PimPhase::WriteOut => 5,
            PimPhase::Done => 6,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, SnapError> {
        Ok(match tag {
            0 => PimPhase::LoadStreams,
            1 => PimPhase::SortBarrier,
            2 => PimPhase::WriteRuns,
            3 => PimPhase::ReadRuns,
            4 => PimPhase::MergeBarrier,
            5 => PimPhase::WriteOut,
            6 => PimPhase::Done,
            _ => return Err(SnapError::BadValue),
        })
    }
}

/// A checkpointable in-flight PIM job: the phase machine equivalent of
/// the old straight-through `execute_job`, able to pause at an arbitrary
/// DPU cycle and serialize.
///
/// Everything that is a pure function of the job and the configuration —
/// the decoded stream elements, the 1D partitioning, the per-DPU compute
/// costs, the sorted runs, the merged output and all four request lists —
/// is recomputed at restore. Only the dynamic state (phase, drive
/// progress, arrival times, per-phase statistics, clock anchors) is
/// serialized.
///
/// Public only to serve as [`ResumableBackend::Run`] for [`PimBackend`];
/// drive it through the [`crate::Engine`] checkpoint entry points.
#[derive(Debug)]
pub struct PimRun {
    // ---- derived from the job at construction and restore ----
    trivial: bool,
    d: usize,
    reads: Vec<(u64, usize)>,
    run_blocks: Vec<(u64, usize)>,
    read_back: Vec<(u64, usize)>,
    out_blocks: Vec<(u64, usize)>,
    /// Per-DPU ingest+sort cycles (0 for cores with no elements).
    compute: Vec<u64>,
    active: u64,
    total_run_elems: u64,
    runs_count: u64,
    merged: (Vec<u32>, Vec<u32>, Vec<f32>),
    // ---- dynamic state ----
    phase: PimPhase,
    /// Next request index within the current drive phase.
    next: usize,
    /// `next_req_id` at entry of the current drive phase (maps response
    /// ids back to request-list indices).
    drive_id_base: u64,
    /// Last read-arrival cycle per tag: DPUs `0..d`, dispatcher `d`.
    arrivals: Vec<u64>,
    /// Single-tag arrival slot of the phase B drives.
    merge_arrival: Vec<u64>,
    it_a: IterationStats,
    it_b: IterationStats,
    start_cycle: u64,
    phase_b_start: u64,
    /// DRAM stats at the start of the phase group currently accumulating
    /// (phase A until `WriteRuns` completes, then phase B).
    dram_before: DramStats,
}

impl PimRun {
    /// Prepares a job for execution on `unit` without consuming cycles:
    /// decodes streams, partitions, computes the sorted runs and the
    /// merged output, and builds all request lists.
    pub(crate) fn new(unit: &PimUnit, job: PuJob) -> Self {
        let d = unit.cfg.dpus_per_rank;
        if job.descriptors.is_empty() {
            return Self {
                trivial: true,
                d,
                reads: Vec::new(),
                run_blocks: Vec::new(),
                read_back: Vec::new(),
                out_blocks: Vec::new(),
                compute: Vec::new(),
                active: 0,
                total_run_elems: 0,
                runs_count: 0,
                merged: (Vec::new(), Vec::new(), Vec::new()),
                phase: PimPhase::Done,
                next: 0,
                drive_id_base: unit.next_req_id,
                arrivals: Vec::new(),
                merge_arrival: vec![0; 1],
                it_a: IterationStats::default(),
                it_b: IterationStats::default(),
                start_cycle: unit.cycles,
                phase_b_start: unit.cycles,
                dram_before: unit.mem.stats(),
            };
        }

        // Decode stream contents up front; the DRAM simulator provides
        // timing, `IterSource` provides data (same split as the PU).
        let source = job.source.iter_source();
        let mut scratch = Vec::new();
        let mut elems: Vec<Vec<(u32, u32, f32)>> = Vec::with_capacity(job.descriptors.len());
        for desc in &job.descriptors {
            source.materialize_into(desc, desc.start..desc.end, &mut scratch);
            elems.push(
                scratch
                    .iter()
                    .map(|p| match *p {
                        Packet::Nz {
                            major,
                            minor,
                            value,
                        } => (major, minor, value),
                        Packet::Eol => unreachable!("materialized streams carry no EOL"),
                    })
                    .collect(),
            );
        }

        // 1D partitioning: contiguous stream ranges per DPU, balanced by
        // element count (SparseP's equal-nnz 1D scheme).
        let lens: Vec<u64> = job.descriptors.iter().map(|s| s.end - s.start).collect();
        let parts = partition_streams(&lens, d);

        // The dispatcher (tag `d`) streams pointer/vector blocks of a
        // gated job; each DPU (tag `i`) streams its partitions' arrays.
        // Requests interleave round-robin across cores at the rank port.
        let mut lists: Vec<Vec<(u64, usize)>> = Vec::with_capacity(d + 1);
        for (i, part) in parts.iter().enumerate() {
            let mut list = Vec::new();
            for desc in &job.descriptors[part.clone()] {
                push_stream_blocks(&unit.layout, desc, i, &mut list);
            }
            lists.push(list);
        }
        let mut gate_list = Vec::new();
        if let Some(gate) = &job.gate {
            for &b in &gate.blocks {
                gate_list.push((gate.ptr_base + b * BLOCK_BYTES, d));
                if let Some(vb) = gate.vector_base {
                    gate_list.push((vb + b * BLOCK_BYTES, d));
                }
            }
        }
        lists.push(gate_list);
        let reads = round_robin(lists);

        // Per-DPU compute cost: elements ingested at `elem_cpi` plus the
        // local merge sort; the phase barrier is the slowest active core.
        let mut compute = Vec::with_capacity(d);
        let mut active = 0u64;
        for part in &parts {
            let n: u64 = lens[part.clone()].iter().sum();
            if n == 0 {
                compute.push(0);
            } else {
                active += 1;
                compute.push(n * unit.cfg.elem_cpi + unit.local_sort_cycles(n));
            }
        }

        // Local sorts: one run per non-empty DPU, in core order.
        let mut runs: Vec<Vec<(u32, u32, f32)>> = Vec::new();
        for part in &parts {
            let mut run: Vec<(u32, u32, f32)> =
                elems[part.clone()].iter().flatten().copied().collect();
            if run.is_empty() {
                continue;
            }
            run.sort_by_key(|&(ma, mi, _)| (ma, mi));
            if job.reduce {
                run = reduce_sorted(run);
            }
            runs.push(run);
        }
        let total_run_elems: u64 = runs.iter().map(|r| r.len() as u64).sum();
        let merged = rank_merge(&runs, job.reduce);

        let run_blocks = unit.intermediate_blocks(job.intermediate, total_run_elems);
        let read_back: Vec<(u64, usize)> = run_blocks.iter().map(|&(addr, _)| (addr, 0)).collect();
        let out_blocks = unit.output_blocks(job.final_out, merged.0.len() as u64);

        Self {
            trivial: false,
            d,
            reads,
            run_blocks,
            read_back,
            out_blocks,
            compute,
            active,
            total_run_elems,
            runs_count: runs.len() as u64,
            merged,
            phase: PimPhase::LoadStreams,
            next: 0,
            drive_id_base: unit.next_req_id,
            arrivals: vec![unit.cycles; d + 1],
            merge_arrival: vec![0; 1],
            it_a: IterationStats::default(),
            it_b: IterationStats::default(),
            start_cycle: unit.cycles,
            phase_b_start: unit.cycles,
            dram_before: unit.mem.stats(),
        }
    }

    /// The slowest active core's completion cycle for the sort barrier
    /// (`advance_to` caps it below at the current cycle).
    fn sort_barrier_target(&self) -> u64 {
        let dispatch_done = self.arrivals[self.d];
        let mut barrier = 0u64;
        for (i, &c) in self.compute.iter().enumerate() {
            if c > 0 {
                barrier = barrier.max(self.arrivals[i].max(dispatch_done) + c);
            }
        }
        barrier
    }

    /// Enters a drive phase: resets the request cursor and anchors the
    /// response-id mapping at the unit's current request id.
    fn enter_drive(&mut self, unit: &PimUnit, phase: PimPhase) {
        self.phase = phase;
        self.next = 0;
        self.drive_id_base = unit.next_req_id;
    }

    /// Advances the run until it finishes (`true`) or the job-relative
    /// cycle count reaches `pause_at` (`false`). Resumable: calling again
    /// continues exactly where the previous call stopped, bit-identically
    /// to an unbounded run.
    pub(crate) fn run_until(&mut self, unit: &mut PimUnit, pause_at: Option<u64>) -> bool {
        let pause_abs = pause_at.map(|t| self.start_cycle.saturating_add(t));
        loop {
            match self.phase {
                PimPhase::Done => return true,
                PimPhase::LoadStreams => {
                    if !drive_until(
                        unit,
                        &self.reads,
                        false,
                        &mut self.it_a,
                        &mut self.arrivals,
                        &mut self.next,
                        self.drive_id_base,
                        pause_abs,
                    ) {
                        return false;
                    }
                    self.phase = PimPhase::SortBarrier;
                    self.next = 0;
                }
                PimPhase::SortBarrier => {
                    if !advance_to_until(unit, self.sort_barrier_target(), pause_abs) {
                        return false;
                    }
                    unit.trace_sorted += self.total_run_elems;
                    self.enter_drive(unit, PimPhase::WriteRuns);
                }
                PimPhase::WriteRuns => {
                    if !drive_until(
                        unit,
                        &self.run_blocks,
                        true,
                        &mut self.it_a,
                        &mut self.arrivals,
                        &mut self.next,
                        self.drive_id_base,
                        pause_abs,
                    ) {
                        return false;
                    }
                    self.it_a.cycles = unit.cycles - self.start_cycle;
                    self.it_a.rounds = self.active;
                    self.it_a.nz_emitted = self.total_run_elems;
                    set_dram_delta(&mut self.it_a, &self.dram_before, &unit.mem.stats());
                    self.phase_b_start = unit.cycles;
                    self.dram_before = unit.mem.stats();
                    self.merge_arrival = vec![unit.cycles; 1];
                    self.enter_drive(unit, PimPhase::ReadRuns);
                }
                PimPhase::ReadRuns => {
                    if !drive_until(
                        unit,
                        &self.read_back,
                        false,
                        &mut self.it_b,
                        &mut self.merge_arrival,
                        &mut self.next,
                        self.drive_id_base,
                        pause_abs,
                    ) {
                        return false;
                    }
                    unit.trace_merged += self.merged.0.len() as u64;
                    self.phase = PimPhase::MergeBarrier;
                    self.next = 0;
                }
                PimPhase::MergeBarrier => {
                    let target = self.merge_arrival[0] + self.total_run_elems * unit.cfg.merge_cpi;
                    if !advance_to_until(unit, target, pause_abs) {
                        return false;
                    }
                    self.enter_drive(unit, PimPhase::WriteOut);
                }
                PimPhase::WriteOut => {
                    if !drive_until(
                        unit,
                        &self.out_blocks,
                        true,
                        &mut self.it_b,
                        &mut self.merge_arrival,
                        &mut self.next,
                        self.drive_id_base,
                        pause_abs,
                    ) {
                        return false;
                    }
                    self.it_b.cycles = unit.cycles - self.phase_b_start;
                    self.it_b.rounds = self.runs_count;
                    self.it_b.nz_emitted = self.merged.0.len() as u64;
                    set_dram_delta(&mut self.it_b, &self.dram_before, &unit.mem.stats());
                    self.phase = PimPhase::Done;
                    self.next = 0;
                }
            }
        }
    }

    /// Consumes a finished run and produces the rank result.
    pub(crate) fn finish(self, unit: &PimUnit) -> PimRankResult {
        debug_assert!(self.phase == PimPhase::Done, "finish on an unfinished run");
        let mut stats = PuStats::default();
        if !self.trivial {
            stats.iterations.push(self.it_a);
            stats.iterations.push(self.it_b);
        }
        stats.dram = unit.mem.stats();
        let (majors, minors, values) = self.merged;
        PimRankResult {
            majors,
            minors,
            values,
            stats,
        }
    }

    /// Serializes the dynamic state (derived data is recomputed at
    /// restore).
    pub(crate) fn save_state(&self, enc: &mut Encoder) {
        enc.u8(self.phase.tag());
        enc.usize(self.next);
        enc.u64(self.drive_id_base);
        enc.u64s(&self.arrivals);
        enc.u64s(&self.merge_arrival);
        self.it_a.save_state(enc);
        self.it_b.save_state(enc);
        enc.u64(self.start_cycle);
        enc.u64(self.phase_b_start);
        self.dram_before.save_state(enc);
    }

    /// Rebuilds a run from the job plus state saved by
    /// [`PimRun::save_state`]. The unit must already be restored — the
    /// request lists and the response-id mapping are validated against
    /// the recomputed derived data, so corrupt payloads yield
    /// [`SnapError`] rather than panics or out-of-range execution.
    pub(crate) fn restore_state(
        unit: &PimUnit,
        job: PuJob,
        dec: &mut Decoder<'_>,
    ) -> Result<Self, SnapError> {
        let mut run = PimRun::new(unit, job);
        let phase = PimPhase::from_tag(dec.u8()?)?;
        if run.trivial && phase != PimPhase::Done {
            return Err(SnapError::BadValue);
        }
        run.phase = phase;
        run.next = dec.usize()?;
        let cursor_limit = match phase {
            PimPhase::LoadStreams => run.reads.len(),
            PimPhase::WriteRuns => run.run_blocks.len(),
            PimPhase::ReadRuns => run.read_back.len(),
            PimPhase::WriteOut => run.out_blocks.len(),
            PimPhase::SortBarrier | PimPhase::MergeBarrier | PimPhase::Done => 0,
        };
        if run.next > cursor_limit {
            return Err(SnapError::BadValue);
        }
        run.drive_id_base = dec.u64()?;
        if run.drive_id_base > unit.next_req_id {
            return Err(SnapError::BadValue);
        }
        let arrivals = dec.u64s()?;
        if !run.trivial && arrivals.len() != run.d + 1 {
            return Err(SnapError::BadValue);
        }
        run.arrivals = arrivals;
        let merge_arrival = dec.u64s()?;
        if merge_arrival.len() != 1 {
            return Err(SnapError::BadValue);
        }
        run.merge_arrival = merge_arrival;
        run.it_a = IterationStats::restore_state(dec)?;
        run.it_b = IterationStats::restore_state(dec)?;
        run.start_cycle = dec.u64()?;
        if run.start_cycle > unit.cycles {
            return Err(SnapError::BadValue);
        }
        run.phase_b_start = dec.u64()?;
        if run.phase_b_start > unit.cycles {
            return Err(SnapError::BadValue);
        }
        run.dram_before.restore_state(dec)?;
        Ok(run)
    }
}

/// Issues `reqs` through the rank port in order, one per DPU cycle when
/// the channel accepts, ticking DRAM at the clock ratio, until every
/// request has been issued and the rank is idle (`true`) or the unit's
/// cycle count reaches `pause_abs` (`false`). Records each read's
/// completion cycle in `arrivals[tag]` (last arrival wins — callers key
/// tags so that the *latest* arrival is what gates compute). With
/// fast-forwarding on, provably event-free spans are skipped with the
/// same bound as the PU (capped at the pause target); results are
/// bit-identical across pause points and execution disciplines.
#[allow(clippy::too_many_arguments)]
fn drive_until(
    unit: &mut PimUnit,
    reqs: &[(u64, usize)],
    write: bool,
    it: &mut IterationStats,
    arrivals: &mut [u64],
    next: &mut usize,
    id_base: u64,
    pause_abs: Option<u64>,
) -> bool {
    let (num, den) = unit.ticks;
    loop {
        if *next >= reqs.len() && unit.mem.is_idle() {
            return true;
        }
        if let Some(t) = pause_abs {
            if unit.cycles >= t {
                return false;
            }
        }
        if unit.fast_forward {
            let can_issue = *next < reqs.len() && {
                let probe_id = unit.next_req_id;
                let probe = if write {
                    MemRequest::write(reqs[*next].0, probe_id)
                } else {
                    MemRequest::read(reqs[*next].0, probe_id)
                };
                unit.mem.can_accept(&probe)
            };
            let resp_ready = unit
                .mem
                .next_response_at()
                .is_some_and(|t| t <= unit.mem.now());
            if !can_issue && !resp_ready {
                // Longest skip that keeps the DRAM side unobserved (same
                // bound as the PU's quiescence skip), shortened to land
                // exactly on the pause target when one is set.
                let ev = unit
                    .mem
                    .next_event_cycle()
                    .expect("PIM deadlock suspected: quiescent with no pending events");
                let span = (ev - unit.mem.now()) * den;
                let mut n = 1 + (span - 1 - unit.dram_tick_accum) / num;
                if let Some(t) = pause_abs {
                    n = n.min(t - unit.cycles);
                }
                let ticks = unit.dram_tick_accum + n * num;
                unit.mem.advance(ticks / den);
                unit.dram_tick_accum = ticks % den;
                unit.cycles += n;
                continue;
            }
        }
        unit.cycles += 1;
        // 1. Responses that completed by now. The id lookup is bounds-
        //    checked so a corrupt restored queue cannot panic; in-range
        //    execution behaves identically to direct indexing.
        while let Some(resp) = unit.mem.pop_response() {
            if resp.kind == ReqKind::Read {
                if let Some(&(_, tag)) = reqs.get(resp.id.wrapping_sub(id_base) as usize) {
                    if let Some(slot) = arrivals.get_mut(tag) {
                        *slot = unit.cycles;
                    }
                }
            }
        }
        // 2. Issue the next request if the channel accepts it.
        if *next < reqs.len() {
            let (addr, _) = reqs[*next];
            let req = if write {
                MemRequest::write(addr, unit.next_req_id)
            } else {
                MemRequest::read(addr, unit.next_req_id)
            };
            // Probe before enqueueing so a full queue is not counted as a
            // rejection (the fast-forward path never attempts one;
            // statistics must match it bit for bit).
            if unit.mem.can_accept(&req) && unit.mem.try_enqueue(req) {
                unit.next_req_id += 1;
                *next += 1;
                if write {
                    it.stores_issued += 1;
                    unit.trace_stores += 1;
                } else {
                    it.loads_issued += 1;
                    unit.trace_loads += 1;
                }
            }
        }
        // 3. DRAM clock (bus runs num : den faster than the DPUs).
        unit.dram_tick_accum += num;
        while unit.dram_tick_accum >= den {
            unit.mem.tick();
            unit.dram_tick_accum -= den;
        }
    }
}

/// Pausable compute-span advance: runs [`PimUnit::advance_to`] up to
/// `target` or the pause point, whichever comes first. Splitting the span
/// is bit-identical to one jump because the tick accumulator carries the
/// division remainder across calls.
fn advance_to_until(unit: &mut PimUnit, target: u64, pause_abs: Option<u64>) -> bool {
    let stop = pause_abs.map_or(target, |t| t.min(target));
    unit.advance_to(stop);
    stop >= target
}

impl ResumableBackend for PimBackend {
    type Run = PimRun;

    fn start_job(&self, unit: &PimUnit, job: PuJob) -> PimRun {
        PimRun::new(unit, job)
    }

    fn advance(&self, unit: &mut PimUnit, run: &mut PimRun, pause_at: Option<u64>) -> bool {
        run.run_until(unit, pause_at)
    }

    fn finish_run(&self, unit: &PimUnit, run: PimRun) -> PuResult {
        run.finish(unit).into()
    }

    fn tracing_active(&self, unit: &PimUnit) -> bool {
        unit.traced
    }

    fn save_unit(&self, unit: &PimUnit, enc: &mut Encoder) {
        unit.save_unit_state(enc);
    }

    fn restore_unit(&self, unit: &mut PimUnit, dec: &mut Decoder<'_>) -> Result<(), SnapError> {
        unit.restore_unit_state(dec)
    }

    fn save_run(&self, run: &PimRun, enc: &mut Encoder) {
        run.save_state(enc);
    }

    fn restore_run(
        &self,
        unit: &PimUnit,
        job: PuJob,
        dec: &mut Decoder<'_>,
    ) -> Result<PimRun, SnapError> {
        PimRun::restore_state(unit, job, dec)
    }
}

/// Ceiling of log2 for `n >= 1`.
fn ceil_log2(n: u64) -> u64 {
    (64 - (n - 1).leading_zeros() as u64).max(1) * u64::from(n > 1)
}

/// Contiguous stream ranges per DPU, balanced by cumulative element
/// count; the last core takes any remainder.
fn partition_streams(lens: &[u64], d: usize) -> Vec<std::ops::Range<usize>> {
    let total: u64 = lens.iter().sum();
    let mut parts = Vec::with_capacity(d);
    let mut s = 0usize;
    let mut acc = 0u64;
    for k in 0..d {
        let start = s;
        let target = total * (k as u64 + 1) / d as u64;
        while s < lens.len() && (acc < target || k + 1 == d) {
            acc += lens[s];
            s += 1;
        }
        parts.push(start..s);
    }
    parts
}

/// Appends the block loads of one stream (arrays interleaved) tagged with
/// the consuming DPU. Mirrors the PU prefetcher's per-kind array bases.
fn push_stream_blocks(
    layout: &AddressLayout,
    desc: &StreamDescriptor,
    tag: usize,
    out: &mut Vec<(u64, usize)>,
) {
    let bases: Vec<u64> = match desc.kind {
        StreamKind::CsrRow { .. } | StreamKind::SpmvCol { .. } => {
            vec![layout.col_idx, layout.values]
        }
        StreamKind::Coo { region } => layout.coo[region as usize].to_vec(),
        StreamKind::Pair { region } => {
            let r = &layout.coo[region as usize];
            vec![r[0], r[2]]
        }
    };
    let lists = bases
        .iter()
        .map(|&b| {
            layout
                .elem_blocks(b, desc.start, desc.end)
                .map(|a| (a, tag))
                .collect()
        })
        .collect();
    out.extend(round_robin(lists));
}

/// Interleaves several request lists one entry at a time — the rank port
/// services cores (or arrays) round-robin.
fn round_robin(lists: Vec<Vec<(u64, usize)>>) -> Vec<(u64, usize)> {
    let mut iters: Vec<_> = lists.into_iter().map(|l| l.into_iter()).collect();
    let mut out = Vec::new();
    loop {
        let mut any = false;
        for it in &mut iters {
            if let Some(x) = it.next() {
                out.push(x);
                any = true;
            }
        }
        if !any {
            return out;
        }
    }
}

/// Sums adjacent elements with equal (major, minor) keys in a sorted run.
fn reduce_sorted(run: Vec<(u32, u32, f32)>) -> Vec<(u32, u32, f32)> {
    let mut out: Vec<(u32, u32, f32)> = Vec::with_capacity(run.len());
    for (ma, mi, v) in run {
        match out.last_mut() {
            Some(last) if last.0 == ma && last.1 == mi => last.2 += v,
            _ => out.push((ma, mi, v)),
        }
    }
    out
}

/// Stable `d`-way merge of sorted runs by (major, minor) — ties go to the
/// earliest run, so reduction order is deterministic for any thread count.
fn rank_merge(runs: &[Vec<(u32, u32, f32)>], reduce: bool) -> (Vec<u32>, Vec<u32>, Vec<f32>) {
    let mut pos = vec![0usize; runs.len()];
    let mut majors = Vec::new();
    let mut minors = Vec::new();
    let mut values = Vec::new();
    loop {
        let mut best: Option<(u32, u32, usize)> = None;
        for (r, run) in runs.iter().enumerate() {
            if let Some(&(ma, mi, _)) = run.get(pos[r]) {
                if best.is_none_or(|(bma, bmi, _)| (ma, mi) < (bma, bmi)) {
                    best = Some((ma, mi, r));
                }
            }
        }
        let Some((ma, mi, r)) = best else {
            return (majors, minors, values);
        };
        let v = runs[r][pos[r]].2;
        pos[r] += 1;
        if reduce && majors.last() == Some(&ma) && minors.last() == Some(&mi) {
            *values.last_mut().expect("non-empty on duplicate key") += v;
        } else {
            majors.push(ma);
            minors.push(mi);
            values.push(v);
        }
    }
}

/// Stores the phase's DRAM row-locality deltas into `it` (the same
/// per-iteration accounting the PU keeps).
fn set_dram_delta(
    it: &mut IterationStats,
    before: &menda_dram::DramStats,
    after: &menda_dram::DramStats,
) {
    it.dram_row_hits = after.row_hits - before.row_hits;
    it.dram_row_misses = after.row_misses - before.row_misses;
    it.dram_row_conflicts = after.row_conflicts - before.row_conflicts;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::transpose_job;
    use menda_sparse::gen;

    fn pim_transpose(cfg: &MendaConfig, m: &menda_sparse::CsrMatrix) -> PimRankResult {
        let mut unit = PimUnit::new(cfg);
        unit.execute_job(transpose_job(m.clone(), 0))
    }

    #[test]
    fn transpose_output_matches_csc_order() {
        let m = gen::rmat(64, 512, gen::RmatParams::PAPER, 11);
        let cfg = MendaConfig::small_test();
        let r = pim_transpose(&cfg, &m);
        let csc = m.to_csc();
        // Flatten the expected CSC into (col, row, val) triples.
        let mut expect = Vec::new();
        for c in 0..m.ncols() {
            for e in csc.col_ptr()[c]..csc.col_ptr()[c + 1] {
                expect.push((c as u32, csc.row_idx()[e], csc.values()[e]));
            }
        }
        let got: Vec<(u32, u32, f32)> = r
            .majors
            .iter()
            .zip(&r.minors)
            .zip(&r.values)
            .map(|((&ma, &mi), &v)| (ma, mi, v))
            .collect();
        assert_eq!(got, expect);
        assert!(r.stats.total_cycles() > 0);
        assert_eq!(r.stats.num_iterations(), 2);
        assert!(r.stats.total_traffic_bytes() > 0);
    }

    #[test]
    fn empty_job_is_free() {
        let cfg = MendaConfig::small_test();
        let r = pim_transpose(&cfg, &menda_sparse::CsrMatrix::zeros(16, 16));
        assert!(r.majors.is_empty());
        assert_eq!(r.stats.num_iterations(), 0);
        assert_eq!(r.stats.total_cycles(), 0);
    }

    #[test]
    fn fast_forward_is_bit_identical() {
        let m = gen::rmat(64, 768, gen::RmatParams::PAPER, 23);
        let base = MendaConfig::small_test();
        let ff = pim_transpose(&base.clone().with_fast_forward(true), &m);
        let reference = pim_transpose(&base.clone().with_fast_forward(false), &m);
        assert_eq!(ff, reference);
    }

    #[test]
    fn more_dpus_do_not_change_the_output() {
        let m = gen::uniform(48, 600, 5);
        let base = MendaConfig::small_test();
        let a = pim_transpose(
            &base.clone().with_pim(PimConfig::small_test().with_dpus(2)),
            &m,
        );
        let b = pim_transpose(
            &base.clone().with_pim(PimConfig::small_test().with_dpus(16)),
            &m,
        );
        assert_eq!(a.majors, b.majors);
        assert_eq!(a.minors, b.minors);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn partition_is_contiguous_and_complete() {
        let lens = [5u64, 0, 9, 1, 1, 7, 3];
        let parts = partition_streams(&lens, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].start, 0);
        assert_eq!(parts.last().unwrap().end, lens.len());
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn sort_cost_charges_wram_spills() {
        let cfg = MendaConfig::small_test();
        let unit = PimUnit::new(&cfg);
        assert_eq!(unit.local_sort_cycles(1), 0);
        let small = unit.local_sort_cycles(1000);
        assert_eq!(small, 1000 * 10 * cfg.pim.sort_cpi);
        // 10_000 elements exceed the 64 KiB WRAM working set, so some
        // passes pay the MRAM factor.
        let big = unit.local_sort_cycles(10_000);
        assert!(big > 10_000 * 14 * cfg.pim.sort_cpi);
    }

    #[test]
    fn rank_merge_reduces_across_runs() {
        let runs = vec![
            vec![(1, 1, 1.0), (2, 0, 2.0)],
            vec![(1, 1, 3.0), (3, 0, 4.0)],
        ];
        let (ma, mi, v) = rank_merge(&runs, true);
        assert_eq!(ma, vec![1, 2, 3]);
        assert_eq!(mi, vec![1, 0, 0]);
        assert_eq!(v, vec![4.0, 2.0, 4.0]);
        let (ma, _, v) = rank_merge(&runs, false);
        assert_eq!(ma, vec![1, 1, 2, 3]);
        assert_eq!(v, vec![1.0, 3.0, 2.0, 4.0]);
    }
}
