//! The unified execution engine: maps a kernel onto per-unit jobs, runs
//! them (optionally on multiple host threads), and hands the aggregated
//! results back to the kernel for assembly.
//!
//! Per-rank accelerator units share nothing — each owns one rank and its
//! partition (§3.5) — so the simulation of a kernel launch is
//! embarrassingly parallel on the host: unit `p`'s result depends only on
//! job `p`. [`Engine::run`] exploits that with `std::thread::scope`
//! workers pulling unit indices from an atomic counter; results are
//! reassembled in unit order, so the output is bit-identical to a serial
//! run for any thread count ([`crate::SimOptions::threads`] picks the
//! count).
//!
//! The engine is generic over the [`AcceleratorBackend`] being simulated;
//! [`Engine::new`] keeps the MeNDA merge-tree PU as the default and
//! [`Engine::with_backend`] swaps in another design (e.g. the SparseP-
//! style PIM model in [`crate::pim`]). Each unit simulates under the
//! execution discipline selected by [`crate::SimOptions::fast_forward`]:
//! the event-driven core (default) skips quiescent spans and runs busy
//! spans on wakeups, while `false` keeps the per-cycle poll-everything
//! reference; the two are bit-identical in output, cycle count and
//! statistics (see the fast-forward differential suites).

use std::sync::atomic::{AtomicUsize, Ordering};

use menda_trace::TraceReport;

use crate::backend::{AcceleratorBackend, MendaBackend};
use crate::config::MendaConfig;
use crate::job::PuJob;
use crate::pu::PuResult;
use crate::stats::RunStats;

/// A kernel's mapping onto the engine: how to build PU `p`'s job and how
/// to assemble the per-PU results into the kernel's output.
///
/// Implementations must be `Sync` because jobs are built inside the
/// worker threads (partition extraction and format conversion parallelize
/// along with the simulation). Both `make_job` and `assemble` must be
/// deterministic functions of their arguments — the engine calls
/// `make_job` in arbitrary order but assembles results in PU order.
pub trait KernelSpec: Sync {
    /// The assembled kernel result.
    type Output;

    /// Builds the job for PU `p` (`0 <= p < config.num_pus()`).
    fn make_job(&self, p: usize) -> PuJob;

    /// Combines the per-PU results (indexed by PU id) and the aggregated
    /// run statistics into the kernel's output.
    fn assemble(&self, results: Vec<PuResult>, run: RunStats) -> Self::Output;
}

/// Executes kernels on a configured near-memory system, one simulated
/// accelerator unit per rank. Generic over the [`AcceleratorBackend`];
/// defaults to the MeNDA merge-tree PU.
#[derive(Debug, Clone, Copy)]
pub struct Engine<'a, B: AcceleratorBackend = MendaBackend> {
    config: &'a MendaConfig,
    backend: B,
}

impl<'a> Engine<'a> {
    /// Creates an engine for `config` with the default MeNDA backend.
    ///
    /// # Panics
    ///
    /// Panics if the PU configuration is invalid.
    pub fn new(config: &'a MendaConfig) -> Self {
        config.pu.validate();
        Self {
            config,
            backend: MendaBackend,
        }
    }
}

impl<'a, B: AcceleratorBackend> Engine<'a, B> {
    /// Creates an engine for `config` simulating `backend` in place of
    /// the MeNDA PU beside each rank.
    pub fn with_backend(config: &'a MendaConfig, backend: B) -> Self {
        Self { config, backend }
    }

    /// The configuration this engine simulates under (used by the
    /// checkpoint entry points in [`crate::checkpoint`]).
    pub(crate) fn config(&self) -> &'a MendaConfig {
        self.config
    }

    /// The backend this engine drives.
    pub(crate) fn backend(&self) -> &B {
        &self.backend
    }

    /// Runs one kernel launch: builds and executes one job per unit, then
    /// assembles. With more than one worker thread the unit simulations
    /// run concurrently; outputs and statistics are identical to a serial
    /// run because units are independent.
    pub fn run<S: KernelSpec>(&self, spec: &S) -> S::Output {
        let pus = self.config.num_pus();
        let threads = self.config.sim.effective_threads(pus);
        let outcomes = if threads <= 1 {
            (0..pus).map(|p| self.run_pu(spec, p)).collect()
        } else {
            self.run_parallel(spec, pus, threads)
        };
        let (results, reports): (Vec<PuResult>, Vec<Option<TraceReport>>) =
            outcomes.into_iter().unzip();
        let mut run = RunStats::collect(
            self.backend.frequency_mhz(self.config),
            results.iter().map(|r: &PuResult| r.stats.clone()).collect(),
        );
        run.backend = self.backend.name();
        // Aggregate per-unit trace reports in unit order so counters merge
        // deterministically and Chrome pids identify the unit.
        let mut aggregated: Option<TraceReport> = None;
        for (p, report) in reports.into_iter().enumerate() {
            if let Some(report) = report {
                aggregated
                    .get_or_insert_with(TraceReport::default)
                    .absorb_as(report, p as u32);
            }
        }
        run.trace = aggregated;
        spec.assemble(results, run)
    }

    fn run_pu<S: KernelSpec>(&self, spec: &S, p: usize) -> (PuResult, Option<TraceReport>) {
        let mut unit = self.backend.build_unit(self.config);
        let result = self.backend.execute_job(&mut unit, spec.make_job(p)).into();
        (result, self.backend.take_trace_report(&mut unit))
    }

    fn run_parallel<S: KernelSpec>(
        &self,
        spec: &S,
        pus: usize,
        threads: usize,
    ) -> Vec<(PuResult, Option<TraceReport>)> {
        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, (PuResult, Option<TraceReport>))> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut done = Vec::new();
                            loop {
                                let p = next.fetch_add(1, Ordering::Relaxed);
                                if p >= pus {
                                    break;
                                }
                                done.push((p, self.run_pu(spec, p)));
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("PU worker panicked"))
                    .collect()
            });
        indexed.sort_unstable_by_key(|&(p, _)| p);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::transpose_job;
    use menda_sparse::gen;
    use menda_sparse::partition::RowPartition;
    use menda_sparse::CsrMatrix;

    /// A bare transposition spec that returns the raw per-PU results.
    struct RawTranspose<'m> {
        matrix: &'m CsrMatrix,
        partition: RowPartition,
    }

    impl KernelSpec for RawTranspose<'_> {
        type Output = (Vec<PuResult>, RunStats);

        fn make_job(&self, p: usize) -> PuJob {
            transpose_job(
                self.partition.extract(self.matrix, p),
                self.partition.range(p).start,
            )
        }

        fn assemble(&self, results: Vec<PuResult>, run: RunStats) -> Self::Output {
            (results, run)
        }
    }

    fn raw_run(cfg: &MendaConfig, m: &CsrMatrix) -> (Vec<PuResult>, RunStats) {
        let spec = RawTranspose {
            matrix: m,
            partition: RowPartition::by_nnz(m, cfg.num_pus()),
        };
        Engine::new(cfg).run(&spec)
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let m = gen::rmat(128, 1024, gen::RmatParams::PAPER, 77);
        let base = MendaConfig::small_test().with_ranks_per_channel(4);
        let (serial, run_s) = raw_run(&base.clone().with_threads(1), &m);
        for threads in [2, 4, 8] {
            let (par, run_p) = raw_run(&base.clone().with_threads(threads), &m);
            assert_eq!(serial, par, "threads={threads}");
            assert_eq!(run_s, run_p, "threads={threads}");
        }
    }

    #[test]
    fn results_are_in_pu_order() {
        let m = gen::uniform(64, 512, 5);
        let cfg = MendaConfig::small_test().with_ranks_per_channel(4);
        let (results, run) = raw_run(&cfg, &m);
        assert_eq!(results.len(), 4);
        assert_eq!(run.pu_stats.len(), 4);
        // Partition p's minors are global rows within partition p's range.
        let partition = RowPartition::by_nnz(&m, 4);
        for (p, r) in results.iter().enumerate() {
            let range = partition.range(p);
            assert!(r
                .minors
                .iter()
                .all(|&row| (range.start as u32..range.end as u32).contains(&row)));
            assert_eq!(r.stats, run.pu_stats[p]);
        }
    }
}
