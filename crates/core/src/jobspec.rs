//! Validated job descriptions: the shared entry point for batch and
//! service execution.
//!
//! A [`JobSpec`] names a matrix source, a kernel, a backend and a set of
//! configuration overrides. It parses from JSON (the wire format of
//! `menda-server` and the file format of `repro job`), validates every
//! field *without panicking* — untrusted input must never abort the
//! process hosting the simulation — and executes to a [`JobOutcome`]
//! whose [`JobOutcome::to_json`] serialization is deterministic: the same
//! spec produces byte-identical outcome JSON whether it runs in the batch
//! CLI or behind the daemon's worker pool. That byte-identity is what the
//! wire-vs-batch differential suite asserts.
//!
//! The module deliberately routes around the panicking `validate()`
//! helpers on [`PuConfig`](crate::PuConfig) and friends: every structural
//! constraint they assert is re-checked here and surfaced as a
//! [`JobError`] instead.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use menda_dram::DramConfig;
use menda_sparse::gen;
use menda_sparse::CsrMatrix;
use menda_trace::json::{escape, parse, JsonValue};
use menda_trace::TraceConfig;

use menda_sparse::partition::RowPartition;

use crate::backend::{AcceleratorBackend, BackendKind, MendaBackend, ResumableBackend};
use crate::checkpoint::{SnapshotError, SnapshotOutcome};
use crate::config::MendaConfig;
use crate::engine::{Engine, KernelSpec};
use crate::pim::PimBackend;
use crate::spgemm;
use crate::spmv;
use crate::stats::PuStats;
use crate::system::{MendaSystem, TransposeSpec};

/// Largest integer a JSON `f64` represents exactly; fields above this are
/// rejected rather than silently rounded.
const MAX_EXACT_JSON_INT: f64 = 9_007_199_254_740_992.0; // 2^53

/// An error raised while parsing, validating or executing a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The request text is not well-formed JSON or has the wrong shape.
    Parse(String),
    /// The request parsed but names an unknown entity or violates a
    /// structural constraint.
    Invalid(String),
    /// The simulation itself failed (a caught panic — this indicates a
    /// simulator bug, not bad input, but it must not kill a daemon).
    Failed(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Parse(m) => write!(f, "parse error: {m}"),
            JobError::Invalid(m) => write!(f, "invalid job: {m}"),
            JobError::Failed(m) => write!(f, "job failed: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Where the job's input matrix comes from. Everything is generated
/// deterministically from the spec plus the job seed, so a job
/// description fully determines its input.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixSource {
    /// A Table 3 synthetic matrix by name (`N1`–`N8`, `P1`–`P8`).
    Table3(String),
    /// A Table 4 SuiteSparse stand-in by name (e.g. `amazon`).
    Table4(String),
    /// A uniform random matrix.
    Uniform {
        /// Square dimension.
        dim: usize,
        /// Number of nonzeros.
        nnz: usize,
    },
    /// An R-MAT power-law matrix with the paper's parameters.
    Rmat {
        /// Square dimension.
        dim: usize,
        /// Number of nonzeros.
        nnz: usize,
    },
    /// A banded matrix with off-band scatter.
    Banded {
        /// Square dimension.
        dim: usize,
        /// Number of nonzeros.
        nnz: usize,
        /// Half bandwidth of the diagonal band.
        half_bandwidth: usize,
        /// Fraction of nonzeros scattered off-band, in `[0, 1]`.
        scatter: f64,
    },
}

impl MatrixSource {
    /// The nominal (unscaled) nonzero count of this source.
    pub fn nominal_nnz(&self) -> u64 {
        match self {
            MatrixSource::Table3(name) => gen::table3_spec(name).map_or(0, |e| e.nnz as u64),
            MatrixSource::Table4(name) => gen::suite_matrix(name).map_or(0, |e| e.nnz as u64),
            MatrixSource::Uniform { nnz, .. }
            | MatrixSource::Rmat { nnz, .. }
            | MatrixSource::Banded { nnz, .. } => *nnz as u64,
        }
    }

    /// The nonzero count after dividing by `scale` (the same clamping
    /// rule as the generators: at least 1, at most `dim²`).
    pub fn scaled_nnz(&self, scale: usize) -> u64 {
        let (dim, nnz) = match self {
            MatrixSource::Table3(name) => match gen::table3_spec(name) {
                Some(e) => (e.dimension, e.nnz),
                None => return 0,
            },
            MatrixSource::Table4(name) => match gen::suite_matrix(name) {
                Some(e) => (e.dimension, e.nnz),
                None => return 0,
            },
            MatrixSource::Uniform { dim, nnz }
            | MatrixSource::Rmat { dim, nnz }
            | MatrixSource::Banded { dim, nnz, .. } => (*dim, *nnz),
        };
        let dim = (dim / scale.max(1)).max(2);
        ((nnz / scale.max(1)).max(1).min(dim.saturating_mul(dim))) as u64
    }

    fn generate(&self, scale: usize, seed: u64) -> Result<CsrMatrix, JobError> {
        match self {
            MatrixSource::Table3(name) => gen::table3_spec(name)
                .map(|e| e.generate_scaled(scale, seed))
                .ok_or_else(|| {
                    JobError::Invalid(format!(
                        "unknown Table 3 matrix '{name}' (expected N1-N8 or P1-P8)"
                    ))
                }),
            MatrixSource::Table4(name) => gen::suite_matrix(name)
                .map(|e| e.generate_scaled(scale, seed))
                .ok_or_else(|| JobError::Invalid(format!("unknown Table 4 matrix '{name}'"))),
            MatrixSource::Uniform { dim, nnz } => {
                let dim = (dim / scale).max(2);
                let nnz = (nnz / scale).max(1).min(dim * dim);
                Ok(gen::uniform(dim, nnz, seed))
            }
            MatrixSource::Rmat { dim, nnz } => {
                let dim = (dim / scale).max(2);
                let nnz = (nnz / scale).max(1).min(dim * dim);
                Ok(gen::rmat(dim, nnz, gen::RmatParams::PAPER, seed))
            }
            MatrixSource::Banded {
                dim,
                nnz,
                half_bandwidth,
                scatter,
            } => {
                let dim = (dim / scale).max(2);
                let nnz = (nnz / scale).max(1).min(dim * dim);
                let hb = (half_bandwidth / scale).clamp(1, dim);
                Ok(gen::banded(dim, nnz, hb, *scatter, seed))
            }
        }
    }

    fn to_json(&self) -> String {
        match self {
            MatrixSource::Table3(name) => {
                format!("{{\"source\": \"table3\", \"name\": \"{}\"}}", escape(name))
            }
            MatrixSource::Table4(name) => {
                format!("{{\"source\": \"table4\", \"name\": \"{}\"}}", escape(name))
            }
            MatrixSource::Uniform { dim, nnz } => {
                format!("{{\"source\": \"uniform\", \"dim\": {dim}, \"nnz\": {nnz}}}")
            }
            MatrixSource::Rmat { dim, nnz } => {
                format!("{{\"source\": \"rmat\", \"dim\": {dim}, \"nnz\": {nnz}}}")
            }
            MatrixSource::Banded {
                dim,
                nnz,
                half_bandwidth,
                scatter,
            } => format!(
                "{{\"source\": \"banded\", \"dim\": {dim}, \"nnz\": {nnz}, \
                 \"half_bandwidth\": {half_bandwidth}, \"scatter\": {scatter}}}"
            ),
        }
    }
}

/// The kernel a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKernel {
    /// Sparse transposition (CSR → CSC).
    Transpose,
    /// Sparse matrix-vector multiplication; the input vector is derived
    /// deterministically from the job seed.
    Spmv,
    /// Outer-product SpGEMM (`C = A·B` with `B` generated from the same
    /// source under a derived seed).
    Spgemm,
}

impl JobKernel {
    /// The kernel's stable identifier.
    pub fn label(&self) -> &'static str {
        match self {
            JobKernel::Transpose => "transpose",
            JobKernel::Spmv => "spmv",
            JobKernel::Spgemm => "spgemm",
        }
    }

    fn from_str(s: &str) -> Result<Self, JobError> {
        match s {
            "transpose" => Ok(JobKernel::Transpose),
            "spmv" => Ok(JobKernel::Spmv),
            "spgemm" => Ok(JobKernel::Spgemm),
            other => Err(JobError::Invalid(format!(
                "unknown kernel '{other}' (expected transpose, spmv or spgemm)"
            ))),
        }
    }
}

/// The DRAM substrate preset a job runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramProfile {
    /// DDR4-2400R (the paper's configuration).
    Ddr4_2400,
    /// One HBM2 pseudo-channel.
    Hbm2,
    /// LPDDR4-3200.
    Lpddr4,
}

impl DramProfile {
    /// The profile's stable identifier.
    pub fn label(&self) -> &'static str {
        match self {
            DramProfile::Ddr4_2400 => "ddr4-2400",
            DramProfile::Hbm2 => "hbm2",
            DramProfile::Lpddr4 => "lpddr4",
        }
    }

    fn from_str(s: &str) -> Result<Self, JobError> {
        match s {
            "ddr4-2400" => Ok(DramProfile::Ddr4_2400),
            "hbm2" => Ok(DramProfile::Hbm2),
            "lpddr4" => Ok(DramProfile::Lpddr4),
            other => Err(JobError::Invalid(format!(
                "unknown dram profile '{other}' (expected ddr4-2400, hbm2 or lpddr4)"
            ))),
        }
    }

    fn config(&self) -> DramConfig {
        match self {
            DramProfile::Ddr4_2400 => DramConfig::ddr4_2400r(),
            DramProfile::Hbm2 => DramConfig::hbm2_pseudo_channel(),
            DramProfile::Lpddr4 => DramConfig::lpddr4_3200(),
        }
    }
}

/// A complete, self-contained job description.
///
/// Every field except `matrix` has a default, so the minimal request is
/// `{"matrix": {"source": "table3", "name": "N1"}}`. Defaults are pinned
/// (not inherited from environment variables) so the same spec means the
/// same simulation everywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Input matrix source.
    pub matrix: MatrixSource,
    /// Downscaling divisor applied to the source's nominal size (1 =
    /// full size).
    pub scale: usize,
    /// Seed for matrix generation (and vector derivation for SpMV).
    pub seed: u64,
    /// The kernel to run.
    pub kernel: JobKernel,
    /// The accelerator backend to simulate.
    pub backend: BackendKind,
    /// Memory channels (default: the paper's 4).
    pub channels: usize,
    /// Ranks (= accelerator units) per channel (default: the paper's 2).
    pub ranks_per_channel: usize,
    /// Merge-tree leaves per PU (default: the paper's 1024).
    pub leaves: usize,
    /// Entries per prefetch buffer (default: the paper's 32).
    pub prefetch_buffer_entries: usize,
    /// Stall-reducing prefetching enabled.
    pub prefetch: bool,
    /// Request coalescing enabled.
    pub coalescing: bool,
    /// PU clock in MHz.
    pub frequency_mhz: u64,
    /// Host worker threads for the engine (`None` = auto).
    pub threads: Option<usize>,
    /// Event-driven fast-forwarding (default on; results are identical
    /// either way).
    pub fast_forward: bool,
    /// DRAM substrate preset.
    pub dram: DramProfile,
    /// DRAM refresh enabled.
    pub refresh: bool,
    /// Counting instrumentation: when set, the outcome reports the number
    /// of trace events observed (simulated results are unaffected).
    pub trace_counting: bool,
}

impl JobSpec {
    /// A job with pinned defaults for the given matrix source.
    pub fn new(matrix: MatrixSource) -> Self {
        Self {
            matrix,
            scale: 1,
            seed: 1,
            kernel: JobKernel::Transpose,
            backend: BackendKind::Menda,
            channels: 4,
            ranks_per_channel: 2,
            leaves: 1024,
            prefetch_buffer_entries: 32,
            prefetch: true,
            coalescing: true,
            frequency_mhz: 800,
            threads: None,
            fast_forward: true,
            dram: DramProfile::Ddr4_2400,
            refresh: true,
            trace_counting: false,
        }
    }

    /// Parses a job description from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Parse`] for malformed JSON and
    /// [`JobError::Invalid`] for well-formed JSON that fails validation
    /// (unknown fields are rejected so typos cannot silently change a
    /// job's meaning).
    pub fn from_json_str(text: &str) -> Result<Self, JobError> {
        let value =
            parse(text).map_err(|(pos, msg)| JobError::Parse(format!("{msg} at byte {pos}")))?;
        Self::from_json(&value)
    }

    /// Parses a job description from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// As [`JobSpec::from_json_str`].
    pub fn from_json(value: &JsonValue) -> Result<Self, JobError> {
        let obj = match value {
            JsonValue::Obj(m) => m,
            _ => return Err(JobError::Parse("job must be a JSON object".into())),
        };
        const KNOWN: &[&str] = &[
            "matrix",
            "scale",
            "seed",
            "kernel",
            "backend",
            "channels",
            "ranks_per_channel",
            "leaves",
            "prefetch_buffer_entries",
            "prefetch",
            "coalescing",
            "frequency_mhz",
            "threads",
            "fast_forward",
            "dram",
            "refresh",
            "trace",
        ];
        for key in obj.keys() {
            if !KNOWN.contains(&key.as_str()) {
                return Err(JobError::Invalid(format!("unknown field '{key}'")));
            }
        }

        let matrix = parse_matrix(
            obj.get("matrix")
                .ok_or_else(|| JobError::Invalid("missing required field 'matrix'".into()))?,
        )?;
        let mut spec = JobSpec::new(matrix);
        if let Some(v) = obj.get("scale") {
            spec.scale = get_usize(v, "scale")?;
        }
        if let Some(v) = obj.get("seed") {
            spec.seed = get_u64(v, "seed")?;
        }
        if let Some(v) = obj.get("kernel") {
            spec.kernel = JobKernel::from_str(get_str(v, "kernel")?)?;
        }
        if let Some(v) = obj.get("backend") {
            spec.backend = match get_str(v, "backend")? {
                "menda" => BackendKind::Menda,
                "pim" => BackendKind::Pim,
                other => {
                    return Err(JobError::Invalid(format!(
                        "unknown backend '{other}' (expected menda or pim)"
                    )))
                }
            };
        }
        if let Some(v) = obj.get("channels") {
            spec.channels = get_usize(v, "channels")?;
        }
        if let Some(v) = obj.get("ranks_per_channel") {
            spec.ranks_per_channel = get_usize(v, "ranks_per_channel")?;
        }
        if let Some(v) = obj.get("leaves") {
            spec.leaves = get_usize(v, "leaves")?;
        }
        if let Some(v) = obj.get("prefetch_buffer_entries") {
            spec.prefetch_buffer_entries = get_usize(v, "prefetch_buffer_entries")?;
        }
        if let Some(v) = obj.get("prefetch") {
            spec.prefetch = get_bool(v, "prefetch")?;
        }
        if let Some(v) = obj.get("coalescing") {
            spec.coalescing = get_bool(v, "coalescing")?;
        }
        if let Some(v) = obj.get("frequency_mhz") {
            spec.frequency_mhz = get_u64(v, "frequency_mhz")?;
        }
        if let Some(v) = obj.get("threads") {
            spec.threads = Some(get_usize(v, "threads")?);
        }
        if let Some(v) = obj.get("fast_forward") {
            spec.fast_forward = get_bool(v, "fast_forward")?;
        }
        if let Some(v) = obj.get("dram") {
            spec.dram = DramProfile::from_str(get_str(v, "dram")?)?;
        }
        if let Some(v) = obj.get("refresh") {
            spec.refresh = get_bool(v, "refresh")?;
        }
        if let Some(v) = obj.get("trace") {
            spec.trace_counting = match get_str(v, "trace")? {
                "off" => false,
                "counting" => true,
                other => {
                    return Err(JobError::Invalid(format!(
                        "unknown trace mode '{other}' (expected off or counting)"
                    )))
                }
            };
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks every structural constraint the simulator's config types
    /// would otherwise `assert!` on, plus sanity caps that keep a single
    /// job's resource use bounded.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Invalid`] naming the offending field.
    pub fn validate(&self) -> Result<(), JobError> {
        fn fail(msg: String) -> Result<(), JobError> {
            Err(JobError::Invalid(msg))
        }
        match &self.matrix {
            MatrixSource::Table3(name) => {
                if gen::table3_spec(name).is_none() {
                    return fail(format!(
                        "unknown Table 3 matrix '{name}' (expected N1-N8 or P1-P8)"
                    ));
                }
            }
            MatrixSource::Table4(name) => {
                if gen::suite_matrix(name).is_none() {
                    return fail(format!("unknown Table 4 matrix '{name}'"));
                }
            }
            MatrixSource::Uniform { dim, nnz }
            | MatrixSource::Rmat { dim, nnz }
            | MatrixSource::Banded { dim, nnz, .. } => {
                if *dim < 2 {
                    return fail(format!("matrix dim must be at least 2, got {dim}"));
                }
                if *dim > 1 << 28 {
                    return fail(format!("matrix dim {dim} exceeds the 2^28 cap"));
                }
                if *nnz == 0 {
                    return fail("matrix nnz must be positive".into());
                }
                if *nnz > 1 << 33 {
                    return fail(format!("matrix nnz {nnz} exceeds the 2^33 cap"));
                }
            }
        }
        if let MatrixSource::Banded {
            half_bandwidth,
            scatter,
            ..
        } = &self.matrix
        {
            if *half_bandwidth == 0 {
                return fail("half_bandwidth must be positive".into());
            }
            if !(0.0..=1.0).contains(scatter) {
                return fail(format!("scatter must be in [0, 1], got {scatter}"));
            }
        }
        if self.scale == 0 {
            return fail("scale must be positive".into());
        }
        if self.channels == 0 || self.channels > 64 {
            return fail(format!(
                "channels must be in [1, 64], got {}",
                self.channels
            ));
        }
        if self.ranks_per_channel == 0 || self.ranks_per_channel > 8 {
            return fail(format!(
                "ranks_per_channel must be in [1, 8], got {}",
                self.ranks_per_channel
            ));
        }
        if !self.leaves.is_power_of_two() || self.leaves < 2 || self.leaves > 65_536 {
            return fail(format!(
                "leaves must be a power of two in [2, 65536], got {}",
                self.leaves
            ));
        }
        if self.prefetch_buffer_entries == 0 || self.prefetch_buffer_entries > 4096 {
            return fail(format!(
                "prefetch_buffer_entries must be in [1, 4096], got {}",
                self.prefetch_buffer_entries
            ));
        }
        if self.frequency_mhz == 0 || self.frequency_mhz > 100_000 {
            return fail(format!(
                "frequency_mhz must be in [1, 100000], got {}",
                self.frequency_mhz
            ));
        }
        if let Some(t) = self.threads {
            if t == 0 || t > 1024 {
                return fail(format!("threads must be in [1, 1024], got {t}"));
            }
        }
        Ok(())
    }

    /// The job's admission-control cost: nonzeros it will simulate (the
    /// SpGEMM `B` operand doubles it). Servers compare this against their
    /// per-job size cap before queueing.
    pub fn cost_nnz(&self) -> u64 {
        let base = self.matrix.scaled_nnz(self.scale);
        match self.kernel {
            JobKernel::Spgemm => base.saturating_mul(2),
            _ => base,
        }
    }

    /// Builds the simulator configuration this job runs under.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Invalid`] if validation fails.
    pub fn build_config(&self) -> Result<MendaConfig, JobError> {
        self.validate()?;
        let mut dram = self.dram.config();
        dram.refresh_enabled = self.refresh;
        let mut config = MendaConfig {
            pu: crate::PuConfig {
                frequency_mhz: self.frequency_mhz,
                leaves: self.leaves,
                prefetch_buffer_entries: self.prefetch_buffer_entries,
                stall_reducing_prefetch: self.prefetch,
                request_coalescing: self.coalescing,
                ..crate::PuConfig::paper()
            },
            channels: self.channels,
            ranks_per_channel: self.ranks_per_channel,
            dram,
            trace: if self.trace_counting {
                TraceConfig::counting()
            } else {
                TraceConfig::off()
            },
            ..MendaConfig::paper()
        };
        config.sim.fast_forward = self.fast_forward;
        config.sim.threads = self.threads;
        Ok(config)
    }

    /// Canonical JSON serialization with every field explicit, in fixed
    /// order. Parsing it back yields an equal spec.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"matrix\": {}, \"scale\": {}, \"seed\": {}, \"kernel\": \"{}\", ",
                "\"backend\": \"{}\", \"channels\": {}, \"ranks_per_channel\": {}, ",
                "\"leaves\": {}, \"prefetch_buffer_entries\": {}, \"prefetch\": {}, ",
                "\"coalescing\": {}, \"frequency_mhz\": {}, {}\"fast_forward\": {}, ",
                "\"dram\": \"{}\", \"refresh\": {}, \"trace\": \"{}\"}}"
            ),
            self.matrix.to_json(),
            self.scale,
            self.seed,
            self.kernel.label(),
            self.backend.label(),
            self.channels,
            self.ranks_per_channel,
            self.leaves,
            self.prefetch_buffer_entries,
            self.prefetch,
            self.coalescing,
            self.frequency_mhz,
            match self.threads {
                Some(t) => format!("\"threads\": {t}, "),
                None => String::new(),
            },
            self.fast_forward,
            self.dram.label(),
            self.refresh,
            if self.trace_counting {
                "counting"
            } else {
                "off"
            },
        )
    }

    /// Runs the job to completion.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Invalid`] if validation fails and
    /// [`JobError::Failed`] if the simulation panics (the panic is caught
    /// so a hosting daemon survives; this indicates a simulator bug).
    pub fn execute(&self) -> Result<JobOutcome, JobError> {
        let config = self.build_config()?;
        let spec = self.clone();
        catch_unwind(AssertUnwindSafe(move || spec.execute_inner(&config))).map_err(|panic| {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            JobError::Failed(msg.into())
        })?
    }

    fn execute_inner(&self, config: &MendaConfig) -> Result<JobOutcome, JobError> {
        let matrix = self.matrix.generate(self.scale, self.seed)?;
        let (nrows, ncols, nnz) = (matrix.nrows(), matrix.ncols(), matrix.nnz());
        let (cycles, seconds, checksum, out_nnz, pu_stats, trace_events) = match self.kernel {
            JobKernel::Transpose => {
                let r = MendaSystem::new(config.clone()).transpose_with(&matrix, self.backend);
                let events = r.trace.as_ref().map(|t| t.sink.events);
                (
                    r.cycles,
                    r.seconds,
                    transpose_digest(&r),
                    r.output.nnz() as u64,
                    r.pu_stats,
                    events,
                )
            }
            JobKernel::Spmv => {
                let x = derive_vector(ncols, self.seed);
                let r = spmv::run_with_backend(
                    config,
                    &matrix,
                    &x,
                    spmv::SpmvOptions::default(),
                    self.backend,
                );
                let events = r.trace.as_ref().map(|t| t.sink.events);
                (
                    r.cycles,
                    r.seconds,
                    spmv_digest(&r),
                    r.y.len() as u64,
                    r.pu_stats,
                    events,
                )
            }
            JobKernel::Spgemm => {
                let b = self
                    .matrix
                    .generate(self.scale, self.seed ^ 0x0053_4745_4D4D_u64)?;
                if matrix.ncols() != b.nrows() {
                    return Err(JobError::Invalid(format!(
                        "spgemm operands disagree: A is {}x{}, B is {}x{}",
                        nrows,
                        ncols,
                        b.nrows(),
                        b.ncols()
                    )));
                }
                let r = spgemm::run_with_backend(config, &matrix, &b, self.backend);
                (
                    r.merge_cycles + r.multiply_cycles,
                    r.seconds,
                    spgemm_digest(&r),
                    r.c.nnz() as u64,
                    r.pu_stats,
                    None,
                )
            }
        };
        Ok(self.finish_outcome(
            (nrows, ncols, nnz),
            cycles,
            seconds,
            checksum,
            out_nnz,
            &pu_stats,
            trace_events,
        ))
    }

    /// Assembles a [`JobOutcome`] — the single construction site shared
    /// by the straight-through and preemptible paths, so both produce
    /// byte-identical outcome JSON.
    #[allow(clippy::too_many_arguments)]
    fn finish_outcome(
        &self,
        (nrows, ncols, nnz): (usize, usize, usize),
        cycles: u64,
        seconds: f64,
        checksum: u64,
        out_nnz: u64,
        pu_stats: &[PuStats],
        trace_events: Option<u64>,
    ) -> JobOutcome {
        JobOutcome {
            job: self.to_json(),
            kernel: self.kernel.label(),
            backend: self.backend.label(),
            nrows,
            ncols,
            nnz,
            out_nnz,
            cycles,
            seconds,
            output_digest: checksum,
            pu: pu_stats.iter().map(PuSummary::from_stats).collect(),
            trace_events,
        }
    }

    /// Checkpoint-capable execution: runs the job until it finishes or
    /// every accelerator unit reaches device cycle `pause_at`, capturing
    /// a restorable snapshot in the latter case. A finished job's
    /// [`JobOutcome`] is byte-identical (JSON and digest included) to
    /// [`JobSpec::execute`]'s — the server preemption suite asserts that.
    ///
    /// # Errors
    ///
    /// [`JobError::Invalid`] for validation failures and refused
    /// checkpointing (tracing active), [`JobError::Failed`] for caught
    /// simulator panics.
    pub fn execute_to_cycle(&self, pause_at: u64) -> Result<JobProgress, JobError> {
        self.execute_bounded(None, Some(pause_at))
    }

    /// Restores a snapshot from [`JobSpec::execute_to_cycle`] (or
    /// [`JobSpec::resume_to_cycle`]) and runs the job to completion.
    ///
    /// # Errors
    ///
    /// [`JobError::Invalid`] when the snapshot is corrupt or was taken
    /// for a different job/configuration, plus [`JobSpec::execute`]'s
    /// failure modes.
    pub fn resume(&self, snapshot: &[u8]) -> Result<JobOutcome, JobError> {
        match self.execute_bounded(Some(snapshot), None)? {
            JobProgress::Finished(outcome) => Ok(outcome),
            JobProgress::Paused(_) => unreachable!("unbounded resume cannot pause"),
        }
    }

    /// Restores a snapshot and runs until completion or `pause_at` — the
    /// quantum step of preemptible execution.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`JobSpec::resume`].
    pub fn resume_to_cycle(&self, snapshot: &[u8], pause_at: u64) -> Result<JobProgress, JobError> {
        self.execute_bounded(Some(snapshot), Some(pause_at))
    }

    fn execute_bounded(
        &self,
        snapshot: Option<&[u8]>,
        pause_at: Option<u64>,
    ) -> Result<JobProgress, JobError> {
        let config = self.build_config()?;
        catch_unwind(AssertUnwindSafe(|| {
            self.execute_bounded_inner(&config, snapshot, pause_at)
        }))
        .map_err(|panic| {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            JobError::Failed(msg.into())
        })?
    }

    fn execute_bounded_inner(
        &self,
        config: &MendaConfig,
        snapshot: Option<&[u8]>,
        pause_at: Option<u64>,
    ) -> Result<JobProgress, JobError> {
        let matrix = self.matrix.generate(self.scale, self.seed)?;
        let dims = (matrix.nrows(), matrix.ncols(), matrix.nnz());
        match self.kernel {
            JobKernel::Transpose => {
                let spec =
                    TransposeSpec::new(&matrix, RowPartition::by_nnz(&matrix, config.num_pus()));
                let outcome = run_bounded(config, self.backend, &spec, snapshot, pause_at)
                    .map_err(snapshot_error)?;
                Ok(match outcome {
                    SnapshotOutcome::Paused(bytes) => JobProgress::Paused(bytes),
                    SnapshotOutcome::Finished(r) => JobProgress::Finished(self.finish_outcome(
                        dims,
                        r.cycles,
                        r.seconds,
                        transpose_digest(&r),
                        r.output.nnz() as u64,
                        &r.pu_stats,
                        None,
                    )),
                })
            }
            JobKernel::Spmv => {
                let x = derive_vector(dims.1, self.seed);
                let spec =
                    spmv::make_spec(&matrix, &x, spmv::SpmvOptions::default(), config.num_pus());
                let outcome = run_bounded(config, self.backend, &spec, snapshot, pause_at)
                    .map_err(snapshot_error)?;
                Ok(match outcome {
                    SnapshotOutcome::Paused(bytes) => JobProgress::Paused(bytes),
                    SnapshotOutcome::Finished(r) => JobProgress::Finished(self.finish_outcome(
                        dims,
                        r.cycles,
                        r.seconds,
                        spmv_digest(&r),
                        r.y.len() as u64,
                        &r.pu_stats,
                        None,
                    )),
                })
            }
            JobKernel::Spgemm => {
                let b = self
                    .matrix
                    .generate(self.scale, self.seed ^ 0x0053_4745_4D4D_u64)?;
                if matrix.ncols() != b.nrows() {
                    return Err(JobError::Invalid(format!(
                        "spgemm operands disagree: A is {}x{}, B is {}x{}",
                        dims.0,
                        dims.1,
                        b.nrows(),
                        b.ncols()
                    )));
                }
                let frequency_mhz = match self.backend {
                    BackendKind::Menda => MendaBackend.frequency_mhz(config),
                    BackendKind::Pim => PimBackend.frequency_mhz(config),
                };
                let spec = spgemm::make_spec(&matrix, &b, config, frequency_mhz);
                let outcome = run_bounded(config, self.backend, &spec, snapshot, pause_at)
                    .map_err(snapshot_error)?;
                Ok(match outcome {
                    SnapshotOutcome::Paused(bytes) => JobProgress::Paused(bytes),
                    SnapshotOutcome::Finished(r) => JobProgress::Finished(self.finish_outcome(
                        dims,
                        r.merge_cycles + r.multiply_cycles,
                        r.seconds,
                        spgemm_digest(&r),
                        r.c.nnz() as u64,
                        &r.pu_stats,
                        None,
                    )),
                })
            }
        }
    }
}

/// Progress of a bounded ([`JobSpec::execute_to_cycle`]) job execution.
#[derive(Debug, Clone)]
pub enum JobProgress {
    /// The job ran to completion.
    Finished(JobOutcome),
    /// The job paused at the requested cycle; the snapshot resumes it
    /// ([`JobSpec::resume`] / [`JobSpec::resume_to_cycle`]).
    Paused(Vec<u8>),
}

/// Dispatches a bounded engine run over the runtime-selected backend.
fn run_bounded<S: KernelSpec>(
    config: &MendaConfig,
    kind: BackendKind,
    spec: &S,
    snapshot: Option<&[u8]>,
    pause_at: Option<u64>,
) -> Result<SnapshotOutcome<S::Output>, SnapshotError> {
    match kind {
        BackendKind::Menda => run_bounded_on(config, MendaBackend, spec, snapshot, pause_at),
        BackendKind::Pim => run_bounded_on(config, PimBackend, spec, snapshot, pause_at),
    }
}

fn run_bounded_on<B: ResumableBackend, S: KernelSpec>(
    config: &MendaConfig,
    backend: B,
    spec: &S,
    snapshot: Option<&[u8]>,
    pause_at: Option<u64>,
) -> Result<SnapshotOutcome<S::Output>, SnapshotError> {
    let engine = Engine::with_backend(config, backend);
    match (snapshot, pause_at) {
        (None, Some(p)) => engine.run_to_cycle(spec, p),
        (Some(s), None) => engine.resume(spec, s).map(SnapshotOutcome::Finished),
        (Some(s), Some(p)) => engine.resume_to_cycle(spec, s, p),
        (None, None) => unreachable!("bounded execution needs a snapshot or a pause target"),
    }
}

/// Maps a checkpoint-layer error onto the job-layer error type: every
/// variant describes input this spec cannot accept (corrupt bytes, a
/// snapshot from a different job, refused-while-tracing), so they all
/// surface as [`JobError::Invalid`] — never a panic.
fn snapshot_error(e: SnapshotError) -> JobError {
    JobError::Invalid(format!("snapshot: {e}"))
}

/// Output digest of a finished transposition (shared by the batch and
/// preemptible paths).
fn transpose_digest(r: &crate::system::TransposeResult) -> u64 {
    let mut d = Digest::new();
    d.push_usize_slice(r.output.col_ptr());
    d.push_u32_slice(r.output.row_idx());
    d.push_f32_slice(r.output.values());
    d.finish()
}

/// Output digest of a finished SpMV.
fn spmv_digest(r: &spmv::SpmvResult) -> u64 {
    let mut d = Digest::new();
    d.push_f32_slice(&r.y);
    d.finish()
}

/// Output digest of a finished SpGEMM.
fn spgemm_digest(r: &spgemm::SpgemmResult) -> u64 {
    let mut d = Digest::new();
    d.push_usize_slice(r.c.row_ptr());
    d.push_u32_slice(r.c.col_idx());
    d.push_f32_slice(r.c.values());
    d.finish()
}

fn parse_matrix(value: &JsonValue) -> Result<MatrixSource, JobError> {
    let obj = match value {
        JsonValue::Obj(m) => m,
        _ => return Err(JobError::Parse("'matrix' must be a JSON object".into())),
    };
    let source = obj
        .get("source")
        .ok_or_else(|| JobError::Invalid("matrix is missing required field 'source'".into()))
        .and_then(|v| get_str(v, "source"))?;
    let known: &[&str] = match source {
        "table3" | "table4" => &["source", "name"],
        "uniform" | "rmat" => &["source", "dim", "nnz"],
        "banded" => &["source", "dim", "nnz", "half_bandwidth", "scatter"],
        other => {
            return Err(JobError::Invalid(format!(
                "unknown matrix source '{other}' (expected table3, table4, uniform, rmat or banded)"
            )))
        }
    };
    for key in obj.keys() {
        if !known.contains(&key.as_str()) {
            return Err(JobError::Invalid(format!(
                "unknown matrix field '{key}' for source '{source}'"
            )));
        }
    }
    let name = || {
        obj.get("name")
            .ok_or_else(|| JobError::Invalid(format!("matrix source '{source}' requires 'name'")))
            .and_then(|v| get_str(v, "name"))
            .map(str::to_string)
    };
    let dim_nnz = || -> Result<(usize, usize), JobError> {
        let dim = obj
            .get("dim")
            .ok_or_else(|| JobError::Invalid(format!("matrix source '{source}' requires 'dim'")))
            .and_then(|v| get_usize(v, "dim"))?;
        let nnz = obj
            .get("nnz")
            .ok_or_else(|| JobError::Invalid(format!("matrix source '{source}' requires 'nnz'")))
            .and_then(|v| get_usize(v, "nnz"))?;
        Ok((dim, nnz))
    };
    match source {
        "table3" => Ok(MatrixSource::Table3(name()?)),
        "table4" => Ok(MatrixSource::Table4(name()?)),
        "uniform" => {
            let (dim, nnz) = dim_nnz()?;
            Ok(MatrixSource::Uniform { dim, nnz })
        }
        "rmat" => {
            let (dim, nnz) = dim_nnz()?;
            Ok(MatrixSource::Rmat { dim, nnz })
        }
        "banded" => {
            let (dim, nnz) = dim_nnz()?;
            let half_bandwidth = obj
                .get("half_bandwidth")
                .ok_or_else(|| JobError::Invalid("banded matrix requires 'half_bandwidth'".into()))
                .and_then(|v| get_usize(v, "half_bandwidth"))?;
            let scatter = match obj.get("scatter") {
                Some(v) => v
                    .as_num()
                    .ok_or_else(|| JobError::Parse("'scatter' must be a number".into()))?,
                None => 0.0,
            };
            Ok(MatrixSource::Banded {
                dim,
                nnz,
                half_bandwidth,
                scatter,
            })
        }
        _ => unreachable!("source validated above"),
    }
}

fn get_str<'v>(v: &'v JsonValue, field: &str) -> Result<&'v str, JobError> {
    v.as_str()
        .ok_or_else(|| JobError::Parse(format!("'{field}' must be a string")))
}

fn get_bool(v: &JsonValue, field: &str) -> Result<bool, JobError> {
    match v {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(JobError::Parse(format!("'{field}' must be a boolean"))),
    }
}

fn get_u64(v: &JsonValue, field: &str) -> Result<u64, JobError> {
    let n = v
        .as_num()
        .ok_or_else(|| JobError::Parse(format!("'{field}' must be a number")))?;
    if n < 0.0 || n.fract() != 0.0 || n > MAX_EXACT_JSON_INT {
        return Err(JobError::Parse(format!(
            "'{field}' must be a non-negative integer representable in 53 bits"
        )));
    }
    Ok(n as u64)
}

fn get_usize(v: &JsonValue, field: &str) -> Result<usize, JobError> {
    get_u64(v, field).map(|n| n as usize)
}

/// Deterministic input vector for SpMV jobs, derived from the seed (the
/// wire and batch paths must agree on it exactly).
fn derive_vector(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            ((i as u64).wrapping_mul(2_654_435_761).wrapping_add(seed) % 17) as f32 * 0.25 - 2.0
        })
        .collect()
}

/// FNV-1a 64-bit streaming digest (used for output checksums and the
/// outcome-JSON digest the differential suite compares).
#[derive(Debug, Clone)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn push_usize_slice(&mut self, xs: &[usize]) {
        for &x in xs {
            self.push_bytes(&(x as u64).to_le_bytes());
        }
    }

    fn push_u32_slice(&mut self, xs: &[u32]) {
        for &x in xs {
            self.push_bytes(&x.to_le_bytes());
        }
    }

    fn push_f32_slice(&mut self, xs: &[f32]) {
        for &x in xs {
            self.push_bytes(&x.to_bits().to_le_bytes());
        }
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// Convenience: digest of a byte string.
    pub fn of(bytes: &[u8]) -> u64 {
        let mut d = Digest::new();
        d.push_bytes(bytes);
        d.finish()
    }
}

/// Per-PU roll-up included in a job outcome (a deterministic projection
/// of [`PuStats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PuSummary {
    /// Total PU cycles.
    pub cycles: u64,
    /// Merge iterations executed.
    pub iterations: u64,
    /// Load block requests issued.
    pub loads_issued: u64,
    /// Loads merged by coalescing.
    pub loads_coalesced: u64,
    /// Store block requests issued.
    pub stores_issued: u64,
    /// DRAM row hits.
    pub row_hits: u64,
    /// DRAM row misses.
    pub row_misses: u64,
    /// DRAM row conflicts.
    pub row_conflicts: u64,
    /// DRAM read transactions.
    pub dram_reads: u64,
    /// DRAM write transactions.
    pub dram_writes: u64,
}

impl PuSummary {
    fn from_stats(s: &PuStats) -> Self {
        Self {
            cycles: s.total_cycles(),
            iterations: s.num_iterations() as u64,
            loads_issued: s.iterations.iter().map(|i| i.loads_issued).sum(),
            loads_coalesced: s.total_coalesced(),
            stores_issued: s.iterations.iter().map(|i| i.stores_issued).sum(),
            row_hits: s.iterations.iter().map(|i| i.dram_row_hits).sum(),
            row_misses: s.iterations.iter().map(|i| i.dram_row_misses).sum(),
            row_conflicts: s.iterations.iter().map(|i| i.dram_row_conflicts).sum(),
            dram_reads: s.dram.reads,
            dram_writes: s.dram.writes,
        }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"cycles\": {}, \"iterations\": {}, \"loads_issued\": {}, ",
                "\"loads_coalesced\": {}, \"stores_issued\": {}, \"row_hits\": {}, ",
                "\"row_misses\": {}, \"row_conflicts\": {}, \"dram_reads\": {}, ",
                "\"dram_writes\": {}}}"
            ),
            self.cycles,
            self.iterations,
            self.loads_issued,
            self.loads_coalesced,
            self.stores_issued,
            self.row_hits,
            self.row_misses,
            self.row_conflicts,
            self.dram_reads,
            self.dram_writes,
        )
    }
}

/// The result of executing a [`JobSpec`]: simulated statistics plus an
/// output digest, with a deterministic JSON form.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The canonical JSON of the spec that produced this outcome.
    pub job: String,
    /// Kernel label.
    pub kernel: &'static str,
    /// Backend label.
    pub backend: &'static str,
    /// Input rows.
    pub nrows: usize,
    /// Input columns.
    pub ncols: usize,
    /// Input nonzeros.
    pub nnz: usize,
    /// Output nonzeros (vector length for SpMV).
    pub out_nnz: u64,
    /// Simulated device cycles (max over units; both phases for SpGEMM).
    pub cycles: u64,
    /// Simulated seconds at the device clock.
    pub seconds: f64,
    /// FNV-1a digest of the kernel output's bit representation.
    pub output_digest: u64,
    /// Per-unit statistics roll-up.
    pub pu: Vec<PuSummary>,
    /// Total trace events, when counting instrumentation was requested.
    pub trace_events: Option<u64>,
}

impl JobOutcome {
    /// Deterministic JSON serialization: fixed key order, integer-exact
    /// fields, digests in fixed-width hex. Byte-identical across the
    /// batch CLI and the server for the same spec.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"job\": {}, \"kernel\": \"{}\", \"backend\": \"{}\", ",
                "\"nrows\": {}, \"ncols\": {}, \"nnz\": {}, \"out_nnz\": {}, ",
                "\"cycles\": {}, \"seconds\": {}, \"output_digest\": \"{:016x}\", ",
                "\"pu\": [{}]{}}}"
            ),
            self.job,
            self.kernel,
            self.backend,
            self.nrows,
            self.ncols,
            self.nnz,
            self.out_nnz,
            self.cycles,
            self.seconds,
            self.output_digest,
            self.pu
                .iter()
                .map(PuSummary::to_json)
                .collect::<Vec<_>>()
                .join(", "),
            match self.trace_events {
                Some(n) => format!(", \"trace_events\": {n}"),
                None => String::new(),
            },
        )
    }

    /// FNV-1a digest of [`JobOutcome::to_json`] — the compact
    /// bit-identity witness the server sends alongside results.
    pub fn digest(&self) -> u64 {
        Digest::of(self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> JobSpec {
        let mut spec = JobSpec::new(MatrixSource::Uniform { dim: 64, nnz: 512 });
        spec.channels = 1;
        spec.ranks_per_channel = 2;
        spec.leaves = 16;
        spec.refresh = false;
        spec.threads = Some(1);
        spec
    }

    #[test]
    fn minimal_json_round_trips() {
        let spec = JobSpec::from_json_str(r#"{"matrix": {"source": "table3", "name": "N1"}}"#)
            .expect("parses");
        assert_eq!(spec.matrix, MatrixSource::Table3("N1".into()));
        assert_eq!(spec.kernel, JobKernel::Transpose);
        let round = JobSpec::from_json_str(&spec.to_json()).expect("canonical form parses");
        assert_eq!(spec, round);
    }

    #[test]
    fn full_json_round_trips() {
        let text = r#"{
            "matrix": {"source": "banded", "dim": 4096, "nnz": 65536,
                       "half_bandwidth": 32, "scatter": 0.25},
            "scale": 16, "seed": 42, "kernel": "spmv", "backend": "pim",
            "channels": 2, "ranks_per_channel": 1, "leaves": 64,
            "prefetch_buffer_entries": 8, "prefetch": false,
            "coalescing": false, "frequency_mhz": 600, "threads": 2,
            "fast_forward": false, "dram": "hbm2", "refresh": false,
            "trace": "counting"
        }"#;
        let spec = JobSpec::from_json_str(text).expect("parses");
        assert_eq!(spec.backend, BackendKind::Pim);
        assert_eq!(spec.dram, DramProfile::Hbm2);
        assert!(spec.trace_counting);
        let round = JobSpec::from_json_str(&spec.to_json()).expect("round trips");
        assert_eq!(spec, round);
    }

    #[test]
    fn rejects_malformed_and_unknown() {
        assert!(matches!(
            JobSpec::from_json_str("{not json"),
            Err(JobError::Parse(_))
        ));
        assert!(matches!(
            JobSpec::from_json_str("[1, 2]"),
            Err(JobError::Parse(_))
        ));
        let e = JobSpec::from_json_str(r#"{"matrix": {"source": "table3", "name": "Q9"}}"#)
            .unwrap_err();
        assert!(
            matches!(e, JobError::Invalid(ref m) if m.contains("Q9")),
            "{e}"
        );
        let e = JobSpec::from_json_str(
            r#"{"matrix": {"source": "table3", "name": "N1"}, "kernel": "sort"}"#,
        )
        .unwrap_err();
        assert!(
            matches!(e, JobError::Invalid(ref m) if m.contains("sort")),
            "{e}"
        );
        let e =
            JobSpec::from_json_str(r#"{"matrix": {"source": "table3", "name": "N1"}, "bogus": 1}"#)
                .unwrap_err();
        assert!(
            matches!(e, JobError::Invalid(ref m) if m.contains("bogus")),
            "{e}"
        );
        let e =
            JobSpec::from_json_str(r#"{"matrix": {"source": "table3", "name": "N1", "dim": 4}}"#)
                .unwrap_err();
        assert!(
            matches!(e, JobError::Invalid(ref m) if m.contains("dim")),
            "{e}"
        );
    }

    #[test]
    fn rejects_structural_violations_without_panicking() {
        let mut spec = tiny_spec();
        spec.leaves = 48; // not a power of two — PuConfig::validate would panic
        assert!(matches!(spec.validate(), Err(JobError::Invalid(_))));
        assert!(spec.execute().is_err());

        let mut spec = tiny_spec();
        spec.scale = 0;
        assert!(spec.validate().is_err());

        let mut spec = tiny_spec();
        spec.channels = 0;
        assert!(spec.validate().is_err());

        let mut spec = tiny_spec();
        spec.frequency_mhz = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn executes_transpose_and_verifies() {
        let spec = tiny_spec();
        let outcome = spec.execute().expect("runs");
        assert_eq!(outcome.kernel, "transpose");
        assert_eq!(outcome.nnz, 512);
        assert!(outcome.cycles > 0);
        // Digest matches a direct recomputation of the golden transpose.
        let m = spec.matrix.generate(1, spec.seed).unwrap();
        let csc = m.to_csc();
        let mut d = Digest::new();
        d.push_usize_slice(csc.col_ptr());
        d.push_u32_slice(csc.row_idx());
        d.push_f32_slice(csc.values());
        assert_eq!(outcome.output_digest, d.finish());
    }

    #[test]
    fn outcome_json_is_deterministic_and_thread_invariant() {
        let mut spec = tiny_spec();
        spec.kernel = JobKernel::Spmv;
        let a = spec.execute().expect("runs").to_json();
        let b = spec.execute().expect("runs again").to_json();
        assert_eq!(a, b);
        // Host thread count must not leak into the outcome.
        let mut threaded = spec.clone();
        threaded.threads = Some(2);
        let c = threaded.execute().expect("threaded run");
        // The job echo differs (threads field), but simulated results are
        // identical.
        assert_eq!(
            JobSpec::from_json_str(&spec.to_json())
                .unwrap()
                .execute()
                .unwrap()
                .output_digest,
            c.output_digest
        );
        assert_eq!(spec.execute().unwrap().cycles, c.cycles);
    }

    #[test]
    fn spgemm_executes_on_tiny_input() {
        let mut spec = tiny_spec();
        spec.matrix = MatrixSource::Uniform { dim: 32, nnz: 128 };
        spec.kernel = JobKernel::Spgemm;
        let outcome = spec.execute().expect("runs");
        assert_eq!(outcome.kernel, "spgemm");
        assert!(outcome.cycles > 0);
        assert!(outcome.out_nnz > 0);
    }

    #[test]
    fn cost_reflects_scaled_size() {
        let mut spec = JobSpec::new(MatrixSource::Table3("N1".into()));
        spec.scale = 64;
        assert_eq!(spec.cost_nnz(), 3_435_973 / 64);
        spec.kernel = JobKernel::Spgemm;
        assert_eq!(spec.cost_nnz(), 2 * (3_435_973 / 64));
        assert_eq!(
            MatrixSource::Table3("nope".into()).scaled_nnz(1),
            0,
            "unknown names cost nothing (they are rejected by validate)"
        );
    }

    #[test]
    fn trace_counting_reports_events_without_perturbing_results() {
        let plain = tiny_spec();
        let mut traced = tiny_spec();
        traced.trace_counting = true;
        let p = plain.execute().expect("plain");
        let t = traced.execute().expect("traced");
        assert!(t.trace_events.is_some());
        assert_eq!(p.output_digest, t.output_digest);
        assert_eq!(p.cycles, t.cycles);
    }

    #[test]
    fn digest_is_stable_fnv() {
        assert_eq!(Digest::of(b""), 0xcbf2_9ce4_8422_2325);
        // Known FNV-1a vector: "a" -> 0xaf63dc4c8601ec8c.
        assert_eq!(Digest::of(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
