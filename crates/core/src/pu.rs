//! One MeNDA processing unit (Fig. 5): merge tree + prefetch buffers +
//! controller FSM + request queues + memory interface unit, attached to
//! one DRAM rank simulated cycle-accurately by [`menda_dram`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use menda_dram::{MemRequest, MemorySystem, ReqKind};
use menda_sparse::CsrMatrix;
use menda_trace::{Histogram, TraceConfig, TraceReport, Tracer};

use crate::coalesce::{CoalescingQueue, EnqueueOutcome};
use crate::config::{MendaConfig, PuConfig};
use crate::layout::{AddressLayout, BLOCK_BYTES};
use crate::merge_tree::{ActiveSet, LeafSource, MergeTree, Packet};
use crate::prefetch::{FetchPlan, PrefetchBuffer, StreamDescriptor, StreamKind};
use crate::stats::{IterationStats, PuStats};

/// Reserved waiter id for controller pointer-array reads.
const PTR_WAITER: u32 = u32::MAX;
/// Reserved waiter id for SpMV vector reads (traffic only).
const VEC_WAITER: u32 = u32::MAX - 1;
/// Request-id bit marking concurrent host traffic (§4); responses with
/// this bit are dropped (the host consumes them, not the PU).
const HOST_REQ_BIT: u64 = 1 << 63;

/// The data backing an iteration's streams, used to decode fetched blocks
/// into packets (the DRAM simulator provides timing; contents live here).
#[derive(Debug, Clone, Copy)]
pub enum IterSource<'a> {
    /// Iteration-0 transposition: CSR column indices and values.
    Csr {
        /// Column index array.
        cols: &'a [u32],
        /// Value array.
        vals: &'a [f32],
    },
    /// Intermediate COO runs.
    Coo {
        /// Row index array.
        rows: &'a [u32],
        /// Column index array.
        cols: &'a [u32],
        /// Value array.
        vals: &'a [f32],
    },
    /// SpMV iteration-0: CSC row indices and values (values are scaled by
    /// the per-column vector element embedded in the stream descriptor).
    ScaledCsc {
        /// Row index array.
        rows: &'a [u32],
        /// Value array.
        vals: &'a [f32],
    },
    /// SpMV intermediate (index, value) pairs.
    Pair {
        /// Index array.
        idx: &'a [u32],
        /// Value array.
        vals: &'a [f32],
    },
}

impl IterSource<'_> {
    /// Decodes elements `range` of stream `desc` into `out` (cleared
    /// first; the caller's buffer keeps its allocation across chunks).
    /// Shared by every backend that consumes [`crate::job::PuJob`]s: the
    /// DRAM simulator provides timing, this provides contents.
    pub(crate) fn materialize_into(
        &self,
        desc: &StreamDescriptor,
        range: std::ops::Range<u64>,
        out: &mut Vec<Packet>,
    ) {
        out.clear();
        out.reserve((range.end - range.start) as usize);
        match (self, desc.kind) {
            (IterSource::Csr { cols, vals }, StreamKind::CsrRow { row }) => {
                for e in range {
                    out.push(Packet::nz(cols[e as usize], row, vals[e as usize]));
                }
            }
            (IterSource::Coo { rows, cols, vals }, StreamKind::Coo { .. }) => {
                for e in range {
                    out.push(Packet::nz(
                        cols[e as usize],
                        rows[e as usize],
                        vals[e as usize],
                    ));
                }
            }
            (IterSource::ScaledCsc { rows, vals }, StreamKind::SpmvCol { scale }) => {
                for e in range {
                    out.push(Packet::nz(rows[e as usize], 0, vals[e as usize] * scale));
                }
            }
            (IterSource::Pair { idx, vals }, StreamKind::Pair { .. }) => {
                for e in range {
                    out.push(Packet::nz(idx[e as usize], 0, vals[e as usize]));
                }
            }
            _ => panic!("stream kind does not match iteration source"),
        }
    }
}

/// Pointer-array read gating for iteration 0 (§3.2's controller FSM): the
/// controller streams the pointer array from memory and only then knows
/// each stream's start/end addresses.
#[derive(Debug, Clone)]
pub struct PtrGate {
    /// Base address of the pointer array.
    pub ptr_base: u64,
    /// Ascending block indices (within the pointer array) to read. For
    /// SpMV this is pre-filtered by the auxiliary pointer array (§3.6).
    pub blocks: Vec<u64>,
    /// For descriptor `i`, how many of `blocks` must have arrived before
    /// its addresses are known (non-decreasing).
    pub release_after: Vec<usize>,
    /// Also fetch the input-vector block alongside each pointer block
    /// (SpMV; adds traffic, data is functional).
    pub vector_base: Option<u64>,
}

/// How an iteration's root output is stored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutputMode {
    /// COO runs into ping-pong `region` (12 B per nonzero, three arrays).
    Intermediate {
        /// Destination ping-pong region.
        region: u8,
    },
    /// SpMV (index, value) runs into `region` (8 B per nonzero).
    IntermediatePair {
        /// Destination ping-pong region.
        region: u8,
    },
    /// Final CSC output: index + value arrays (8 B per nonzero) plus the
    /// column pointer array (`ncols + 1` entries, paced by column cursor).
    FinalCsc {
        /// Columns in the output pointer array.
        ncols: u64,
    },
    /// Final dense SpMV vector (4 B per output row, paced by row cursor).
    FinalDense {
        /// Rows of the output vector partition.
        rows: u64,
    },
}

/// Emitted output of one iteration: `(minor keys, major keys, values)`.
pub type EmittedTriples = (Vec<u32>, Vec<u32>, Vec<f32>);

/// Everything `run_rounds` needs for one iteration.
#[derive(Debug)]
pub struct IterationSetup<'a> {
    /// Stream descriptors in assignment order.
    pub descriptors: Vec<StreamDescriptor>,
    /// Backing data.
    pub source: IterSource<'a>,
    /// Pointer-read gating, if the controller must read pointers first.
    pub gate: Option<PtrGate>,
    /// Output mode.
    pub out: OutputMode,
    /// Merge packets with equal (major, minor) keys at the root — the
    /// reduction unit of §3.6. For SpMV the minor key is constant 0, so
    /// this reduces equal row indices; for the SpGEMM extension it reduces
    /// equal (row, column) pairs.
    pub reduce: bool,
}

/// Borrowed view of one iteration's inputs, shared by every step of
/// [`ProcessingUnit::iter_loop`]. Unlike [`IterationSetup`] it borrows the
/// descriptor slice, so the checkpointable job runner can keep descriptors
/// alive across pause/resume without cloning per call.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IterParams<'a> {
    /// Stream descriptors in assignment order.
    pub(crate) descriptors: &'a [StreamDescriptor],
    /// Backing data.
    pub(crate) source: IterSource<'a>,
    /// Pointer-read gating, if the controller must read pointers first.
    pub(crate) gate: Option<&'a PtrGate>,
    /// Output mode.
    pub(crate) out: OutputMode,
    /// Merge packets with equal (major, minor) keys at the root.
    pub(crate) reduce: bool,
}

/// The complete mutable state of one in-flight iteration of
/// [`ProcessingUnit::iter_loop`] — every loop local lives here so an
/// iteration can pause at a cycle boundary, serialize, and resume
/// bit-identically. Fields are grouped into *derived geometry*
/// (recomputed by [`IterState::new`] from the params, never serialized)
/// and *dynamic state* (the checkpoint payload).
#[derive(Debug)]
pub(crate) struct IterState {
    // --- Derived geometry (recomputable from the params). ---
    /// Number of real stream descriptors.
    pub(crate) n_streams: usize,
    /// Merge rounds this iteration runs (`ceil(n_streams / leaves)`).
    pub(crate) total_rounds: usize,
    /// `total_rounds * leaves`: descriptor slots including padding.
    pub(crate) padded: usize,
    /// Output bytes per emitted element.
    pub(crate) elem_bytes: u64,
    /// Base addresses of the output arrays.
    pub(crate) out_bases: Vec<u64>,
    /// `u128` words per parked-bucket bitmask.
    pub(crate) pw: usize,
    /// Largest parked-bucket index (read-queue capacity).
    pub(crate) need_cap: usize,
    /// No streams at all: the iteration is a no-op.
    pub(crate) trivially_done: bool,
    // --- Dynamic state (serialized by the checkpoint layer). ---
    pub(crate) tree: MergeTree,
    pub(crate) buffers: Vec<PrefetchBuffer>,
    pub(crate) read_q: CoalescingQueue,
    pub(crate) write_q: VecDeque<u64>,
    pub(crate) next_release: usize,
    pub(crate) ptr_blocks_arrived: usize,
    pub(crate) ptr_arrived_set: Vec<bool>,
    pub(crate) ptr_next_issue: usize,
    pub(crate) ptr_outstanding: usize,
    pub(crate) out_minor: Vec<u32>,
    pub(crate) out_major: Vec<u32>,
    pub(crate) out_val: Vec<f32>,
    pub(crate) boundaries: Vec<usize>,
    pub(crate) bytes_accum: u64,
    pub(crate) stored_nzs: u64,
    pub(crate) ptr_cursor: u64,
    pub(crate) final_flush_pushed: usize,
    pub(crate) pending_ptr_blocks: u64,
    pub(crate) buf_active: ActiveSet,
    pub(crate) parked_buckets: Vec<u128>,
    pub(crate) parked_union: Vec<u128>,
    pub(crate) parked_need: Vec<u32>,
    pub(crate) parked_count: usize,
    pub(crate) union_avail: usize,
    /// Scratch allocations reused every cycle (contents are dead between
    /// cycles, so the checkpoint layer skips them).
    pub(crate) buf_scratch: Vec<u32>,
    pub(crate) popped_scratch: Vec<u32>,
    pub(crate) packet_scratch: Vec<Packet>,
    pub(crate) waiter_scratch: Vec<u32>,
    pub(crate) cycles: u64,
    pub(crate) last_key_in_run: Option<(u32, u32)>,
    pub(crate) it: IterationStats,
    pub(crate) dram_before: menda_dram::DramStats,
}

impl IterState {
    /// Fresh start-of-iteration state for `pu` under `p`, mirroring what
    /// the original monolithic loop set up before its first cycle.
    pub(crate) fn new(pu: &ProcessingUnit, p: &IterParams<'_>) -> Self {
        let pu_cfg = &pu.pu_cfg;
        let l = pu_cfg.leaves;
        let layout = pu.layout;
        let n_streams = p.descriptors.len();
        let total_rounds = n_streams
            .div_ceil(l)
            .max(if n_streams == 0 { 0 } else { 1 });
        let elem_bytes: u64 = match p.out {
            OutputMode::Intermediate { .. } => 12,
            OutputMode::IntermediatePair { .. } | OutputMode::FinalCsc { .. } => 8,
            OutputMode::FinalDense { .. } => 4,
        };
        let out_bases: Vec<u64> = match p.out {
            OutputMode::Intermediate { region } => layout.coo[region as usize].to_vec(),
            OutputMode::IntermediatePair { region } => vec![
                layout.coo[region as usize][0],
                layout.coo[region as usize][2],
            ],
            OutputMode::FinalCsc { .. } => vec![layout.out_idx, layout.out_val],
            OutputMode::FinalDense { .. } => vec![layout.out_val],
        };
        let pw = l.div_ceil(128);
        let need_cap = pu_cfg.read_queue_entries;
        Self {
            n_streams,
            total_rounds,
            padded: total_rounds * l,
            elem_bytes,
            out_bases,
            pw,
            need_cap,
            trivially_done: n_streams == 0,
            tree: MergeTree::new(l, pu_cfg.fifo_entries),
            buffers: (0..l)
                .map(|i| {
                    PrefetchBuffer::new(
                        i as u32,
                        pu_cfg.prefetch_buffer_entries,
                        pu_cfg.stall_reducing_prefetch,
                        layout,
                    )
                })
                .collect(),
            read_q: CoalescingQueue::new(pu_cfg.read_queue_entries, pu_cfg.request_coalescing),
            write_q: VecDeque::new(),
            next_release: 0,
            ptr_blocks_arrived: 0,
            ptr_arrived_set: p
                .gate
                .map(|g| vec![false; g.blocks.len()])
                .unwrap_or_default(),
            ptr_next_issue: 0,
            ptr_outstanding: 0,
            out_minor: Vec::new(),
            out_major: Vec::new(),
            out_val: Vec::new(),
            boundaries: Vec::new(),
            bytes_accum: 0,
            stored_nzs: 0,
            ptr_cursor: 0,
            final_flush_pushed: 0,
            pending_ptr_blocks: 0,
            buf_active: ActiveSet::new(l),
            parked_buckets: vec![0; (need_cap + 1) * pw],
            parked_union: vec![0; pw],
            parked_need: vec![0; l],
            parked_count: 0,
            union_avail: usize::MAX,
            buf_scratch: Vec::with_capacity(l),
            popped_scratch: Vec::with_capacity(l),
            packet_scratch: Vec::new(),
            waiter_scratch: Vec::new(),
            cycles: 0,
            last_key_in_run: None,
            it: IterationStats::default(),
            dram_before: pu.mem.stats(),
        }
    }

    /// Serializes the dynamic state of a paused iteration. Derived
    /// geometry and the per-cycle scratch vectors are skipped: geometry is
    /// recomputed from the job at restore, and the scratch contents are
    /// dead between cycles (the loop only pauses at the top).
    pub(crate) fn save_state(&self, enc: &mut menda_dram::Encoder) {
        self.tree.save_state(enc);
        enc.seq(self.buffers.len());
        for b in &self.buffers {
            b.save_state(enc);
        }
        self.read_q.save_state(enc);
        enc.seq(self.write_q.len());
        for &w in &self.write_q {
            enc.u64(w);
        }
        enc.usize(self.next_release);
        enc.usize(self.ptr_blocks_arrived);
        enc.seq(self.ptr_arrived_set.len());
        for &a in &self.ptr_arrived_set {
            enc.bool(a);
        }
        enc.usize(self.ptr_next_issue);
        enc.usize(self.ptr_outstanding);
        enc.u32s(&self.out_minor);
        enc.u32s(&self.out_major);
        enc.f32s(&self.out_val);
        enc.seq(self.boundaries.len());
        for &b in &self.boundaries {
            enc.usize(b);
        }
        enc.u64(self.bytes_accum);
        enc.u64(self.stored_nzs);
        enc.u64(self.ptr_cursor);
        enc.usize(self.final_flush_pushed);
        enc.u64(self.pending_ptr_blocks);
        self.buf_active.save_state(enc);
        enc.seq(self.parked_buckets.len());
        for &w in &self.parked_buckets {
            enc.u64(w as u64);
            enc.u64((w >> 64) as u64);
        }
        enc.u32s(&self.parked_need);
        enc.u64(self.cycles);
        match self.last_key_in_run {
            Some((major, minor)) => {
                enc.u8(1);
                enc.u32(major);
                enc.u32(minor);
            }
            None => enc.u8(0),
        }
        self.it.save_state(enc);
        self.dram_before.save_state(enc);
    }

    /// Rebuilds a paused iteration from bytes written by
    /// [`IterState::save_state`]: starts from the fresh state
    /// [`IterState::new`] derives from the job, then overlays the dynamic
    /// payload, validating every structural quantity against the derived
    /// geometry so corrupt bytes yield a typed error, never a panic or a
    /// partially restored state.
    pub(crate) fn restore_state(
        pu: &ProcessingUnit,
        p: &IterParams<'_>,
        dec: &mut menda_dram::Decoder<'_>,
    ) -> Result<Self, menda_dram::SnapError> {
        use menda_dram::SnapError;
        let mut st = IterState::new(pu, p);
        st.tree.restore_state(dec)?;
        let n_buffers = dec.len_capped(1)?;
        if n_buffers != st.buffers.len() {
            return Err(SnapError::BadValue);
        }
        for b in st.buffers.iter_mut() {
            b.restore_state(dec)?;
        }
        st.read_q.restore_state(dec)?;
        let n_writes = dec.len_capped(8)?;
        st.write_q = (0..n_writes).map(|_| dec.u64()).collect::<Result<_, _>>()?;
        st.next_release = dec.usize()?;
        if st.next_release > st.padded {
            return Err(SnapError::BadValue);
        }
        st.ptr_blocks_arrived = dec.usize()?;
        let n_arrived = dec.len_capped(1)?;
        if n_arrived != st.ptr_arrived_set.len() || st.ptr_blocks_arrived > n_arrived {
            return Err(SnapError::BadValue);
        }
        for a in st.ptr_arrived_set.iter_mut() {
            *a = dec.bool()?;
        }
        st.ptr_next_issue = dec.usize()?;
        st.ptr_outstanding = dec.usize()?;
        if st.ptr_next_issue > st.ptr_arrived_set.len() || st.ptr_outstanding > st.ptr_next_issue {
            return Err(SnapError::BadValue);
        }
        st.out_minor = dec.u32s()?;
        st.out_major = dec.u32s()?;
        st.out_val = dec.f32s()?;
        if st.out_minor.len() != st.out_major.len() || st.out_val.len() != st.out_major.len() {
            return Err(SnapError::BadValue);
        }
        let n_bounds = dec.len_capped(8)?;
        st.boundaries = Vec::with_capacity(n_bounds);
        for _ in 0..n_bounds {
            let b = dec.usize()?;
            if b > st.out_major.len() {
                return Err(SnapError::BadValue);
            }
            st.boundaries.push(b);
        }
        st.bytes_accum = dec.u64()?;
        st.stored_nzs = dec.u64()?;
        st.ptr_cursor = dec.u64()?;
        st.final_flush_pushed = dec.usize()?;
        if st.final_flush_pushed > st.out_bases.len() {
            return Err(SnapError::BadValue);
        }
        st.pending_ptr_blocks = dec.u64()?;
        st.buf_active.restore_state(dec)?;
        let n_parked = dec.len_capped(16)?;
        if n_parked != st.parked_buckets.len() {
            return Err(SnapError::BadValue);
        }
        for w in st.parked_buckets.iter_mut() {
            let lo = dec.u64()?;
            let hi = dec.u64()?;
            *w = (lo as u128) | ((hi as u128) << 64);
        }
        st.parked_need = dec.u32s()?;
        if st.parked_need.len() != pu.pu_cfg.leaves
            || st.parked_need.iter().any(|&n| n as usize > st.need_cap)
        {
            return Err(SnapError::BadValue);
        }
        // Derived cache state: the member count comes from the restored
        // buckets and the union cache starts invalid (the next use rebuilds
        // it from the buckets — same words either way).
        st.parked_count = st.parked_need.iter().filter(|&&n| n != 0).count();
        st.union_avail = usize::MAX;
        st.cycles = dec.u64()?;
        st.last_key_in_run = match dec.u8()? {
            0 => None,
            1 => Some((dec.u32()?, dec.u32()?)),
            _ => return Err(SnapError::BadValue),
        };
        st.it = IterationStats::restore_state(dec)?;
        st.dram_before.restore_state(dec)?;
        Ok(st)
    }
}

/// Result of one full PU execution (all iterations of one partition).
#[derive(Debug, Clone, PartialEq)]
pub struct PuResult {
    /// Output major keys (column indices for transposition), sorted.
    pub majors: Vec<u32>,
    /// Output minor keys (row indices for transposition).
    pub minors: Vec<u32>,
    /// Output values.
    pub values: Vec<f32>,
    /// Execution statistics.
    pub stats: PuStats,
}

struct BufferPorts<'a> {
    buffers: &'a mut [PrefetchBuffer],
    popped: Vec<u32>,
    /// Fast-forward mode: suppress wakeups that provably cannot lead to
    /// a fetch (see [`LeafSource::pop`] below).
    event_driven: bool,
    /// When set (tracing on), classify each leaf pop as fed/starved.
    count_feed: bool,
    /// Pops after which the buffer still had a packet ready (or the
    /// stream was complete) — the prefetcher kept the leaf fed.
    fed: u64,
    /// Pops that drained the buffer mid-stream — the leaf will bubble
    /// until the next block arrives from memory.
    starved: u64,
}

/// Read-only [`LeafSource`] view over the prefetch buffers, used by the
/// fast-forward path to probe [`MergeTree::is_quiescent`] without taking a
/// mutable borrow.
struct PeekPorts<'a>(&'a [PrefetchBuffer]);

impl LeafSource for PeekPorts<'_> {
    fn peek(&self, port: usize) -> Option<Packet> {
        self.0[port].peek()
    }

    fn pop(&mut self, _port: usize) {
        unreachable!("quiescence probing never pops")
    }
}

impl LeafSource for BufferPorts<'_> {
    fn peek(&self, port: usize) -> Option<Packet> {
        self.buffers[port].peek()
    }

    fn pop(&mut self, port: usize) {
        self.buffers[port].pop();
        if self.count_feed {
            if self.buffers[port].peek().is_some() || self.buffers[port].is_done() {
                self.fed += 1;
            } else {
                self.starved += 1;
            }
        }
        // Event-driven mode skips re-polling a buffer on pops that provably
        // cannot unblock its fetch planner: a chunk is still in flight (the
        // completion re-activates the buffer via the response path), or less
        // space has freed up than the planner's last refusal demanded. The
        // reference path keeps the poll-every-pop behavior; both are proven
        // bit-identical by the fast-forward differential suite.
        if !self.event_driven || self.buffers[port].fetch_ready() {
            self.popped.push(port as u32);
        }
    }
}

/// How the epoch drain reaches the PU's memory system: directly
/// (serial), or through a mutex shared with a scoped worker thread
/// that advances the DRAM clock in the background (the pipelined
/// multi-core mode, `SimOptions::threads > 1`). `MemorySystem::advance`
/// is tick-exact toward a given absolute target no matter which thread
/// executes which span, so both modes land on bit-identical memory
/// state — enforced by the thread-count differential suites and the
/// DRAM command-log comparison.
enum EpochMem<'a, 'm> {
    /// Direct access (serial epoch drain).
    Serial(&'a mut MemorySystem),
    /// Shared with a background ticking worker. `target` is the
    /// absolute bus cycle the worker may advance to — published by the
    /// main thread once per completed epoch cycle, always the next
    /// cycle's issue-time clock, so the worker can never overshoot an
    /// early epoch exit.
    Overlap {
        mem: &'a Mutex<&'m mut MemorySystem>,
        target: &'a AtomicU64,
    },
}

impl EpochMem<'_, '_> {
    /// Applies the deferred DRAM ticks — brings the memory system to
    /// absolute bus cycle `target` — then runs `f` on it. One lock
    /// acquisition covers both in overlap mode, so an issue cycle
    /// cannot interleave with the worker between catch-up and issue.
    fn sync<R>(&mut self, target: u64, f: impl FnOnce(&mut MemorySystem) -> R) -> R {
        match self {
            EpochMem::Serial(mem) => {
                ProcessingUnit::epoch_advance_to(mem, target);
                f(mem)
            }
            EpochMem::Overlap { mem, .. } => {
                let mut m = mem.lock().expect("DRAM ticking worker panicked");
                ProcessingUnit::epoch_advance_to(&mut m, target);
                f(&mut m)
            }
        }
    }

    /// Publishes the bus-cycle target the background worker may
    /// advance to (no-op in serial mode).
    fn publish(&self, target_now: u64) {
        if let EpochMem::Overlap { target, .. } = self {
            target.store(target_now, Ordering::Release);
        }
    }
}

/// Instrumentation state of one PU (see the `menda-trace` crate): a
/// cycle-stamped tracer on track 0 plus occupancy histograms and counters
/// maintained by purely observational hooks in
/// [`ProcessingUnit::run_rounds`]. Built only when
/// [`MendaConfig::trace`] enables a sink, so untraced runs pay nothing.
#[derive(Debug)]
struct PuTraceState {
    tracer: Tracer,
    interval: u64,
    /// Global PU cycle at the start of the current iteration (each
    /// iteration restarts its local cycle counter).
    cycle_base: u64,
    tree_fill: Histogram,
    read_q_occ: Histogram,
    write_q_occ: Histogram,
    prefetch_held: Histogram,
    coalesce_width: Histogram,
    prefetch_hits: u64,
    prefetch_misses: u64,
    queue_coalesced: u64,
    nz_emitted: u64,
    loads_issued: u64,
    stores_issued: u64,
    iterations: u64,
}

impl PuTraceState {
    fn new(cfg: &TraceConfig, pu: &PuConfig) -> Option<Self> {
        let tracer = cfg.make_tracer(0)?;
        let l = pu.leaves as u64;
        Some(Self {
            tracer,
            interval: cfg.sample_interval,
            cycle_base: 0,
            tree_fill: Histogram::for_range((l - 1) * 2 * pu.fifo_entries as u64),
            read_q_occ: Histogram::up_to(pu.read_queue_entries as u64),
            write_q_occ: Histogram::up_to(pu.write_queue_entries as u64),
            prefetch_held: Histogram::for_range(l * pu.prefetch_buffer_entries as u64),
            coalesce_width: Histogram::up_to(64),
            prefetch_hits: 0,
            prefetch_misses: 0,
            queue_coalesced: 0,
            nz_emitted: 0,
            loads_issued: 0,
            stores_issued: 0,
            iterations: 0,
        })
    }

    fn into_report(self) -> TraceReport {
        let mut report = TraceReport {
            sink: self.tracer.finish(),
            ..Default::default()
        };
        report.add_counter("pu.cycles", self.cycle_base);
        report.add_counter("pu.iterations", self.iterations);
        report.add_counter("pu.nz_emitted", self.nz_emitted);
        report.add_counter("pu.loads_issued", self.loads_issued);
        report.add_counter("pu.stores_issued", self.stores_issued);
        report.add_counter("pu.queue_coalesced", self.queue_coalesced);
        report.add_counter("pu.prefetch.hits", self.prefetch_hits);
        report.add_counter("pu.prefetch.misses", self.prefetch_misses);
        report.set_histogram("pu.tree_fill", self.tree_fill);
        report.set_histogram("pu.read_queue", self.read_q_occ);
        report.set_histogram("pu.write_queue", self.write_q_occ);
        report.set_histogram("pu.prefetch_held", self.prefetch_held);
        report.set_histogram("pu.coalesce_width", self.coalesce_width);
        report
    }
}

/// One near-memory processing unit beside one DRAM rank.
#[derive(Debug)]
pub struct ProcessingUnit {
    pu_cfg: PuConfig,
    /// DRAM bus cycles per PU cycle as a (numerator, denominator) ratio.
    ticks: (u64, u64),
    layout: AddressLayout,
    mem: MemorySystem,
    dram_tick_accum: u64,
    next_req_id: u64,
    /// Event-driven fast-forwarding (see [`crate::config::SimOptions`]):
    /// when set, `run_rounds` jumps over provably no-op cycle spans.
    /// Results are bit-identical either way.
    fast_forward: bool,
    /// Coarse-grained epoch batching on the fast path (see
    /// [`crate::config::SimOptions::epoch`]): when the controller FSM
    /// and prefetch planner are provably frozen, run a fused loop of
    /// only the steps that can still act. Results are bit-identical
    /// either way.
    epoch: bool,
    /// Pipelined multi-core mode (`SimOptions::threads > 1`): long
    /// epochs hand the rank's DRAM ticking to a scoped worker thread
    /// overlapped with the merge-tree compute. Results are
    /// bit-identical for every thread count.
    overlap: bool,
    /// Instrumentation state; `None` when tracing is off. Purely
    /// observational — it never feeds back into the simulation.
    trace: Option<PuTraceState>,
}

impl ProcessingUnit {
    /// Creates a PU with its own single-rank memory system. Only the
    /// per-PU parts of `config` are kept (the PU parameters and the rank's
    /// DRAM configuration); the system-level fields stay with the caller.
    pub fn new(config: &MendaConfig) -> Self {
        config.pu.validate();
        let mut dram = config.dram.clone().with_channels(1).with_ranks(1);
        // The system-level trace knob governs the rank's DRAM tracing too,
        // so `MendaConfig::with_trace` works without touching `dram`.
        dram.trace = config.trace;
        Self {
            layout: AddressLayout::rank_default(),
            mem: MemorySystem::new(dram),
            dram_tick_accum: 0,
            next_req_id: 0,
            fast_forward: config.sim.fast_forward,
            epoch: config.sim.epoch,
            overlap: config.sim.threads.is_some_and(|t| t > 1),
            trace: PuTraceState::new(&config.trace, &config.pu),
            pu_cfg: config.pu.clone(),
            ticks: config.dram_ticks_ratio(),
        }
    }

    /// The address layout this PU uses.
    pub fn layout(&self) -> &AddressLayout {
        &self.layout
    }

    /// Merge-tree leaf count of this PU.
    pub(crate) fn leaves(&self) -> usize {
        self.pu_cfg.leaves
    }

    /// Current DRAM-side statistics of this PU's rank.
    pub(crate) fn dram_stats(&self) -> menda_dram::DramStats {
        self.mem.stats()
    }

    /// Ends instrumentation and returns this PU's trace report (track 0
    /// carries PU-cycle events, track 1 the rank's DRAM bus-cycle
    /// events), or `None` when tracing is off. The PU records nothing
    /// afterwards.
    pub fn take_trace_report(&mut self) -> Option<TraceReport> {
        let state = self.trace.take()?;
        let mut report = state.into_report();
        if let Some(dram) = self.mem.take_trace_report() {
            report.merge(dram);
        }
        Some(report)
    }

    /// The earliest future bus cycle at which this PU's rank can change
    /// observable state (`None` when the rank is inert) — the same event
    /// bound the fast-forward quiescence skip inside
    /// [`ProcessingUnit::run_rounds`] jumps by, exposed for the
    /// [`crate::backend::AcceleratorBackend`] seam.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.mem.next_event_cycle()
    }

    /// The DRAM command stream of this PU's rank (empty unless
    /// `config.dram.log_commands` is set). Feed it to
    /// [`menda_dram::validate_trace`] to check protocol compliance.
    pub fn dram_command_log(&self) -> &[menda_dram::CommandRecord] {
        self.mem.command_log(0)
    }

    /// Whether this PU carries live instrumentation state. Checkpointing
    /// is refused while tracing (the tracer's event stream is not
    /// serializable), so the checkpoint layer probes this first.
    pub(crate) fn tracing_active(&self) -> bool {
        self.trace.is_some()
    }

    /// Serializes the PU-level dynamic state outside any iteration: the
    /// DRAM clock-ratio accumulator, the request-id counter, and the full
    /// state of the rank's memory system.
    pub(crate) fn save_unit_state(&self, enc: &mut menda_dram::Encoder) {
        enc.u64(self.dram_tick_accum);
        enc.u64(self.next_req_id);
        self.mem.save_state(enc);
    }

    /// Restores state saved by [`ProcessingUnit::save_unit_state`] into a
    /// freshly built PU of the same configuration.
    pub(crate) fn restore_unit_state(
        &mut self,
        dec: &mut menda_dram::Decoder<'_>,
    ) -> Result<(), menda_dram::SnapError> {
        self.dram_tick_accum = dec.u64()?;
        self.next_req_id = dec.u64()?;
        self.mem.restore_state(dec)
    }

    /// Transposes `part` (a horizontal partition whose local row 0 is
    /// global row `row_offset`), returning the partition's nonzeros in
    /// CSC order (sorted by column, then global row) plus statistics.
    ///
    /// Thin wrapper over the job layer: builds the transposition job
    /// ([`crate::job::transpose_job`]) and executes it on this PU.
    pub fn transpose(&mut self, part: &CsrMatrix, row_offset: usize) -> PuResult {
        crate::job::execute(self, crate::job::transpose_job(part.clone(), row_offset))
    }

    /// Runs all merge rounds of one iteration, cycle by cycle. Returns the
    /// emitted `(minors, majors, values)`, the run boundaries (prefix
    /// lengths at each root EOL) and the iteration statistics.
    ///
    /// Thin wrapper over [`ProcessingUnit::iter_loop`]: builds a fresh
    /// [`IterState`], runs it to completion with no pause target, and
    /// finalizes. The checkpointable job runner drives the same loop with
    /// a pause cycle instead.
    pub fn run_rounds(
        &mut self,
        setup: IterationSetup<'_>,
    ) -> (EmittedTriples, Vec<usize>, IterationStats) {
        let p = IterParams {
            descriptors: &setup.descriptors,
            source: setup.source,
            gate: setup.gate.as_ref(),
            out: setup.out,
            reduce: setup.reduce,
        };
        let mut st = IterState::new(self, &p);
        if st.trivially_done {
            return ((Vec::new(), Vec::new(), Vec::new()), Vec::new(), st.it);
        }
        self.begin_iteration_trace();
        let done = self.iter_loop(&p, &mut st, None);
        debug_assert!(done, "unbounded iter_loop must run to completion");
        self.finish_iteration(st)
    }

    /// Opens the `pu.iteration` trace span for an iteration about to run
    /// (no-op when tracing is off). Paired with the close in
    /// [`ProcessingUnit::finish_iteration`].
    pub(crate) fn begin_iteration_trace(&mut self) {
        if let Some(ts) = self.trace.as_mut() {
            ts.tracer.begin(ts.cycle_base, "pu.iteration");
        }
    }

    /// Advances one iteration's merge loop until it completes (returns
    /// `true`) or, when `pause_at` is set, until `st.cycles` reaches that
    /// local cycle count (returns `false` with the state parked exactly at
    /// the top of the loop — the only point at which [`IterState`] is
    /// serialized, so a restored state resumes bit-identically).
    ///
    /// This is the heart of the simulator: per PU cycle it
    /// 1. delivers DRAM responses (pointer blocks to the controller FSM,
    ///    data blocks to every coalesced waiter),
    /// 2. issues one read and one write from the PU queues to the rank,
    /// 3. lets the controller issue pointer reads and release stream
    ///    descriptors to the prefetch buffers,
    /// 4. lets active prefetch buffers plan and enqueue block loads
    ///    (coalescing duplicates, §3.4),
    /// 5. ticks the merge tree one cycle and handles the root pop
    ///    (output-buffer accounting, store requests, pointer-write pacing,
    ///    optional SpMV reduction),
    /// 6. advances the rank's DRAM clock by 1.5 bus cycles.
    pub(crate) fn iter_loop(
        &mut self,
        p: &IterParams<'_>,
        st: &mut IterState,
        pause_at: Option<u64>,
    ) -> bool {
        let pu_cfg = self.pu_cfg.clone();
        let l = pu_cfg.leaves;
        let layout = self.layout;
        let count_feed = self.trace.is_some();
        let n_streams = st.n_streams;
        let total_rounds = st.total_rounds;
        let padded = st.padded;
        let elem_bytes = st.elem_bytes;
        let pw = st.pw;
        let need_cap = st.need_cap;
        let (dram_num, dram_den) = self.ticks;
        let max_cycles: u64 = 20_000_000_000;

        loop {
            // Termination: all rounds merged and all output flushed. This
            // check runs before the pause check so a pause target at or
            // past completion still reports "done".
            if st.tree.rounds_completed() as usize >= total_rounds
                && st.bytes_accum == 0
                && st.pending_ptr_blocks == 0
                && st.write_q.is_empty()
                && self.mem.is_idle()
            {
                return true;
            }
            if let Some(target) = pause_at {
                if st.cycles >= target {
                    return false;
                }
            }
            // Fast-forward: when every pipeline stage is provably unable
            // to act (the PU is *quiescent*), jump over the longest span
            // of cycles in which that stays true — bounded by the next
            // DRAM-side event the PU could observe and by the next host
            // injection cycle — bulk-accounting the stall statistics and
            // trace samples the per-cycle path would have produced. The
            // skipped cycles are bit-identical no-ops: every quiescence
            // input (queues, buffers, tree, controller state) is frozen
            // until one of those two bounds, so re-running them one by one
            // would change nothing. `SimOptions::fast_forward = false`
            // keeps the per-cycle reference path; the differential suite
            // proves both produce identical results.
            let rounds_done = st.tree.rounds_completed() as usize >= total_rounds;
            if self.fast_forward {
                let root_space = usize::from(
                    st.bytes_accum + elem_bytes <= pu_cfg.output_buffer_bytes as u64
                        && st.pending_ptr_blocks < 16
                        && st.write_q.len() < pu_cfg.write_queue_entries,
                );
                let wq_full = st.write_q.len() >= pu_cfg.write_queue_entries;
                // Short-circuit order: O(1) checks that are false on most
                // busy cycles come first, so the per-cycle overhead of the
                // probe is a couple of branches; the queue scans at the end
                // only run on cycles that are already nearly quiescent.
                let quiescent = st.buf_active.is_empty()
                    // Tree has no scheduled PE and the root cannot merge.
                    && st.tree.is_quiescent(&PeekPorts(&st.buffers), root_space)
                    // Step 1 would deliver nothing: no response is ready.
                    && self
                        .mem
                        .next_response_at()
                        .is_none_or(|t| t > self.mem.now())
                    // Step 5's post-tree drains would push nothing.
                    && (st.pending_ptr_blocks == 0 || wq_full)
                    // The final flush would push nothing.
                    && (!rounds_done
                        || ((st.bytes_accum == 0 || wq_full)
                            && !(st.pending_ptr_blocks == 0
                                && matches!(p.out, OutputMode::FinalCsc { ncols }
                                    if st.ptr_cursor < (ncols + 1).div_ceil(8)))))
                    // Step 3 would neither issue pointer reads nor release
                    // descriptors.
                    && p.gate.is_none_or(|g| {
                        !(st.ptr_outstanding < pu_cfg.pointer_read_depth
                            && st.ptr_next_issue < g.blocks.len()
                            && !st.read_q.is_full())
                    })
                    && (st.next_release >= padded
                        || (st.next_release < n_streams
                            && p.gate.is_some_and(
                                |g| g.release_after[st.next_release] > st.ptr_blocks_arrived,
                            )))
                    // Step 2 would issue nothing: both issue slots blocked.
                    && st
                        .read_q
                        .next_to_issue()
                        .is_none_or(|b| !self.mem.can_accept(&MemRequest::read(b, 0)))
                    && st
                        .write_q
                        .front()
                        .is_none_or(|&b| !self.mem.can_accept(&MemRequest::write(b, 0)));
                if quiescent {
                    // Longest skip that keeps the DRAM side unobserved:
                    // PU cycle `cycles + j` sees memory time
                    // `M + (accum + (j-1)*num) / den`, which must stay
                    // below the next memory event.
                    let n_mem = match self.mem.next_event_cycle() {
                        Some(ev) => {
                            let span = (ev - self.mem.now()) * dram_den;
                            1 + (span - 1 - self.dram_tick_accum) / dram_num
                        }
                        None => u64::MAX,
                    };
                    // Host injections run on exact PU cycles: never skip
                    // one.
                    let host_cap = match pu_cfg.host_read_interval {
                        Some(interval) if !rounds_done => {
                            (st.cycles / interval + 1) * interval - st.cycles - 1
                        }
                        _ => u64::MAX,
                    };
                    assert!(
                        n_mem != u64::MAX || host_cap != u64::MAX,
                        "PU deadlock suspected: quiescent with no pending events"
                    );
                    let mut n = n_mem.min(host_cap);
                    // A pause target caps the skip too, so the loop pauses
                    // exactly at the requested cycle: the split bulk
                    // advance stays bit-identical because the tick
                    // accumulator arithmetic below is associative over `n`.
                    if let Some(target) = pause_at {
                        n = n.min(target - st.cycles);
                    }
                    if n > 0 {
                        if root_space == 0 {
                            st.it.output_stall_cycles += n;
                        } else if !rounds_done {
                            st.it.root_stall_cycles += n;
                        }
                        if let Some(ts) = self.trace.as_mut() {
                            // checked_div: sampling is off when the
                            // interval is 0.
                            if let Some(q) = st.cycles.checked_div(ts.interval) {
                                // No leaf pops occur in the window, so
                                // fed/starved stay put; emit the interval
                                // samples with the frozen occupancies.
                                let fill = st.tree.occupancy() as u64;
                                let held: usize = st.buffers.iter().map(|b| b.held()).sum();
                                let mut c = (q + 1) * ts.interval;
                                while c <= st.cycles + n {
                                    let now = ts.cycle_base + c;
                                    ts.tree_fill.record(fill);
                                    ts.read_q_occ.record(st.read_q.len() as u64);
                                    ts.write_q_occ.record(st.write_q.len() as u64);
                                    ts.prefetch_held.record(held as u64);
                                    ts.tracer.counter(now, "pu.tree_fill", fill);
                                    ts.tracer
                                        .counter(now, "pu.read_queue", st.read_q.len() as u64);
                                    ts.tracer.counter(
                                        now,
                                        "pu.write_queue",
                                        st.write_q.len() as u64,
                                    );
                                    ts.tracer.counter(now, "pu.prefetch_held", held as u64);
                                    c += ts.interval;
                                }
                            }
                        }
                        // Replicate `n` iterations of step 6 in bulk.
                        let ticks = self.dram_tick_accum + n * dram_num;
                        self.mem.advance(ticks / dram_den);
                        self.dram_tick_accum = ticks % dram_den;
                        st.cycles += n;
                        assert!(st.cycles < max_cycles, "PU deadlock suspected");
                        continue;
                    }
                }
                // Epoch calculus (see DESIGN.md): the PU is *not*
                // quiescent — the tree has work — but the controller FSM
                // and every prefetch buffer are provably frozen: no
                // buffer is scheduled to plan, the pointer-issue gate and
                // descriptor release are blocked on state only a read
                // response can change, and the earliest possible read
                // response is a known bus cycle away. Until then the
                // per-cycle loop degenerates to steps 2, 5, and 6; run
                // exactly those in a fused drain for the bounded span,
                // deferring DRAM ticks into a lazy accumulator. The
                // fingerprint suites prove the drain bit-identical to
                // per-cycle stepping (`SimOptions::epoch = false`).
                if self.epoch
                    && !rounds_done
                    && st.buf_active.is_empty()
                    && p.gate.is_none_or(|g| {
                        !(st.ptr_outstanding < pu_cfg.pointer_read_depth
                            && st.ptr_next_issue < g.blocks.len()
                            && !st.read_q.is_full())
                    })
                    && (st.next_release >= padded
                        || (st.next_release < n_streams
                            && p.gate.is_some_and(|g| {
                                g.release_after[st.next_release] > st.ptr_blocks_arrived
                            })))
                {
                    let now0 = self.mem.now();
                    let mut remaining = match self.mem.earliest_read_response_at(HOST_REQ_BIT) {
                        Some(r) if r <= now0 => 0,
                        Some(r) => {
                            // PU cycle `cycles + j` observes memory time
                            // `now0 + (accum + (j-1)*num) / den`; keep it
                            // below the response bound for every epoch
                            // cycle.
                            let span = (r - now0) * dram_den;
                            1 + (span - 1 - self.dram_tick_accum) / dram_num
                        }
                        None => u64::MAX,
                    };
                    if let Some(target) = pause_at {
                        remaining = remaining.min(target - st.cycles);
                    }
                    if remaining > 0 {
                        // Step-4 invariant: the previous cycle's walk
                        // un-parked every buffer the (frozen) queue
                        // headroom could satisfy, so skipping the walk
                        // during the epoch is a no-op.
                        #[cfg(debug_assertions)]
                        if st.parked_count > 0 {
                            let avail = pu_cfg.read_queue_entries - st.read_q.len();
                            for nb in PrefetchBuffer::MIN_FETCH_SLOTS..=avail.min(need_cap) {
                                for w in 0..pw {
                                    debug_assert_eq!(
                                        st.parked_buckets[nb * pw + w],
                                        0,
                                        "parked buffer fireable at epoch entry"
                                    );
                                }
                            }
                        }
                        const OVERLAP_MIN_CYCLES: u64 = 1024;
                        let lazy = if self.overlap
                            && self.trace.is_none()
                            && remaining >= OVERLAP_MIN_CYCLES
                        {
                            // Pipelined multi-core mode: a scoped worker
                            // ticks the rank's DRAM toward the published
                            // per-cycle target while this thread runs
                            // the merge tree. Chunked advances to the
                            // same monotone targets are tick-exact, so
                            // the final memory state matches the serial
                            // drain bit for bit. (Gated on tracing-off:
                            // idle-span trace events depend on chunk
                            // boundaries, which are timing-dependent
                            // here.)
                            let mem = Mutex::new(&mut self.mem);
                            let target = AtomicU64::new(now0);
                            let done = AtomicBool::new(false);
                            std::thread::scope(|scope| {
                                scope.spawn(|| {
                                    while !done.load(Ordering::Acquire) {
                                        let t = target.load(Ordering::Acquire);
                                        let mut caught_up = true;
                                        {
                                            let mut m = mem.lock().expect("epoch main panicked");
                                            let mnow = m.now();
                                            if mnow < t {
                                                // Short chunks bound the
                                                // lock hold time so issue
                                                // cycles never stall long.
                                                ProcessingUnit::epoch_advance_to(
                                                    &mut m,
                                                    t.min(mnow + 256),
                                                );
                                                caught_up = false;
                                            }
                                        }
                                        if caught_up {
                                            std::thread::yield_now();
                                        }
                                    }
                                });
                                let lazy = Self::epoch_drain(
                                    &mut self.trace,
                                    &mut self.next_req_id,
                                    EpochMem::Overlap {
                                        mem: &mem,
                                        target: &target,
                                    },
                                    &pu_cfg,
                                    &layout,
                                    p,
                                    st,
                                    total_rounds,
                                    elem_bytes,
                                    count_feed,
                                    (dram_num, dram_den),
                                    now0,
                                    self.dram_tick_accum,
                                    remaining,
                                    max_cycles,
                                );
                                done.store(true, Ordering::Release);
                                lazy
                            })
                        } else {
                            Self::epoch_drain(
                                &mut self.trace,
                                &mut self.next_req_id,
                                EpochMem::Serial(&mut self.mem),
                                &pu_cfg,
                                &layout,
                                p,
                                st,
                                total_rounds,
                                elem_bytes,
                                count_feed,
                                (dram_num, dram_den),
                                now0,
                                self.dram_tick_accum,
                                remaining,
                                max_cycles,
                            )
                        };
                        self.dram_tick_accum = lazy % dram_den;
                        continue;
                    }
                }
            }
            st.cycles += 1;
            assert!(st.cycles < max_cycles, "PU deadlock suspected");

            // 1. DRAM responses.
            while let Some(resp) = self.mem.pop_response() {
                if resp.kind == ReqKind::Write || resp.id & HOST_REQ_BIT != 0 {
                    continue;
                }
                let block = resp.addr;
                st.waiter_scratch.clear();
                st.read_q.complete_into(block, &mut st.waiter_scratch);
                if let Some(ts) = self.trace.as_mut() {
                    // One completed block feeds `waiters.len()` requests —
                    // the merge width achieved by request coalescing.
                    ts.coalesce_width.record(st.waiter_scratch.len() as u64);
                }
                let mut waiters = std::mem::take(&mut st.waiter_scratch);
                for &w in &waiters {
                    match w {
                        PTR_WAITER => {
                            if let Some(g) = p.gate {
                                // Which gate block is this?
                                let rel =
                                    (block - AddressLayout::block_of(g.ptr_base)) / BLOCK_BYTES;
                                if let Ok(pos) = g.blocks.binary_search(&rel) {
                                    st.ptr_arrived_set[pos] = true;
                                    while st.ptr_blocks_arrived < st.ptr_arrived_set.len()
                                        && st.ptr_arrived_set[st.ptr_blocks_arrived]
                                    {
                                        st.ptr_blocks_arrived += 1;
                                    }
                                    st.ptr_outstanding = st.ptr_outstanding.saturating_sub(1);
                                }
                            }
                        }
                        VEC_WAITER => {}
                        buf_id => {
                            let b = buf_id as usize;
                            if let Some((desc, range, ended)) = st.buffers[b].block_arrived(block) {
                                p.source
                                    .materialize_into(&desc, range, &mut st.packet_scratch);
                                st.buffers[b].deliver(&mut st.packet_scratch, ended);
                                st.tree.wake_port(b);
                                st.buf_active.insert(b);
                            } else if !self.fast_forward {
                                // Chunk still awaiting other blocks: its
                                // plan call is a guaranteed no-op, so the
                                // fast path defers re-activation to the
                                // completing block. The reference path
                                // keeps its retry-every-cycle shape.
                                st.buf_active.insert(b);
                            }
                        }
                    }
                }
                waiters.clear();
                st.waiter_scratch = waiters;
            }

            // 2. Memory interface: one read and one write per cycle.
            if let Some(block) = st.read_q.next_to_issue() {
                let req = MemRequest::read(block, self.next_req_id);
                if self.mem.can_accept(&req) && self.mem.try_enqueue(req) {
                    self.next_req_id += 1;
                    st.read_q.mark_issued(block);
                    st.it.loads_issued += 1;
                }
            }
            // 2b. Concurrent host access (§4): inject a host read into the
            // shared rank at the configured rate, after the PU's own issue
            // so the host cannot monopolize queue slots and livelock the
            // PU (the host-side controller of [11] arbitrates similarly).
            if let Some(interval) = pu_cfg.host_read_interval {
                // Only while the PU is actually working — otherwise the
                // endless host stream would keep the memory system busy
                // and the iteration could never drain to completion.
                if st.cycles.is_multiple_of(interval)
                    && (st.tree.rounds_completed() as usize) < total_rounds
                {
                    let addr =
                        0xC000_0000u64 + (st.cycles / interval).wrapping_mul(0x9E37) % (64 << 20);
                    let req = MemRequest::read(addr & !63, HOST_REQ_BIT | st.cycles);
                    if self.mem.can_accept(&req) {
                        let _ = self.mem.try_enqueue(req);
                    }
                }
            }
            if let Some(&block) = st.write_q.front() {
                let req = MemRequest::write(block, self.next_req_id);
                if self.mem.can_accept(&req) && self.mem.try_enqueue(req) {
                    self.next_req_id += 1;
                    st.write_q.pop_front();
                    st.it.stores_issued += 1;
                }
            }

            // 3. Controller FSM: pointer reads + descriptor release.
            if let Some(g) = p.gate {
                while st.ptr_outstanding < pu_cfg.pointer_read_depth
                    && st.ptr_next_issue < g.blocks.len()
                    && !st.read_q.is_full()
                {
                    let block = AddressLayout::block_of(g.ptr_base)
                        + g.blocks[st.ptr_next_issue] * BLOCK_BYTES;
                    match st.read_q.enqueue(block, PTR_WAITER) {
                        EnqueueOutcome::Full => break,
                        _ => {
                            // SpMV: fetch the matching vector block too.
                            if let Some(vb) = g.vector_base {
                                let vblock = AddressLayout::block_of(
                                    vb + g.blocks[st.ptr_next_issue] * BLOCK_BYTES,
                                );
                                let _ = st.read_q.enqueue(vblock, VEC_WAITER);
                            }
                            st.ptr_next_issue += 1;
                            st.ptr_outstanding += 1;
                        }
                    }
                }
            }
            while st.next_release < padded {
                if st.next_release < n_streams {
                    if let Some(g) = p.gate {
                        if g.release_after[st.next_release] > st.ptr_blocks_arrived {
                            break;
                        }
                    }
                    let desc = p.descriptors[st.next_release];
                    let b = st.next_release % l;
                    st.buffers[b].assign_streams([desc]);
                    st.buf_active.insert(b);
                    st.tree.wake_port(b);
                } else {
                    let b = st.next_release % l;
                    st.buffers[b].assign_streams([StreamDescriptor::empty()]);
                    st.buf_active.insert(b);
                    st.tree.wake_port(b);
                }
                st.next_release += 1;
            }

            // 4. Prefetch buffers plan fetches, in ascending buffer order.
            // The worklist swaps with a retained-capacity scratch Vec so
            // re-activations pushed below land in a buffer that never
            // reallocates in steady state. On the fast path the worklist
            // merges with the parked buffers whose refused plan size the
            // *live* queue length could now satisfy: the walk unions only
            // the reachable need-buckets, and both sources are consumed in
            // ascending id order, so the attempts happen exactly where the
            // reference path's retry-every-cycle loop would have made them
            // succeed (every attempt it skips is a provable no-op).
            let mut work = std::mem::take(&mut st.buf_scratch);
            st.buf_active.drain_into(&mut work);
            let mut wi = 0usize;
            let mut scan_from = 0usize;
            loop {
                let avail = pu_cfg.read_queue_entries - st.read_q.len();
                let next_active = work.get(wi).map(|&x| x as usize);
                let next_parked = if self.fast_forward
                    && st.parked_count > 0
                    && avail >= PrefetchBuffer::MIN_FETCH_SLOTS
                {
                    if avail != st.union_avail {
                        st.union_avail = avail;
                        let hi = avail.min(need_cap);
                        let buckets = &st.parked_buckets;
                        for (w, u) in st.parked_union.iter_mut().enumerate() {
                            *u = (PrefetchBuffer::MIN_FETCH_SLOTS..=hi)
                                .map(|n| buckets[n * pw + w])
                                .fold(0, |a, x| a | x);
                        }
                    }
                    next_set_bit(&st.parked_union, scan_from)
                } else {
                    None
                };
                let b = match (next_active, next_parked) {
                    (None, None) => break,
                    (Some(a), None) => {
                        wi += 1;
                        a
                    }
                    (None, Some(q)) => {
                        scan_from = q + 1;
                        q
                    }
                    (Some(a), Some(q)) => {
                        if a <= q {
                            wi += 1;
                            if a == q {
                                scan_from = q + 1;
                            }
                            a
                        } else {
                            scan_from = q + 1;
                            q
                        }
                    }
                };
                // A parked candidate only surfaces once its plan could fit,
                // so it re-plans for real below; clear its bucket bit.
                if st.parked_need[b] != 0
                    && (Some(b) == next_parked || avail >= st.parked_need[b] as usize)
                {
                    let nbkt = st.parked_need[b] as usize;
                    st.parked_buckets[nbkt * pw + (b >> 7)] &= !(1u128 << (b & 127));
                    st.parked_need[b] = 0;
                    st.parked_count -= 1;
                    st.union_avail = usize::MAX;
                }
                // Conservative slot budget so the whole chunk enqueues
                // atomically (coalesced blocks would not even need slots,
                // but partial enqueue must never happen).
                // A plan refused for queue pressure can only grow while the
                // buffer's stream stands still (pops free space, nothing
                // else changes), so the size from its last refusal is a
                // valid lower bound until the next real plan call.
                let need = (st.parked_need[b] as usize).max(PrefetchBuffer::MIN_FETCH_SLOTS);
                if self.fast_forward
                    && avail < need
                    && (st.parked_need[b] != 0 || st.buffers[b].plan_is_noop_without_slots())
                {
                    // The queue cannot fit this buffer's plan and the
                    // attempt could not change simulated state (it is not
                    // at a stream boundary, so no EOL emission is due).
                    // Park, keeping the tightest threshold known. Buffers
                    // with a chunk in flight are re-activated by the
                    // completing response instead.
                    if st.parked_need[b] == 0 && !st.buffers[b].has_pending() {
                        st.parked_buckets[need * pw + (b >> 7)] |= 1u128 << (b & 127);
                        st.parked_need[b] = need as u32;
                        st.parked_count += 1;
                        st.union_avail = usize::MAX;
                    }
                    continue;
                }
                let had_head = st.buffers[b].peek().is_some();
                match st.buffers[b].plan_fetch(avail) {
                    FetchPlan::Planned { .. } => {
                        for &blk in st.buffers[b].pending_blocks() {
                            match st.read_q.enqueue(blk, b as u32) {
                                EnqueueOutcome::Full => {
                                    unreachable!("slot pre-check guarantees space")
                                }
                                EnqueueOutcome::Coalesced => st.it.loads_coalesced += 1,
                                EnqueueOutcome::Queued => {}
                            }
                        }
                    }
                    FetchPlan::Blocked { blocks } if self.fast_forward => {
                        // Queue pressure: park until the queue could fit a
                        // plan of this size. The plan can only grow while
                        // parked (pops free space, nothing else changes),
                        // so earlier attempts would re-plan and discard —
                        // provably the same simulated behavior as the
                        // reference path's retry-every-cycle below.
                        let nbkt = blocks.clamp(PrefetchBuffer::MIN_FETCH_SLOTS, need_cap);
                        st.parked_buckets[nbkt * pw + (b >> 7)] |= 1u128 << (b & 127);
                        st.parked_need[b] = nbkt as u32;
                        st.parked_count += 1;
                        st.union_avail = usize::MAX;
                    }
                    FetchPlan::Blocked { .. } => {
                        // Queue pressure: retry next cycle.
                        st.buf_active.insert(b);
                    }
                    FetchPlan::None => {}
                }
                if !had_head && st.buffers[b].peek().is_some() {
                    st.tree.wake_port(b);
                }
            }
            work.clear();
            st.buf_scratch = work;

            // 5. Merge tree (shared verbatim with the epoch drain).
            Self::tree_cycle(
                &mut self.trace,
                self.fast_forward,
                count_feed,
                &pu_cfg,
                &layout,
                p,
                st,
                total_rounds,
                elem_bytes,
            );

            // 6. DRAM clock (bus runs dram_num : dram_den faster).
            // Routed through `advance` rather than raw ticks: it is
            // tick-exact by contract, and the channel-side event cache
            // turns the bus cycles where the controller provably cannot
            // act (most of them, even under load — commands issue every
            // few cycles at best) into O(1) skips.
            self.dram_tick_accum += dram_num;
            if self.dram_tick_accum >= dram_den {
                self.mem.advance(self.dram_tick_accum / dram_den);
                self.dram_tick_accum %= dram_den;
            }
        }
    }

    /// Step 5 of one PU cycle: computes the root back-pressure, ticks
    /// the merge tree against the prefetch-buffer ports, re-activates
    /// awoken buffers, samples the instrumentation, handles the root
    /// pop, and runs the pointer-store drain and final flush. Shared
    /// *verbatim* by the per-cycle loop and the epoch drain so the two
    /// execution disciplines cannot diverge (their bit-identity is
    /// enforced by the absolute cycle fingerprints).
    ///
    /// Returns the popped packet and whether any leaf pop left its
    /// buffer ready to plan a fetch — the two signals the epoch drain
    /// breaks on (an EOL can complete a round and change the final
    /// flush gates; an awoken buffer needs step 4 next cycle).
    #[allow(clippy::too_many_arguments)]
    fn tree_cycle(
        trace: &mut Option<PuTraceState>,
        event_driven: bool,
        count_feed: bool,
        pu_cfg: &PuConfig,
        layout: &AddressLayout,
        p: &IterParams<'_>,
        st: &mut IterState,
        total_rounds: usize,
        elem_bytes: u64,
    ) -> (Option<Packet>, bool) {
        let root_space = usize::from(
            st.bytes_accum + elem_bytes <= pu_cfg.output_buffer_bytes as u64
                && st.pending_ptr_blocks < 16
                && st.write_q.len() < pu_cfg.write_queue_entries,
        );
        if root_space == 0 {
            st.it.output_stall_cycles += 1;
        }
        let mut ports = BufferPorts {
            buffers: &mut st.buffers,
            popped: std::mem::take(&mut st.popped_scratch),
            event_driven,
            count_feed,
            fed: 0,
            starved: 0,
        };
        let popped = st.tree.tick(&mut ports, root_space);
        let mut awoken = std::mem::take(&mut ports.popped);
        let (fed, starved) = (ports.fed, ports.starved);
        let awoken_any = !awoken.is_empty();
        for &port in &awoken {
            st.buf_active.insert(port as usize);
        }
        awoken.clear();
        st.popped_scratch = awoken;
        if let Some(ts) = trace.as_mut() {
            ts.prefetch_hits += fed;
            ts.prefetch_misses += starved;
            if st.cycles.is_multiple_of(ts.interval) {
                let now = ts.cycle_base + st.cycles;
                let fill = st.tree.occupancy() as u64;
                let held: usize = st.buffers.iter().map(|b| b.held()).sum();
                ts.tree_fill.record(fill);
                ts.read_q_occ.record(st.read_q.len() as u64);
                ts.write_q_occ.record(st.write_q.len() as u64);
                ts.prefetch_held.record(held as u64);
                ts.tracer.counter(now, "pu.tree_fill", fill);
                ts.tracer
                    .counter(now, "pu.read_queue", st.read_q.len() as u64);
                ts.tracer
                    .counter(now, "pu.write_queue", st.write_q.len() as u64);
                ts.tracer.counter(now, "pu.prefetch_held", held as u64);
            }
        }
        match popped {
            Some(Packet::Nz {
                major,
                minor,
                value,
            }) => {
                st.it.nz_emitted += 1;
                let merged = p.reduce && st.last_key_in_run == Some((major, minor));
                if merged {
                    let lv = st.out_val.last_mut().expect("reduce has prior element");
                    *lv += value;
                } else {
                    // Pointer-write pacing for FinalCsc output.
                    if let OutputMode::FinalCsc { .. } = p.out {
                        let group = major as u64 / 8; // 8 ptr entries per block
                        if group > st.ptr_cursor {
                            st.pending_ptr_blocks += group - st.ptr_cursor;
                            st.ptr_cursor = group;
                        }
                    }
                    st.out_major.push(major);
                    st.out_minor.push(minor);
                    st.out_val.push(value);
                    st.bytes_accum += elem_bytes;
                    st.last_key_in_run = Some((major, minor));
                    // Issue stores at block granularity per output
                    // array (16 4-byte elements per block).
                    let emitted = st.out_major.len() as u64;
                    if emitted - st.stored_nzs >= 16 {
                        let off = st.stored_nzs * 4;
                        for base in &st.out_bases {
                            st.write_q.push_back(AddressLayout::block_of(base + off));
                        }
                        st.stored_nzs += 16;
                        st.bytes_accum = st.bytes_accum.saturating_sub(16 * elem_bytes);
                    }
                }
            }
            Some(Packet::Eol) => {
                st.boundaries.push(st.out_major.len());
                st.last_key_in_run = None;
            }
            None => {
                if root_space == 1 && (st.tree.rounds_completed() as usize) < total_rounds {
                    st.it.root_stall_cycles += 1;
                }
            }
        }
        // Drain one pending pointer-block store per cycle.
        if st.pending_ptr_blocks > 0 && st.write_q.len() < pu_cfg.write_queue_entries {
            st.write_q.push_back(AddressLayout::block_of(
                layout.out_ptr + (st.ptr_cursor - st.pending_ptr_blocks) * BLOCK_BYTES,
            ));
            st.pending_ptr_blocks -= 1;
        }
        // Final flush when merging finished: one partial-block store
        // per cycle so even a tiny write queue drains it.
        if st.tree.rounds_completed() as usize >= total_rounds {
            if st.bytes_accum > 0 && st.write_q.len() < pu_cfg.write_queue_entries {
                let off = st.stored_nzs * 4;
                st.write_q.push_back(AddressLayout::block_of(
                    st.out_bases[st.final_flush_pushed] + off,
                ));
                st.final_flush_pushed += 1;
                if st.final_flush_pushed == st.out_bases.len() {
                    st.bytes_accum = 0;
                }
            }
            // Trailing pointer blocks of the output CSC pointer array
            // (the dense SpMV output is fully covered by the per-16
            // element stores above).
            if st.pending_ptr_blocks == 0 {
                if let OutputMode::FinalCsc { ncols } = p.out {
                    let total_groups = (ncols + 1).div_ceil(8);
                    if st.ptr_cursor < total_groups {
                        st.pending_ptr_blocks += total_groups - st.ptr_cursor;
                        st.ptr_cursor = total_groups;
                    }
                }
            }
        }
        (popped, awoken_any)
    }

    /// Brings the memory system to absolute bus cycle `target`,
    /// applying ticks the epoch drain deferred. Matured responses the
    /// PU discards unseen (write acknowledgments, concurrent-host
    /// traffic) are popped at event boundaries so [`MemorySystem::advance`]
    /// keeps jumping event-free spans instead of degrading to per-tick
    /// stepping once an unconsumed response pins the event horizon at
    /// `now + 1`. Read data responses are never touched: the epoch
    /// bound proves none matures before the drain exits, and any that
    /// matures exactly at the exit boundary stays queued for the
    /// delivery step.
    fn epoch_advance_to(mem: &mut MemorySystem, target: u64) {
        loop {
            while mem.pop_discardable_response(HOST_REQ_BIT).is_some() {}
            let now = mem.now();
            if now >= target {
                break;
            }
            let bound = mem.next_event_cycle().map_or(target, |ev| ev.min(target));
            mem.advance(bound - now);
        }
    }

    /// The fused epoch loop (see DESIGN.md, "Epoch calculus"). Entered
    /// by [`ProcessingUnit::iter_loop`] once the controller FSM and
    /// every prefetch buffer are provably frozen and no read data can
    /// return for `remaining` cycles; per cycle it runs only the issue
    /// slots, the merge tree, and the output drains, deferring DRAM
    /// ticks into `lazy` and flushing them in bulk on cycles that
    /// touch the memory system. Every observable interaction happens
    /// at the same cycle and the same memory time as the per-cycle
    /// path. Returns the final deferred-tick total; the caller folds
    /// it back into `dram_tick_accum`.
    #[allow(clippy::too_many_arguments)]
    fn epoch_drain(
        trace: &mut Option<PuTraceState>,
        next_req_id: &mut u64,
        mut emem: EpochMem<'_, '_>,
        pu_cfg: &PuConfig,
        layout: &AddressLayout,
        p: &IterParams<'_>,
        st: &mut IterState,
        total_rounds: usize,
        elem_bytes: u64,
        count_feed: bool,
        (dram_num, dram_den): (u64, u64),
        mem_base: u64,
        lazy0: u64,
        mut remaining: u64,
        max_cycles: u64,
    ) -> u64 {
        let mut lazy = lazy0;
        loop {
            st.cycles += 1;
            assert!(st.cycles < max_cycles, "PU deadlock suspected");
            // Step 2 replica (+ the step-1 discard drain, folded into
            // the tick flush): runs only on cycles with issue work, so
            // quiet stretches batch their DRAM ticks into one advance.
            let host_due = pu_cfg.host_read_interval.is_some_and(|iv| {
                st.cycles.is_multiple_of(iv) && (st.tree.rounds_completed() as usize) < total_rounds
            });
            let mut cap_after = u64::MAX;
            if host_due || st.read_q.next_to_issue().is_some() || !st.write_q.is_empty() {
                let target = mem_base + lazy / dram_den;
                cap_after = emem.sync(target, |mem| {
                    let mut cap = u64::MAX;
                    if let Some(block) = st.read_q.next_to_issue() {
                        let req = MemRequest::read(block, *next_req_id);
                        if mem.can_accept(&req) && mem.try_enqueue(req) {
                            *next_req_id += 1;
                            st.read_q.mark_issued(block);
                            st.it.loads_issued += 1;
                            // The fresh read shrinks the horizon: a
                            // store-to-load forwarded response can
                            // mature on the very next bus cycle.
                            let r = mem
                                .earliest_read_response_at(HOST_REQ_BIT)
                                .expect("a read was just enqueued");
                            debug_assert!(r > mem.now(), "epoch bound violated");
                            let span = (r - mem.now()) * dram_den;
                            cap = (span - 1 - lazy % dram_den) / dram_num;
                        }
                    }
                    if host_due {
                        let interval = pu_cfg.host_read_interval.expect("host_due");
                        let addr = 0xC000_0000u64
                            + (st.cycles / interval).wrapping_mul(0x9E37) % (64 << 20);
                        let req = MemRequest::read(addr & !63, HOST_REQ_BIT | st.cycles);
                        if mem.can_accept(&req) {
                            let _ = mem.try_enqueue(req);
                        }
                    }
                    if let Some(&block) = st.write_q.front() {
                        let req = MemRequest::write(block, *next_req_id);
                        if mem.can_accept(&req) && mem.try_enqueue(req) {
                            *next_req_id += 1;
                            st.write_q.pop_front();
                            st.it.stores_issued += 1;
                        }
                    }
                    cap
                });
            }
            // Step 5 replica; steps 1, 3, and 4 are provably frozen.
            let (popped, awoken_any) = Self::tree_cycle(
                trace,
                true,
                count_feed,
                pu_cfg,
                layout,
                p,
                st,
                total_rounds,
                elem_bytes,
            );
            // Step 6, deferred; the published target lets the overlap
            // worker tick the rank up to the next cycle's issue time.
            lazy += dram_num;
            emem.publish(mem_base + lazy / dram_den);
            remaining = (remaining - 1).min(cap_after);
            if remaining == 0
                || awoken_any
                || matches!(popped, Some(Packet::Eol))
                || (popped.is_none() && st.tree.no_scheduled_pes())
            {
                break;
            }
        }
        // Re-establish the per-cycle invariant (memory time current,
        // accumulator sub-cycle) before rejoining the outer loop.
        emem.sync(mem_base + lazy / dram_den, |_| ());
        lazy
    }

    /// Finalizes one iteration driven through [`ProcessingUnit::iter_loop`]:
    /// stamps the cycle/round counters and DRAM deltas into the iteration
    /// statistics, closes the trace span, and hands back the emitted
    /// triples and run boundaries.
    pub(crate) fn finish_iteration(
        &mut self,
        mut st: IterState,
    ) -> (EmittedTriples, Vec<usize>, IterationStats) {
        st.it.cycles = st.cycles;
        st.it.rounds = st.total_rounds as u64;
        let dram_after = self.mem.stats();
        st.it.dram_row_hits = dram_after.row_hits - st.dram_before.row_hits;
        st.it.dram_row_misses = dram_after.row_misses - st.dram_before.row_misses;
        st.it.dram_row_conflicts = dram_after.row_conflicts - st.dram_before.row_conflicts;
        if let Some(ts) = self.trace.as_mut() {
            let end = ts.cycle_base + st.cycles;
            ts.tracer.end(end, "pu.iteration");
            ts.cycle_base = end;
            ts.iterations += 1;
            ts.nz_emitted += st.it.nz_emitted;
            ts.loads_issued += st.it.loads_issued;
            ts.stores_issued += st.it.stores_issued;
            ts.queue_coalesced += st.it.loads_coalesced;
        }
        (
            (st.out_minor, st.out_major, st.out_val),
            st.boundaries,
            st.it,
        )
    }
}

/// First set bit at index `>= from` across the `u128` words, if any.
/// Backs the parked-buffer walk of `run_rounds` step 4.
fn next_set_bit(words: &[u128], from: usize) -> Option<usize> {
    let mut wi = from >> 7;
    if wi >= words.len() {
        return None;
    }
    let mut w = words[wi] & (u128::MAX << (from & 127));
    loop {
        if w != 0 {
            return Some((wi << 7) + w.trailing_zeros() as usize);
        }
        wi += 1;
        if wi >= words.len() {
            return None;
        }
        w = words[wi];
    }
}

/// Number of merge iterations to reduce `streams` sorted streams with an
/// `l`-leaf tree (`ceil(log_l streams)`, minimum 1 when there is anything
/// to sort — §3.1).
pub fn iterations_needed(streams: u64, l: u64) -> u32 {
    if streams == 0 {
        return 0;
    }
    let mut iters = 0;
    let mut s = streams;
    while s > 1 || iters == 0 {
        s = s.div_ceil(l);
        iters += 1;
        if s == 1 {
            break;
        }
    }
    iters
}

/// Converts the previous iteration's run boundaries into COO stream
/// descriptors over `region`.
pub fn runs_to_descriptors(boundaries: &[usize], region: u8) -> Vec<StreamDescriptor> {
    let mut descs = Vec::new();
    let mut start = 0usize;
    for &end in boundaries {
        if end > start {
            descs.push(StreamDescriptor {
                start: start as u64,
                end: end as u64,
                kind: StreamKind::Coo { region },
            });
        }
        start = end;
    }
    descs
}

/// Converts run boundaries into (index, value) pair stream descriptors
/// over `region` (the 8-byte SpMV intermediates of §3.6).
pub fn pair_runs_to_descriptors(boundaries: &[usize], region: u8) -> Vec<StreamDescriptor> {
    let mut descs = Vec::new();
    let mut start = 0usize;
    for &end in boundaries {
        if end > start {
            descs.push(StreamDescriptor {
                start: start as u64,
                end: end as u64,
                kind: StreamKind::Pair { region },
            });
        }
        start = end;
    }
    descs
}

#[cfg(test)]
mod tests {
    use super::*;
    use menda_sparse::gen;

    fn small_config() -> MendaConfig {
        MendaConfig::small_test()
    }

    fn check_transpose(m: &CsrMatrix) {
        let mut pu = ProcessingUnit::new(&small_config());
        let result = pu.transpose(m, 0);
        let golden = m.to_csc();
        assert_eq!(result.values.len(), golden.nnz(), "nnz mismatch");
        let mut k = 0;
        for c in 0..golden.ncols() {
            let (rows, vals) = golden.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                assert_eq!(result.majors[k], c as u32, "col at {k}");
                assert_eq!(result.minors[k], r, "row at {k}");
                assert_eq!(result.values[k], v, "val at {k}");
                k += 1;
            }
        }
    }

    #[test]
    fn transposes_fig1_matrix() {
        let m = CsrMatrix::new(
            8,
            7,
            vec![0, 2, 4, 7, 9, 12, 14, 17, 17],
            vec![0, 2, 1, 4, 0, 4, 6, 3, 5, 0, 2, 5, 1, 3, 2, 5, 6],
            (1..=17).map(|v| v as f32).collect(),
        )
        .unwrap();
        check_transpose(&m);
    }

    #[test]
    fn transposes_uniform_random() {
        check_transpose(&gen::uniform(64, 512, 3));
    }

    #[test]
    fn transposes_power_law() {
        check_transpose(&gen::rmat(128, 1024, gen::RmatParams::PAPER, 5));
    }

    #[test]
    fn multi_iteration_when_rows_exceed_leaves() {
        // 64 non-empty rows on a 16-leaf tree: 2 iterations.
        let m = gen::uniform(64, 512, 7);
        let mut pu = ProcessingUnit::new(&small_config());
        let result = pu.transpose(&m, 0);
        assert_eq!(result.stats.num_iterations(), 2);
        check_transpose(&m);
    }

    #[test]
    fn single_iteration_when_rows_fit() {
        let m = gen::uniform(12, 100, 9);
        let mut pu = ProcessingUnit::new(&small_config());
        let result = pu.transpose(&m, 0);
        assert_eq!(result.stats.num_iterations(), 1);
    }

    #[test]
    fn row_offset_shifts_minors() {
        let m = gen::uniform(8, 32, 1);
        let mut pu = ProcessingUnit::new(&small_config());
        let r = pu.transpose(&m, 100);
        assert!(r.minors.iter().all(|&x| (100..108).contains(&x)));
    }

    #[test]
    fn iterations_needed_formula() {
        assert_eq!(iterations_needed(0, 16), 0);
        assert_eq!(iterations_needed(1, 16), 1);
        assert_eq!(iterations_needed(16, 16), 1);
        assert_eq!(iterations_needed(17, 16), 2);
        assert_eq!(iterations_needed(256, 16), 2);
        assert_eq!(iterations_needed(257, 16), 3);
        assert_eq!(iterations_needed(1024 * 1024, 1024), 2);
    }

    #[test]
    fn runs_to_descriptors_skips_empty_runs() {
        let descs = runs_to_descriptors(&[3, 3, 10], 1);
        assert_eq!(descs.len(), 2);
        assert_eq!(descs[0].start, 0);
        assert_eq!(descs[0].end, 3);
        assert_eq!(descs[1].start, 3);
        assert_eq!(descs[1].end, 10);
    }

    #[test]
    fn empty_matrix_finishes_immediately() {
        let m = CsrMatrix::zeros(16, 16);
        let mut pu = ProcessingUnit::new(&small_config());
        let r = pu.transpose(&m, 0);
        assert!(r.majors.is_empty());
        assert_eq!(r.stats.num_iterations(), 0);
    }

    #[test]
    fn coalescing_reduces_issued_loads_on_short_rows() {
        // Many 1-NZ rows share blocks: coalescing should fire.
        let m = gen::uniform(256, 256, 11);
        let run = |coal: bool| {
            let mut cfg = small_config();
            cfg.pu.request_coalescing = coal;
            let mut pu = ProcessingUnit::new(&cfg);
            let r = pu.transpose(&m, 0);
            (
                r.stats.iterations[0].loads_issued,
                r.stats.total_coalesced(),
            )
        };
        let (issued_on, coalesced_on) = run(true);
        let (issued_off, coalesced_off) = run(false);
        assert_eq!(coalesced_off, 0);
        assert!(coalesced_on > 0, "no coalescing observed");
        assert!(
            issued_on < issued_off,
            "coalescing did not reduce traffic: {issued_on} vs {issued_off}"
        );
    }

    #[test]
    fn stats_traffic_accounts_loads_and_stores() {
        let m = gen::uniform(32, 256, 13);
        let mut pu = ProcessingUnit::new(&small_config());
        let r = pu.transpose(&m, 0);
        let it = &r.stats.iterations[0];
        assert!(it.loads_issued > 0);
        assert!(it.stores_issued > 0);
        assert!(it.cycles > 0);
        // At minimum the NZ data must be read: 256 NZs * 8 B / 64 B.
        assert!(it.loads_issued >= 256 * 8 / 64);
    }
}
