//! One MeNDA processing unit (Fig. 5): merge tree + prefetch buffers +
//! controller FSM + request queues + memory interface unit, attached to
//! one DRAM rank simulated cycle-accurately by [`menda_dram`].

use std::collections::VecDeque;

use menda_dram::{MemRequest, MemorySystem, ReqKind};
use menda_sparse::CsrMatrix;
use menda_trace::{Histogram, TraceConfig, TraceReport, Tracer};

use crate::coalesce::{CoalescingQueue, EnqueueOutcome};
use crate::config::{MendaConfig, PuConfig};
use crate::layout::{AddressLayout, BLOCK_BYTES};
use crate::merge_tree::{ActiveSet, LeafSource, MergeTree, Packet};
use crate::prefetch::{FetchPlan, PrefetchBuffer, StreamDescriptor, StreamKind};
use crate::stats::{IterationStats, PuStats};

/// Reserved waiter id for controller pointer-array reads.
const PTR_WAITER: u32 = u32::MAX;
/// Reserved waiter id for SpMV vector reads (traffic only).
const VEC_WAITER: u32 = u32::MAX - 1;
/// Request-id bit marking concurrent host traffic (§4); responses with
/// this bit are dropped (the host consumes them, not the PU).
const HOST_REQ_BIT: u64 = 1 << 63;

/// The data backing an iteration's streams, used to decode fetched blocks
/// into packets (the DRAM simulator provides timing; contents live here).
#[derive(Debug, Clone, Copy)]
pub enum IterSource<'a> {
    /// Iteration-0 transposition: CSR column indices and values.
    Csr {
        /// Column index array.
        cols: &'a [u32],
        /// Value array.
        vals: &'a [f32],
    },
    /// Intermediate COO runs.
    Coo {
        /// Row index array.
        rows: &'a [u32],
        /// Column index array.
        cols: &'a [u32],
        /// Value array.
        vals: &'a [f32],
    },
    /// SpMV iteration-0: CSC row indices and values (values are scaled by
    /// the per-column vector element embedded in the stream descriptor).
    ScaledCsc {
        /// Row index array.
        rows: &'a [u32],
        /// Value array.
        vals: &'a [f32],
    },
    /// SpMV intermediate (index, value) pairs.
    Pair {
        /// Index array.
        idx: &'a [u32],
        /// Value array.
        vals: &'a [f32],
    },
}

impl IterSource<'_> {
    /// Decodes elements `range` of stream `desc` into `out` (cleared
    /// first; the caller's buffer keeps its allocation across chunks).
    /// Shared by every backend that consumes [`crate::job::PuJob`]s: the
    /// DRAM simulator provides timing, this provides contents.
    pub(crate) fn materialize_into(
        &self,
        desc: &StreamDescriptor,
        range: std::ops::Range<u64>,
        out: &mut Vec<Packet>,
    ) {
        out.clear();
        out.reserve((range.end - range.start) as usize);
        match (self, desc.kind) {
            (IterSource::Csr { cols, vals }, StreamKind::CsrRow { row }) => {
                for e in range {
                    out.push(Packet::nz(cols[e as usize], row, vals[e as usize]));
                }
            }
            (IterSource::Coo { rows, cols, vals }, StreamKind::Coo { .. }) => {
                for e in range {
                    out.push(Packet::nz(
                        cols[e as usize],
                        rows[e as usize],
                        vals[e as usize],
                    ));
                }
            }
            (IterSource::ScaledCsc { rows, vals }, StreamKind::SpmvCol { scale }) => {
                for e in range {
                    out.push(Packet::nz(rows[e as usize], 0, vals[e as usize] * scale));
                }
            }
            (IterSource::Pair { idx, vals }, StreamKind::Pair { .. }) => {
                for e in range {
                    out.push(Packet::nz(idx[e as usize], 0, vals[e as usize]));
                }
            }
            _ => panic!("stream kind does not match iteration source"),
        }
    }
}

/// Pointer-array read gating for iteration 0 (§3.2's controller FSM): the
/// controller streams the pointer array from memory and only then knows
/// each stream's start/end addresses.
#[derive(Debug, Clone)]
pub struct PtrGate {
    /// Base address of the pointer array.
    pub ptr_base: u64,
    /// Ascending block indices (within the pointer array) to read. For
    /// SpMV this is pre-filtered by the auxiliary pointer array (§3.6).
    pub blocks: Vec<u64>,
    /// For descriptor `i`, how many of `blocks` must have arrived before
    /// its addresses are known (non-decreasing).
    pub release_after: Vec<usize>,
    /// Also fetch the input-vector block alongside each pointer block
    /// (SpMV; adds traffic, data is functional).
    pub vector_base: Option<u64>,
}

/// How an iteration's root output is stored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutputMode {
    /// COO runs into ping-pong `region` (12 B per nonzero, three arrays).
    Intermediate {
        /// Destination ping-pong region.
        region: u8,
    },
    /// SpMV (index, value) runs into `region` (8 B per nonzero).
    IntermediatePair {
        /// Destination ping-pong region.
        region: u8,
    },
    /// Final CSC output: index + value arrays (8 B per nonzero) plus the
    /// column pointer array (`ncols + 1` entries, paced by column cursor).
    FinalCsc {
        /// Columns in the output pointer array.
        ncols: u64,
    },
    /// Final dense SpMV vector (4 B per output row, paced by row cursor).
    FinalDense {
        /// Rows of the output vector partition.
        rows: u64,
    },
}

/// Emitted output of one iteration: `(minor keys, major keys, values)`.
pub type EmittedTriples = (Vec<u32>, Vec<u32>, Vec<f32>);

/// Everything `run_rounds` needs for one iteration.
#[derive(Debug)]
pub struct IterationSetup<'a> {
    /// Stream descriptors in assignment order.
    pub descriptors: Vec<StreamDescriptor>,
    /// Backing data.
    pub source: IterSource<'a>,
    /// Pointer-read gating, if the controller must read pointers first.
    pub gate: Option<PtrGate>,
    /// Output mode.
    pub out: OutputMode,
    /// Merge packets with equal (major, minor) keys at the root — the
    /// reduction unit of §3.6. For SpMV the minor key is constant 0, so
    /// this reduces equal row indices; for the SpGEMM extension it reduces
    /// equal (row, column) pairs.
    pub reduce: bool,
}

/// Result of one full PU execution (all iterations of one partition).
#[derive(Debug, Clone, PartialEq)]
pub struct PuResult {
    /// Output major keys (column indices for transposition), sorted.
    pub majors: Vec<u32>,
    /// Output minor keys (row indices for transposition).
    pub minors: Vec<u32>,
    /// Output values.
    pub values: Vec<f32>,
    /// Execution statistics.
    pub stats: PuStats,
}

struct BufferPorts<'a> {
    buffers: &'a mut [PrefetchBuffer],
    popped: Vec<u32>,
    /// Fast-forward mode: suppress wakeups that provably cannot lead to
    /// a fetch (see [`LeafSource::pop`] below).
    event_driven: bool,
    /// When set (tracing on), classify each leaf pop as fed/starved.
    count_feed: bool,
    /// Pops after which the buffer still had a packet ready (or the
    /// stream was complete) — the prefetcher kept the leaf fed.
    fed: u64,
    /// Pops that drained the buffer mid-stream — the leaf will bubble
    /// until the next block arrives from memory.
    starved: u64,
}

/// Read-only [`LeafSource`] view over the prefetch buffers, used by the
/// fast-forward path to probe [`MergeTree::is_quiescent`] without taking a
/// mutable borrow.
struct PeekPorts<'a>(&'a [PrefetchBuffer]);

impl LeafSource for PeekPorts<'_> {
    fn peek(&self, port: usize) -> Option<Packet> {
        self.0[port].peek()
    }

    fn pop(&mut self, _port: usize) {
        unreachable!("quiescence probing never pops")
    }
}

impl LeafSource for BufferPorts<'_> {
    fn peek(&self, port: usize) -> Option<Packet> {
        self.buffers[port].peek()
    }

    fn pop(&mut self, port: usize) {
        self.buffers[port].pop();
        if self.count_feed {
            if self.buffers[port].peek().is_some() || self.buffers[port].is_done() {
                self.fed += 1;
            } else {
                self.starved += 1;
            }
        }
        // Event-driven mode skips re-polling a buffer on pops that provably
        // cannot unblock its fetch planner: a chunk is still in flight (the
        // completion re-activates the buffer via the response path), or less
        // space has freed up than the planner's last refusal demanded. The
        // reference path keeps the poll-every-pop behavior; both are proven
        // bit-identical by the fast-forward differential suite.
        if !self.event_driven || self.buffers[port].fetch_ready() {
            self.popped.push(port as u32);
        }
    }
}

/// Instrumentation state of one PU (see the `menda-trace` crate): a
/// cycle-stamped tracer on track 0 plus occupancy histograms and counters
/// maintained by purely observational hooks in
/// [`ProcessingUnit::run_rounds`]. Built only when
/// [`MendaConfig::trace`] enables a sink, so untraced runs pay nothing.
#[derive(Debug)]
struct PuTraceState {
    tracer: Tracer,
    interval: u64,
    /// Global PU cycle at the start of the current iteration (each
    /// iteration restarts its local cycle counter).
    cycle_base: u64,
    tree_fill: Histogram,
    read_q_occ: Histogram,
    write_q_occ: Histogram,
    prefetch_held: Histogram,
    coalesce_width: Histogram,
    prefetch_hits: u64,
    prefetch_misses: u64,
    queue_coalesced: u64,
    nz_emitted: u64,
    loads_issued: u64,
    stores_issued: u64,
    iterations: u64,
}

impl PuTraceState {
    fn new(cfg: &TraceConfig, pu: &PuConfig) -> Option<Self> {
        let tracer = cfg.make_tracer(0)?;
        let l = pu.leaves as u64;
        Some(Self {
            tracer,
            interval: cfg.sample_interval,
            cycle_base: 0,
            tree_fill: Histogram::for_range((l - 1) * 2 * pu.fifo_entries as u64),
            read_q_occ: Histogram::up_to(pu.read_queue_entries as u64),
            write_q_occ: Histogram::up_to(pu.write_queue_entries as u64),
            prefetch_held: Histogram::for_range(l * pu.prefetch_buffer_entries as u64),
            coalesce_width: Histogram::up_to(64),
            prefetch_hits: 0,
            prefetch_misses: 0,
            queue_coalesced: 0,
            nz_emitted: 0,
            loads_issued: 0,
            stores_issued: 0,
            iterations: 0,
        })
    }

    fn into_report(self) -> TraceReport {
        let mut report = TraceReport {
            sink: self.tracer.finish(),
            ..Default::default()
        };
        report.add_counter("pu.cycles", self.cycle_base);
        report.add_counter("pu.iterations", self.iterations);
        report.add_counter("pu.nz_emitted", self.nz_emitted);
        report.add_counter("pu.loads_issued", self.loads_issued);
        report.add_counter("pu.stores_issued", self.stores_issued);
        report.add_counter("pu.queue_coalesced", self.queue_coalesced);
        report.add_counter("pu.prefetch.hits", self.prefetch_hits);
        report.add_counter("pu.prefetch.misses", self.prefetch_misses);
        report.set_histogram("pu.tree_fill", self.tree_fill);
        report.set_histogram("pu.read_queue", self.read_q_occ);
        report.set_histogram("pu.write_queue", self.write_q_occ);
        report.set_histogram("pu.prefetch_held", self.prefetch_held);
        report.set_histogram("pu.coalesce_width", self.coalesce_width);
        report
    }
}

/// One near-memory processing unit beside one DRAM rank.
#[derive(Debug)]
pub struct ProcessingUnit {
    pu_cfg: PuConfig,
    /// DRAM bus cycles per PU cycle as a (numerator, denominator) ratio.
    ticks: (u64, u64),
    layout: AddressLayout,
    mem: MemorySystem,
    dram_tick_accum: u64,
    next_req_id: u64,
    /// Event-driven fast-forwarding (see [`crate::config::SimOptions`]):
    /// when set, `run_rounds` jumps over provably no-op cycle spans.
    /// Results are bit-identical either way.
    fast_forward: bool,
    /// Instrumentation state; `None` when tracing is off. Purely
    /// observational — it never feeds back into the simulation.
    trace: Option<PuTraceState>,
}

impl ProcessingUnit {
    /// Creates a PU with its own single-rank memory system. Only the
    /// per-PU parts of `config` are kept (the PU parameters and the rank's
    /// DRAM configuration); the system-level fields stay with the caller.
    pub fn new(config: &MendaConfig) -> Self {
        config.pu.validate();
        let mut dram = config.dram.clone().with_channels(1).with_ranks(1);
        // The system-level trace knob governs the rank's DRAM tracing too,
        // so `MendaConfig::with_trace` works without touching `dram`.
        dram.trace = config.trace;
        Self {
            layout: AddressLayout::rank_default(),
            mem: MemorySystem::new(dram),
            dram_tick_accum: 0,
            next_req_id: 0,
            fast_forward: config.sim.fast_forward,
            trace: PuTraceState::new(&config.trace, &config.pu),
            pu_cfg: config.pu.clone(),
            ticks: config.dram_ticks_ratio(),
        }
    }

    /// The address layout this PU uses.
    pub fn layout(&self) -> &AddressLayout {
        &self.layout
    }

    /// Merge-tree leaf count of this PU.
    pub(crate) fn leaves(&self) -> usize {
        self.pu_cfg.leaves
    }

    /// Current DRAM-side statistics of this PU's rank.
    pub(crate) fn dram_stats(&self) -> menda_dram::DramStats {
        self.mem.stats()
    }

    /// Ends instrumentation and returns this PU's trace report (track 0
    /// carries PU-cycle events, track 1 the rank's DRAM bus-cycle
    /// events), or `None` when tracing is off. The PU records nothing
    /// afterwards.
    pub fn take_trace_report(&mut self) -> Option<TraceReport> {
        let state = self.trace.take()?;
        let mut report = state.into_report();
        if let Some(dram) = self.mem.take_trace_report() {
            report.merge(dram);
        }
        Some(report)
    }

    /// The earliest future bus cycle at which this PU's rank can change
    /// observable state (`None` when the rank is inert) — the same event
    /// bound the fast-forward quiescence skip inside
    /// [`ProcessingUnit::run_rounds`] jumps by, exposed for the
    /// [`crate::backend::AcceleratorBackend`] seam.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.mem.next_event_cycle()
    }

    /// The DRAM command stream of this PU's rank (empty unless
    /// `config.dram.log_commands` is set). Feed it to
    /// [`menda_dram::validate_trace`] to check protocol compliance.
    pub fn dram_command_log(&self) -> &[menda_dram::CommandRecord] {
        self.mem.command_log(0)
    }

    /// Transposes `part` (a horizontal partition whose local row 0 is
    /// global row `row_offset`), returning the partition's nonzeros in
    /// CSC order (sorted by column, then global row) plus statistics.
    ///
    /// Thin wrapper over the job layer: builds the transposition job
    /// ([`crate::job::transpose_job`]) and executes it on this PU.
    pub fn transpose(&mut self, part: &CsrMatrix, row_offset: usize) -> PuResult {
        crate::job::execute(self, crate::job::transpose_job(part.clone(), row_offset))
    }

    /// Runs all merge rounds of one iteration, cycle by cycle. Returns the
    /// emitted `(minors, majors, values)`, the run boundaries (prefix
    /// lengths at each root EOL) and the iteration statistics.
    ///
    /// This is the heart of the simulator: per PU cycle it
    /// 1. delivers DRAM responses (pointer blocks to the controller FSM,
    ///    data blocks to every coalesced waiter),
    /// 2. issues one read and one write from the PU queues to the rank,
    /// 3. lets the controller issue pointer reads and release stream
    ///    descriptors to the prefetch buffers,
    /// 4. lets active prefetch buffers plan and enqueue block loads
    ///    (coalescing duplicates, §3.4),
    /// 5. ticks the merge tree one cycle and handles the root pop
    ///    (output-buffer accounting, store requests, pointer-write pacing,
    ///    optional SpMV reduction),
    /// 6. advances the rank's DRAM clock by 1.5 bus cycles.
    pub fn run_rounds(
        &mut self,
        setup: IterationSetup<'_>,
    ) -> (EmittedTriples, Vec<usize>, IterationStats) {
        let pu_cfg = self.pu_cfg.clone();
        let l = pu_cfg.leaves;
        let layout = self.layout;
        let mut it = IterationStats::default();
        let dram_before = self.mem.stats();

        let n_streams = setup.descriptors.len();
        let total_rounds = n_streams
            .div_ceil(l)
            .max(if n_streams == 0 { 0 } else { 1 });
        if n_streams == 0 {
            return ((Vec::new(), Vec::new(), Vec::new()), Vec::new(), it);
        }
        // Pad to full rounds so every buffer gets a descriptor per round.
        let padded = total_rounds * l;

        let count_feed = self.trace.is_some();
        if let Some(ts) = self.trace.as_mut() {
            ts.tracer.begin(ts.cycle_base, "pu.iteration");
        }

        let mut tree = MergeTree::new(l, pu_cfg.fifo_entries);
        let mut buffers: Vec<PrefetchBuffer> = (0..l)
            .map(|i| {
                PrefetchBuffer::new(
                    i as u32,
                    pu_cfg.prefetch_buffer_entries,
                    pu_cfg.stall_reducing_prefetch,
                    layout,
                )
            })
            .collect();
        let mut read_q = CoalescingQueue::new(pu_cfg.read_queue_entries, pu_cfg.request_coalescing);
        let mut write_q: VecDeque<u64> = VecDeque::new();

        // Controller: pointer reads + descriptor release.
        let mut next_release = 0usize; // next descriptor index to release
        let mut ptr_blocks_arrived = 0usize; // contiguous watermark
        let mut ptr_arrived_set: Vec<bool> = Vec::new();
        let mut ptr_next_issue = 0usize;
        let mut ptr_outstanding = 0usize;
        if let Some(g) = &setup.gate {
            ptr_arrived_set = vec![false; g.blocks.len()];
        }

        // Output state.
        let mut out_minor: Vec<u32> = Vec::new();
        let mut out_major: Vec<u32> = Vec::new();
        let mut out_val: Vec<f32> = Vec::new();
        let mut boundaries: Vec<usize> = Vec::new();
        let mut bytes_accum: u64 = 0; // bytes waiting in the output buffer
        let mut stored_nzs: u64 = 0; // NZs already covered by stores
        let mut ptr_cursor: u64 = 0; // output pointer entries finalized
        let mut final_flush_pushed: usize = 0; // partial-block stores sent
        let mut pending_ptr_blocks: u64 = 0; // pointer blocks awaiting store
        let elem_bytes: u64 = match setup.out {
            OutputMode::Intermediate { .. } => 12,
            OutputMode::IntermediatePair { .. } | OutputMode::FinalCsc { .. } => 8,
            OutputMode::FinalDense { .. } => 4,
        };
        let out_bases: Vec<u64> = match setup.out {
            OutputMode::Intermediate { region } => layout.coo[region as usize].to_vec(),
            OutputMode::IntermediatePair { region } => vec![
                layout.coo[region as usize][0],
                layout.coo[region as usize][2],
            ],
            OutputMode::FinalCsc { .. } => vec![layout.out_idx, layout.out_val],
            OutputMode::FinalDense { .. } => vec![layout.out_val],
        };

        // Buffer activity tracking.
        let mut buf_active = ActiveSet::new(l);
        // Event-driven parking for buffers whose planned fetch failed the
        // read-queue slot pre-check: re-planning is a guaranteed discard
        // until the queue has room for the refused plan (the queue only
        // shrinks on completions in step 1, and a discarded re-plan has no
        // other effect), so the fast path *parks* refused buffers instead
        // of re-planning every cycle. Parked buffers live in per-size
        // bitmask buckets (`parked_buckets[need]`), so step 4 can union
        // exactly the buckets the live queue could satisfy and walk their
        // bits in buffer order — a parked buffer costs nothing per cycle
        // until its plan could actually fit. `parked_need[b]` (0 = not
        // parked) names the bucket holding `b`'s bit. The reference path
        // retries per cycle instead and never parks.
        let pw = l.div_ceil(128);
        let need_cap = pu_cfg.read_queue_entries;
        let mut parked_buckets: Vec<u128> = vec![0; (need_cap + 1) * pw];
        let mut parked_union: Vec<u128> = vec![0; pw];
        let mut parked_need: Vec<u32> = vec![0; l];
        let mut parked_count: usize = 0;
        // `parked_union` caches the union of the reachable need-buckets
        // for the queue headroom `union_avail`; any park/unpark resets
        // `union_avail` to the invalid sentinel. Busy steady-state cycles
        // (stable parked set, stable queue length) reuse the cached words
        // across cycles instead of re-folding the buckets.
        let mut union_avail: usize = usize::MAX;
        // Scratch allocations reused every cycle (never reallocated in
        // steady state): the buffer worklist working set, the ports popped
        // this cycle, and the packet staging buffer for decoded chunks.
        let mut buf_scratch: Vec<u32> = Vec::with_capacity(l);
        let mut popped_scratch: Vec<u32> = Vec::with_capacity(l);
        let mut packet_scratch: Vec<Packet> = Vec::new();
        let mut waiter_scratch: Vec<u32> = Vec::new();

        let mut cycles: u64 = 0;
        let (dram_num, dram_den) = self.ticks;
        let max_cycles: u64 = 20_000_000_000;
        let mut last_key_in_run: Option<(u32, u32)> = None;

        loop {
            // Termination: all rounds merged and all output flushed.
            if tree.rounds_completed() as usize >= total_rounds
                && bytes_accum == 0
                && pending_ptr_blocks == 0
                && write_q.is_empty()
                && self.mem.is_idle()
            {
                break;
            }
            // Fast-forward: when every pipeline stage is provably unable
            // to act (the PU is *quiescent*), jump over the longest span
            // of cycles in which that stays true — bounded by the next
            // DRAM-side event the PU could observe and by the next host
            // injection cycle — bulk-accounting the stall statistics and
            // trace samples the per-cycle path would have produced. The
            // skipped cycles are bit-identical no-ops: every quiescence
            // input (queues, buffers, tree, controller state) is frozen
            // until one of those two bounds, so re-running them one by one
            // would change nothing. `SimOptions::fast_forward = false`
            // keeps the per-cycle reference path; the differential suite
            // proves both produce identical results.
            let rounds_done = tree.rounds_completed() as usize >= total_rounds;
            if self.fast_forward {
                let root_space = usize::from(
                    bytes_accum + elem_bytes <= pu_cfg.output_buffer_bytes as u64
                        && pending_ptr_blocks < 16
                        && write_q.len() < pu_cfg.write_queue_entries,
                );
                let wq_full = write_q.len() >= pu_cfg.write_queue_entries;
                // Short-circuit order: O(1) checks that are false on most
                // busy cycles come first, so the per-cycle overhead of the
                // probe is a couple of branches; the queue scans at the end
                // only run on cycles that are already nearly quiescent.
                let quiescent = buf_active.is_empty()
                    // Tree has no scheduled PE and the root cannot merge.
                    && tree.is_quiescent(&PeekPorts(&buffers), root_space)
                    // Step 1 would deliver nothing: no response is ready.
                    && self
                        .mem
                        .next_response_at()
                        .is_none_or(|t| t > self.mem.now())
                    // Step 5's post-tree drains would push nothing.
                    && (pending_ptr_blocks == 0 || wq_full)
                    // The final flush would push nothing.
                    && (!rounds_done
                        || ((bytes_accum == 0 || wq_full)
                            && !(pending_ptr_blocks == 0
                                && matches!(setup.out, OutputMode::FinalCsc { ncols }
                                    if ptr_cursor < (ncols + 1).div_ceil(8)))))
                    // Step 3 would neither issue pointer reads nor release
                    // descriptors.
                    && setup.gate.as_ref().is_none_or(|g| {
                        !(ptr_outstanding < pu_cfg.pointer_read_depth
                            && ptr_next_issue < g.blocks.len()
                            && !read_q.is_full())
                    })
                    && (next_release >= padded
                        || (next_release < n_streams
                            && setup
                                .gate
                                .as_ref()
                                .is_some_and(|g| g.release_after[next_release] > ptr_blocks_arrived)))
                    // Step 2 would issue nothing: both issue slots blocked.
                    && read_q
                        .next_to_issue()
                        .is_none_or(|b| !self.mem.can_accept(&MemRequest::read(b, 0)))
                    && write_q
                        .front()
                        .is_none_or(|&b| !self.mem.can_accept(&MemRequest::write(b, 0)));
                if quiescent {
                    // Longest skip that keeps the DRAM side unobserved:
                    // PU cycle `cycles + j` sees memory time
                    // `M + (accum + (j-1)*num) / den`, which must stay
                    // below the next memory event.
                    let n_mem = match self.mem.next_event_cycle() {
                        Some(ev) => {
                            let span = (ev - self.mem.now()) * dram_den;
                            1 + (span - 1 - self.dram_tick_accum) / dram_num
                        }
                        None => u64::MAX,
                    };
                    // Host injections run on exact PU cycles: never skip
                    // one.
                    let host_cap = match pu_cfg.host_read_interval {
                        Some(interval) if !rounds_done => {
                            (cycles / interval + 1) * interval - cycles - 1
                        }
                        _ => u64::MAX,
                    };
                    assert!(
                        n_mem != u64::MAX || host_cap != u64::MAX,
                        "PU deadlock suspected: quiescent with no pending events"
                    );
                    let n = n_mem.min(host_cap);
                    if n > 0 {
                        if root_space == 0 {
                            it.output_stall_cycles += n;
                        } else if !rounds_done {
                            it.root_stall_cycles += n;
                        }
                        if let Some(ts) = self.trace.as_mut() {
                            // checked_div: sampling is off when the
                            // interval is 0.
                            if let Some(q) = cycles.checked_div(ts.interval) {
                                // No leaf pops occur in the window, so
                                // fed/starved stay put; emit the interval
                                // samples with the frozen occupancies.
                                let fill = tree.occupancy() as u64;
                                let held: usize = buffers.iter().map(|b| b.held()).sum();
                                let mut c = (q + 1) * ts.interval;
                                while c <= cycles + n {
                                    let now = ts.cycle_base + c;
                                    ts.tree_fill.record(fill);
                                    ts.read_q_occ.record(read_q.len() as u64);
                                    ts.write_q_occ.record(write_q.len() as u64);
                                    ts.prefetch_held.record(held as u64);
                                    ts.tracer.counter(now, "pu.tree_fill", fill);
                                    ts.tracer.counter(now, "pu.read_queue", read_q.len() as u64);
                                    ts.tracer
                                        .counter(now, "pu.write_queue", write_q.len() as u64);
                                    ts.tracer.counter(now, "pu.prefetch_held", held as u64);
                                    c += ts.interval;
                                }
                            }
                        }
                        // Replicate `n` iterations of step 6 in bulk.
                        let ticks = self.dram_tick_accum + n * dram_num;
                        self.mem.advance(ticks / dram_den);
                        self.dram_tick_accum = ticks % dram_den;
                        cycles += n;
                        assert!(cycles < max_cycles, "PU deadlock suspected");
                        continue;
                    }
                }
            }
            cycles += 1;
            assert!(cycles < max_cycles, "PU deadlock suspected");

            // 1. DRAM responses.
            while let Some(resp) = self.mem.pop_response() {
                if resp.kind == ReqKind::Write || resp.id & HOST_REQ_BIT != 0 {
                    continue;
                }
                let block = resp.addr;
                waiter_scratch.clear();
                read_q.complete_into(block, &mut waiter_scratch);
                if let Some(ts) = self.trace.as_mut() {
                    // One completed block feeds `waiters.len()` requests —
                    // the merge width achieved by request coalescing.
                    ts.coalesce_width.record(waiter_scratch.len() as u64);
                }
                for &w in &waiter_scratch {
                    match w {
                        PTR_WAITER => {
                            if let Some(g) = &setup.gate {
                                // Which gate block is this?
                                let rel =
                                    (block - AddressLayout::block_of(g.ptr_base)) / BLOCK_BYTES;
                                if let Ok(pos) = g.blocks.binary_search(&rel) {
                                    ptr_arrived_set[pos] = true;
                                    while ptr_blocks_arrived < ptr_arrived_set.len()
                                        && ptr_arrived_set[ptr_blocks_arrived]
                                    {
                                        ptr_blocks_arrived += 1;
                                    }
                                    ptr_outstanding = ptr_outstanding.saturating_sub(1);
                                }
                            }
                        }
                        VEC_WAITER => {}
                        buf_id => {
                            let b = buf_id as usize;
                            if let Some((desc, range, ended)) = buffers[b].block_arrived(block) {
                                setup
                                    .source
                                    .materialize_into(&desc, range, &mut packet_scratch);
                                buffers[b].deliver(&mut packet_scratch, ended);
                                tree.wake_port(b);
                                buf_active.insert(b);
                            } else if !self.fast_forward {
                                // Chunk still awaiting other blocks: its
                                // plan call is a guaranteed no-op, so the
                                // fast path defers re-activation to the
                                // completing block. The reference path
                                // keeps its retry-every-cycle shape.
                                buf_active.insert(b);
                            }
                        }
                    }
                }
            }

            // 2. Memory interface: one read and one write per cycle.
            if let Some(block) = read_q.next_to_issue() {
                let req = MemRequest::read(block, self.next_req_id);
                if self.mem.can_accept(&req) && self.mem.try_enqueue(req) {
                    self.next_req_id += 1;
                    read_q.mark_issued(block);
                    it.loads_issued += 1;
                }
            }
            // 2b. Concurrent host access (§4): inject a host read into the
            // shared rank at the configured rate, after the PU's own issue
            // so the host cannot monopolize queue slots and livelock the
            // PU (the host-side controller of [11] arbitrates similarly).
            if let Some(interval) = pu_cfg.host_read_interval {
                // Only while the PU is actually working — otherwise the
                // endless host stream would keep the memory system busy
                // and the iteration could never drain to completion.
                if cycles.is_multiple_of(interval)
                    && (tree.rounds_completed() as usize) < total_rounds
                {
                    let addr =
                        0xC000_0000u64 + (cycles / interval).wrapping_mul(0x9E37) % (64 << 20);
                    let req = MemRequest::read(addr & !63, HOST_REQ_BIT | cycles);
                    if self.mem.can_accept(&req) {
                        let _ = self.mem.try_enqueue(req);
                    }
                }
            }
            if let Some(&block) = write_q.front() {
                let req = MemRequest::write(block, self.next_req_id);
                if self.mem.can_accept(&req) && self.mem.try_enqueue(req) {
                    self.next_req_id += 1;
                    write_q.pop_front();
                    it.stores_issued += 1;
                }
            }

            // 3. Controller FSM: pointer reads + descriptor release.
            if let Some(g) = &setup.gate {
                while ptr_outstanding < pu_cfg.pointer_read_depth
                    && ptr_next_issue < g.blocks.len()
                    && !read_q.is_full()
                {
                    let block = AddressLayout::block_of(g.ptr_base)
                        + g.blocks[ptr_next_issue] * BLOCK_BYTES;
                    match read_q.enqueue(block, PTR_WAITER) {
                        EnqueueOutcome::Full => break,
                        _ => {
                            // SpMV: fetch the matching vector block too.
                            if let Some(vb) = g.vector_base {
                                let vblock = AddressLayout::block_of(
                                    vb + g.blocks[ptr_next_issue] * BLOCK_BYTES,
                                );
                                let _ = read_q.enqueue(vblock, VEC_WAITER);
                            }
                            ptr_next_issue += 1;
                            ptr_outstanding += 1;
                        }
                    }
                }
            }
            while next_release < padded {
                if next_release < n_streams {
                    if let Some(g) = &setup.gate {
                        if g.release_after[next_release] > ptr_blocks_arrived {
                            break;
                        }
                    }
                    let desc = setup.descriptors[next_release];
                    let b = next_release % l;
                    buffers[b].assign_streams([desc]);
                    buf_active.insert(b);
                    tree.wake_port(b);
                } else {
                    let b = next_release % l;
                    buffers[b].assign_streams([StreamDescriptor::empty()]);
                    buf_active.insert(b);
                    tree.wake_port(b);
                }
                next_release += 1;
            }

            // 4. Prefetch buffers plan fetches, in ascending buffer order.
            // The worklist swaps with a retained-capacity scratch Vec so
            // re-activations pushed below land in a buffer that never
            // reallocates in steady state. On the fast path the worklist
            // merges with the parked buffers whose refused plan size the
            // *live* queue length could now satisfy: the walk unions only
            // the reachable need-buckets, and both sources are consumed in
            // ascending id order, so the attempts happen exactly where the
            // reference path's retry-every-cycle loop would have made them
            // succeed (every attempt it skips is a provable no-op).
            let mut work = std::mem::take(&mut buf_scratch);
            buf_active.drain_into(&mut work);
            let mut wi = 0usize;
            let mut scan_from = 0usize;
            loop {
                let avail = pu_cfg.read_queue_entries - read_q.len();
                let next_active = work.get(wi).map(|&x| x as usize);
                let next_parked = if self.fast_forward
                    && parked_count > 0
                    && avail >= PrefetchBuffer::MIN_FETCH_SLOTS
                {
                    if avail != union_avail {
                        union_avail = avail;
                        let hi = avail.min(need_cap);
                        for (w, u) in parked_union.iter_mut().enumerate() {
                            *u = (PrefetchBuffer::MIN_FETCH_SLOTS..=hi)
                                .map(|n| parked_buckets[n * pw + w])
                                .fold(0, |a, x| a | x);
                        }
                    }
                    next_set_bit(&parked_union, scan_from)
                } else {
                    None
                };
                let b = match (next_active, next_parked) {
                    (None, None) => break,
                    (Some(a), None) => {
                        wi += 1;
                        a
                    }
                    (None, Some(p)) => {
                        scan_from = p + 1;
                        p
                    }
                    (Some(a), Some(p)) => {
                        if a <= p {
                            wi += 1;
                            if a == p {
                                scan_from = p + 1;
                            }
                            a
                        } else {
                            scan_from = p + 1;
                            p
                        }
                    }
                };
                // A parked candidate only surfaces once its plan could fit,
                // so it re-plans for real below; clear its bucket bit.
                if parked_need[b] != 0
                    && (Some(b) == next_parked || avail >= parked_need[b] as usize)
                {
                    let nbkt = parked_need[b] as usize;
                    parked_buckets[nbkt * pw + (b >> 7)] &= !(1u128 << (b & 127));
                    parked_need[b] = 0;
                    parked_count -= 1;
                    union_avail = usize::MAX;
                }
                // Conservative slot budget so the whole chunk enqueues
                // atomically (coalesced blocks would not even need slots,
                // but partial enqueue must never happen).
                // A plan refused for queue pressure can only grow while the
                // buffer's stream stands still (pops free space, nothing
                // else changes), so the size from its last refusal is a
                // valid lower bound until the next real plan call.
                let need = (parked_need[b] as usize).max(PrefetchBuffer::MIN_FETCH_SLOTS);
                if self.fast_forward
                    && avail < need
                    && (parked_need[b] != 0 || buffers[b].plan_is_noop_without_slots())
                {
                    // The queue cannot fit this buffer's plan and the
                    // attempt could not change simulated state (it is not
                    // at a stream boundary, so no EOL emission is due).
                    // Park, keeping the tightest threshold known. Buffers
                    // with a chunk in flight are re-activated by the
                    // completing response instead.
                    if parked_need[b] == 0 && !buffers[b].has_pending() {
                        parked_buckets[need * pw + (b >> 7)] |= 1u128 << (b & 127);
                        parked_need[b] = need as u32;
                        parked_count += 1;
                        union_avail = usize::MAX;
                    }
                    continue;
                }
                let had_head = buffers[b].peek().is_some();
                match buffers[b].plan_fetch(avail) {
                    FetchPlan::Planned { .. } => {
                        for &blk in buffers[b].pending_blocks() {
                            match read_q.enqueue(blk, b as u32) {
                                EnqueueOutcome::Full => {
                                    unreachable!("slot pre-check guarantees space")
                                }
                                EnqueueOutcome::Coalesced => it.loads_coalesced += 1,
                                EnqueueOutcome::Queued => {}
                            }
                        }
                    }
                    FetchPlan::Blocked { blocks } if self.fast_forward => {
                        // Queue pressure: park until the queue could fit a
                        // plan of this size. The plan can only grow while
                        // parked (pops free space, nothing else changes),
                        // so earlier attempts would re-plan and discard —
                        // provably the same simulated behavior as the
                        // reference path's retry-every-cycle below.
                        let nbkt = blocks.clamp(PrefetchBuffer::MIN_FETCH_SLOTS, need_cap);
                        parked_buckets[nbkt * pw + (b >> 7)] |= 1u128 << (b & 127);
                        parked_need[b] = nbkt as u32;
                        parked_count += 1;
                        union_avail = usize::MAX;
                    }
                    FetchPlan::Blocked { .. } => {
                        // Queue pressure: retry next cycle.
                        buf_active.insert(b);
                    }
                    FetchPlan::None => {}
                }
                if !had_head && buffers[b].peek().is_some() {
                    tree.wake_port(b);
                }
            }
            work.clear();
            buf_scratch = work;

            // 5. Merge tree.
            let root_space = usize::from(
                bytes_accum + elem_bytes <= pu_cfg.output_buffer_bytes as u64
                    && pending_ptr_blocks < 16
                    && write_q.len() < pu_cfg.write_queue_entries,
            );
            if root_space == 0 {
                it.output_stall_cycles += 1;
            }
            let mut ports = BufferPorts {
                buffers: &mut buffers,
                popped: std::mem::take(&mut popped_scratch),
                event_driven: self.fast_forward,
                count_feed,
                fed: 0,
                starved: 0,
            };
            let popped = tree.tick(&mut ports, root_space);
            let mut awoken = std::mem::take(&mut ports.popped);
            let (fed, starved) = (ports.fed, ports.starved);
            for &p in &awoken {
                buf_active.insert(p as usize);
            }
            awoken.clear();
            popped_scratch = awoken;
            if let Some(ts) = self.trace.as_mut() {
                ts.prefetch_hits += fed;
                ts.prefetch_misses += starved;
                if cycles.is_multiple_of(ts.interval) {
                    let now = ts.cycle_base + cycles;
                    let fill = tree.occupancy() as u64;
                    let held: usize = buffers.iter().map(|b| b.held()).sum();
                    ts.tree_fill.record(fill);
                    ts.read_q_occ.record(read_q.len() as u64);
                    ts.write_q_occ.record(write_q.len() as u64);
                    ts.prefetch_held.record(held as u64);
                    ts.tracer.counter(now, "pu.tree_fill", fill);
                    ts.tracer.counter(now, "pu.read_queue", read_q.len() as u64);
                    ts.tracer
                        .counter(now, "pu.write_queue", write_q.len() as u64);
                    ts.tracer.counter(now, "pu.prefetch_held", held as u64);
                }
            }
            match popped {
                Some(Packet::Nz {
                    major,
                    minor,
                    value,
                }) => {
                    it.nz_emitted += 1;
                    let merged = setup.reduce && last_key_in_run == Some((major, minor));
                    if merged {
                        let lv = out_val.last_mut().expect("reduce has prior element");
                        *lv += value;
                    } else {
                        // Pointer-write pacing for FinalCsc output.
                        if let OutputMode::FinalCsc { .. } = setup.out {
                            let group = major as u64 / 8; // 8 ptr entries per block
                            if group > ptr_cursor {
                                pending_ptr_blocks += group - ptr_cursor;
                                ptr_cursor = group;
                            }
                        }
                        out_major.push(major);
                        out_minor.push(minor);
                        out_val.push(value);
                        bytes_accum += elem_bytes;
                        last_key_in_run = Some((major, minor));
                        // Issue stores at block granularity per output
                        // array (16 4-byte elements per block).
                        let emitted = out_major.len() as u64;
                        if emitted - stored_nzs >= 16 {
                            let off = stored_nzs * 4;
                            for base in &out_bases {
                                write_q.push_back(AddressLayout::block_of(base + off));
                            }
                            stored_nzs += 16;
                            bytes_accum = bytes_accum.saturating_sub(16 * elem_bytes);
                        }
                    }
                }
                Some(Packet::Eol) => {
                    boundaries.push(out_major.len());
                    last_key_in_run = None;
                }
                None => {
                    if root_space == 1 && (tree.rounds_completed() as usize) < total_rounds {
                        it.root_stall_cycles += 1;
                    }
                }
            }
            // Drain one pending pointer-block store per cycle.
            if pending_ptr_blocks > 0 && write_q.len() < pu_cfg.write_queue_entries {
                write_q.push_back(AddressLayout::block_of(
                    layout.out_ptr + (ptr_cursor - pending_ptr_blocks) * BLOCK_BYTES,
                ));
                pending_ptr_blocks -= 1;
            }
            // Final flush when merging finished: one partial-block store
            // per cycle so even a tiny write queue drains it.
            if tree.rounds_completed() as usize >= total_rounds {
                if bytes_accum > 0 && write_q.len() < pu_cfg.write_queue_entries {
                    let off = stored_nzs * 4;
                    write_q.push_back(AddressLayout::block_of(out_bases[final_flush_pushed] + off));
                    final_flush_pushed += 1;
                    if final_flush_pushed == out_bases.len() {
                        bytes_accum = 0;
                    }
                }
                // Trailing pointer blocks of the output CSC pointer array
                // (the dense SpMV output is fully covered by the per-16
                // element stores above).
                if pending_ptr_blocks == 0 {
                    if let OutputMode::FinalCsc { ncols } = setup.out {
                        let total_groups = (ncols + 1).div_ceil(8);
                        if ptr_cursor < total_groups {
                            pending_ptr_blocks += total_groups - ptr_cursor;
                            ptr_cursor = total_groups;
                        }
                    }
                }
            }

            // 6. DRAM clock (bus runs dram_num : dram_den faster).
            self.dram_tick_accum += dram_num;
            while self.dram_tick_accum >= dram_den {
                self.mem.tick();
                self.dram_tick_accum -= dram_den;
            }
        }

        it.cycles = cycles;
        it.rounds = total_rounds as u64;
        let dram_after = self.mem.stats();
        it.dram_row_hits = dram_after.row_hits - dram_before.row_hits;
        it.dram_row_misses = dram_after.row_misses - dram_before.row_misses;
        it.dram_row_conflicts = dram_after.row_conflicts - dram_before.row_conflicts;
        if let Some(ts) = self.trace.as_mut() {
            let end = ts.cycle_base + cycles;
            ts.tracer.end(end, "pu.iteration");
            ts.cycle_base = end;
            ts.iterations += 1;
            ts.nz_emitted += it.nz_emitted;
            ts.loads_issued += it.loads_issued;
            ts.stores_issued += it.stores_issued;
            ts.queue_coalesced += it.loads_coalesced;
        }
        ((out_minor, out_major, out_val), boundaries, it)
    }
}

/// First set bit at index `>= from` across the `u128` words, if any.
/// Backs the parked-buffer walk of `run_rounds` step 4.
fn next_set_bit(words: &[u128], from: usize) -> Option<usize> {
    let mut wi = from >> 7;
    if wi >= words.len() {
        return None;
    }
    let mut w = words[wi] & (u128::MAX << (from & 127));
    loop {
        if w != 0 {
            return Some((wi << 7) + w.trailing_zeros() as usize);
        }
        wi += 1;
        if wi >= words.len() {
            return None;
        }
        w = words[wi];
    }
}

/// Number of merge iterations to reduce `streams` sorted streams with an
/// `l`-leaf tree (`ceil(log_l streams)`, minimum 1 when there is anything
/// to sort — §3.1).
pub fn iterations_needed(streams: u64, l: u64) -> u32 {
    if streams == 0 {
        return 0;
    }
    let mut iters = 0;
    let mut s = streams;
    while s > 1 || iters == 0 {
        s = s.div_ceil(l);
        iters += 1;
        if s == 1 {
            break;
        }
    }
    iters
}

/// Converts the previous iteration's run boundaries into COO stream
/// descriptors over `region`.
pub fn runs_to_descriptors(boundaries: &[usize], region: u8) -> Vec<StreamDescriptor> {
    let mut descs = Vec::new();
    let mut start = 0usize;
    for &end in boundaries {
        if end > start {
            descs.push(StreamDescriptor {
                start: start as u64,
                end: end as u64,
                kind: StreamKind::Coo { region },
            });
        }
        start = end;
    }
    descs
}

/// Converts run boundaries into (index, value) pair stream descriptors
/// over `region` (the 8-byte SpMV intermediates of §3.6).
pub fn pair_runs_to_descriptors(boundaries: &[usize], region: u8) -> Vec<StreamDescriptor> {
    let mut descs = Vec::new();
    let mut start = 0usize;
    for &end in boundaries {
        if end > start {
            descs.push(StreamDescriptor {
                start: start as u64,
                end: end as u64,
                kind: StreamKind::Pair { region },
            });
        }
        start = end;
    }
    descs
}

#[cfg(test)]
mod tests {
    use super::*;
    use menda_sparse::gen;

    fn small_config() -> MendaConfig {
        MendaConfig::small_test()
    }

    fn check_transpose(m: &CsrMatrix) {
        let mut pu = ProcessingUnit::new(&small_config());
        let result = pu.transpose(m, 0);
        let golden = m.to_csc();
        assert_eq!(result.values.len(), golden.nnz(), "nnz mismatch");
        let mut k = 0;
        for c in 0..golden.ncols() {
            let (rows, vals) = golden.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                assert_eq!(result.majors[k], c as u32, "col at {k}");
                assert_eq!(result.minors[k], r, "row at {k}");
                assert_eq!(result.values[k], v, "val at {k}");
                k += 1;
            }
        }
    }

    #[test]
    fn transposes_fig1_matrix() {
        let m = CsrMatrix::new(
            8,
            7,
            vec![0, 2, 4, 7, 9, 12, 14, 17, 17],
            vec![0, 2, 1, 4, 0, 4, 6, 3, 5, 0, 2, 5, 1, 3, 2, 5, 6],
            (1..=17).map(|v| v as f32).collect(),
        )
        .unwrap();
        check_transpose(&m);
    }

    #[test]
    fn transposes_uniform_random() {
        check_transpose(&gen::uniform(64, 512, 3));
    }

    #[test]
    fn transposes_power_law() {
        check_transpose(&gen::rmat(128, 1024, gen::RmatParams::PAPER, 5));
    }

    #[test]
    fn multi_iteration_when_rows_exceed_leaves() {
        // 64 non-empty rows on a 16-leaf tree: 2 iterations.
        let m = gen::uniform(64, 512, 7);
        let mut pu = ProcessingUnit::new(&small_config());
        let result = pu.transpose(&m, 0);
        assert_eq!(result.stats.num_iterations(), 2);
        check_transpose(&m);
    }

    #[test]
    fn single_iteration_when_rows_fit() {
        let m = gen::uniform(12, 100, 9);
        let mut pu = ProcessingUnit::new(&small_config());
        let result = pu.transpose(&m, 0);
        assert_eq!(result.stats.num_iterations(), 1);
    }

    #[test]
    fn row_offset_shifts_minors() {
        let m = gen::uniform(8, 32, 1);
        let mut pu = ProcessingUnit::new(&small_config());
        let r = pu.transpose(&m, 100);
        assert!(r.minors.iter().all(|&x| (100..108).contains(&x)));
    }

    #[test]
    fn iterations_needed_formula() {
        assert_eq!(iterations_needed(0, 16), 0);
        assert_eq!(iterations_needed(1, 16), 1);
        assert_eq!(iterations_needed(16, 16), 1);
        assert_eq!(iterations_needed(17, 16), 2);
        assert_eq!(iterations_needed(256, 16), 2);
        assert_eq!(iterations_needed(257, 16), 3);
        assert_eq!(iterations_needed(1024 * 1024, 1024), 2);
    }

    #[test]
    fn runs_to_descriptors_skips_empty_runs() {
        let descs = runs_to_descriptors(&[3, 3, 10], 1);
        assert_eq!(descs.len(), 2);
        assert_eq!(descs[0].start, 0);
        assert_eq!(descs[0].end, 3);
        assert_eq!(descs[1].start, 3);
        assert_eq!(descs[1].end, 10);
    }

    #[test]
    fn empty_matrix_finishes_immediately() {
        let m = CsrMatrix::zeros(16, 16);
        let mut pu = ProcessingUnit::new(&small_config());
        let r = pu.transpose(&m, 0);
        assert!(r.majors.is_empty());
        assert_eq!(r.stats.num_iterations(), 0);
    }

    #[test]
    fn coalescing_reduces_issued_loads_on_short_rows() {
        // Many 1-NZ rows share blocks: coalescing should fire.
        let m = gen::uniform(256, 256, 11);
        let run = |coal: bool| {
            let mut cfg = small_config();
            cfg.pu.request_coalescing = coal;
            let mut pu = ProcessingUnit::new(&cfg);
            let r = pu.transpose(&m, 0);
            (
                r.stats.iterations[0].loads_issued,
                r.stats.total_coalesced(),
            )
        };
        let (issued_on, coalesced_on) = run(true);
        let (issued_off, coalesced_off) = run(false);
        assert_eq!(coalesced_off, 0);
        assert!(coalesced_on > 0, "no coalescing observed");
        assert!(
            issued_on < issued_off,
            "coalescing did not reduce traffic: {issued_on} vs {issued_off}"
        );
    }

    #[test]
    fn stats_traffic_accounts_loads_and_stores() {
        let m = gen::uniform(32, 256, 13);
        let mut pu = ProcessingUnit::new(&small_config());
        let r = pu.transpose(&m, 0);
        let it = &r.stats.iterations[0];
        assert!(it.loads_issued > 0);
        assert!(it.stores_issued > 0);
        assert!(it.cycles > 0);
        // At minimum the NZ data must be read: 256 NZs * 8 B / 64 B.
        assert!(it.loads_issued >= 256 * 8 / 64);
    }
}
