//! The accelerator backend seam.
//!
//! The DRAM substrate already sweeps DDR4/HBM2/LPDDR4 configurations, but
//! until this module existed the accelerator side was hard-wired to the
//! MeNDA processing unit. [`AcceleratorBackend`] abstracts "the compute
//! device beside one DRAM rank" so the execution engine, the kernel specs
//! and the repro drivers are generic over the near-memory design being
//! simulated:
//!
//! * [`MendaBackend`] — the paper's merge-tree PU
//!   ([`crate::ProcessingUnit`]): prefetch buffers, coalescing queue and
//!   the multi-iteration merge-sort dataflow. The default; behavior is
//!   identical to the pre-seam engine.
//! * [`crate::pim::PimBackend`] — a SparseP-style UPMEM many-core PIM
//!   model: DPU-like cores with local scratchpads, 1D stream partitioning
//!   and a rank-level merge (arXiv:2204.00900).
//!
//! Both backends execute the same backend-agnostic [`PuJob`] descriptions
//! against the same cycle-level [`menda_dram`] rank model, report the same
//! [`PuResult`]/[`menda_dram::DramStats`] shapes and hand their
//! instrumentation off through the same [`TraceReport`] path, so every
//! kernel driver, statistic, energy model and trace consumer works
//! unchanged on either device.

use menda_dram::{Decoder, Encoder, SnapError};
use menda_trace::TraceReport;

use crate::config::MendaConfig;
use crate::job::{self, JobRun, PuJob};
use crate::pu::{ProcessingUnit, PuResult};

/// One near-memory accelerator design: a factory for per-rank compute
/// units plus the operations the execution engine needs from them.
///
/// Implementations must be `Sync` (the engine executes units on worker
/// threads) and deterministic: `execute_job` must be a pure function of
/// the unit's configuration and the job, so serial and threaded engine
/// runs are bit-identical for any backend.
pub trait AcceleratorBackend: Sync {
    /// The per-rank device model (owns its rank's [`menda_dram`]
    /// simulator).
    type Unit: Send;
    /// What one unit returns for one job; converted into the shared
    /// [`PuResult`] so kernel assembly is backend-agnostic.
    type UnitResult: Into<PuResult> + Send;

    /// Stable backend identifier used in statistics, artifacts and trace
    /// labels (e.g. `"menda"`, `"pim"`).
    fn name(&self) -> &'static str;

    /// The device clock in MHz under `config`, used to convert cycle
    /// counts into seconds.
    fn frequency_mhz(&self, config: &MendaConfig) -> u64;

    /// Builds one unit beside one DRAM rank. Only the per-rank parts of
    /// `config` apply; system-level fields (channels, ranks) stay with
    /// the engine.
    fn build_unit(&self, config: &MendaConfig) -> Self::Unit;

    /// Executes one job to completion on `unit`.
    fn execute_job(&self, unit: &mut Self::Unit, job: PuJob) -> Self::UnitResult;

    /// The earliest future cycle at which `unit`'s rank can change
    /// observable state (`None` when inert) — the fast-forward seam every
    /// backend's event-driven execution path jumps by
    /// ([`crate::SimOptions::fast_forward`]).
    fn next_event_cycle(&self, unit: &Self::Unit) -> Option<u64>;

    /// Ends instrumentation and hands the unit's trace report to the
    /// engine, which retags it with the unit's id
    /// ([`TraceReport::absorb_as`]). `None` when tracing is off.
    fn take_trace_report(&self, unit: &mut Self::Unit) -> Option<TraceReport>;
}

/// A backend whose job execution can be paused at an arbitrary device
/// cycle, serialized, and later restored bit-identically — the seam the
/// checkpoint/replay subsystem ([`crate::checkpoint`]) builds on.
///
/// The contract mirrors the straight-through [`AcceleratorBackend`] path
/// exactly: for any job, any sequence of `advance` calls with increasing
/// pause targets — with or without an intervening
/// `save_run`/`restore_run` round trip through fresh units — must produce
/// the same [`PuResult`], the same cycle counts, the same
/// [`menda_dram::DramStats`] and the same DRAM command log as a single
/// unbounded `advance`. The differential suite
/// `tests/checkpoint_equivalence.rs` enforces this for every backend.
///
/// Serialization only captures *dynamic* state; anything derivable from
/// the job and the configuration is recomputed at restore. Checkpointing
/// is refused while instrumentation is active (`tracing_active`) because
/// trace sinks are not part of the simulated machine state.
pub trait ResumableBackend: AcceleratorBackend {
    /// An in-flight job execution on one unit: the dynamic state that a
    /// straight-through [`AcceleratorBackend::execute_job`] keeps on its
    /// host stack, reified so it can pause and serialize.
    type Run: Send;

    /// Starts (but does not advance) a job on `unit`.
    fn start_job(&self, unit: &Self::Unit, job: PuJob) -> Self::Run;

    /// Advances the run until it finishes (returns `true`) or the unit's
    /// job-relative cycle count reaches `pause_at` (returns `false`).
    /// `None` never pauses.
    fn advance(&self, unit: &mut Self::Unit, run: &mut Self::Run, pause_at: Option<u64>) -> bool;

    /// Consumes a finished run and produces its result.
    fn finish_run(&self, unit: &Self::Unit, run: Self::Run) -> PuResult;

    /// Whether `unit` currently has an instrumentation sink attached (in
    /// which case checkpointing must be refused).
    fn tracing_active(&self, unit: &Self::Unit) -> bool;

    /// Serializes the unit-level dynamic state (cycle counters, request
    /// ids, the rank's DRAM simulator).
    fn save_unit(&self, unit: &Self::Unit, enc: &mut Encoder);

    /// Restores state saved by [`ResumableBackend::save_unit`] into a
    /// freshly built unit of the same configuration.
    fn restore_unit(&self, unit: &mut Self::Unit, dec: &mut Decoder<'_>) -> Result<(), SnapError>;

    /// Serializes the run-level dynamic state.
    fn save_run(&self, run: &Self::Run, enc: &mut Encoder);

    /// Rebuilds a run from `job` plus state saved by
    /// [`ResumableBackend::save_run`]. The unit must already have been
    /// restored ([`ResumableBackend::restore_unit`]) — run reconstruction
    /// may consult unit geometry.
    fn restore_run(
        &self,
        unit: &Self::Unit,
        job: PuJob,
        dec: &mut Decoder<'_>,
    ) -> Result<Self::Run, SnapError>;
}

/// The MeNDA merge-tree processing unit as a backend — the paper's design
/// and the default for every existing entry point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MendaBackend;

impl AcceleratorBackend for MendaBackend {
    type Unit = ProcessingUnit;
    type UnitResult = PuResult;

    fn name(&self) -> &'static str {
        "menda"
    }

    fn frequency_mhz(&self, config: &MendaConfig) -> u64 {
        config.pu.frequency_mhz
    }

    fn build_unit(&self, config: &MendaConfig) -> ProcessingUnit {
        ProcessingUnit::new(config)
    }

    fn execute_job(&self, unit: &mut ProcessingUnit, job: PuJob) -> PuResult {
        job::execute(unit, job)
    }

    fn next_event_cycle(&self, unit: &ProcessingUnit) -> Option<u64> {
        unit.next_event_cycle()
    }

    fn take_trace_report(&self, unit: &mut ProcessingUnit) -> Option<TraceReport> {
        unit.take_trace_report()
    }
}

impl ResumableBackend for MendaBackend {
    type Run = JobRun;

    fn start_job(&self, unit: &ProcessingUnit, job: PuJob) -> JobRun {
        JobRun::new(unit.leaves() as u64, job)
    }

    fn advance(&self, unit: &mut ProcessingUnit, run: &mut JobRun, pause_at: Option<u64>) -> bool {
        run.run_until(unit, pause_at)
    }

    fn finish_run(&self, unit: &ProcessingUnit, run: JobRun) -> PuResult {
        run.finish(unit)
    }

    fn tracing_active(&self, unit: &ProcessingUnit) -> bool {
        unit.tracing_active()
    }

    fn save_unit(&self, unit: &ProcessingUnit, enc: &mut Encoder) {
        unit.save_unit_state(enc);
    }

    fn restore_unit(
        &self,
        unit: &mut ProcessingUnit,
        dec: &mut Decoder<'_>,
    ) -> Result<(), SnapError> {
        unit.restore_unit_state(dec)
    }

    fn save_run(&self, run: &JobRun, enc: &mut Encoder) {
        run.save_state(enc);
    }

    fn restore_run(
        &self,
        unit: &ProcessingUnit,
        job: PuJob,
        dec: &mut Decoder<'_>,
    ) -> Result<JobRun, SnapError> {
        JobRun::restore_state(unit, job, dec)
    }
}

/// Runtime backend selection for drivers that pick the accelerator from
/// a flag or a job description rather than at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The MeNDA merge-tree PU ([`MendaBackend`]).
    Menda,
    /// The SparseP-style UPMEM PIM model ([`crate::pim::PimBackend`]).
    Pim,
}

impl BackendKind {
    /// All selectable backends, in presentation order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Menda, BackendKind::Pim];

    /// The backend's stable identifier (matches
    /// [`AcceleratorBackend::name`]).
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Menda => "menda",
            BackendKind::Pim => "pim",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menda_sparse::gen;

    #[test]
    fn menda_backend_matches_direct_pu_execution() {
        let cfg = MendaConfig::small_test();
        let m = gen::uniform(32, 256, 17);
        let backend = MendaBackend;
        let mut unit = backend.build_unit(&cfg);
        let via_backend = backend.execute_job(&mut unit, crate::job::transpose_job(m.clone(), 0));
        let mut pu = ProcessingUnit::new(&cfg);
        let direct = pu.transpose(&m, 0);
        assert_eq!(via_backend, direct);
        assert_eq!(backend.name(), "menda");
        assert_eq!(backend.frequency_mhz(&cfg), cfg.pu.frequency_mhz);
    }

    #[test]
    fn backend_kind_labels_are_stable() {
        assert_eq!(BackendKind::Menda.label(), "menda");
        assert_eq!(BackendKind::Pim.label(), "pim");
        assert_eq!(BackendKind::ALL.len(), 2);
    }
}
