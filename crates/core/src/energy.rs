//! Area, power and energy model (§6.2, §6.7).
//!
//! Calibrated to the paper's 40 nm Synopsys Design Compiler synthesis
//! results: a PU consumes 78.6 mW at 800 MHz and occupies 7.1 mm²; the
//! extra SpMV logic adds up to 13.8 mW and negligible area. Frequency and
//! leaf-count scaling follow first-order CMOS models (dynamic power scales
//! with frequency, PE/buffer power scales with leaf count); the constants
//! below reproduce the Fig. 15 EDP shapes.

use crate::config::PuConfig;

/// PU power at the nominal design point, in milliwatts (§6.2).
pub const PU_POWER_MW: f64 = 78.6;
/// Additional power of the SpMV units when active, in milliwatts (§6.2).
pub const SPMV_EXTRA_MW: f64 = 13.8;
/// PU area in mm² at 40 nm (§6.2).
pub const PU_AREA_MM2: f64 = 7.1;
/// Area of a typical DIMM data buffer chip in mm² (\[35\] in the paper).
pub const BUFFER_CHIP_AREA_MM2: f64 = 100.0;
/// Nominal frequency of the synthesis point, MHz.
pub const NOMINAL_MHZ: f64 = 800.0;
/// Nominal leaf count of the synthesis point.
pub const NOMINAL_LEAVES: f64 = 1024.0;
/// Fraction of PU power that is frequency-dependent (dynamic).
pub const DYNAMIC_FRACTION: f64 = 0.8;
/// Fraction of PU power in the merge tree + prefetch buffers (scales with
/// the leaf count); the remainder — controller, request queues, memory
/// interface unit and clock distribution — is leaf-independent.
pub const TREE_FRACTION: f64 = 0.5;

/// First-order power model of one PU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// PU power in milliwatts.
    pub pu_mw: f64,
    /// Whether SpMV units are powered (gated off for transposition, §3.6).
    pub spmv_active: bool,
}

impl PowerModel {
    /// Power of a PU with the given configuration running transposition.
    pub fn transpose(config: &PuConfig) -> Self {
        Self {
            pu_mw: scaled_power_mw(config),
            spmv_active: false,
        }
    }

    /// Power of a PU with the given configuration running SpMV (adds the
    /// multiplier, adders and delay buffer).
    pub fn spmv(config: &PuConfig) -> Self {
        Self {
            pu_mw: scaled_power_mw(config)
                + SPMV_EXTRA_MW * (config.frequency_mhz as f64 / NOMINAL_MHZ),
            spmv_active: true,
        }
    }

    /// Total power in watts.
    pub fn watts(&self) -> f64 {
        self.pu_mw / 1e3
    }

    /// Energy in joules over `seconds` of execution.
    pub fn energy_j(&self, seconds: f64) -> f64 {
        self.watts() * seconds
    }

    /// Energy-delay product in joule-seconds over `seconds` of execution.
    pub fn edp(&self, seconds: f64) -> f64 {
        self.energy_j(seconds) * seconds
    }
}

/// PU power scaled from the nominal design point to `config`'s frequency
/// and leaf count.
pub fn scaled_power_mw(config: &PuConfig) -> f64 {
    let f_scale = config.frequency_mhz as f64 / NOMINAL_MHZ;
    let l_scale = config.leaves as f64 / NOMINAL_LEAVES;
    let freq_part = 1.0 - DYNAMIC_FRACTION + DYNAMIC_FRACTION * f_scale;
    let leaf_part = 1.0 - TREE_FRACTION + TREE_FRACTION * l_scale;
    PU_POWER_MW * freq_part * leaf_part
}

/// PU area scaled by leaf count (tree + buffers dominate).
pub fn scaled_area_mm2(config: &PuConfig) -> f64 {
    let l_scale = config.leaves as f64 / NOMINAL_LEAVES;
    PU_AREA_MM2 * (1.0 - TREE_FRACTION + TREE_FRACTION * l_scale)
}

/// Whether the PU fits a commodity DIMM buffer chip (§6.2's feasibility
/// argument).
pub fn fits_buffer_chip(config: &PuConfig) -> bool {
    scaled_area_mm2(config) < BUFFER_CHIP_AREA_MM2
}

/// System-level efficiency in GTEPS per watt across `pus` PUs.
pub fn gteps_per_watt(gteps: f64, pus: usize, model: PowerModel) -> f64 {
    let total_w = model.watts() * pus as f64;
    if total_w == 0.0 {
        return 0.0;
    }
    gteps / total_w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_point_matches_paper() {
        let c = PuConfig::paper();
        assert!((scaled_power_mw(&c) - PU_POWER_MW).abs() < 1e-9);
        assert!((scaled_area_mm2(&c) - PU_AREA_MM2).abs() < 1e-9);
        assert!(fits_buffer_chip(&c));
    }

    #[test]
    fn spmv_adds_extra_power() {
        let c = PuConfig::paper();
        let t = PowerModel::transpose(&c);
        let s = PowerModel::spmv(&c);
        assert!((s.pu_mw - t.pu_mw - SPMV_EXTRA_MW).abs() < 1e-9);
    }

    #[test]
    fn power_scales_down_with_frequency() {
        let p600 = scaled_power_mw(&PuConfig::paper().with_frequency(600));
        let p800 = scaled_power_mw(&PuConfig::paper());
        let p1200 = scaled_power_mw(&PuConfig::paper().with_frequency(1200));
        assert!(p600 < p800 && p800 < p1200);
        // Static fraction keeps the curve affine, not proportional.
        assert!(p600 > PU_POWER_MW * 600.0 / 800.0);
    }

    #[test]
    fn power_scales_down_with_leaves() {
        let p64 = scaled_power_mw(&PuConfig::paper().with_leaves(64));
        let p1024 = scaled_power_mw(&PuConfig::paper());
        assert!(p64 < 0.6 * p1024);
        assert!(p64 > 0.3 * p1024);
    }

    #[test]
    fn edp_prefers_lower_frequency_at_equal_performance() {
        // If execution time barely changes (memory bound), a lower clock
        // must win on EDP — the Fig. 15 observation.
        let c600 = PuConfig::paper().with_frequency(600);
        let c800 = PuConfig::paper();
        let t600 = 1.05; // 5% slower
        let t800 = 1.0;
        let edp600 = PowerModel::transpose(&c600).edp(t600);
        let edp800 = PowerModel::transpose(&c800).edp(t800);
        assert!(edp600 < edp800);
    }

    #[test]
    fn efficiency_metric() {
        let m = PowerModel::spmv(&PuConfig::paper());
        let e = gteps_per_watt(0.8, 8, m);
        assert!(e > 0.0);
        assert!(e < 0.8 / (8.0 * 0.078));
    }
}
