//! The multi-PU MeNDA system (§3.5): one PU per DRAM rank, each
//! transposing a contiguous NNZ-balanced horizontal partition of the input
//! matrix with no inter-PU communication.

use menda_sparse::partition::RowPartition;
use menda_sparse::{CscMatrix, CsrMatrix};

use crate::backend::{AcceleratorBackend, BackendKind, MendaBackend, ResumableBackend};
use crate::checkpoint::{SnapshotError, SnapshotOutcome};
use crate::config::MendaConfig;
use crate::engine::{Engine, KernelSpec};
use crate::job::{self, PuJob};
use crate::pu::PuResult;
use crate::stats::{PuStats, RunStats};

/// Result of a system-level transposition.
#[derive(Debug, Clone, PartialEq)]
pub struct TransposeResult {
    /// The transposed matrix assembled from the per-rank partitions (each
    /// rank holds the CSC of its horizontal partition; the assembly
    /// concatenates sub-columns in partition order, which preserves row
    /// order because partitions are contiguous row ranges).
    pub output: CscMatrix,
    /// Execution time in PU cycles: PUs run concurrently, so this is the
    /// maximum over PUs.
    pub cycles: u64,
    /// Execution time in seconds at the configured PU frequency.
    pub seconds: f64,
    /// Throughput in nonzeros per second (the paper's NNZ/s metric).
    pub nnz_per_sec: f64,
    /// Per-PU statistics.
    pub pu_stats: Vec<PuStats>,
    /// The row partition used.
    pub partition: RowPartition,
    /// Aggregated instrumentation report, present only when
    /// [`MendaConfig::trace`] enables a sink.
    pub trace: Option<menda_trace::TraceReport>,
}

impl TransposeResult {
    /// Total memory traffic across PUs, in bytes.
    pub fn total_traffic_bytes(&self) -> u64 {
        self.pu_stats.iter().map(|s| s.total_traffic_bytes()).sum()
    }

    /// Aggregate achieved bandwidth across PUs in GB/s (traffic divided by
    /// wall-clock execution time).
    pub fn aggregate_bandwidth_gbs(&self) -> f64 {
        if self.seconds == 0.0 {
            return 0.0;
        }
        self.total_traffic_bytes() as f64 / self.seconds / 1e9
    }

    /// The largest number of iterations any PU needed.
    pub fn max_iterations(&self) -> usize {
        self.pu_stats
            .iter()
            .map(|s| s.num_iterations())
            .max()
            .unwrap_or(0)
    }
}

/// The MeNDA system: `channels × ranks_per_channel` PUs.
///
/// # Example
///
/// ```
/// use menda_core::{MendaConfig, MendaSystem};
/// use menda_sparse::gen;
///
/// let m = gen::uniform(128, 1024, 7);
/// let mut sys = MendaSystem::new(MendaConfig::small_test());
/// let r = sys.transpose(&m);
/// assert_eq!(r.output, m.to_csc());
/// ```
#[derive(Debug)]
pub struct MendaSystem {
    config: MendaConfig,
}

impl MendaSystem {
    /// Creates a system from `config`.
    pub fn new(config: MendaConfig) -> Self {
        config.pu.validate();
        Self { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MendaConfig {
        &self.config
    }

    /// Transposes `matrix`: partitions rows by NNZ across the PUs (§3.5),
    /// runs each PU's multi-iteration merge (§3.1) on its own rank via the
    /// execution engine, and assembles the global CSC output.
    pub fn transpose(&mut self, matrix: &CsrMatrix) -> TransposeResult {
        self.transpose_on(matrix, MendaBackend)
    }

    /// Like [`MendaSystem::transpose`] but simulating `backend` beside
    /// each rank in place of the MeNDA PU. Transposition keys are unique,
    /// so the assembled output is bit-identical across backends; only the
    /// timing and traffic statistics differ.
    pub fn transpose_on<B: AcceleratorBackend>(
        &mut self,
        matrix: &CsrMatrix,
        backend: B,
    ) -> TransposeResult {
        let spec = TransposeSpec {
            matrix,
            partition: RowPartition::by_nnz(matrix, self.config.num_pus()),
        };
        Engine::with_backend(&self.config, backend).run(&spec)
    }

    /// Runtime-selected backend variant of [`MendaSystem::transpose`],
    /// for drivers that pick the accelerator from a flag.
    pub fn transpose_with(&mut self, matrix: &CsrMatrix, kind: BackendKind) -> TransposeResult {
        match kind {
            BackendKind::Menda => self.transpose_on(matrix, MendaBackend),
            BackendKind::Pim => self.transpose_on(matrix, crate::pim::PimBackend),
        }
    }

    /// Checkpoint-capable variant of [`MendaSystem::transpose`]: runs
    /// until every PU finishes or reaches device cycle `pause_at`,
    /// capturing a restorable snapshot in the latter case (see
    /// [`crate::checkpoint`]).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TracingActive`] when instrumentation is enabled.
    pub fn transpose_to_cycle(
        &mut self,
        matrix: &CsrMatrix,
        pause_at: u64,
    ) -> Result<SnapshotOutcome<TransposeResult>, SnapshotError> {
        self.transpose_to_cycle_on(matrix, MendaBackend, pause_at)
    }

    /// Restores a snapshot from [`MendaSystem::transpose_to_cycle`] and
    /// runs the transposition to completion — bit-identical to the
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] describing why the snapshot does not match
    /// this system/matrix or cannot be decoded.
    pub fn resume_transpose(
        &mut self,
        matrix: &CsrMatrix,
        snapshot: &[u8],
    ) -> Result<TransposeResult, SnapshotError> {
        self.resume_transpose_on(matrix, MendaBackend, snapshot)
    }

    /// [`MendaSystem::transpose_to_cycle`] on an arbitrary resumable
    /// backend.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`MendaSystem::transpose_to_cycle`].
    pub fn transpose_to_cycle_on<B: ResumableBackend>(
        &mut self,
        matrix: &CsrMatrix,
        backend: B,
        pause_at: u64,
    ) -> Result<SnapshotOutcome<TransposeResult>, SnapshotError> {
        let spec = self.spec(matrix);
        Engine::with_backend(&self.config, backend).run_to_cycle(&spec, pause_at)
    }

    /// [`MendaSystem::resume_transpose`] on an arbitrary resumable
    /// backend.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`MendaSystem::resume_transpose`].
    pub fn resume_transpose_on<B: ResumableBackend>(
        &mut self,
        matrix: &CsrMatrix,
        backend: B,
        snapshot: &[u8],
    ) -> Result<TransposeResult, SnapshotError> {
        let spec = self.spec(matrix);
        Engine::with_backend(&self.config, backend).resume(&spec, snapshot)
    }

    /// Restores a snapshot and runs until completion or device cycle
    /// `pause_at`, whichever comes first — the chaining primitive for
    /// building ever-deeper snapshots of the same run.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`MendaSystem::resume_transpose`].
    pub fn resume_transpose_to_cycle(
        &mut self,
        matrix: &CsrMatrix,
        snapshot: &[u8],
        pause_at: u64,
    ) -> Result<SnapshotOutcome<TransposeResult>, SnapshotError> {
        self.resume_transpose_to_cycle_on(matrix, MendaBackend, snapshot, pause_at)
    }

    /// [`MendaSystem::resume_transpose_to_cycle`] on an arbitrary
    /// resumable backend.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`MendaSystem::resume_transpose`].
    pub fn resume_transpose_to_cycle_on<B: ResumableBackend>(
        &mut self,
        matrix: &CsrMatrix,
        backend: B,
        snapshot: &[u8],
        pause_at: u64,
    ) -> Result<SnapshotOutcome<TransposeResult>, SnapshotError> {
        let spec = self.spec(matrix);
        Engine::with_backend(&self.config, backend).resume_to_cycle(&spec, snapshot, pause_at)
    }

    fn spec<'m>(&self, matrix: &'m CsrMatrix) -> TransposeSpec<'m> {
        TransposeSpec {
            matrix,
            partition: RowPartition::by_nnz(matrix, self.config.num_pus()),
        }
    }
}

/// Transposition as an engine kernel: one gated CSR-row merge job per
/// partition, assembled into a global CSC matrix.
///
/// Public so drivers can run transposition through the checkpointing
/// engine entry points ([`crate::checkpoint`]), which need the
/// [`KernelSpec`] rather than the [`MendaSystem`] convenience wrapper.
#[derive(Debug)]
pub struct TransposeSpec<'m> {
    matrix: &'m CsrMatrix,
    partition: RowPartition,
}

impl<'m> TransposeSpec<'m> {
    /// Creates the kernel spec for transposing `matrix` under `partition`.
    ///
    /// Use [`RowPartition::by_nnz`] with [`MendaConfig::num_pus`] parts to
    /// match what [`MendaSystem::transpose`] runs.
    pub fn new(matrix: &'m CsrMatrix, partition: RowPartition) -> Self {
        Self { matrix, partition }
    }
}

impl KernelSpec for TransposeSpec<'_> {
    type Output = TransposeResult;

    fn make_job(&self, p: usize) -> PuJob {
        let part = self.partition.extract(self.matrix, p);
        let offset = self.partition.range(p).start;
        job::transpose_job(part, offset)
    }

    fn assemble(&self, results: Vec<PuResult>, run: RunStats) -> TransposeResult {
        let output = assemble_csc(self.matrix.nrows(), self.matrix.ncols(), &results);
        TransposeResult {
            output,
            cycles: run.cycles,
            seconds: run.seconds,
            nnz_per_sec: run.throughput(self.matrix.nnz() as u64),
            pu_stats: run.pu_stats,
            partition: self.partition.clone(),
            trace: run.trace,
        }
    }
}

/// Assembles per-PU partition outputs (each sorted by column then global
/// row) into one global CSC matrix.
fn assemble_csc(nrows: usize, ncols: usize, results: &[PuResult]) -> CscMatrix {
    let nnz: usize = results.iter().map(|r| r.values.len()).sum();
    let mut col_ptr = vec![0usize; ncols + 1];
    for r in results {
        for &c in &r.majors {
            col_ptr[c as usize + 1] += 1;
        }
    }
    for c in 0..ncols {
        col_ptr[c + 1] += col_ptr[c];
    }
    let mut cursor = col_ptr.clone();
    let mut row_idx = vec![0u32; nnz];
    let mut values = vec![0.0f32; nnz];
    // Partitions are ascending row ranges, so visiting PUs in order writes
    // each column's rows in ascending order.
    for r in results {
        for ((&c, &row), &v) in r.majors.iter().zip(&r.minors).zip(&r.values) {
            let dst = cursor[c as usize];
            row_idx[dst] = row;
            values[dst] = v;
            cursor[c as usize] += 1;
        }
    }
    CscMatrix::from_parts_unchecked(nrows, ncols, col_ptr, row_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use menda_sparse::gen;

    #[test]
    fn system_transpose_matches_golden_uniform() {
        let m = gen::uniform(128, 1024, 21);
        let mut sys = MendaSystem::new(MendaConfig::small_test());
        let r = sys.transpose(&m);
        assert_eq!(r.output, m.to_csc());
        assert!(r.cycles > 0);
        assert!(r.nnz_per_sec > 0.0);
    }

    #[test]
    fn system_transpose_matches_golden_power_law() {
        let m = gen::rmat(256, 2048, gen::RmatParams::PAPER, 22);
        let mut sys = MendaSystem::new(MendaConfig::small_test());
        let r = sys.transpose(&m);
        assert_eq!(r.output, m.to_csc());
    }

    #[test]
    fn more_pus_reduce_cycles() {
        let m = gen::uniform(256, 4096, 23);
        let run = |pus: usize| {
            let cfg = MendaConfig::small_test()
                .with_channels(1)
                .with_ranks_per_channel(pus);
            MendaSystem::new(cfg).transpose(&m).cycles
        };
        let one = run(1);
        let four = run(4);
        assert!(
            (four as f64) < 0.55 * one as f64,
            "4 PUs {four} cycles vs 1 PU {one}"
        );
    }

    #[test]
    fn rectangular_matrix_transposes() {
        let m = gen::uniform(64, 512, 24);
        // Make it rectangular by extracting a partition.
        let part = RowPartition::by_nnz(&m, 2).extract(&m, 0);
        assert!(part.nrows() < 64);
        let mut sys = MendaSystem::new(MendaConfig::small_test());
        let r = sys.transpose(&part);
        assert_eq!(r.output, part.to_csc());
    }

    #[test]
    fn empty_matrix_is_trivial() {
        let m = CsrMatrix::zeros(32, 32);
        let mut sys = MendaSystem::new(MendaConfig::small_test());
        let r = sys.transpose(&m);
        assert_eq!(r.output.nnz(), 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn traffic_and_bandwidth_reported() {
        let m = gen::uniform(128, 2048, 25);
        let mut sys = MendaSystem::new(MendaConfig::small_test());
        let r = sys.transpose(&m);
        // At least the NZ payload must cross memory twice (read + write).
        assert!(r.total_traffic_bytes() as usize > 2048 * 8);
        assert!(r.aggregate_bandwidth_gbs() > 0.0);
        assert!(r.max_iterations() >= 1);
    }
}
