//! Differential tests for the event-driven fast-forward core (ISSUE 5).
//!
//! `SimOptions::fast_forward` must be a pure wall-clock optimisation: a
//! fast-forwarded run has to be *bit-identical* to the per-cycle reference
//! in everything the simulator reports — transposed output, PU cycle
//! counts, per-PU statistics (which embed the DRAM command/row-hit
//! counters), simulated seconds, and the full instrumentation report
//! (histogram buckets, counter series, sample cycles). The live DDR4
//! protocol checker is forced on for every run here, so each fast path is
//! also re-validated against the JEDEC timing rules while it is compared
//! against the reference.

use menda_core::{
    spmv, transpose_job, AcceleratorBackend, MendaBackend, MendaConfig, MendaSystem, PimBackend,
    ResumableBackend, TraceConfig, TransposeResult,
};
use menda_dram::RowPolicy;
use menda_sparse::gen;
use menda_sparse::rng::StdRng;
use menda_sparse::CsrMatrix;

/// Runs `f` with the live protocol checker forced on (equivalent to
/// `MENDA_CHECK_PROTOCOL=1`), restoring environment-driven behaviour
/// afterwards even if `f` panics.
fn with_checker<R>(f: impl FnOnce() -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            menda_dram::set_check_protocol_default(None);
        }
    }
    menda_dram::set_check_protocol_default(Some(true));
    let _reset = Reset;
    f()
}

fn matrices() -> Vec<(&'static str, CsrMatrix)> {
    let mut rng = StdRng::seed_from_u64(0xFF5);
    vec![
        (
            "N1/1024",
            gen::table3_spec("N1")
                .unwrap()
                .generate_scaled(1024, rng.next_u64()),
        ),
        (
            "P1/1024",
            gen::table3_spec("P1")
                .unwrap()
                .generate_scaled(1024, rng.next_u64()),
        ),
        ("banded", gen::banded(192, 1536, 12, 0.15, rng.next_u64())),
    ]
}

fn config(pus: usize, threads: usize, policy: RowPolicy, fast: bool) -> MendaConfig {
    let mut cfg = MendaConfig::small_test()
        .with_channels(1)
        .with_ranks_per_channel(pus)
        .with_threads(threads)
        .with_trace(TraceConfig::counting())
        .with_fast_forward(fast);
    cfg.dram.row_policy = policy;
    cfg
}

/// Asserts two transposition results are bit-identical, trace report
/// included.
fn assert_identical(reference: &TransposeResult, fast: &TransposeResult, what: &str) {
    assert_eq!(reference.output, fast.output, "{what}: outputs differ");
    assert_eq!(reference.cycles, fast.cycles, "{what}: cycles differ");
    assert_eq!(
        reference.pu_stats, fast.pu_stats,
        "{what}: per-PU stats differ"
    );
    assert_eq!(reference.seconds, fast.seconds, "{what}: seconds differ");
    assert_eq!(
        reference.partition, fast.partition,
        "{what}: partitions differ"
    );
    assert_eq!(reference.trace, fast.trace, "{what}: trace reports differ");
}

/// The headline differential: transposition under fast-forward is
/// bit-identical to the per-cycle reference for uniform (N1), power-law
/// (P1) and banded matrices, under both row policies, at 1/2/4 PUs and
/// 1/4 host threads, with the protocol checker live on both paths.
#[test]
fn fast_forward_transpose_is_bit_identical_to_reference() {
    with_checker(|| {
        for (name, m) in matrices() {
            for policy in [RowPolicy::OpenPage, RowPolicy::ClosedPage] {
                for pus in [1usize, 2, 4] {
                    for threads in [1usize, 4] {
                        let what = format!("{name} {policy:?} pus={pus} threads={threads}");
                        let reference =
                            MendaSystem::new(config(pus, threads, policy, false)).transpose(&m);
                        let fast =
                            MendaSystem::new(config(pus, threads, policy, true)).transpose(&m);
                        assert_eq!(reference.output, m.to_csc(), "{what}: wrong transpose");
                        assert_identical(&reference, &fast, &what);
                    }
                }
            }
        }
    });
}

/// SpMV exercises the FinalCsc-less dataflow (vector gather + merge): the
/// fast path must reproduce the reference bit for bit there too.
#[test]
fn fast_forward_spmv_is_bit_identical_to_reference() {
    with_checker(|| {
        let mut rng = StdRng::seed_from_u64(0x5B4F);
        let m = gen::table3_spec("P1")
            .unwrap()
            .generate_scaled(2048, rng.next_u64());
        let x: Vec<f32> = (0..m.ncols())
            .map(|_| rng.random_range(0..17) as f32 - 8.0)
            .collect();
        for policy in [RowPolicy::OpenPage, RowPolicy::ClosedPage] {
            for pus in [1usize, 2] {
                let what = format!("spmv {policy:?} pus={pus}");
                let reference = spmv::run(&config(pus, 2, policy, false), &m, &x);
                let fast = spmv::run(&config(pus, 2, policy, true), &m, &x);
                assert_eq!(reference, fast, "{what}: SpMV results differ");
            }
        }
    });
}

/// Scale-8 differential on the full paper configuration (1024-leaf
/// trees, 8 PUs, DDR4-2400): much deeper queues and far longer runs than
/// the `small_test` cases above, so the event-driven scheduling,
/// prefetch parking and DRAM fast-forward are exercised at realistic
/// occupancy. Ignored by default (release-only runtime, ~minutes with
/// the checker live); the CI `bench-scale` job runs it with
/// `--ignored`, equivalent to `MENDA_CHECK_PROTOCOL=1`.
#[test]
#[ignore = "release-scale differential; run by the CI bench-scale job"]
fn fast_forward_scale8_paper_config_is_bit_identical() {
    with_checker(|| {
        let mut rng = StdRng::seed_from_u64(0x5CA1E8);
        for name in ["N1", "P1"] {
            let m = gen::table3_spec(name)
                .unwrap()
                .generate_scaled(8, rng.next_u64());
            let paper = |fast: bool| MendaConfig::paper().with_threads(1).with_fast_forward(fast);
            let what = format!("{name}/8 paper config");
            let reference = MendaSystem::new(paper(false)).transpose(&m);
            let fast = MendaSystem::new(paper(true)).transpose(&m);
            assert_eq!(reference.output, m.to_csc(), "{what}: wrong transpose");
            assert_identical(&reference, &fast, &what);

            let x: Vec<f32> = (0..m.ncols())
                .map(|_| rng.random_range(0..17) as f32 - 8.0)
                .collect();
            let reference = spmv::run(&paper(false), &m, &x);
            let fast = spmv::run(&paper(true), &m, &x);
            assert_eq!(reference, fast, "{what}: SpMV results differ");
        }
    });
}

/// The threads × epoch differential matrix (ISSUE 10): every
/// combination of host worker threads (serial and pipelined multi-core),
/// epoch batching (coarse-grained drains vs per-cycle fast-forward
/// stepping) and execution path (fast-forward vs per-cycle reference)
/// must reproduce one golden serial reference run bit for bit — output,
/// cycles, per-PU stats (which embed the DRAM counters), simulated
/// seconds and the full trace report. `epoch` only has machinery on the
/// fast path; running it against the reference path too proves it is
/// inert there rather than assuming so.
#[test]
fn threads_epoch_matrix_is_bit_identical() {
    with_checker(|| {
        for (name, m) in matrices() {
            let golden = MendaSystem::new(config(2, 1, RowPolicy::OpenPage, false)).transpose(&m);
            assert_eq!(golden.output, m.to_csc(), "{name}: wrong transpose");
            for threads in [1usize, 2, 4] {
                for epoch in [true, false] {
                    for fast in [true, false] {
                        let what = format!("{name} threads={threads} epoch={epoch} fast={fast}");
                        let cfg = config(2, threads, RowPolicy::OpenPage, fast).with_epoch(epoch);
                        let r = MendaSystem::new(cfg).transpose(&m);
                        assert_identical(&golden, &r, &what);
                    }
                }
            }
        }
    });
}

/// The DRAM command log — every ACT/PRE/RD/WR/REF with its issue cycle
/// and full coordinates — is identical entry for entry across the
/// per-cycle reference, per-cycle fast-forward (`epoch` off) and
/// epoch-batched fast-forward paths, on both accelerator backends.
/// Driven at the unit level through the public backend seam (the engine
/// does not expose per-rank logs), so this pins the *order and timing*
/// of every command the scheduler emitted, not just the counters the
/// engine-level differentials compare.
#[test]
fn dram_command_logs_identical_across_epoch_and_fast_forward() {
    with_checker(|| {
        let m = gen::rmat(80, 640, gen::RmatParams::PAPER, 61);
        let build_cfg = |fast: bool, epoch: bool| {
            let mut cfg = MendaConfig::small_test()
                .with_channels(1)
                .with_ranks_per_channel(1)
                .with_fast_forward(fast)
                .with_epoch(epoch);
            cfg.dram.log_commands = true;
            cfg.dram.refresh_enabled = true;
            cfg
        };
        // Duck-typed over the two concrete backends: `dram_command_log`
        // lives on the unit types, not on a trait.
        macro_rules! check_backend {
            ($backend:expr, $label:expr) => {{
                let backend = $backend;
                let run_logged = |cfg: &MendaConfig| {
                    let mut unit = backend.build_unit(cfg);
                    let mut run = backend.start_job(&unit, transpose_job(m.clone(), 0));
                    assert!(backend.advance(&mut unit, &mut run, None));
                    let result = backend.finish_run(&unit, run);
                    let log = unit.dram_command_log().to_vec();
                    (result, log)
                };
                let (golden_result, golden_log) = run_logged(&build_cfg(false, true));
                assert!(!golden_log.is_empty(), "{}: empty command log", $label);
                for (fast, epoch) in [(false, false), (true, true), (true, false)] {
                    let what = format!("{} fast={fast} epoch={epoch}", $label);
                    let (result, log) = run_logged(&build_cfg(fast, epoch));
                    assert_eq!(result, golden_result, "{what}: job result diverged");
                    assert_eq!(log, golden_log, "{what}: DRAM command log diverged");
                }
            }};
        }
        check_backend!(MendaBackend, "menda");
        check_backend!(PimBackend, "pim");
    });
}

/// Host-interference traffic injects extra DRAM requests on a fixed PU
/// cycle cadence; the fast path must never skip over an injection cycle.
#[test]
fn fast_forward_preserves_host_interference_cadence() {
    with_checker(|| {
        let m = gen::uniform(128, 1024, 0x1F);
        let interfering = |interval: u64, fast: bool| {
            let mut cfg = config(2, 1, RowPolicy::OpenPage, fast);
            cfg.pu = cfg.pu.with_host_interference(interval);
            cfg
        };
        for interval in [50u64, 97] {
            let reference = MendaSystem::new(interfering(interval, false)).transpose(&m);
            let fast = MendaSystem::new(interfering(interval, true)).transpose(&m);
            assert_eq!(reference.output, m.to_csc(), "interference {interval}");
            assert_identical(&reference, &fast, &format!("interference {interval}"));
        }
    });
}

/// Degenerate inputs hit the quiescence predicate's edge cases (empty
/// worklists, instant drains); they must not deadlock or diverge.
#[test]
fn fast_forward_handles_degenerate_matrices() {
    with_checker(|| {
        let from_entries = |n: usize, entries: Vec<(usize, usize, f32)>| {
            CsrMatrix::try_from(menda_sparse::CooMatrix::from_entries(n, n, entries).unwrap())
                .unwrap()
        };
        let cases = [
            ("empty", from_entries(4, vec![])),
            ("single", from_entries(4, vec![(2, 1, 3.0)])),
            (
                "one-row",
                from_entries(8, (0..8).map(|c| (0, c, c as f32)).collect()),
            ),
        ];
        for (name, m) in cases {
            for pus in [1usize, 2] {
                let reference =
                    MendaSystem::new(config(pus, 1, RowPolicy::OpenPage, false)).transpose(&m);
                let fast =
                    MendaSystem::new(config(pus, 1, RowPolicy::OpenPage, true)).transpose(&m);
                assert_eq!(reference.output, m.to_csc(), "{name} pus={pus}");
                assert_identical(&reference, &fast, &format!("{name} pus={pus}"));
            }
        }
    });
}
