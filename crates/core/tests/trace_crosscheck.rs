//! Cross-checks between the instrumentation layer and the existing
//! statistics: every counter the trace layer reports must equal the
//! corresponding [`menda_core::RunStats`] / DRAM aggregate on the Fig. 3
//! smoke workloads (Table 3's N1/P1 at small scale), with the live DRAM
//! protocol checker enabled alongside — the `MENDA_CHECK_PROTOCOL=1` CI
//! path must coexist with tracing on the same run.

use menda_core::{MendaConfig, MendaSystem, TraceConfig, TransposeResult};
use menda_sparse::gen;
use menda_sparse::CsrMatrix;

fn traced_config() -> MendaConfig {
    let mut cfg =
        MendaConfig::small_test().with_trace(TraceConfig::counting().with_sample_interval(1));
    // Tie-in with the MENDA_CHECK_PROTOCOL=1 path: the shadow protocol
    // checker re-derives every JEDEC constraint live while the trace
    // hooks observe the same command stream.
    cfg.dram.check_protocol = true;
    cfg
}

fn workloads() -> Vec<(&'static str, CsrMatrix)> {
    let spec = |name: &str| gen::table3_spec(name).expect("table 3 name");
    vec![
        ("N1/512", spec("N1").generate_scaled(512, 11)),
        ("P1/512", spec("P1").generate_scaled(512, 11)),
    ]
}

fn run(m: &CsrMatrix) -> TransposeResult {
    MendaSystem::new(traced_config()).transpose(m)
}

#[test]
fn dram_row_outcome_counters_match_dram_stats() {
    for (name, m) in workloads() {
        let r = run(&m);
        let rep = r.trace.as_ref().expect("traced run produces a report");
        let sum = |f: fn(&menda_dram::DramStats) -> u64| -> u64 {
            r.pu_stats.iter().map(|s| f(&s.dram)).sum()
        };
        assert_eq!(rep.counter("dram.row_hits"), sum(|d| d.row_hits), "{name}");
        assert_eq!(
            rep.counter("dram.row_misses"),
            sum(|d| d.row_misses),
            "{name}"
        );
        assert_eq!(
            rep.counter("dram.row_conflicts"),
            sum(|d| d.row_conflicts),
            "{name}"
        );
        assert_eq!(rep.counter("dram.cycles"), sum(|d| d.cycles), "{name}");
        assert_eq!(
            rep.counter("dram.refreshes"),
            sum(|d| d.refreshes),
            "{name}"
        );
    }
}

#[test]
fn per_bank_counters_roll_up_to_totals() {
    for (name, m) in workloads() {
        let r = run(&m);
        let rep = r.trace.as_ref().expect("report");
        for outcome in ["row_hits", "row_misses", "row_conflicts"] {
            let per_bank: u64 = rep
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with("dram.bank") && k.ends_with(&format!(".{outcome}")))
                .map(|(_, v)| v)
                .sum();
            assert_eq!(
                per_bank,
                rep.counter(&format!("dram.{outcome}")),
                "{name}: per-bank {outcome} do not roll up"
            );
        }
    }
}

#[test]
fn pu_counters_match_iteration_stats() {
    for (name, m) in workloads() {
        let r = run(&m);
        let rep = r.trace.as_ref().expect("report");
        let total_cycles: u64 = r.pu_stats.iter().map(|s| s.total_cycles()).sum();
        let sum_it = |f: fn(&menda_core::IterationStats) -> u64| -> u64 {
            r.pu_stats
                .iter()
                .flat_map(|s| s.iterations.iter())
                .map(f)
                .sum()
        };
        assert_eq!(rep.counter("pu.cycles"), total_cycles, "{name}");
        assert_eq!(
            rep.counter("pu.nz_emitted"),
            sum_it(|i| i.nz_emitted),
            "{name}"
        );
        assert_eq!(
            rep.counter("pu.loads_issued"),
            sum_it(|i| i.loads_issued),
            "{name}"
        );
        assert_eq!(
            rep.counter("pu.stores_issued"),
            sum_it(|i| i.stores_issued),
            "{name}"
        );
        assert_eq!(
            rep.counter("pu.queue_coalesced"),
            r.pu_stats.iter().map(|s| s.total_coalesced()).sum::<u64>(),
            "{name}"
        );
        let iterations: u64 = r.pu_stats.iter().map(|s| s.num_iterations() as u64).sum();
        assert_eq!(rep.counter("pu.iterations"), iterations, "{name}");
    }
}

#[test]
fn merge_tree_occupancy_histogram_is_sampled_every_cycle_and_bounded() {
    for (name, m) in workloads() {
        let r = run(&m);
        let rep = r.trace.as_ref().expect("report");
        let total_cycles: u64 = r.pu_stats.iter().map(|s| s.total_cycles()).sum();
        let fill = rep.histogram("pu.tree_fill").expect("tree_fill histogram");
        // Sample interval 1: exactly one sample per simulated PU cycle
        // across all PUs.
        assert_eq!(fill.count(), total_cycles, "{name}");
        // Fill level can never exceed the structural FIFO capacity of the
        // small-test tree: (leaves - 1) PEs x 2 FIFOs x 2 entries.
        let cfg = traced_config();
        let cap = ((cfg.pu.leaves - 1) * 2 * cfg.pu.fifo_entries) as u64;
        assert!(
            fill.max() <= cap,
            "{name}: fill {} exceeds capacity {cap}",
            fill.max()
        );
        assert!(fill.mean() > 0.0, "{name}: tree never held a packet");
        // The DRAM-side queue histogram is sampled once per bus cycle.
        let dram_q = rep.histogram("dram.read_queue").expect("read_queue");
        assert_eq!(dram_q.count(), rep.counter("dram.cycles"), "{name}");
    }
}

#[test]
fn coalesce_width_histogram_accounts_for_coalesced_loads() {
    for (name, m) in workloads() {
        let r = run(&m);
        let rep = r.trace.as_ref().expect("report");
        let width = rep.histogram("pu.coalesce_width").expect("coalesce_width");
        // Each completed block served `w` waiters; `w - 1` of them were
        // coalesced enqueues. Transposition issues no vector-stream reads,
        // so the identity is exact.
        let coalesced: u64 = r.pu_stats.iter().map(|s| s.total_coalesced()).sum();
        assert_eq!(
            width.sum() - width.count(),
            coalesced,
            "{name}: coalesce width histogram disagrees with RunStats"
        );
    }
}
