//! Absolute cycle-fingerprint regression tests for the merge-tree
//! activation policy (ISSUE 9, closing a seam noted in the ROADMAP).
//!
//! The ref/ff differential suites prove the two execution paths agree
//! with *each other*, but both share the per-cycle `tick()` machinery —
//! a change to the activation calculus (which buffers wake, when parked
//! plans retry, how chunk completions re-arm the worklist) shifts both
//! paths identically and sails straight through every differential. The
//! only guard against silent activation drift is pinning *absolute*
//! cycle counts on known inputs.
//!
//! The pinned values are the four scale-4 fingerprints that were held
//! invariant through every hot-path rewrite of the BENCH_7 overhaul
//! (see CHANGES.md): Table 3's N1 and P1, transpose and SpMV, under the
//! paper configuration. A deliberate timing-model change is allowed to
//! move them — update the constants in the same commit and say why. An
//! "optimisation" that moves them is a bug.
//!
//! The scale-4 tier is `#[ignore]`d (minutes of simulated work; CI runs
//! it in release). The scale-64/32 tiers pin the same seeds at reduced
//! size and run on every `cargo test`.
//!
//! ISSUE 10 extends the ladder: scale-8 fingerprints for both
//! accelerator backends (MeNDA merge-tree PU and the SparseP-style PIM
//! model), PIM fingerprints at the everyday tiers, and an invariance
//! test proving every pinned count holds across epoch batching on/off
//! and host thread counts 1/2/4 — the coarse-grained epoch calculus and
//! the pipelined multi-core mode are wall-clock modes only.

use menda_core::{spmv, BackendKind, MendaConfig, MendaSystem};
use menda_sparse::gen;
use menda_sparse::rng::StdRng;
use menda_sparse::CsrMatrix;

/// The paper configuration pinned to one host thread — the exact
/// configuration the fingerprints were recorded under (`repro bench`'s
/// `cfg`). Thread count cannot move cycle counts (the engine is proven
/// thread-invariant), but pinning it keeps the recipe exact.
fn cfg(fast: bool) -> MendaConfig {
    MendaConfig::paper().with_threads(1).with_fast_forward(fast)
}

/// The two pinned matrix seeds: the first two draws of `repro bench`'s
/// seed chain (`StdRng::seed_from_u64(0xBE5C)`), assigned N1 then P1.
fn seeds() -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(0xBE5C);
    (rng.next_u64(), rng.next_u64())
}

/// Deterministic SpMV input vector (`repro bench`'s `x_vector`). Values
/// cannot move cycle counts — timing depends only on structure — but
/// the pinned recipe is reproduced exactly.
fn x_vector(m: &CsrMatrix, seed: u64) -> Vec<f32> {
    (0..m.ncols())
        .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 17) as f32 * 0.25 - 2.0)
        .collect()
}

fn transpose_cycles(m: &CsrMatrix, fast: bool) -> u64 {
    let r = MendaSystem::new(cfg(fast)).transpose(m);
    assert_eq!(r.output, m.to_csc(), "transpose output wrong");
    r.cycles
}

fn spmv_cycles(m: &CsrMatrix, seed: u64, fast: bool) -> u64 {
    let x = x_vector(m, seed);
    spmv::run(&cfg(fast), m, &x).cycles
}

fn pim_transpose_cycles(m: &CsrMatrix, fast: bool) -> u64 {
    let r = MendaSystem::new(cfg(fast)).transpose_with(m, BackendKind::Pim);
    assert_eq!(r.output, m.to_csc(), "PIM transpose output wrong");
    r.cycles
}

fn pim_spmv_cycles(m: &CsrMatrix, seed: u64, fast: bool) -> u64 {
    let x = x_vector(m, seed);
    spmv::run_with_backend(&cfg(fast), m, &x, Default::default(), BackendKind::Pim).cycles
}

/// One matrix at one scale against its four pinned cycle counts
/// (transpose/SpMV × fast-forward/reference).
fn check(
    name: &str,
    scale: usize,
    seed: u64,
    want_transpose: u64,
    want_spmv: u64,
    both_paths: bool,
) {
    let m = gen::table3_spec(name)
        .expect("table 3 name")
        .generate_scaled(scale, seed);
    assert_eq!(
        transpose_cycles(&m, true),
        want_transpose,
        "{name}/{scale}: transpose fingerprint moved — activation-policy drift?"
    );
    assert_eq!(
        spmv_cycles(&m, seed, true),
        want_spmv,
        "{name}/{scale}: SpMV fingerprint moved — activation-policy drift?"
    );
    if both_paths {
        assert_eq!(
            transpose_cycles(&m, false),
            want_transpose,
            "{name}/{scale}: reference-path transpose fingerprint moved"
        );
        assert_eq!(
            spmv_cycles(&m, seed, false),
            want_spmv,
            "{name}/{scale}: reference-path SpMV fingerprint moved"
        );
    }
}

/// One matrix at one scale against its PIM-backend pinned cycle counts.
/// The SparseP-style PIM model has its own activation machinery (DPU
/// work queues, rank-level scheduling), so it gets its own absolute
/// fingerprints rather than inheriting the merge-tree PU's.
fn check_pim(
    name: &str,
    scale: usize,
    seed: u64,
    want_transpose: u64,
    want_spmv: u64,
    both_paths: bool,
) {
    let m = gen::table3_spec(name)
        .expect("table 3 name")
        .generate_scaled(scale, seed);
    assert_eq!(
        pim_transpose_cycles(&m, true),
        want_transpose,
        "{name}/{scale}: PIM transpose fingerprint moved"
    );
    assert_eq!(
        pim_spmv_cycles(&m, seed, true),
        want_spmv,
        "{name}/{scale}: PIM SpMV fingerprint moved"
    );
    if both_paths {
        assert_eq!(
            pim_transpose_cycles(&m, false),
            want_transpose,
            "{name}/{scale}: reference-path PIM transpose fingerprint moved"
        );
        assert_eq!(
            pim_spmv_cycles(&m, seed, false),
            want_spmv,
            "{name}/{scale}: reference-path PIM SpMV fingerprint moved"
        );
    }
}

#[test]
fn scale64_fingerprints_hold() {
    let (n1, p1) = seeds();
    check("N1", 64, n1, 10141, 12149, true);
    check("P1", 64, p1, 26824, 14071, true);
}

#[test]
fn scale32_fingerprints_hold() {
    let (n1, p1) = seeds();
    check("N1", 32, n1, 54587, 30745, true);
    check("P1", 32, p1, 56805, 29669, true);
}

#[test]
fn pim_scale64_fingerprints_hold() {
    let (n1, p1) = seeds();
    check_pim("N1", 64, n1, 22813, 26791, true);
    check_pim("P1", 64, p1, 35804, 24988, true);
}

#[test]
fn pim_scale32_fingerprints_hold() {
    let (n1, p1) = seeds();
    check_pim("N1", 32, n1, 45379, 52879, true);
    check_pim("P1", 32, p1, 62080, 49211, true);
}

/// Epoch batching and pipelined multi-core ticking are pure wall-clock
/// modes: every pinned fingerprint must hold at every (threads, epoch)
/// combination, on the fast-forward path where both knobs live. A moved
/// count here means the epoch credit bound or the worker pipeline
/// changed *observable* simulation state, not just its schedule.
#[test]
fn fingerprints_invariant_across_epoch_and_threads() {
    let (n1, p1) = seeds();
    for (name, seed, want_t, want_s) in [("N1", n1, 10141u64, 12149u64), ("P1", p1, 26824, 14071)] {
        let m = gen::table3_spec(name)
            .expect("table 3 name")
            .generate_scaled(64, seed);
        let x = x_vector(&m, seed);
        for threads in [1usize, 2, 4] {
            for epoch in [true, false] {
                let what = format!("{name}/64 threads={threads} epoch={epoch}");
                let c = MendaConfig::paper()
                    .with_threads(threads)
                    .with_fast_forward(true)
                    .with_epoch(epoch);
                let r = MendaSystem::new(c.clone()).transpose(&m);
                assert_eq!(r.output, m.to_csc(), "{what}: transpose output wrong");
                assert_eq!(r.cycles, want_t, "{what}: transpose fingerprint moved");
                assert_eq!(
                    spmv::run(&c, &m, &x).cycles,
                    want_s,
                    "{what}: SpMV fingerprint moved"
                );
            }
        }
    }
}

/// The four PR 7 fingerprints. Run by the CI `checkpoint` job in
/// release: `cargo test -p menda-core --release --test
/// activation_fingerprints -- --ignored`.
#[test]
#[ignore = "minutes of simulated work; CI runs it in release"]
fn scale4_fingerprints_hold() {
    let (n1, p1) = seeds();
    check("N1", 4, n1, 357_065, 416_047, false);
    check("P1", 4, p1, 448_699, 325_685, false);
}

/// Scale-8 fingerprints for both backends (ISSUE 10), extending the
/// pinned ladder one octave finer than the everyday tiers. Run by the
/// CI `checkpoint` job in release (`--include-ignored`) alongside the
/// scale-4 tier.
#[test]
#[ignore = "release-scale runs; CI runs it in release"]
fn scale8_fingerprints_hold() {
    let (n1, p1) = seeds();
    check("N1", 8, n1, 186_666, 189_757, false);
    check("P1", 8, p1, 215_473, 145_585, false);
    check_pim("N1", 8, n1, 184_271, 214_103, false);
    check_pim("P1", 8, p1, 206_948, 194_740, false);
}
