//! Absolute cycle-fingerprint regression tests for the merge-tree
//! activation policy (ISSUE 9, closing a seam noted in the ROADMAP).
//!
//! The ref/ff differential suites prove the two execution paths agree
//! with *each other*, but both share the per-cycle `tick()` machinery —
//! a change to the activation calculus (which buffers wake, when parked
//! plans retry, how chunk completions re-arm the worklist) shifts both
//! paths identically and sails straight through every differential. The
//! only guard against silent activation drift is pinning *absolute*
//! cycle counts on known inputs.
//!
//! The pinned values are the four scale-4 fingerprints that were held
//! invariant through every hot-path rewrite of the BENCH_7 overhaul
//! (see CHANGES.md): Table 3's N1 and P1, transpose and SpMV, under the
//! paper configuration. A deliberate timing-model change is allowed to
//! move them — update the constants in the same commit and say why. An
//! "optimisation" that moves them is a bug.
//!
//! The scale-4 tier is `#[ignore]`d (minutes of simulated work; CI runs
//! it in release). The scale-64/32 tiers pin the same seeds at reduced
//! size and run on every `cargo test`.

use menda_core::{spmv, MendaConfig, MendaSystem};
use menda_sparse::gen;
use menda_sparse::rng::StdRng;
use menda_sparse::CsrMatrix;

/// The paper configuration pinned to one host thread — the exact
/// configuration the fingerprints were recorded under (`repro bench`'s
/// `cfg`). Thread count cannot move cycle counts (the engine is proven
/// thread-invariant), but pinning it keeps the recipe exact.
fn cfg(fast: bool) -> MendaConfig {
    MendaConfig::paper().with_threads(1).with_fast_forward(fast)
}

/// The two pinned matrix seeds: the first two draws of `repro bench`'s
/// seed chain (`StdRng::seed_from_u64(0xBE5C)`), assigned N1 then P1.
fn seeds() -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(0xBE5C);
    (rng.next_u64(), rng.next_u64())
}

/// Deterministic SpMV input vector (`repro bench`'s `x_vector`). Values
/// cannot move cycle counts — timing depends only on structure — but
/// the pinned recipe is reproduced exactly.
fn x_vector(m: &CsrMatrix, seed: u64) -> Vec<f32> {
    (0..m.ncols())
        .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 17) as f32 * 0.25 - 2.0)
        .collect()
}

fn transpose_cycles(m: &CsrMatrix, fast: bool) -> u64 {
    let r = MendaSystem::new(cfg(fast)).transpose(m);
    assert_eq!(r.output, m.to_csc(), "transpose output wrong");
    r.cycles
}

fn spmv_cycles(m: &CsrMatrix, seed: u64, fast: bool) -> u64 {
    let x = x_vector(m, seed);
    spmv::run(&cfg(fast), m, &x).cycles
}

/// One matrix at one scale against its four pinned cycle counts
/// (transpose/SpMV × fast-forward/reference).
fn check(
    name: &str,
    scale: usize,
    seed: u64,
    want_transpose: u64,
    want_spmv: u64,
    both_paths: bool,
) {
    let m = gen::table3_spec(name)
        .expect("table 3 name")
        .generate_scaled(scale, seed);
    assert_eq!(
        transpose_cycles(&m, true),
        want_transpose,
        "{name}/{scale}: transpose fingerprint moved — activation-policy drift?"
    );
    assert_eq!(
        spmv_cycles(&m, seed, true),
        want_spmv,
        "{name}/{scale}: SpMV fingerprint moved — activation-policy drift?"
    );
    if both_paths {
        assert_eq!(
            transpose_cycles(&m, false),
            want_transpose,
            "{name}/{scale}: reference-path transpose fingerprint moved"
        );
        assert_eq!(
            spmv_cycles(&m, seed, false),
            want_spmv,
            "{name}/{scale}: reference-path SpMV fingerprint moved"
        );
    }
}

#[test]
fn scale64_fingerprints_hold() {
    let (n1, p1) = seeds();
    check("N1", 64, n1, 10141, 12149, true);
    check("P1", 64, p1, 26824, 14071, true);
}

#[test]
fn scale32_fingerprints_hold() {
    let (n1, p1) = seeds();
    check("N1", 32, n1, 54587, 30745, true);
    check("P1", 32, p1, 56805, 29669, true);
}

/// The four PR 7 fingerprints. Run by the CI `checkpoint` job in
/// release: `cargo test -p menda-core --release --test
/// activation_fingerprints -- --ignored`.
#[test]
#[ignore = "minutes of simulated work; CI runs it in release"]
fn scale4_fingerprints_hold() {
    let (n1, p1) = seeds();
    check("N1", 4, n1, 357_065, 416_047, false);
    check("P1", 4, p1, 448_699, 325_685, false);
}
