//! Backend-parameterized equivalence suite (ISSUE 6).
//!
//! The engine-equivalence and fast-forward differential properties must
//! hold for *every* [`menda_core::AcceleratorBackend`], not just the
//! MeNDA PU: serial and threaded engine runs bit-identical, event-driven
//! fast-forward bit-identical to the per-cycle reference, and all kernels
//! correct against their golden references. The live DDR4 protocol
//! checker is forced on for the differential runs, so both backends'
//! fast paths are re-validated against the JEDEC timing rules while they
//! are compared. Transposition keys are unique, so its output must also
//! be bit-identical *across* backends; SpMV reduces floating-point sums
//! in backend-specific order and is compared to tolerance.

use menda_core::{
    spmv, BackendKind, Engine, KernelSpec, MendaConfig, MendaSystem, PimBackend, PuJob, PuResult,
    RunStats, TraceConfig,
};
use menda_sparse::gen;
use menda_sparse::rng::StdRng;
use menda_sparse::CsrMatrix;

/// Runs `f` with the live protocol checker forced on (equivalent to
/// `MENDA_CHECK_PROTOCOL=1`), restoring environment-driven behaviour
/// afterwards even if `f` panics.
fn with_checker<R>(f: impl FnOnce() -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            menda_dram::set_check_protocol_default(None);
        }
    }
    menda_dram::set_check_protocol_default(Some(true));
    let _reset = Reset;
    f()
}

fn matrices() -> Vec<(&'static str, CsrMatrix)> {
    let mut rng = StdRng::seed_from_u64(0xBAC6);
    vec![
        (
            "N1/1024",
            gen::table3_spec("N1")
                .unwrap()
                .generate_scaled(1024, rng.next_u64()),
        ),
        (
            "P1/1024",
            gen::table3_spec("P1")
                .unwrap()
                .generate_scaled(1024, rng.next_u64()),
        ),
        ("banded", gen::banded(128, 1024, 10, 0.2, rng.next_u64())),
    ]
}

fn config(pus: usize, threads: usize, fast: bool) -> MendaConfig {
    MendaConfig::small_test()
        .with_channels(1)
        .with_ranks_per_channel(pus)
        .with_threads(threads)
        .with_fast_forward(fast)
}

/// Serial and threaded engine runs are bit-identical for every backend —
/// the cross-backend determinism property: `execute_job` must be a pure
/// function of (config, job) regardless of which worker thread runs it.
#[test]
fn serial_vs_threaded_is_bit_identical_for_every_backend() {
    for (name, m) in matrices() {
        for kind in BackendKind::ALL {
            for pus in [2usize, 4] {
                let serial = MendaSystem::new(config(pus, 1, true)).transpose_with(&m, kind);
                for threads in [2usize, 8] {
                    let par = MendaSystem::new(config(pus, threads, true)).transpose_with(&m, kind);
                    let tag = format!("{name} {} pus {pus} threads {threads}", kind.label());
                    assert_eq!(par.output, serial.output, "{tag}");
                    assert_eq!(par.cycles, serial.cycles, "{tag}");
                    assert_eq!(par.pu_stats, serial.pu_stats, "{tag}");
                }
            }
        }
    }
}

/// The event-driven fast-forward path is bit-identical to the per-cycle
/// reference on every backend, under the live protocol checker.
#[test]
fn fast_forward_differential_holds_for_every_backend() {
    with_checker(|| {
        for (name, m) in matrices() {
            for kind in BackendKind::ALL {
                let ff = MendaSystem::new(config(4, 2, true)).transpose_with(&m, kind);
                let reference = MendaSystem::new(config(4, 2, false)).transpose_with(&m, kind);
                let tag = format!("{name} {}", kind.label());
                assert_eq!(ff.output, reference.output, "{tag}");
                assert_eq!(ff.cycles, reference.cycles, "{tag}");
                assert_eq!(ff.seconds, reference.seconds, "{tag}");
                assert_eq!(ff.pu_stats, reference.pu_stats, "{tag}");
            }
        }
    });
}

/// Scale-8 fast-forward differential on the paper configuration for
/// every backend. Ignored by default (release-only runtime); the CI
/// `bench-scale` job runs it with `--ignored` under the live protocol
/// checker (equivalent to `MENDA_CHECK_PROTOCOL=1`).
#[test]
#[ignore = "release-scale differential; run by the CI bench-scale job"]
fn fast_forward_scale8_differential_holds_for_every_backend() {
    with_checker(|| {
        let mut rng = StdRng::seed_from_u64(0xBAC68);
        for name in ["N4", "P4"] {
            let m = gen::table3_spec(name)
                .unwrap()
                .generate_scaled(8, rng.next_u64());
            let paper = |fast: bool| MendaConfig::paper().with_threads(1).with_fast_forward(fast);
            for kind in BackendKind::ALL {
                let ff = MendaSystem::new(paper(true)).transpose_with(&m, kind);
                let reference = MendaSystem::new(paper(false)).transpose_with(&m, kind);
                let tag = format!("{name}/8 {}", kind.label());
                assert_eq!(ff.output, m.to_csc(), "{tag}: wrong transpose");
                assert_eq!(ff.output, reference.output, "{tag}");
                assert_eq!(ff.cycles, reference.cycles, "{tag}");
                assert_eq!(ff.seconds, reference.seconds, "{tag}");
                assert_eq!(ff.pu_stats, reference.pu_stats, "{tag}");
            }
        }
    });
}

/// Transposition has unique (column, row) keys, so the assembled CSC is
/// bit-identical across backends — only timing and traffic may differ.
#[test]
fn transpose_output_is_bit_identical_across_backends() {
    for (name, m) in matrices() {
        let golden = m.to_csc();
        let menda = MendaSystem::new(config(4, 2, true)).transpose_with(&m, BackendKind::Menda);
        let pim = MendaSystem::new(config(4, 2, true)).transpose_with(&m, BackendKind::Pim);
        assert_eq!(menda.output, golden, "{name} menda vs golden");
        assert_eq!(pim.output, golden, "{name} pim vs golden");
        assert!(pim.cycles > 0 && menda.cycles > 0, "{name}");
    }
}

/// SpMV on either backend matches the dense reference to tolerance, and
/// each backend is internally deterministic across thread counts.
#[test]
fn spmv_matches_golden_on_every_backend() {
    let mut rng = StdRng::seed_from_u64(0x51D);
    let m = gen::rmat(128, 1024, gen::RmatParams::PAPER, rng.next_u64());
    let x: Vec<f32> = (0..m.ncols())
        .map(|_| rng.random_range(0..9) as f32 - 4.0)
        .collect();
    let golden = m.spmv(&x);
    for kind in BackendKind::ALL {
        let serial = spmv::run_with_backend(&config(4, 1, true), &m, &x, Default::default(), kind);
        for (i, (got, want)) in serial.y.iter().zip(&golden).enumerate() {
            assert!(
                (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                "{} row {i}: {got} vs {want}",
                kind.label()
            );
        }
        let par = spmv::run_with_backend(&config(4, 8, true), &m, &x, Default::default(), kind);
        assert_eq!(par.y, serial.y, "{} threaded", kind.label());
        assert_eq!(par.pu_stats, serial.pu_stats, "{} threaded", kind.label());
    }
}

/// The backend's name and device clock propagate into [`RunStats`]: a
/// PIM run reports `backend = "pim"` and seconds at the DPU frequency.
#[test]
fn run_stats_carry_the_backend_label_and_clock() {
    struct Raw {
        m: CsrMatrix,
    }
    impl KernelSpec for Raw {
        type Output = RunStats;
        fn make_job(&self, _p: usize) -> PuJob {
            menda_core::transpose_job(self.m.clone(), 0)
        }
        fn assemble(&self, _results: Vec<PuResult>, run: RunStats) -> RunStats {
            run
        }
    }
    let cfg = config(1, 1, true);
    let spec = Raw {
        m: gen::uniform(32, 256, 3),
    };
    let pim = Engine::with_backend(&cfg, PimBackend).run(&spec);
    assert_eq!(pim.backend, "pim");
    assert!(pim.cycles > 0);
    let expect = pim.cycles as f64 / (cfg.pim.frequency_mhz as f64 * 1e6);
    assert_eq!(pim.seconds, expect);
    let menda = Engine::new(&cfg).run(&spec);
    assert_eq!(menda.backend, "menda");
    assert_eq!(
        menda.seconds,
        menda.cycles as f64 / (cfg.pu.frequency_mhz as f64 * 1e6)
    );
}

/// Tracing is observational on every backend: a traced run's outputs and
/// statistics are identical to an untraced run's, and the report arrives
/// retagged per unit.
#[test]
fn tracing_is_observational_for_every_backend() {
    let m = gen::rmat(96, 768, gen::RmatParams::PAPER, 0xC0DE);
    for kind in BackendKind::ALL {
        let plain = MendaSystem::new(config(2, 1, true)).transpose_with(&m, kind);
        let traced_cfg = config(2, 1, true).with_trace(TraceConfig::counting());
        let traced = MendaSystem::new(traced_cfg).transpose_with(&m, kind);
        assert_eq!(plain.output, traced.output, "{}", kind.label());
        assert_eq!(plain.cycles, traced.cycles, "{}", kind.label());
        assert_eq!(plain.pu_stats, traced.pu_stats, "{}", kind.label());
        assert!(plain.trace.is_none());
        assert!(traced.trace.is_some(), "{}", kind.label());
    }
}
