//! §4's concurrent-host-access warning, quantified: a memory-intensive
//! co-runner on the PU's rank slows transposition monotonically but never
//! changes its result.

use menda_core::{MendaConfig, MendaSystem};
use menda_sparse::gen;

#[test]
fn host_interference_slows_but_preserves_results() {
    let m = gen::uniform(128, 1500, 9);
    let golden = m.to_csc();
    let mut cycles = Vec::new();
    for interval in [None, Some(16u64), Some(4), Some(1)] {
        let mut cfg = MendaConfig::small_test();
        cfg.pu.host_read_interval = interval;
        let r = MendaSystem::new(cfg).transpose(&m);
        assert_eq!(r.output, golden, "interval {interval:?}");
        cycles.push((interval, r.cycles));
    }
    // Heavier host traffic must not speed the PU up; the heaviest setting
    // must be measurably slower than no interference.
    let base = cycles[0].1;
    let heaviest = cycles.last().unwrap().1;
    assert!(
        heaviest > base,
        "heavy host traffic did not slow the PU: {cycles:?}"
    );
    for w in cycles.windows(2) {
        assert!(
            w[1].1 as f64 >= 0.95 * w[0].1 as f64,
            "non-monotone slowdown: {cycles:?}"
        );
    }
}

#[test]
fn builder_clamps_zero_interval() {
    let cfg = menda_core::PuConfig::small_test().with_host_interference(0);
    assert_eq!(cfg.host_read_interval, Some(1));
}
