//! Engine satellite tests: the parallel execution engine is bit-identical
//! to a serial run for every kernel, PU count and matrix family, and all
//! three kernels share the same empty-work accounting.

use menda_core::{spgemm, spmv, MendaConfig, MendaSystem};
use menda_sparse::gen;
use menda_sparse::rng::StdRng;
use menda_sparse::CsrMatrix;

fn config(pus: usize, threads: usize) -> MendaConfig {
    MendaConfig::small_test()
        .with_channels(1)
        .with_ranks_per_channel(pus)
        .with_threads(threads)
}

/// Seeded property test: for random uniform and R-MAT matrices across
/// 1/2/4/8 PUs, `Engine::run` with worker threads produces byte-identical
/// transpositions (checked against `to_csc()`) and identical statistics to
/// a `threads = 1` run.
#[test]
fn parallel_transpose_is_identical_to_serial_and_golden() {
    let mut rng = StdRng::seed_from_u64(0xE46);
    for case in 0..6 {
        let n = 64 << (case % 3);
        let nnz = n * (4 + rng.random_range(0..8));
        let m = if case % 2 == 0 {
            gen::uniform(n, nnz, rng.next_u64())
        } else {
            gen::rmat(n, nnz, gen::RmatParams::PAPER, rng.next_u64())
        };
        let golden = m.to_csc();
        for pus in [1usize, 2, 4, 8] {
            let serial = MendaSystem::new(config(pus, 1)).transpose(&m);
            assert_eq!(serial.output, golden, "case {case} pus {pus} serial");
            for threads in [2usize, 8] {
                let par = MendaSystem::new(config(pus, threads)).transpose(&m);
                assert_eq!(
                    par.output, serial.output,
                    "case {case} pus {pus} threads {threads}"
                );
                assert_eq!(par.cycles, serial.cycles);
                assert_eq!(par.pu_stats, serial.pu_stats);
            }
        }
    }
}

/// Same property for SpMV, checked against the dense reference.
#[test]
fn parallel_spmv_is_identical_to_serial_and_golden() {
    let mut rng = StdRng::seed_from_u64(0x59B7);
    for case in 0..4 {
        let n = 96 << (case % 2);
        let m = if case % 2 == 0 {
            gen::uniform(n, n * 8, rng.next_u64())
        } else {
            gen::rmat(n, n * 8, gen::RmatParams::PAPER, rng.next_u64())
        };
        let x: Vec<f32> = (0..n)
            .map(|_| rng.random_range(0..9) as f32 - 4.0)
            .collect();
        let golden = m.spmv(&x);
        for pus in [1usize, 2, 4, 8] {
            let serial = spmv::run(&config(pus, 1), &m, &x);
            for (i, (got, want)) in serial.y.iter().zip(&golden).enumerate() {
                assert!(
                    (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "case {case} pus {pus} row {i}: {got} vs {want}"
                );
            }
            for threads in [2usize, 8] {
                let par = spmv::run(&config(pus, threads), &m, &x);
                // Bit-identical, not approximately equal: the engine
                // assembles per-PU results in PU order regardless of
                // which thread finished first.
                assert_eq!(par.y, serial.y, "case {case} pus {pus} threads {threads}");
                assert_eq!(par.cycles, serial.cycles);
                assert_eq!(par.pu_stats, serial.pu_stats);
            }
        }
    }
}

/// Same property for the SpGEMM merge phase.
#[test]
fn parallel_spgemm_is_identical_to_serial() {
    let a = gen::rmat(64, 512, gen::RmatParams::PAPER, 0x5139);
    for pus in [1usize, 2, 4] {
        let serial = spgemm::run(&config(pus, 1), &a, &a);
        for threads in [2usize, 8] {
            let par = spgemm::run(&config(pus, threads), &a, &a);
            assert_eq!(par.c, serial.c, "pus {pus} threads {threads}");
            assert_eq!(par.merge_cycles, serial.merge_cycles);
            assert_eq!(par.pu_stats, serial.pu_stats);
        }
    }
}

/// Empty partitions are accounted identically by every kernel: a PU with
/// no streams reports zero iterations, zero cycles and zero traffic, and
/// the run completes with empty output.
#[test]
fn empty_partitions_account_identically_across_kernels() {
    // 4 PUs but only 2 rows with nonzeros: at least 2 PUs get empty work.
    let row_ptr: Vec<usize> = (0..17)
        .map(|r| if r >= 9 { 2 } else { usize::from(r >= 1) })
        .collect();
    let m = CsrMatrix::from_parts_unchecked(16, 16, row_ptr, vec![3u32, 9], vec![1.0, 2.0]);
    let cfg = config(4, 2);

    let t = MendaSystem::new(cfg.clone()).transpose(&m);
    assert_eq!(t.output, m.to_csc());
    let s = spmv::run(&cfg, &m, &[1.0; 16]);
    assert_eq!(s.y, m.spmv(&[1.0; 16]));
    let g = spgemm::run(&cfg, &m, &m);
    assert_eq!(g.c, spgemm::spgemm_golden(&m, &m));

    for stats in [&t.pu_stats, &s.pu_stats, &g.pu_stats] {
        assert_eq!(stats.len(), 4);
        let empties: Vec<_> = stats.iter().filter(|s| s.num_iterations() == 0).collect();
        assert!(
            empties.len() >= 2,
            "expected at least 2 empty PUs, got {}",
            empties.len()
        );
        for e in empties {
            assert_eq!(e.total_cycles(), 0);
            assert_eq!(e.total_traffic_bytes(), 0);
        }
    }

    // Fully empty inputs: every kernel reports zero cycles and empty output.
    let z = CsrMatrix::zeros(16, 16);
    let t = MendaSystem::new(cfg.clone()).transpose(&z);
    assert_eq!((t.output.nnz(), t.cycles), (0, 0));
    let s = spmv::run(&cfg, &z, &[1.0; 16]);
    assert_eq!(
        (s.y.iter().filter(|&&v| v != 0.0).count(), s.cycles),
        (0, 0)
    );
    let g = spgemm::run(&cfg, &z, &z);
    assert_eq!((g.c.nnz(), g.merge_cycles), (0, 0));
}
