//! Negative-path suite for the snapshot container (ISSUE 9 satellite):
//! hostile bytes must produce typed [`SnapshotError`]s — never a panic,
//! never a partial restore, never an absurd allocation.
//!
//! Layers of defence exercised here, in rejection-precedence order:
//!
//! 1. magic — anything that doesn't open with `b"MENDACKP"` is
//!    [`SnapshotError::BadMagic`],
//! 2. checksum — the trailing FNV-1a covers every preceding byte, so any
//!    single-bit flip or truncation is [`SnapshotError::ChecksumMismatch`],
//! 3. version / config fingerprint / backend name / unit count — header
//!    fields are revalidated even when an attacker *forges* the checksum,
//! 4. payload structure — forged-checksum bodies that survive the header
//!    still hit the bounds-checked decoder, which rejects truncated fields
//!    and out-of-domain values without allocating.
//!
//! The fuzz tests forge checksums deliberately: a flipped byte plus a
//! recomputed trailing hash models an adversary (or a cosmic-ray-plus-
//! rehash pipeline) rather than simple bit rot, and the contract there is
//! "typed error or a clean completed run" — nothing in between.

use menda_core::{
    JobSpec, MatrixSource, MendaConfig, MendaSystem, PimBackend, SnapshotError, SNAPSHOT_MAGIC,
};
use menda_dram::fnv1a;
use menda_sparse::gen;
use menda_sparse::rng::StdRng;
use menda_sparse::CsrMatrix;

fn cfg() -> MendaConfig {
    MendaConfig::small_test()
}

fn matrix() -> CsrMatrix {
    gen::rmat(96, 768, gen::RmatParams::PAPER, 21)
}

/// A small matrix for the byte-level fuzz loops: each probe re-parses
/// (and, when the forged payload decodes, re-simulates) the whole
/// container, so fuzz cost scales with snapshot size squared.
fn small_matrix() -> CsrMatrix {
    gen::uniform(48, 384, 9)
}

/// Fuzz probe positions over a snapshot of `len` bytes: the whole header
/// region exhaustively, then `samples` xoshiro-drawn positions across the
/// payload.
fn fuzz_positions(len: usize, samples: usize, rng: &mut StdRng) -> Vec<usize> {
    let header = SNAPSHOT_MAGIC.len() + 4 + 8 + 8 + "menda".len() + 8;
    let mut positions: Vec<usize> = (0..header.min(len)).collect();
    for _ in 0..samples {
        positions.push(rng.random_range(0..len));
    }
    positions.sort_unstable();
    positions.dedup();
    positions
}

/// A valid paused snapshot of `m`'s transposition under `cfg`.
fn valid_snapshot(m: &CsrMatrix, cfg: &MendaConfig) -> Vec<u8> {
    MendaSystem::new(cfg.clone())
        .transpose_to_cycle(m, 400)
        .expect("pause")
        .snapshot()
        .expect("run must pause at cycle 400")
}

/// Recomputes the trailing checksum after deliberate edits — the forged
/// checksum an adversary controlling the bytes would supply.
fn refresh_checksum(bytes: &mut [u8]) {
    let n = bytes.len();
    let sum = fnv1a(&bytes[..n - 8]);
    bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
}

fn resume(m: &CsrMatrix, cfg: &MendaConfig, bytes: &[u8]) -> Result<(), SnapshotError> {
    MendaSystem::new(cfg.clone())
        .resume_transpose(m, bytes)
        .map(|result| {
            // If hostile bytes do restore (forged checksum that decodes
            // cleanly), the run must still complete to a full result —
            // no partial state, no torn output.
            assert_eq!(result.output.nnz(), m.nnz(), "restore produced torn output");
        })
}

#[test]
fn garbage_and_empty_inputs_are_bad_magic() {
    let m = matrix();
    let cfg = cfg();
    assert_eq!(resume(&m, &cfg, &[]), Err(SnapshotError::BadMagic));
    assert_eq!(resume(&m, &cfg, b"MENDACK"), Err(SnapshotError::BadMagic));
    assert_eq!(
        resume(&m, &cfg, b"not a snapshot at all"),
        Err(SnapshotError::BadMagic)
    );
    // 4 KiB of deterministic noise.
    let mut rng = StdRng::seed_from_u64(0x0BAD_5EED);
    let noise: Vec<u8> = (0..4096).map(|_| rng.random_range(0..256) as u8).collect();
    assert_eq!(resume(&m, &cfg, &noise), Err(SnapshotError::BadMagic));
    // Magic alone, nothing behind it.
    assert_eq!(
        resume(&m, &cfg, &SNAPSHOT_MAGIC),
        Err(SnapshotError::ChecksumMismatch)
    );
}

/// Truncations of a valid snapshot are rejected with a typed error — the
/// checksum guards the tail, the magic guards the head. Exhaustive over
/// the header, sampled across the payload.
#[test]
fn truncation_is_rejected() {
    let m = small_matrix();
    let cfg = cfg();
    let snapshot = valid_snapshot(&m, &cfg);
    let mut rng = StdRng::seed_from_u64(0xC07_0FF);
    for cut in fuzz_positions(snapshot.len(), 256, &mut rng) {
        let err = resume(&m, &cfg, &snapshot[..cut]).expect_err("truncation must fail");
        let expected = if cut < SNAPSHOT_MAGIC.len() {
            SnapshotError::BadMagic
        } else {
            SnapshotError::ChecksumMismatch
        };
        assert_eq!(err, expected, "cut={cut}");
    }
    // The untouched snapshot still restores.
    assert!(resume(&m, &cfg, &snapshot).is_ok());
}

/// Byte-level corruption fuzz: flip one bit at header and sampled payload
/// positions of a valid snapshot. Without a forged checksum, every flip
/// must surface as `BadMagic` (head) or `ChecksumMismatch` (everywhere
/// else) — and must never panic.
#[test]
fn single_bit_flips_are_caught() {
    let m = small_matrix();
    let cfg = cfg();
    let snapshot = valid_snapshot(&m, &cfg);
    let mut rng = StdRng::seed_from_u64(0xF11B_1234);
    for i in fuzz_positions(snapshot.len(), 256, &mut rng) {
        let mut bad = snapshot.clone();
        bad[i] ^= 1 << rng.random_range(0..8);
        let err = resume(&m, &cfg, &bad).expect_err("bit flip must fail");
        let expected = if i < SNAPSHOT_MAGIC.len() {
            SnapshotError::BadMagic
        } else {
            SnapshotError::ChecksumMismatch
        };
        assert_eq!(err, expected, "flip at byte {i}");
    }
}

/// Adversarial corruption fuzz: flip a bit *and* forge the trailing
/// checksum so the payload reaches the structural decoder. The contract:
/// a typed error or a cleanly completed run — never a panic escaping the
/// checkpoint layer, never an absurd allocation. A forged state is a
/// *fabricated machine state*, so two outcome classes are legitimate:
/// the run may complete (with whatever results that state produces), or
/// the in-simulator assertions fire and the checkpoint layer converts
/// the unwind to [`SnapshotError::Corrupt`]. Forged states can also
/// fabricate unbounded *work* (a huge-but-plausible progress counter is
/// indistinguishable from a long legitimate run); those probes are
/// abandoned on a watchdog timeout — the property under test is safety,
/// not time-boundedness.
#[test]
fn forged_checksum_corruption_never_panics() {
    let m = small_matrix();
    let cfg = cfg();
    let snapshot = valid_snapshot(&m, &cfg);
    let mut rng = StdRng::seed_from_u64(0x00DD_5EED);
    // The checkpoint layer catches forged-state panics internally, but
    // the default hook would still print each one; silence it for the
    // duration of the fuzz. Failures are collected and asserted after
    // the hook is restored so their messages stay visible.
    let hook = std::panic::take_hook();
    if std::env::var_os("FUZZ_SHOW_PANICS").is_none() {
        std::panic::set_hook(Box::new(|_| {}));
    }
    let mut failures = Vec::new();
    let mut slow = 0usize;
    for i in fuzz_positions(snapshot.len() - 8, 192, &mut rng) {
        let mut bad = snapshot.clone();
        bad[i] ^= 1 << rng.random_range(0..8);
        refresh_checksum(&mut bad);
        let (tx, rx) = std::sync::mpsc::channel();
        let m2 = m.clone();
        let cfg2 = cfg.clone();
        std::thread::spawn(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                MendaSystem::new(cfg2).resume_transpose(&m2, &bad).map(drop)
            }));
            let _ = tx.send(outcome);
        });
        match rx.recv_timeout(std::time::Duration::from_millis(500)) {
            Ok(Ok(Ok(()))) => {} // completed cleanly — acceptable
            Ok(Ok(Err(
                SnapshotError::BadMagic
                | SnapshotError::BadVersion
                | SnapshotError::ConfigMismatch
                | SnapshotError::BackendMismatch
                | SnapshotError::JobMismatch
                | SnapshotError::Corrupt,
            ))) => {}
            Ok(Ok(Err(e))) => failures.push(format!("byte {i}: unexpected error {e:?}")),
            Ok(Err(_)) => failures.push(format!("byte {i}: panic escaped checkpoint layer")),
            // Fabricated long-running state; the probe thread is
            // abandoned (it dies with the test process).
            Err(_) => slow += 1,
        }
        if slow > 16 {
            break; // enough runaway threads; coverage point made
        }
    }
    std::panic::set_hook(hook);
    assert!(failures.is_empty(), "forged-corruption fuzz: {failures:?}");
}

/// An unsupported format version is rejected as such even with a forged
/// checksum.
#[test]
fn wrong_version_is_rejected() {
    let m = matrix();
    let cfg = cfg();
    let mut bad = valid_snapshot(&m, &cfg);
    // Version is the little-endian u32 right after the 8-byte magic.
    bad[SNAPSHOT_MAGIC.len()] = 0xfe;
    refresh_checksum(&mut bad);
    assert_eq!(resume(&m, &cfg, &bad), Err(SnapshotError::BadVersion));
}

/// A snapshot taken under one machine configuration refuses to restore
/// into another — and the mismatch is reported as such, not as generic
/// corruption.
#[test]
fn config_fingerprint_mismatch_is_rejected() {
    let m = matrix();
    let base = cfg();
    let snapshot = valid_snapshot(&m, &base);

    let mut more_leaves = base.clone();
    more_leaves.pu.leaves *= 2;
    let mut slower_dram = base.clone();
    slower_dram.dram.timing.t_rcd += 1;
    let other_topology = base.clone().with_ranks_per_channel(4);
    for other in [more_leaves, slower_dram, other_topology] {
        assert_eq!(
            MendaSystem::new(other)
                .resume_transpose(&m, &snapshot)
                .map(drop),
            Err(SnapshotError::ConfigMismatch)
        );
    }
    // Fingerprint-neutral host knobs still restore.
    let host_knobs = base.clone().with_threads(4).with_fast_forward(false);
    assert!(MendaSystem::new(host_knobs)
        .resume_transpose(&m, &snapshot)
        .is_ok());
}

/// A MeNDA snapshot refuses to restore into the PIM backend (and vice
/// versa) with a dedicated error.
#[test]
fn backend_mismatch_is_rejected() {
    let m = matrix();
    let cfg = cfg();
    let menda_snapshot = valid_snapshot(&m, &cfg);
    assert_eq!(
        MendaSystem::new(cfg.clone())
            .resume_transpose_on(&m, PimBackend, &menda_snapshot)
            .map(drop),
        Err(SnapshotError::BackendMismatch)
    );

    let pim_snapshot = MendaSystem::new(cfg.clone())
        .transpose_to_cycle_on(&m, PimBackend, 400)
        .expect("pause")
        .snapshot()
        .expect("pim run must pause at cycle 400");
    assert_eq!(
        MendaSystem::new(cfg.clone())
            .resume_transpose(&m, &pim_snapshot)
            .map(drop),
        Err(SnapshotError::BackendMismatch)
    );
}

/// A tampered unit count (forged checksum) is caught before any unit
/// payload is interpreted.
#[test]
fn tampered_unit_count_is_rejected() {
    let m = matrix();
    let cfg = cfg();
    let mut bad = valid_snapshot(&m, &cfg);
    // Offset of the unit count: magic + version + config fingerprint +
    // length-prefixed backend name ("menda").
    let count_at = SNAPSHOT_MAGIC.len() + 4 + 8 + 8 + "menda".len();
    bad[count_at] = bad[count_at].wrapping_add(1);
    refresh_checksum(&mut bad);
    let err = resume(&m, &cfg, &bad).expect_err("tampered count must fail");
    assert!(
        matches!(err, SnapshotError::ConfigMismatch | SnapshotError::Corrupt),
        "unexpected error {err:?}"
    );
}

/// A snapshot never restores into a different kernel launch: the JobSpec
/// seam maps every snapshot failure to a typed job error, and the owning
/// spec still resumes cleanly afterwards — failed attempts leave nothing
/// behind.
#[test]
fn jobspec_seam_reports_and_recovers() {
    let mut spec = JobSpec::new(MatrixSource::Rmat { dim: 96, nnz: 768 });
    spec.channels = 1;
    spec.ranks_per_channel = 2;
    spec.leaves = 16;
    spec.prefetch_buffer_entries = 4;
    spec.threads = Some(1);
    spec.seed = 23;

    let menda_core::JobProgress::Paused(snapshot) = spec.execute_to_cycle(300).expect("pause")
    else {
        panic!("job finished before the pause target");
    };

    // Corrupt bytes surface as a typed job error.
    let mut bad = snapshot.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x40;
    let err = spec.resume(&bad).expect_err("corrupt snapshot must fail");
    assert!(err.to_string().contains("snapshot"), "unexpected: {err}");

    // So do someone else's bytes.
    let mut other = spec.clone();
    other.seed = 24;
    assert!(other.resume(&snapshot).is_err());

    // And after both failures the rightful owner still restores to the
    // byte-identical outcome.
    let straight = spec.execute().expect("straight run");
    let resumed = spec.resume(&snapshot).expect("owner resumes");
    assert_eq!(straight.to_json(), resumed.to_json());
    assert_eq!(straight.digest(), resumed.digest());
}
