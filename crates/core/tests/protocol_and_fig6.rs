//! Protocol-level validation of the PU's memory interface and a structural
//! reproduction of the paper's Fig. 6 timing behaviour.

use menda_core::{MendaConfig, MendaSystem, MergeTree, Packet, SliceLeafSource};
use menda_dram::validate_trace;
use menda_sparse::gen;

/// Every DRAM command the PU's memory interface causes must obey the DDR4
/// protocol — checked with the independent trace validator on a real
/// transposition.
#[test]
fn pu_memory_traffic_is_protocol_clean() {
    let m = gen::rmat(256, 2000, gen::RmatParams::PAPER, 3);
    let mut cfg = MendaConfig::small_test();
    cfg.dram.log_commands = true;
    // One PU so the partition (and its rank's command stream) is the whole
    // matrix; multi-iteration merge included (256 rows on a 16-leaf tree).
    let cfg = cfg.with_channels(1).with_ranks_per_channel(1);
    let mut pu = menda_core::ProcessingUnit::new(&cfg);
    let result = pu.transpose(&m, 0);
    assert_eq!(result.values.len(), m.nnz());
    assert!(result.stats.num_iterations() >= 2);
    let log = pu.dram_command_log();
    assert!(
        log.len() > 1000,
        "expected substantial traffic, got {}",
        log.len()
    );
    let dram_cfg = cfg.dram.clone().with_channels(1).with_ranks(1);
    validate_trace(log, &dram_cfg.timing, &dram_cfg.org)
        .expect("PU-generated DRAM traffic violates the DDR4 protocol");

    // The system-level path stays functionally exact too.
    let mut sys = MendaSystem::new(cfg);
    let r = sys.transpose(&m);
    assert_eq!(r.output, m.to_csc());
}

/// Fig. 6's scenario: a 4-leaf merge tree executing the first two rounds
/// of the Fig. 4 merge back to back. With the end-of-line protocol the
/// tree must produce all 17 nonzeros of both rounds without idle gaps
/// beyond the pipeline fill, whereas a drain-between-rounds execution
/// would pay the full memory latency again.
#[test]
fn fig6_seamless_back_to_back_rounds() {
    // Round 1: rows 0-3 of the Fig. 1 matrix (packets (col, row)).
    // Round 2: rows 4-6.
    let fig1_rows: [&[(u32, u32)]; 7] = [
        &[(0, 0), (2, 0)],
        &[(1, 1), (4, 1)],
        &[(0, 2), (4, 2), (6, 2)],
        &[(3, 3), (5, 3)],
        &[(0, 4), (2, 4), (5, 4)],
        &[(1, 5), (3, 5)],
        &[(2, 6), (5, 6), (6, 6)],
    ];
    let mut src = SliceLeafSource::new(4);
    for (port, row) in fig1_rows[..4].iter().enumerate() {
        for &(c, r) in *row {
            src.push(port, Packet::nz(c, r, 0.0));
        }
        src.push(port, Packet::Eol);
    }
    for (port, row) in fig1_rows[4..].iter().enumerate() {
        for &(c, r) in *row {
            src.push(port, Packet::nz(c, r, 0.0));
        }
        src.push(port, Packet::Eol);
    }
    // Port 3 has no round-2 stream: bare EOL.
    src.push(3, Packet::Eol);

    let mut tree = MergeTree::new(4, 2);
    let mut emitted: Vec<(u32, u32)> = Vec::new();
    let mut pop_cycles: Vec<u64> = Vec::new();
    let mut cycles = 0u64;
    while tree.rounds_completed() < 2 {
        if let Some(Packet::Nz { major, minor, .. }) = tree.tick(&mut src, 1) {
            emitted.push((major, minor));
            pop_cycles.push(cycles);
        }
        cycles += 1;
        assert!(cycles < 1000, "tree deadlocked");
    }

    // All 17 nonzeros emerge, each round sorted by (col, row).
    assert_eq!(emitted.len(), 17);
    let round1 = &emitted[..9];
    let round2 = &emitted[9..];
    assert!(round1.windows(2).all(|w| w[0] <= w[1]), "{round1:?}");
    assert!(round2.windows(2).all(|w| w[0] <= w[1]), "{round2:?}");
    assert_eq!(round1[0], (0, 0));
    assert_eq!(round2[0], (0, 4));

    // Seamlessness: with data always resident, the total span is the work
    // plus the pipeline fill plus the two EOL cycles — no drain bubble
    // between rounds (§3.3 claims 5 idle cycles saved on this example).
    let span = pop_cycles.last().unwrap() - pop_cycles.first().unwrap() + 1;
    assert!(
        span <= 17 + 2,
        "rounds did not flow seamlessly: 17 pops over {span} cycles"
    );
}

/// The same scenario without back-to-back feeding (round 2 only becomes
/// visible after round 1 fully drains) must be strictly slower — the
/// baseline the paper contrasts against in Fig. 6.
#[test]
fn fig6_drained_execution_is_slower() {
    let round1: [&[(u32, u32)]; 4] = [
        &[(0, 0), (2, 0)],
        &[(1, 1), (4, 1)],
        &[(0, 2), (4, 2), (6, 2)],
        &[(3, 3), (5, 3)],
    ];
    let round2: [&[(u32, u32)]; 4] = [
        &[(0, 4), (2, 4), (5, 4)],
        &[(1, 5), (3, 5)],
        &[(2, 6), (5, 6), (6, 6)],
        &[],
    ];
    // Seamless: both rounds queued up front.
    let run_seamless = || {
        let mut src = SliceLeafSource::new(4);
        for (port, row) in round1.iter().enumerate() {
            for &(c, r) in *row {
                src.push(port, Packet::nz(c, r, 0.0));
            }
            src.push(port, Packet::Eol);
        }
        for (port, row) in round2.iter().enumerate() {
            for &(c, r) in *row {
                src.push(port, Packet::nz(c, r, 0.0));
            }
            src.push(port, Packet::Eol);
        }
        let mut tree = MergeTree::new(4, 2);
        let mut cycles = 0u64;
        while tree.rounds_completed() < 2 {
            tree.tick(&mut src, 1);
            cycles += 1;
        }
        cycles
    };
    // Drained: round 2 arrives only after round 1 completed, plus a
    // 3-cycle modeled memory latency (the Fig. 6 bottom-right table).
    let run_drained = || {
        let mut src = SliceLeafSource::new(4);
        for (port, row) in round1.iter().enumerate() {
            for &(c, r) in *row {
                src.push(port, Packet::nz(c, r, 0.0));
            }
            src.push(port, Packet::Eol);
        }
        let mut tree = MergeTree::new(4, 2);
        let mut cycles = 0u64;
        while tree.rounds_completed() < 1 {
            tree.tick(&mut src, 1);
            cycles += 1;
        }
        cycles += 3; // memory latency before round 2 data arrives
        for (port, row) in round2.iter().enumerate() {
            for &(c, r) in *row {
                src.push(port, Packet::nz(c, r, 0.0));
            }
            src.push(port, Packet::Eol);
            tree.wake_port(port);
        }
        while tree.rounds_completed() < 2 {
            tree.tick(&mut src, 1);
            cycles += 1;
        }
        cycles
    };
    let seamless = run_seamless();
    let drained = run_drained();
    assert!(
        seamless + 3 <= drained,
        "seamless {seamless} not faster than drained {drained}"
    );
}
