//! Property-based tests of the structural merge tree: arbitrary sorted
//! streams, arbitrary tree widths and FIFO depths, multiple back-to-back
//! rounds — the output must always equal the functional merge, round by
//! round.

use proptest::prelude::*;

use menda_core::{MergeTree, Packet, SliceLeafSource};

/// Strategy: per-round sorted streams for a tree of `leaves` ports.
fn arb_rounds(
    leaves: usize,
    max_rounds: usize,
    max_len: usize,
) -> impl Strategy<Value = Vec<Vec<Vec<Packet>>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::vec((0u32..1000, 0u32..50), 0..max_len).prop_map(|mut keys| {
                keys.sort_unstable();
                keys.dedup();
                keys.into_iter()
                    .map(|(maj, min)| Packet::nz(maj, min, (maj + min) as f32))
                    .collect::<Vec<Packet>>()
            }),
            leaves,
        ),
        1..=max_rounds,
    )
}

fn run_rounds(leaves: usize, fifo: usize, rounds: &[Vec<Vec<Packet>>]) -> Vec<Vec<Packet>> {
    let mut src = SliceLeafSource::new(leaves);
    for round in rounds {
        for (port, stream) in round.iter().enumerate() {
            for &p in stream {
                src.push(port, p);
            }
            src.push(port, Packet::Eol);
        }
    }
    let mut tree = MergeTree::new(leaves, fifo);
    let mut out: Vec<Vec<Packet>> = vec![Vec::new()];
    let mut cycles = 0u64;
    let budget: u64 = 100_000
        + 10 * rounds
            .iter()
            .flat_map(|r| r.iter())
            .map(|s| s.len() as u64)
            .sum::<u64>();
    while (tree.rounds_completed() as usize) < rounds.len() {
        if let Some(p) = tree.tick(&mut src, 1) {
            if p.is_eol() {
                out.push(Vec::new());
            } else {
                out.last_mut().expect("round bucket").push(p);
            }
        }
        cycles += 1;
        assert!(cycles < budget, "tree deadlocked");
    }
    out.pop(); // trailing empty bucket after the last EOL
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For arbitrary stream content the tree emits, per round, exactly the
    /// functional multi-way merge of that round's streams.
    #[test]
    fn tree_equals_functional_merge(
        leaves_pow in 1u32..5,
        fifo in 1usize..4,
        rounds in arb_rounds(16, 3, 12),
    ) {
        let leaves = 1usize << leaves_pow;
        let rounds: Vec<Vec<Vec<Packet>>> = rounds
            .into_iter()
            .map(|r| r.into_iter().take(leaves).collect())
            .collect();
        let out = run_rounds(leaves, fifo, &rounds);
        prop_assert_eq!(out.len(), rounds.len());
        for (got, round) in out.iter().zip(&rounds) {
            let want = MergeTree::merge_functional(round);
            prop_assert_eq!(got, &want);
        }
    }

    /// The root never emits more than one packet per cycle and the total
    /// cycle count is bounded by a small constant factor of the work.
    #[test]
    fn throughput_bound(
        rounds in arb_rounds(8, 2, 20),
    ) {
        let total: usize = rounds.iter().flat_map(|r| r.iter()).map(|s| s.len()).sum();
        let mut src = SliceLeafSource::new(8);
        for round in &rounds {
            for (port, stream) in round.iter().enumerate() {
                for &p in stream {
                    src.push(port, p);
                }
                src.push(port, Packet::Eol);
            }
        }
        let mut tree = MergeTree::new(8, 2);
        let mut cycles = 0u64;
        let mut pops = 0usize;
        while (tree.rounds_completed() as usize) < rounds.len() {
            if let Some(p) = tree.tick(&mut src, 1) {
                if !p.is_eol() {
                    pops += 1;
                }
            }
            cycles += 1;
            prop_assert!(cycles < 100_000);
        }
        prop_assert_eq!(pops, total);
        // Fill latency is log2(8)=3 per round plus one cycle per element
        // and per EOL; allow 3x slack for pathological stalls.
        let bound = 3 * (total as u64 + rounds.len() as u64 * 8 + 16);
        prop_assert!(cycles <= bound, "{cycles} cycles for {total} elements");
    }
}
