//! Property-style tests of the structural merge tree: arbitrary sorted
//! streams, arbitrary tree widths and FIFO depths, multiple back-to-back
//! rounds — the output must always equal the functional merge, round by
//! round. Cases are seeded draws from the in-repo generator (the offline
//! build cannot fetch `proptest`).

use std::collections::BTreeSet;

use menda_core::{MergeTree, Packet, SliceLeafSource};
use menda_sparse::rng::StdRng;

/// One random sorted, duplicate-free stream of up to `max_len` packets.
fn arb_stream(rng: &mut StdRng, max_len: usize) -> Vec<Packet> {
    let n = rng.random_range(0..max_len);
    let keys: BTreeSet<(u32, u32)> = (0..n)
        .map(|_| {
            (
                rng.random_range(0..1000) as u32,
                rng.random_range(0..50) as u32,
            )
        })
        .collect();
    keys.into_iter()
        .map(|(maj, min)| Packet::nz(maj, min, (maj + min) as f32))
        .collect()
}

/// Per-round sorted streams for a tree of `leaves` ports.
fn arb_rounds(
    rng: &mut StdRng,
    leaves: usize,
    max_rounds: usize,
    max_len: usize,
) -> Vec<Vec<Vec<Packet>>> {
    let rounds = rng.random_range(1..max_rounds.max(1) + 1);
    (0..rounds)
        .map(|_| (0..leaves).map(|_| arb_stream(rng, max_len)).collect())
        .collect()
}

fn run_rounds(leaves: usize, fifo: usize, rounds: &[Vec<Vec<Packet>>]) -> Vec<Vec<Packet>> {
    let mut src = SliceLeafSource::new(leaves);
    for round in rounds {
        for (port, stream) in round.iter().enumerate() {
            for &p in stream {
                src.push(port, p);
            }
            src.push(port, Packet::Eol);
        }
    }
    let mut tree = MergeTree::new(leaves, fifo);
    let mut out: Vec<Vec<Packet>> = vec![Vec::new()];
    let mut cycles = 0u64;
    let budget: u64 = 100_000
        + 10 * rounds
            .iter()
            .flat_map(|r| r.iter())
            .map(|s| s.len() as u64)
            .sum::<u64>();
    while (tree.rounds_completed() as usize) < rounds.len() {
        if let Some(p) = tree.tick(&mut src, 1) {
            if p.is_eol() {
                out.push(Vec::new());
            } else {
                out.last_mut().expect("round bucket").push(p);
            }
        }
        cycles += 1;
        assert!(cycles < budget, "tree deadlocked");
    }
    out.pop(); // trailing empty bucket after the last EOL
    out
}

/// For arbitrary stream content the tree emits, per round, exactly the
/// functional multi-way merge of that round's streams.
#[test]
fn tree_equals_functional_merge() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x7EEE + seed);
        let leaves = 1usize << rng.random_range(1..5);
        let fifo = rng.random_range(1..4);
        let rounds = arb_rounds(&mut rng, leaves, 3, 12);
        let out = run_rounds(leaves, fifo, &rounds);
        assert_eq!(out.len(), rounds.len(), "seed {seed}");
        for (got, round) in out.iter().zip(&rounds) {
            let want = MergeTree::merge_functional(round);
            assert_eq!(got, &want, "seed {seed}");
        }
    }
}

/// The root never emits more than one packet per cycle and the total
/// cycle count is bounded by a small constant factor of the work.
#[test]
fn throughput_bound() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x7B0D + seed);
        let rounds = arb_rounds(&mut rng, 8, 2, 20);
        let total: usize = rounds.iter().flat_map(|r| r.iter()).map(|s| s.len()).sum();
        let mut src = SliceLeafSource::new(8);
        for round in &rounds {
            for (port, stream) in round.iter().enumerate() {
                for &p in stream {
                    src.push(port, p);
                }
                src.push(port, Packet::Eol);
            }
        }
        let mut tree = MergeTree::new(8, 2);
        let mut cycles = 0u64;
        let mut pops = 0usize;
        while (tree.rounds_completed() as usize) < rounds.len() {
            if let Some(p) = tree.tick(&mut src, 1) {
                if !p.is_eol() {
                    pops += 1;
                }
            }
            cycles += 1;
            assert!(cycles < 100_000);
        }
        assert_eq!(pops, total, "seed {seed}");
        // Fill latency is log2(8)=3 per round plus one cycle per element
        // and per EOL; allow 3x slack for pathological stalls.
        let bound = 3 * (total as u64 + rounds.len() as u64 * 8 + 16);
        assert!(
            cycles <= bound,
            "seed {seed}: {cycles} cycles for {total} elements"
        );
    }
}
