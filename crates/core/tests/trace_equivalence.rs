//! Differential tests for the instrumentation layer: tracing must be
//! purely observational. Every simulated result — outputs, cycle counts,
//! per-PU statistics — must be bit-identical whether tracing is off,
//! counting, or writing Chrome trace events, at any PU count and any
//! host thread count.

use menda_core::{spmv, MendaConfig, MendaSystem, TraceConfig, TransposeResult};
use menda_sparse::gen;
use menda_sparse::CsrMatrix;

fn matrices() -> Vec<(&'static str, CsrMatrix)> {
    vec![
        ("uniform", gen::uniform(96, 768, 41)),
        ("rmat", gen::rmat(128, 1024, gen::RmatParams::PAPER, 42)),
    ]
}

fn config(pus: usize, threads: usize, trace: TraceConfig) -> MendaConfig {
    MendaConfig::small_test()
        .with_channels(1)
        .with_ranks_per_channel(pus)
        .with_threads(threads)
        .with_trace(trace)
}

fn transpose(cfg: MendaConfig, m: &CsrMatrix) -> TransposeResult {
    MendaSystem::new(cfg).transpose(m)
}

/// Asserts every simulated field of two transposition results matches
/// (everything except the trace report itself).
fn assert_same_simulation(a: &TransposeResult, b: &TransposeResult, what: &str) {
    assert_eq!(a.output, b.output, "{what}: outputs differ");
    assert_eq!(a.cycles, b.cycles, "{what}: cycles differ");
    assert_eq!(a.pu_stats, b.pu_stats, "{what}: per-PU stats differ");
    assert_eq!(a.seconds, b.seconds, "{what}: seconds differ");
}

#[test]
fn tracing_never_changes_transposition_results() {
    for (name, m) in matrices() {
        for pus in [1, 2, 4] {
            for threads in [1, 2] {
                let base = transpose(config(pus, threads, TraceConfig::off()), &m);
                assert!(base.trace.is_none(), "off mode must not produce a report");
                for (mode, trace) in [
                    ("counting", TraceConfig::counting()),
                    ("chrome", TraceConfig::chrome()),
                ] {
                    let traced = transpose(config(pus, threads, trace), &m);
                    let what = format!("{name} pus={pus} threads={threads} mode={mode}");
                    assert_same_simulation(&base, &traced, &what);
                    let report = traced.trace.expect("traced run must produce a report");
                    report
                        .validate()
                        .unwrap_or_else(|e| panic!("{what}: malformed trace: {e}"));
                }
            }
        }
    }
}

#[test]
fn tracing_never_changes_spmv_results() {
    let a = gen::rmat(128, 1024, gen::RmatParams::PAPER, 43);
    let x: Vec<f32> = (0..a.ncols()).map(|i| (i % 7) as f32 * 0.5 - 1.0).collect();
    let base = spmv::run(&config(2, 2, TraceConfig::off()), &a, &x);
    assert!(base.trace.is_none());
    for trace in [TraceConfig::counting(), TraceConfig::chrome()] {
        let traced = spmv::run(&config(2, 2, trace), &a, &x);
        assert_eq!(base.y, traced.y, "SpMV outputs differ under tracing");
        assert_eq!(base.cycles, traced.cycles, "SpMV cycles differ");
        assert_eq!(base.pu_stats, traced.pu_stats, "SpMV per-PU stats differ");
        traced.trace.expect("traced run must produce a report");
    }
}

#[test]
fn trace_report_is_identical_across_thread_counts() {
    let m = gen::rmat(128, 1024, gen::RmatParams::PAPER, 44);
    let serial = transpose(config(4, 1, TraceConfig::chrome()), &m);
    let parallel = transpose(config(4, 4, TraceConfig::chrome()), &m);
    assert_same_simulation(&serial, &parallel, "threads=1 vs threads=4");
    // Reports are aggregated in PU order, so the full report — events,
    // counters and histograms — is deterministic too.
    assert_eq!(
        serial.trace, parallel.trace,
        "trace reports differ across thread counts"
    );
}

#[test]
fn ring_mode_is_also_observational() {
    let m = gen::uniform(96, 768, 45);
    let base = transpose(config(2, 1, TraceConfig::off()), &m);
    let traced = transpose(config(2, 1, TraceConfig::ring()), &m);
    assert_same_simulation(&base, &traced, "ring mode");
    let report = traced.trace.expect("ring mode produces a report");
    report.validate().expect("ring report must validate");
}
