//! Robustness tests of the PU across configuration extremes and matrix
//! edge cases — the configurations Fig. 12/15 sweep must all stay
//! functionally exact.

use menda_core::{spgemm, spmv, MendaConfig, MendaSystem};
use menda_sparse::{gen, CsrMatrix};

fn check(cfg: MendaConfig, m: &CsrMatrix) {
    let r = MendaSystem::new(cfg).transpose(m);
    assert_eq!(r.output, m.to_csc());
}

#[test]
fn extreme_tree_widths() {
    let m = gen::rmat(128, 900, gen::RmatParams::PAPER, 51);
    for leaves in [2usize, 4, 64, 256] {
        let mut cfg = MendaConfig::small_test();
        cfg.pu.leaves = leaves;
        check(cfg, &m);
    }
}

#[test]
fn extreme_fifo_depths() {
    let m = gen::uniform(96, 700, 52);
    for fifo in [1usize, 2, 8] {
        let mut cfg = MendaConfig::small_test();
        cfg.pu.fifo_entries = fifo;
        check(cfg, &m);
    }
}

#[test]
fn tiny_queues_and_buffers() {
    let m = gen::uniform(96, 700, 53);
    let mut cfg = MendaConfig::small_test();
    cfg.pu.read_queue_entries = 4;
    cfg.pu.write_queue_entries = 2;
    cfg.pu.prefetch_buffer_entries = 4;
    cfg.pu.pointer_read_depth = 1;
    check(cfg, &m);
}

#[test]
fn single_element_and_single_row_matrices() {
    let one = CsrMatrix::new(1, 1, vec![0, 1], vec![0], vec![42.0]).unwrap();
    check(MendaConfig::small_test(), &one);
    let row = CsrMatrix::new(
        1,
        64,
        (0..=1).map(|i| i * 32).collect::<Vec<_>>(),
        (0..32).map(|c| c * 2).collect(),
        vec![1.0; 32],
    )
    .unwrap();
    check(MendaConfig::small_test(), &row);
}

#[test]
fn single_dense_column_matrix() {
    // Every row has one element in column 0: maximal tie-breaking on the
    // major key during the merge.
    let n = 200;
    let m = CsrMatrix::new(
        n,
        4,
        (0..=n).collect(),
        vec![0; n],
        (0..n).map(|v| v as f32).collect(),
    )
    .unwrap();
    check(MendaConfig::small_test(), &m);
}

#[test]
fn matrix_with_many_empty_rows() {
    // 1 non-empty row in 50.
    let n = 400;
    let mut ptr = vec![0usize; n + 1];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for r in 0..n {
        if r % 50 == 0 {
            cols.push((r % 7) as u32);
            vals.push(r as f32);
        }
        ptr[r + 1] = cols.len();
    }
    let m = CsrMatrix::new(n, 7, ptr, cols, vals).unwrap();
    check(MendaConfig::small_test(), &m);
}

#[test]
fn spmv_with_zero_vector_and_negative_values() {
    let m = gen::uniform(64, 400, 54);
    let zeros = vec![0.0f32; 64];
    let r = spmv::run(&MendaConfig::small_test(), &m, &zeros);
    assert!(r.y.iter().all(|&v| v == 0.0));
    let negs: Vec<f32> = (0..64).map(|i| -((i % 9) as f32)).collect();
    let r = spmv::run(&MendaConfig::small_test(), &m, &negs);
    let golden = m.spmv(&negs);
    for (g, w) in r.y.iter().zip(&golden) {
        assert!((g - w).abs() <= 1e-3 * w.abs().max(1.0));
    }
}

#[test]
fn spgemm_with_identity_is_identity_via_simulation() {
    let a = gen::uniform(48, 300, 55);
    let i = CsrMatrix::identity(48);
    let r = spgemm::run(&MendaConfig::small_test(), &a, &i);
    assert_eq!(r.c.nnz(), a.nnz());
    for (row, col, v) in a.iter() {
        let got = r.c.get(row, col).unwrap();
        assert!((got - v).abs() < 1e-4);
    }
}

#[test]
fn frequency_changes_time_not_results() {
    let m = gen::uniform(96, 700, 56);
    let golden = m.to_csc();
    let mut seconds = Vec::new();
    for mhz in [400u64, 800, 1600] {
        let mut cfg = MendaConfig::small_test();
        cfg.pu.frequency_mhz = mhz;
        let r = MendaSystem::new(cfg).transpose(&m);
        assert_eq!(r.output, golden);
        seconds.push(r.seconds);
    }
    // Higher clock never slows wall-clock time down.
    assert!(seconds[0] >= seconds[1] && seconds[1] >= seconds[2]);
}

#[test]
fn all_rows_identical_columns() {
    // Every row has the same column set: worst case for coalescing's
    // broadcast (every buffer wants the same blocks).
    let n = 64;
    let cols_per_row = 4;
    let mut ptr = vec![0usize; n + 1];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for r in 0..n {
        for c in 0..cols_per_row {
            cols.push((c * 3) as u32);
            vals.push((r * cols_per_row + c) as f32);
        }
        ptr[r + 1] = cols.len();
    }
    let m = CsrMatrix::new(n, 16, ptr, cols, vals).unwrap();
    check(MendaConfig::small_test(), &m);
}
