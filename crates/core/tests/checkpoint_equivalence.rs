//! Restore-anywhere differential suite for checkpoint/replay (ISSUE 9).
//!
//! The contract under test: pausing a kernel launch at *any* device
//! cycle, serializing the complete simulator state into the snapshot
//! container, restoring it into freshly built units, and running to
//! completion is **bit-identical** to the uninterrupted run — same
//! outputs, same cycle counts, same per-PU statistics (which embed the
//! DRAM command/row-hit counters), and the same DRAM command log, entry
//! for entry.
//!
//! Coverage axes, mirroring the house differential style
//! (`fast_forward_equivalence.rs`, `backend_equivalence.rs`):
//!
//! * both backends — the MeNDA merge-tree PU and the SparseP-style PIM
//!   model,
//! * both execution disciplines — per-cycle reference and event-driven
//!   fast-forward — including *cross-restores* (snapshot under one,
//!   resume under the other: the config fingerprint deliberately
//!   excludes host-simulation knobs),
//! * serial and threaded engine execution, again cross-restored,
//! * adversarial pause cycles: 0, 1, mid-burst, around the refresh
//!   interval (mid-refresh), just before completion, at completion, and
//!   past completion,
//! * seeded xoshiro-driven random pause cycles per (kernel × backend ×
//!   config) combo — the ISSUE's property-fuzz satellite — with the
//!   SpMV/SpGEMM kernels driven through the `JobSpec` preemption seam,
//! * the live DDR4 protocol checker forced on throughout, so every
//!   restored run is also revalidated against the JEDEC timing rules.

use menda_core::{
    transpose_job, AcceleratorBackend, BackendKind, JobKernel, JobProgress, JobSpec, MatrixSource,
    MendaBackend, MendaConfig, MendaSystem, PimBackend, ResumableBackend, TransposeResult,
};
use menda_sparse::gen;
use menda_sparse::partition::RowPartition;
use menda_sparse::rng::StdRng;
use menda_sparse::CsrMatrix;

type Engine<'a, B> = menda_core::Engine<'a, B>;
type TransposeSpec<'m> = menda_core::TransposeSpec<'m>;

/// Runs `f` with the live protocol checker forced on (equivalent to
/// `MENDA_CHECK_PROTOCOL=1`), restoring environment-driven behaviour
/// afterwards even if `f` panics.
fn with_checker<R>(f: impl FnOnce() -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            menda_dram::set_check_protocol_default(None);
        }
    }
    menda_dram::set_check_protocol_default(Some(true));
    let _reset = Reset;
    f()
}

fn config(threads: usize, fast: bool) -> MendaConfig {
    MendaConfig::small_test()
        .with_threads(threads)
        .with_fast_forward(fast)
}

fn spec<'m>(m: &'m CsrMatrix, cfg: &MendaConfig) -> TransposeSpec<'m> {
    TransposeSpec::new(m, RowPartition::by_nnz(m, cfg.num_pus()))
}

fn assert_identical(direct: &TransposeResult, resumed: &TransposeResult, what: &str) {
    assert_eq!(direct.output, resumed.output, "{what}: outputs differ");
    assert_eq!(direct.cycles, resumed.cycles, "{what}: cycles differ");
    assert_eq!(
        direct.pu_stats, resumed.pu_stats,
        "{what}: per-PU stats (incl. DramStats) differ"
    );
    assert_eq!(direct.seconds, resumed.seconds, "{what}: seconds differ");
    assert_eq!(
        direct.partition, resumed.partition,
        "{what}: partitions differ"
    );
}

/// Snapshot `m`'s transposition at `pause_at` under `cfg_pause`, restore
/// under `cfg_resume`, and assert the completed run is bit-identical to
/// `direct`. Quietly verifies completion instead when the run finishes
/// before the pause target.
fn pause_restore_check<B: ResumableBackend + Copy>(
    backend: B,
    m: &CsrMatrix,
    cfg_pause: &MendaConfig,
    cfg_resume: &MendaConfig,
    direct: &TransposeResult,
    pause_at: u64,
    what: &str,
) {
    let paused = Engine::with_backend(cfg_pause, backend)
        .run_to_cycle(&spec(m, cfg_pause), pause_at)
        .unwrap_or_else(|e| panic!("{what}: pause at {pause_at} failed: {e}"));
    match paused.snapshot() {
        Some(snapshot) => {
            let resumed = Engine::with_backend(cfg_resume, backend)
                .resume(&spec(m, cfg_resume), &snapshot)
                .unwrap_or_else(|e| panic!("{what}: resume from {pause_at} failed: {e}"));
            assert_identical(direct, &resumed, &format!("{what} @ {pause_at}"));
        }
        None => {
            // Ran to completion before the pause target; the bounded run
            // itself must still match the straight-through run.
            let finished = Engine::with_backend(cfg_pause, backend)
                .run_to_cycle(&spec(m, cfg_pause), pause_at)
                .unwrap()
                .finished()
                .expect("checked paused above");
            assert_identical(
                direct,
                &finished,
                &format!("{what} @ {pause_at} (finished)"),
            );
        }
    }
}

/// Adversarial pause targets for a run of `total` device cycles under
/// `cfg`: boundary cycles, mid-burst offsets, the refresh interval
/// neighbourhood (in device clocks), and completion edges.
fn adversarial_cycles(cfg: &MendaConfig, total: u64) -> Vec<u64> {
    let (num, den) = (cfg.dram.clock_mhz, cfg.pu.frequency_mhz);
    // t_refi is in DRAM bus cycles; convert to device cycles.
    let refi_dev = cfg.dram.timing.t_refi * den / num.max(1);
    let mut cycles = vec![
        0,
        1,
        2,
        3,
        5,
        17,
        63,
        64,
        65,
        refi_dev.saturating_sub(1),
        refi_dev,
        refi_dev + 1,
        total / 2,
        total.saturating_sub(2),
        total.saturating_sub(1),
        total,
        total + 10,
    ];
    cycles.retain(|&c| c <= total + 10);
    cycles.dedup();
    cycles
}

#[test]
fn menda_restores_anywhere_on_both_paths() {
    with_checker(|| {
        let m = gen::rmat(96, 768, gen::RmatParams::PAPER, 41);
        for fast in [false, true] {
            let cfg = config(1, fast);
            let direct = MendaSystem::new(cfg.clone()).transpose(&m);
            assert_eq!(direct.output, m.to_csc(), "direct run wrong");
            for pause_at in adversarial_cycles(&cfg, direct.cycles) {
                pause_restore_check(
                    MendaBackend,
                    &m,
                    &cfg,
                    &cfg,
                    &direct,
                    pause_at,
                    &format!("menda ff={fast}"),
                );
            }
        }
    });
}

#[test]
fn pim_restores_anywhere_on_both_paths() {
    with_checker(|| {
        let m = gen::rmat(96, 768, gen::RmatParams::PAPER, 43);
        for fast in [false, true] {
            let cfg = config(1, fast);
            let direct = MendaSystem::new(cfg.clone()).transpose_on(&m, PimBackend);
            assert_eq!(direct.output, m.to_csc(), "direct run wrong");
            for pause_at in adversarial_cycles(&cfg, direct.cycles) {
                pause_restore_check(
                    PimBackend,
                    &m,
                    &cfg,
                    &cfg,
                    &direct,
                    pause_at,
                    &format!("pim ff={fast}"),
                );
            }
        }
    });
}

/// A snapshot taken under the per-cycle reference path restores into a
/// fast-forwarding engine (and vice versa) — the config fingerprint
/// excludes host-simulation knobs precisely because the two paths are
/// proven bit-identical.
#[test]
fn snapshots_cross_restore_between_ref_and_ff() {
    with_checker(|| {
        let m = gen::banded(96, 960, 10, 0.2, 47);
        let cfg_ref = config(1, false);
        let cfg_ff = config(1, true);
        let direct = MendaSystem::new(cfg_ref.clone()).transpose(&m);
        for pause_at in [1, 333, direct.cycles / 2, direct.cycles.saturating_sub(1)] {
            pause_restore_check(
                MendaBackend,
                &m,
                &cfg_ref,
                &cfg_ff,
                &direct,
                pause_at,
                "menda ref→ff",
            );
            pause_restore_check(
                MendaBackend,
                &m,
                &cfg_ff,
                &cfg_ref,
                &direct,
                pause_at,
                "menda ff→ref",
            );
        }
        // The PIM backend cross-restores too, against its own timing.
        let pim_direct = MendaSystem::new(cfg_ref.clone()).transpose_on(&m, PimBackend);
        for pause_at in [1, 333, pim_direct.cycles / 2] {
            pause_restore_check(
                PimBackend,
                &m,
                &cfg_ref,
                &cfg_ff,
                &pim_direct,
                pause_at,
                "pim ref→ff",
            );
            pause_restore_check(
                PimBackend,
                &m,
                &cfg_ff,
                &cfg_ref,
                &pim_direct,
                pause_at,
                "pim ff→ref",
            );
        }
    });
}

/// Serial and threaded engines snapshot and restore interchangeably.
#[test]
fn snapshots_cross_restore_between_serial_and_threaded() {
    with_checker(|| {
        let m = gen::uniform(128, 1024, 53);
        let serial = config(1, true);
        let threaded = config(4, true);
        let direct = MendaSystem::new(serial.clone()).transpose(&m);
        for pause_at in [77, direct.cycles / 3, direct.cycles.saturating_sub(1)] {
            pause_restore_check(
                MendaBackend,
                &m,
                &serial,
                &threaded,
                &direct,
                pause_at,
                "serial→threaded",
            );
            pause_restore_check(
                MendaBackend,
                &m,
                &threaded,
                &serial,
                &direct,
                pause_at,
                "threaded→serial",
            );
        }
    });
}

/// Chained `resume_to_cycle` hops — pause, restore, pause again — land
/// on the same terminal state as the uninterrupted run.
#[test]
fn chained_pause_hops_match_straight_run() {
    with_checker(|| {
        let m = gen::rmat(96, 768, gen::RmatParams::PAPER, 59);
        let cfg = config(1, true);
        let direct = MendaSystem::new(cfg.clone()).transpose(&m);
        for backend_kind in BackendKind::ALL {
            let resumed = match backend_kind {
                BackendKind::Menda => chained_hops(MendaBackend, &m, &cfg, 170),
                BackendKind::Pim => chained_hops(PimBackend, &m, &cfg, 170),
            };
            if backend_kind == BackendKind::Menda {
                assert_identical(&direct, &resumed, "chained hops (menda)");
            } else {
                // The PIM backend has its own timing; compare against its
                // own straight-through run instead.
                let pim_direct = MendaSystem::new(cfg.clone()).transpose_on(&m, PimBackend);
                assert_identical(&pim_direct, &resumed, "chained hops (pim)");
            }
        }
    });
}

fn chained_hops<B: ResumableBackend + Copy>(
    backend: B,
    m: &CsrMatrix,
    cfg: &MendaConfig,
    quantum: u64,
) -> TransposeResult {
    let engine = Engine::with_backend(cfg, backend);
    let mut pause_at = quantum;
    let mut outcome = engine
        .run_to_cycle(&spec(m, cfg), pause_at)
        .expect("first hop");
    let mut hops = 0u32;
    loop {
        match outcome {
            menda_core::SnapshotOutcome::Finished(result) => {
                assert!(hops >= 2, "quantum too coarse to exercise chained hops");
                return result;
            }
            menda_core::SnapshotOutcome::Paused(snapshot) => {
                hops += 1;
                pause_at += quantum;
                outcome = engine
                    .resume_to_cycle(&spec(m, cfg), &snapshot, pause_at)
                    .expect("resume hop");
            }
        }
    }
}

/// The strongest signal: the *DRAM command log* — every ACT/PRE/RD/WR/REF
/// with its issue cycle and full coordinates — is identical entry for
/// entry across a pause/restore round trip. Driven at the unit level
/// through the public `ResumableBackend` seam (the engine does not
/// expose per-rank logs).
#[test]
fn dram_command_logs_survive_restore_bit_identically() {
    with_checker(|| {
        let m = gen::rmat(80, 640, gen::RmatParams::PAPER, 61);
        let mut cfg = MendaConfig::small_test()
            .with_channels(1)
            .with_ranks_per_channel(1)
            .with_fast_forward(true);
        cfg.dram.log_commands = true;
        cfg.dram.refresh_enabled = true;

        // MeNDA unit.
        {
            let backend = MendaBackend;
            let job = transpose_job(m.clone(), 0);
            let mut straight_unit = backend.build_unit(&cfg);
            let mut run = backend.start_job(&straight_unit, job.clone());
            assert!(backend.advance(&mut straight_unit, &mut run, None));
            let straight = backend.finish_run(&straight_unit, run);

            for pause_at in [1u64, 100, 1000] {
                let mut unit = backend.build_unit(&cfg);
                let mut run = backend.start_job(&unit, job.clone());
                let done = backend.advance(&mut unit, &mut run, Some(pause_at));
                let (mut unit, mut run) = if done {
                    (unit, run)
                } else {
                    // Serialize, rebuild from scratch, restore.
                    let mut enc = menda_dram::Encoder::new();
                    backend.save_unit(&unit, &mut enc);
                    backend.save_run(&run, &mut enc);
                    let bytes = enc.into_bytes();
                    let mut dec = menda_dram::Decoder::new(&bytes);
                    let mut fresh = backend.build_unit(&cfg);
                    backend.restore_unit(&mut fresh, &mut dec).expect("unit");
                    let run = backend
                        .restore_run(&fresh, job.clone(), &mut dec)
                        .expect("run");
                    (fresh, run)
                };
                assert!(backend.advance(&mut unit, &mut run, None));
                let resumed = backend.finish_run(&unit, run);
                assert_eq!(resumed, straight, "menda result diverged @ {pause_at}");
                assert_eq!(
                    unit.dram_command_log(),
                    straight_unit.dram_command_log(),
                    "menda DRAM command log diverged @ {pause_at}"
                );
            }
        }

        // PIM unit.
        {
            let backend = PimBackend;
            let job = transpose_job(m.clone(), 0);
            let mut straight_unit = backend.build_unit(&cfg);
            let mut run = backend.start_job(&straight_unit, job.clone());
            assert!(backend.advance(&mut straight_unit, &mut run, None));
            let straight = backend.finish_run(&straight_unit, run);

            for pause_at in [1u64, 100, 1000] {
                let mut unit = backend.build_unit(&cfg);
                let mut run = backend.start_job(&unit, job.clone());
                let done = backend.advance(&mut unit, &mut run, Some(pause_at));
                let (mut unit, mut run) = if done {
                    (unit, run)
                } else {
                    let mut enc = menda_dram::Encoder::new();
                    backend.save_unit(&unit, &mut enc);
                    backend.save_run(&run, &mut enc);
                    let bytes = enc.into_bytes();
                    let mut dec = menda_dram::Decoder::new(&bytes);
                    let mut fresh = backend.build_unit(&cfg);
                    backend.restore_unit(&mut fresh, &mut dec).expect("unit");
                    let run = backend
                        .restore_run(&fresh, job.clone(), &mut dec)
                        .expect("run");
                    (fresh, run)
                };
                assert!(backend.advance(&mut unit, &mut run, None));
                let resumed = backend.finish_run(&unit, run);
                assert_eq!(resumed, straight, "pim result diverged @ {pause_at}");
                assert_eq!(
                    unit.dram_command_log(),
                    straight_unit.dram_command_log(),
                    "pim DRAM command log diverged @ {pause_at}"
                );
            }
        }
    });
}

/// ISSUE 9 satellite: seeded xoshiro property fuzz. For every (kernel ×
/// backend × config) combo, N pause cycles are drawn from the repo's
/// xoshiro256++ generator and each must restore bit-identically.
/// Transposition runs through the engine seam; SpMV and SpGEMM run
/// through the `JobSpec` preemption seam (outcome JSON compared byte
/// for byte).
#[test]
fn xoshiro_fuzzed_pause_cycles_restore_bit_identically() {
    with_checker(|| {
        let mut rng = StdRng::seed_from_u64(0x0C4E_C4B0_1957);
        const FUZZ_PER_COMBO: usize = 5;

        // Transposition at the engine level, both backends, both paths.
        let m = gen::rmat(96, 768, gen::RmatParams::PAPER, 67);
        for fast in [false, true] {
            let cfg = config(1, fast);
            let menda_direct = MendaSystem::new(cfg.clone()).transpose(&m);
            let pim_direct = MendaSystem::new(cfg.clone()).transpose_on(&m, PimBackend);
            for _ in 0..FUZZ_PER_COMBO {
                let k = rng.random_range(1..menda_direct.cycles as usize) as u64;
                pause_restore_check(
                    MendaBackend,
                    &m,
                    &cfg,
                    &cfg,
                    &menda_direct,
                    k,
                    &format!("fuzz menda ff={fast}"),
                );
                let k = rng.random_range(1..pim_direct.cycles as usize) as u64;
                pause_restore_check(
                    PimBackend,
                    &m,
                    &cfg,
                    &cfg,
                    &pim_direct,
                    k,
                    &format!("fuzz pim ff={fast}"),
                );
            }
        }

        // SpMV and SpGEMM through the JobSpec seam, both backends.
        for kernel in [JobKernel::Spmv, JobKernel::Spgemm] {
            for backend in BackendKind::ALL {
                let mut js = JobSpec::new(MatrixSource::Rmat { dim: 96, nnz: 768 });
                js.channels = 1;
                js.ranks_per_channel = 2;
                js.leaves = 16;
                js.prefetch_buffer_entries = 4;
                js.threads = Some(1);
                js.seed = 71;
                js.kernel = kernel;
                js.backend = backend;
                let straight = js.execute().expect("straight job");
                for _ in 0..FUZZ_PER_COMBO {
                    let k = rng.random_range(1..straight.cycles.max(2) as usize) as u64;
                    let resumed = match js.execute_to_cycle(k).expect("pause") {
                        JobProgress::Finished(outcome) => outcome,
                        JobProgress::Paused(snapshot) => js.resume(&snapshot).expect("resume"),
                    };
                    assert_eq!(
                        straight.to_json(),
                        resumed.to_json(),
                        "{kernel:?}/{backend:?}: outcome diverged across restore @ {k}"
                    );
                }
            }
        }
    });
}
