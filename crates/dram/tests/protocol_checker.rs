//! End-to-end tests of the independent protocol checker and the bug
//! class it exists to catch: refresh starvation, multi-rank refresh
//! stalls, forwarding accounting and out-of-order command logs.
//!
//! The mutation tests run the real controller with one deliberately
//! corrupted timing parameter and assert the checker (verifying against
//! the nominal timing) reports exactly the violated constraint.

use menda_dram::{
    validate_trace, AddressMapper, CommandKind, DramConfig, DramTiming, MemRequest, MemorySystem,
    ProtocolChecker, ReqKind, RowPolicy, REFRESH_DEADLINE_INTERVALS,
};
use menda_sparse::rng::StdRng;

/// Drives `addrs` through a fresh memory system until every request has
/// completed, then runs `idle_cycles` more ticks (to exercise refresh
/// liveness past the end of the traffic).
fn run_workload(cfg: DramConfig, addrs: &[(u64, bool)], idle_cycles: u64) -> MemorySystem {
    let mut mem = MemorySystem::new(cfg);
    let mut sent = 0usize;
    let mut done = 0usize;
    let mut guard = 0u64;
    while done < addrs.len() {
        if sent < addrs.len() {
            let (addr, is_write) = addrs[sent];
            let req = if is_write {
                MemRequest::write(addr, sent as u64)
            } else {
                MemRequest::read(addr, sent as u64)
            };
            if mem.try_enqueue(req) {
                sent += 1;
            }
        }
        mem.tick();
        while mem.pop_response().is_some() {
            done += 1;
        }
        guard += 1;
        assert!(guard < 5_000_000, "workload did not complete");
    }
    for _ in 0..idle_cycles {
        mem.tick();
        while mem.pop_response().is_some() {}
    }
    mem
}

/// Finds `count` line addresses decoding to `rank` with identical
/// (bank group, bank, row) — a pure row-hit stream.
fn row_hit_addrs(mapper: &AddressMapper, rank: usize, count: usize) -> Vec<u64> {
    let mut out = Vec::new();
    let mut anchor = None;
    for line in 0..1_000_000u64 {
        let addr = line * 64;
        let c = mapper.decode(addr);
        if c.rank != rank {
            continue;
        }
        let key = (c.bank_group, c.bank, c.row);
        match anchor {
            None => {
                anchor = Some(key);
                out.push(addr);
            }
            Some(a) if a == key => out.push(addr),
            Some(_) => {}
        }
        if out.len() == count {
            return out;
        }
    }
    panic!("not enough row-hit addresses for rank {rank}");
}

/// Seeded random mixed read/write multi-rank traffic is clean under the
/// live checker, the offline checker and the legacy trace validator.
#[test]
fn random_streams_pass_live_and_offline_checking() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0xC4EC + seed);
        let n = rng.random_range(20..150);
        let addrs: Vec<(u64, bool)> = (0..n)
            .map(|_| (rng.next_u64() & ((1 << 26) - 1), rng.random::<bool>()))
            .collect();
        let mut cfg = DramConfig::ddr4_2400r().with_ranks(1 << rng.random_range(0..2));
        cfg.refresh_enabled = rng.random::<bool>();
        cfg.row_policy = if rng.random::<bool>() {
            RowPolicy::OpenPage
        } else {
            RowPolicy::ClosedPage
        };
        cfg.log_commands = true;
        cfg.check_protocol = true; // live: any violation panics mid-run
        let idle = if cfg.refresh_enabled {
            2 * cfg.timing.t_refi
        } else {
            0
        };
        let mem = run_workload(cfg.clone(), &addrs, idle);
        mem.verify_command_logs()
            .unwrap_or_else(|(ch, v)| panic!("seed {seed} channel {ch}: {v}"));
        if let Err(v) = validate_trace(mem.command_log(0), &cfg.timing, &cfg.org) {
            panic!("seed {seed}: {v}");
        }
    }
}

/// Satellite 1 + 2 regression: a continuous 64-line row-hit read stream
/// to rank 0 must not postpone rank 0's refresh beyond the 9×tREFI
/// deadline, and must not stall rank 1's (idle) refresh at all.
///
/// Pre-fix, `cas_issuable` ignored `refresh_pending` (each CAS pushed
/// `next_pre` out via tRTP, deferring REF indefinitely) and
/// `service_refresh` returned early while rank 0 waited, never examining
/// rank 1.
#[test]
fn row_hit_stream_cannot_starve_refresh() {
    let mut cfg = DramConfig::ddr4_2400r().with_ranks(2);
    cfg.timing.t_refi = 300;
    cfg.timing.t_rfc = 30;
    cfg.log_commands = true;
    cfg.check_protocol = true;
    let mapper = AddressMapper::new(cfg.org, cfg.mapping);
    let lines = row_hit_addrs(&mapper, 0, 64);
    let mut mem = MemorySystem::new(cfg.clone());
    let horizon = cfg.timing.t_refi * (REFRESH_DEADLINE_INTERVALS + 4);
    let mut sent = 0u64;
    for _ in 0..horizon {
        let addr = lines[(sent % 64) as usize];
        if mem.try_enqueue(MemRequest::read(addr, sent)) {
            sent += 1;
        }
        mem.tick();
        while mem.pop_response().is_some() {}
    }
    let first_ref = |rank: usize| {
        mem.command_log(0)
            .iter()
            .find(|c| c.kind == CommandKind::Ref && c.coord.rank == rank)
            .map(|c| c.cycle)
    };
    // Rank 0 (under the stream): serviced within the postpone deadline.
    let r0 = first_ref(0).expect("rank 0 refresh starved");
    assert!(
        r0 <= cfg.timing.t_refi * (1 + REFRESH_DEADLINE_INTERVALS),
        "rank 0 first REF at {r0}, past the 9x tREFI deadline"
    );
    // Rank 1 (idle): refreshed on schedule, not stalled behind rank 0.
    let r1 = first_ref(1).expect("rank 1 refresh never issued");
    assert!(
        r1 <= 2 * cfg.timing.t_refi,
        "rank 1 first REF at {r1}, stalled behind rank 0"
    );
    // And the stream itself kept flowing (refresh did not deadlock it).
    assert!(mem.stats().reads > 100, "read stream stalled");
    mem.verify_command_logs()
        .unwrap_or_else(|(ch, v)| panic!("channel {ch}: {v}"));
}

/// Satellite 2 regression: with both ranks idle, every rank refreshes on
/// schedule (one REF per rank per tREFI, within the tolerance of the
/// one-command-per-cycle slot).
#[test]
fn idle_multi_rank_refreshes_on_schedule() {
    let mut cfg = DramConfig::ddr4_2400r().with_ranks(2);
    cfg.timing.t_refi = 400;
    cfg.timing.t_rfc = 40;
    cfg.log_commands = true;
    cfg.check_protocol = true;
    let mut mem = MemorySystem::new(cfg.clone());
    let intervals = 10u64;
    for _ in 0..cfg.timing.t_refi * intervals {
        mem.tick();
    }
    for rank in 0..2 {
        let refs: Vec<u64> = mem
            .command_log(0)
            .iter()
            .filter(|c| c.kind == CommandKind::Ref && c.coord.rank == rank)
            .map(|c| c.cycle)
            .collect();
        assert!(
            refs.len() as u64 >= intervals - 1,
            "rank {rank} refreshed {} times in {intervals} intervals",
            refs.len()
        );
    }
}

/// Satellite 3 regression: store-to-load-forwarded reads are counted as
/// completed reads with a latency sample instead of vanishing.
#[test]
fn forwarded_reads_are_counted() {
    let mut cfg = DramConfig::ddr4_2400r();
    cfg.refresh_enabled = false;
    cfg.check_protocol = true;
    let mut mem = MemorySystem::new(cfg);
    assert!(mem.try_enqueue(MemRequest::write(256, 1)));
    assert!(mem.try_enqueue(MemRequest::read(256, 2)));
    let mut kinds = Vec::new();
    for _ in 0..500 {
        mem.tick();
        while let Some(r) = mem.pop_response() {
            kinds.push(r.kind);
        }
    }
    assert_eq!(kinds.len(), 2);
    assert!(kinds.contains(&ReqKind::Read) && kinds.contains(&ReqKind::Write));
    let s = mem.stats();
    assert_eq!(s.forwarded_reads, 1);
    assert_eq!(s.reads, 1, "forwarded read missing from read totals");
    assert_eq!(s.writes, 1);
    assert_eq!(
        s.read_latency_sum, 1,
        "forwarded read has no latency sample"
    );
    assert_eq!(s.bytes_transferred(64), 2 * 64);
}

/// Satellite 4 regression: under `RowPolicy::ClosedPage` the command log
/// is cycle-monotonic (auto-precharge records used to be appended ahead
/// of commands issued at earlier cycles).
#[test]
fn closed_page_command_log_is_monotonic() {
    let mut cfg = DramConfig::ddr4_2400r();
    cfg.refresh_enabled = false;
    cfg.row_policy = RowPolicy::ClosedPage;
    cfg.log_commands = true;
    cfg.check_protocol = true;
    let addrs: Vec<(u64, bool)> = (0..256u64).map(|i| (i * 4096, i % 3 == 0)).collect();
    let mem = run_workload(cfg.clone(), &addrs, 200);
    let log = mem.command_log(0);
    assert!(log.iter().any(|c| c.kind == CommandKind::Pre));
    assert!(
        log.windows(2).all(|w| w[0].cycle <= w[1].cycle),
        "command log is not cycle-monotonic"
    );
    mem.verify_command_logs()
        .unwrap_or_else(|(ch, v)| panic!("channel {ch}: {v}"));
}

/// Liveness regression: a lone write under a perpetual row-hit read
/// stream retires within the aging bound instead of starving (each read
/// CAS used to re-arm the write turnaround faster than it expired).
#[test]
fn lone_write_under_read_stream_retires() {
    let mut cfg = DramConfig::ddr4_2400r();
    cfg.refresh_enabled = false;
    cfg.log_commands = false;
    cfg.check_protocol = true;
    let mapper = AddressMapper::new(cfg.org, cfg.mapping);
    let lines = row_hit_addrs(&mapper, 0, 64);
    // A write to a different bank than the read stream.
    let write_addr = (0..1_000_000u64)
        .map(|l| l * 64)
        .find(|&a| {
            let c = mapper.decode(a);
            let r = mapper.decode(lines[0]);
            c.rank == 0 && (c.bank_group, c.bank) != (r.bank_group, r.bank)
        })
        .unwrap();
    let mut mem = MemorySystem::new(cfg.clone());
    assert!(mem.try_enqueue(MemRequest::write(write_addr, u64::MAX)));
    let mut sent = 0u64;
    let mut write_done_at = None;
    let horizon = cfg.timing.t_refi + 3000;
    for _ in 0..horizon {
        let addr = lines[(sent % 64) as usize];
        if mem.try_enqueue(MemRequest::read(addr, sent)) {
            sent += 1;
        }
        mem.tick();
        while let Some(r) = mem.pop_response() {
            if r.kind == ReqKind::Write {
                write_done_at = Some(r.done_at);
            }
        }
    }
    let done = write_done_at.expect("write starved under read stream");
    assert!(
        done <= horizon,
        "write retired at {done}, after the horizon"
    );
}

/// Liveness regression: a lone read to a bank monopolized by write-drain
/// traffic retires within the aging bound. Pre-fix, FR-FCFS plus the
/// write-drain watermark let younger writes re-open the bank on other
/// rows at full tRC pace forever, and the read's ACT never won a slot
/// (caught by the checker's request-age bound under random traffic).
#[test]
fn lone_read_under_write_drain_retires() {
    let mut cfg = DramConfig::ddr4_2400r();
    cfg.refresh_enabled = false;
    cfg.check_protocol = true;
    let mapper = AddressMapper::new(cfg.org, cfg.mapping);
    // 65 addresses in one bank, all distinct rows: a write stream cycling
    // the first 64 keeps the queue above the drain watermark, the read
    // targets the 65th (never forwarded, always a row conflict).
    let anchor = mapper.decode(0);
    let mut rows = Vec::new();
    for line in 0..4_000_000u64 {
        let addr = line * 64;
        let c = mapper.decode(addr);
        if (c.rank, c.bank_group, c.bank) == (anchor.rank, anchor.bank_group, anchor.bank)
            && !rows.iter().any(|&(_, r)| r == c.row)
        {
            rows.push((addr, c.row));
            if rows.len() == 65 {
                break;
            }
        }
    }
    assert_eq!(rows.len(), 65, "not enough distinct rows in one bank");
    let mut mem = MemorySystem::new(cfg.clone());
    let mut sent = 0u64;
    let mut read_done = false;
    let horizon = cfg.timing.t_refi + 3000;
    for cycle in 0..horizon {
        // Let the write drain saturate before the read arrives.
        if cycle == 500 {
            assert!(mem.try_enqueue(MemRequest::read(rows[64].0, u64::MAX)));
        }
        let addr = rows[(sent % 64) as usize].0;
        if mem.try_enqueue(MemRequest::write(addr, sent)) {
            sent += 1;
        }
        mem.tick();
        while let Some(r) = mem.pop_response() {
            if r.kind == ReqKind::Read {
                read_done = true;
            }
        }
    }
    assert!(read_done, "read starved under write-drain traffic");
}

// ---------------------------------------------------------------------
// Mutation tests: corrupt one controller timing parameter, verify the
// recorded stream against the *nominal* timing, and assert the checker
// names exactly the violated constraint.
// ---------------------------------------------------------------------

/// Runs `addrs` on a controller with `corrupt` applied to its timing and
/// returns the offline verdict of a checker using the nominal config.
fn mutated_verdict(
    corrupt: impl Fn(&mut DramTiming),
    nominal: &DramConfig,
    addrs: &[(u64, bool)],
) -> &'static str {
    let mut cfg = nominal.clone();
    corrupt(&mut cfg.timing);
    cfg.log_commands = true;
    cfg.check_protocol = false; // the live checker would share the corruption
    let mem = run_workload(cfg, addrs, 100);
    match ProtocolChecker::check_trace(mem.command_log(0), nominal) {
        Ok(()) => "clean",
        Err(v) => v.rule,
    }
}

fn nominal() -> DramConfig {
    let mut cfg = DramConfig::ddr4_2400r();
    cfg.refresh_enabled = false;
    cfg
}

#[test]
fn halved_trcd_is_reported_as_trcd() {
    let verdict = mutated_verdict(|t| t.t_rcd /= 2, &nominal(), &[(0, false)]);
    assert_eq!(verdict, "tRCD");
}

#[test]
fn halved_tccd_l_is_reported_as_tccd_l() {
    // Two row hits in the same bank group.
    let addrs = [(0, false), (64, false)];
    let verdict = mutated_verdict(|t| t.t_ccd_l /= 2, &nominal(), &addrs);
    assert_eq!(verdict, "tCCD_L");
}

#[test]
fn halved_tfaw_is_reported_as_tfaw() {
    // Eight activates to distinct banks of one rank.
    let addrs: Vec<(u64, bool)> = (0..8u64).map(|i| (i * 8192, false)).collect();
    let verdict = mutated_verdict(|t| t.t_faw /= 2, &nominal(), &addrs);
    assert_eq!(verdict, "tFAW");
}

#[test]
fn halved_twtr_is_reported_as_twtr() {
    // A write, then (after it completes) a read on the same rank.
    let mut cfg = nominal();
    cfg.timing.t_wtr /= 2;
    cfg.log_commands = true;
    let mut mem = MemorySystem::new(cfg);
    assert!(mem.try_enqueue(MemRequest::write(0, 1)));
    let mut read_sent = false;
    for _ in 0..400 {
        mem.tick();
        if mem.pop_response().is_some() && !read_sent {
            assert!(mem.try_enqueue(MemRequest::read(64, 2)));
            read_sent = true;
        }
    }
    let v = ProtocolChecker::check_trace(mem.command_log(0), &nominal()).unwrap_err();
    assert_eq!(v.rule, "tWTR");
}

#[test]
fn halved_tras_is_reported_as_tras() {
    // Closed-page auto-precharge fires at the (corrupted) earliest legal
    // precharge time.
    let mut base = nominal();
    base.row_policy = RowPolicy::ClosedPage;
    let verdict = mutated_verdict(|t| t.t_ras /= 2, &base, &[(0, false)]);
    assert_eq!(verdict, "tRAS");
}

#[test]
fn halved_tbl_is_reported_as_bus_collision() {
    // Cross-rank back-to-back reads: tCCD is per rank, so only the bus
    // occupancy window separates the bursts.
    let base = nominal().with_ranks(2);
    let mapper = AddressMapper::new(base.org, base.mapping);
    let rank1 = (0..1_000_000u64)
        .map(|l| l * 64)
        .find(|&a| mapper.decode(a).rank == 1)
        .unwrap();
    let addrs = [(0, false), (rank1, false)];
    let verdict = mutated_verdict(|t| t.t_bl /= 2, &base, &addrs);
    assert_eq!(verdict, "bus-collision");
}

/// The checker rejects the pre-fix out-of-order closed-page log shape.
#[test]
fn offline_checker_rejects_non_monotonic_logs() {
    let mut cfg = nominal();
    cfg.row_policy = RowPolicy::ClosedPage;
    cfg.log_commands = true;
    let mem = run_workload(cfg.clone(), &[(0, false), (4096, false)], 100);
    let mut log: Vec<_> = mem.command_log(0).to_vec();
    assert!(ProtocolChecker::check_trace(&log, &cfg).is_ok());
    // Re-create the old bug: append a stale-cycle PRE at the end.
    let pre = *log.iter().find(|c| c.kind == CommandKind::Pre).unwrap();
    log.push(pre);
    let v = ProtocolChecker::check_trace(&log, &cfg).unwrap_err();
    assert_eq!(v.rule, "non-monotonic-trace");
}
