//! Behavioral tests of scheduler and cache-scaling details that the unit
//! tests do not reach.

use menda_dram::cpu_mode::{CoreTrace, CpuMode, CpuModeConfig};
use menda_dram::{DramConfig, MemRequest, MemorySystem, ReqKind};

fn no_refresh() -> DramConfig {
    let mut c = DramConfig::ddr4_2400r();
    c.refresh_enabled = false;
    c
}

/// FR-FCFS-PriorHit at the system level: a younger row hit overtakes an
/// older row miss.
#[test]
fn younger_row_hit_overtakes_older_miss() {
    let mut mem = MemorySystem::new(no_refresh());
    // Warm a row.
    assert!(mem.try_enqueue(MemRequest::read(0, 0)));
    loop {
        mem.tick();
        if mem.pop_response().is_some() {
            break;
        }
    }
    // Older request: different row in the same bank (miss). Younger: the
    // warm row (hit).
    let row_stride = 64 * 128 * 16;
    assert!(mem.try_enqueue(MemRequest::read(row_stride as u64, 1)));
    assert!(mem.try_enqueue(MemRequest::read(64, 2)));
    let mut order = Vec::new();
    while order.len() < 2 {
        mem.tick();
        while let Some(r) = mem.pop_response() {
            order.push(r.id);
        }
    }
    assert_eq!(order, vec![2, 1], "row hit should complete first");
}

/// Writes never starve: even under a continuous read stream, queued
/// writes eventually retire.
#[test]
fn writes_retire_under_read_pressure() {
    let mut mem = MemorySystem::new(no_refresh());
    for i in 0..24u64 {
        assert!(mem.try_enqueue(MemRequest::write((1 << 26) + i * 64, 1000 + i)));
    }
    let mut reads_sent = 0u64;
    let mut writes_done = 0;
    let mut cycles = 0u64;
    while writes_done < 24 {
        // Saturating read stream.
        if mem.try_enqueue(MemRequest::read(reads_sent * 64, reads_sent)) {
            reads_sent += 1;
        }
        mem.tick();
        cycles += 1;
        while let Some(r) = mem.pop_response() {
            if r.kind == ReqKind::Write {
                writes_done += 1;
            }
        }
        assert!(cycles < 500_000, "writes starved");
    }
}

/// Store-to-load forwarding returns the line before the write itself has
/// drained to the array.
#[test]
fn forwarding_beats_write_completion() {
    let mut mem = MemorySystem::new(no_refresh());
    assert!(mem.try_enqueue(MemRequest::write(4096, 1)));
    assert!(mem.try_enqueue(MemRequest::read(4096 + 16, 2))); // same line
    let mut first = None;
    for _ in 0..200 {
        mem.tick();
        if let Some(r) = mem.pop_response() {
            first = Some(r);
            break;
        }
    }
    let first = first.expect("response");
    assert_eq!(first.id, 2);
    assert_eq!(first.kind, ReqKind::Read);
}

/// Scaling the caches down makes a repeated-sweep trace slower (its
/// working set stops fitting), while leaving a tiny-working-set trace
/// unaffected.
#[test]
fn cache_scale_controls_working_set_fit() {
    let sweep = |lines: u64| -> CoreTrace {
        let mut t = CoreTrace::new();
        for _ in 0..4 {
            for i in 0..lines {
                t.access(2, i * 64, false);
            }
        }
        t
    };
    // 1024 lines = 64 KB: fits the full L2+L3, not the 1/64-scaled ones.
    let big = sweep(1024);
    let full = CpuMode::new(no_refresh(), CpuModeConfig::default()).run(vec![big.clone()]);
    let scaled = CpuMode::new(no_refresh(), CpuModeConfig::with_cache_scale(64)).run(vec![big]);
    assert!(
        scaled.dram.reads > 2 * full.dram.reads,
        "scaled caches {} reads vs full {}",
        scaled.dram.reads,
        full.dram.reads
    );
    // 8 lines always fit (minimum cache is ways * block).
    let tiny = sweep(8);
    let full_t = CpuMode::new(no_refresh(), CpuModeConfig::default()).run(vec![tiny.clone()]);
    let scaled_t = CpuMode::new(no_refresh(), CpuModeConfig::with_cache_scale(64)).run(vec![tiny]);
    assert_eq!(full_t.dram.reads, scaled_t.dram.reads);
}

/// dram-mode replay of the same requests under two arrival schedules
/// keeps functional statistics identical.
#[test]
fn dram_mode_arrival_times_change_latency_not_work() {
    use menda_dram::dram_mode::{replay, TraceRequest};
    let addrs: Vec<u64> = (0..200).map(|i| i * 4096).collect();
    let burst: Vec<TraceRequest> = addrs.iter().map(|&a| TraceRequest::read(0, a)).collect();
    let paced: Vec<TraceRequest> = addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| TraceRequest::read(i as u64 * 100, a))
        .collect();
    let rb = replay(no_refresh(), &burst);
    let rp = replay(no_refresh(), &paced);
    assert_eq!(rb.stats.reads, rp.stats.reads);
    assert!(rb.avg_latency > rp.avg_latency);
    assert!(rp.finished_at > rb.finished_at); // pacing stretches the run
}
