//! End-to-end protocol validation: record the command stream the scheduler
//! actually issues under randomized workloads and re-check every DDR4
//! timing constraint with the independent validator.

use menda_dram::{validate_trace, DramConfig, MemRequest, MemorySystem};
use menda_sparse::rng::StdRng;

/// A random (address, is_write) workload of 1..`max_len` requests.
fn arb_addrs(rng: &mut StdRng, addr_bits: u32, max_len: usize) -> Vec<(u64, bool)> {
    let len = rng.random_range(1..max_len);
    (0..len)
        .map(|_| {
            (
                rng.next_u64() & ((1u64 << addr_bits) - 1),
                rng.random::<bool>(),
            )
        })
        .collect()
}

fn run_workload(cfg: DramConfig, addrs: &[(u64, bool)]) -> MemorySystem {
    let mut mem = MemorySystem::new(cfg);
    let mut sent = 0usize;
    let mut done = 0usize;
    let mut guard = 0u64;
    while done < addrs.len() {
        if sent < addrs.len() {
            let (addr, is_write) = addrs[sent];
            let req = if is_write {
                MemRequest::write(addr, sent as u64)
            } else {
                MemRequest::read(addr, sent as u64)
            };
            if mem.try_enqueue(req) {
                sent += 1;
            }
        }
        mem.tick();
        while mem.pop_response().is_some() {
            done += 1;
        }
        guard += 1;
        assert!(guard < 5_000_000, "workload did not complete");
    }
    mem
}

#[test]
fn streaming_workload_is_protocol_clean() {
    let mut cfg = DramConfig::ddr4_2400r();
    cfg.log_commands = true;
    cfg.refresh_enabled = false;
    let addrs: Vec<(u64, bool)> = (0..2048u64).map(|i| (i * 64, i % 3 == 0)).collect();
    let mem = run_workload(cfg.clone(), &addrs);
    let log = mem.command_log(0);
    assert!(!log.is_empty());
    validate_trace(log, &cfg.timing, &cfg.org).expect("no timing violation");
}

#[test]
fn refresh_workload_is_protocol_clean() {
    let mut cfg = DramConfig::ddr4_2400r();
    cfg.log_commands = true;
    cfg.refresh_enabled = true;
    // Span multiple refresh intervals with a slow trickle of requests.
    let mut mem = MemorySystem::new(cfg.clone());
    let mut sent = 0u64;
    for cycle in 0..40_000u64 {
        if cycle % 37 == 0 && mem.try_enqueue(MemRequest::read((sent * 8192) % (1 << 28), sent)) {
            sent += 1;
        }
        mem.tick();
        while mem.pop_response().is_some() {}
    }
    let log = mem.command_log(0);
    assert!(
        log.iter().any(|c| c.kind == menda_dram::CommandKind::Ref),
        "no refresh recorded"
    );
    validate_trace(log, &cfg.timing, &cfg.org).expect("no timing violation");
}

/// Whatever the request mix, the issued command stream obeys the
/// protocol (per channel), including with multiple ranks.
#[test]
fn random_workloads_are_protocol_clean() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xD5A0 + seed);
        let addrs = arb_addrs(&mut rng, 26, 150);
        let ranks = 1 << rng.random_range(0..2);
        let mut cfg = DramConfig::ddr4_2400r().with_ranks(ranks);
        cfg.log_commands = true;
        cfg.refresh_enabled = rng.random::<bool>();
        let mem = run_workload(cfg.clone(), &addrs);
        let log = mem.command_log(0);
        if let Err(v) = validate_trace(log, &cfg.timing, &cfg.org) {
            panic!("violation (seed {seed}): {v}");
        }
    }
}

/// The LPDDR4 configuration is protocol-clean too.
#[test]
fn lpddr4_workloads_are_protocol_clean() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x19DD + seed);
        let addrs = arb_addrs(&mut rng, 24, 100);
        let mut cfg = DramConfig::lpddr4_3200();
        cfg.log_commands = true;
        cfg.refresh_enabled = false;
        let mem = run_workload(cfg.clone(), &addrs);
        let log = mem.command_log(0);
        if let Err(v) = validate_trace(log, &cfg.timing, &cfg.org) {
            panic!("violation (seed {seed}): {v}");
        }
    }
}
