//! Property-style tests of the DRAM simulator: address mapping bijectivity
//! and end-to-end request completion under arbitrary access patterns.
//! Randomness comes from the in-repo seeded generator (the offline build
//! cannot fetch `proptest`); every case prints its seed on failure.

use std::collections::{BTreeSet, HashSet};

use menda_dram::{
    AddressMapper, DramConfig, MappingScheme, MemRequest, MemorySystem, Organization, ReqKind,
};
use menda_sparse::rng::StdRng;

const SCHEMES: [MappingScheme; 3] = [
    MappingScheme::RoBaRaCoCh,
    MappingScheme::ChRaBaRoCo,
    MappingScheme::RoCoBaRaCh,
];

/// Decoding is injective over line addresses and every coordinate is in
/// range, for every scheme and several organizations.
#[test]
fn decode_is_injective() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xA11 + seed);
        let scheme = SCHEMES[rng.random_range(0..SCHEMES.len())];
        let mut org = Organization::ddr4_4gb_x8();
        org.channels = 1 << rng.random_range(0..2);
        org.ranks = 1 << rng.random_range(0..2);
        org.rows = 64; // keep the exhaustive space small
        org.columns = 8;
        let lines: BTreeSet<u64> = {
            let n = rng.random_range(1..200);
            (0..n).map(|_| rng.random_range(0..4096) as u64).collect()
        };
        let mapper = AddressMapper::new(org, scheme);
        let mut seen = HashSet::new();
        let capacity_lines = (org.capacity_bytes() / 64) as u64;
        for &line in &lines {
            let line = line % capacity_lines;
            let coord = mapper.decode(line * 64);
            assert!(coord.channel < org.channels);
            assert!(coord.rank < org.ranks);
            assert!(coord.bank_group < org.bank_groups);
            assert!(coord.bank < org.banks_per_group);
            assert!(coord.row < org.rows);
            assert!(coord.column < org.columns);
            seen.insert(coord);
        }
        let distinct: HashSet<u64> = lines.iter().map(|l| l % capacity_lines).collect();
        assert_eq!(seen.len(), distinct.len(), "seed {seed}");
    }
}

/// Every enqueued request eventually completes exactly once, whatever
/// the address mix, and read responses match their requests.
#[test]
fn all_requests_complete_exactly_once() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xB22 + seed);
        let n = rng.random_range(1..120);
        let addrs: Vec<(u64, bool)> = (0..n)
            .map(|_| (rng.next_u64() & ((1 << 24) - 1), rng.random::<bool>()))
            .collect();
        let mut cfg = DramConfig::ddr4_2400r().with_channels(1 << rng.random_range(0..2));
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg);
        let mut pending = addrs.len();
        let mut sent = 0usize;
        let mut seen = HashSet::new();
        let mut cycles = 0u64;
        while pending > 0 {
            if sent < addrs.len() {
                let (addr, is_write) = addrs[sent];
                let req = if is_write {
                    MemRequest::write(addr, sent as u64)
                } else {
                    MemRequest::read(addr, sent as u64)
                };
                if mem.try_enqueue(req) {
                    sent += 1;
                }
            }
            mem.tick();
            cycles += 1;
            while let Some(resp) = mem.pop_response() {
                assert!(seen.insert(resp.id), "duplicate completion {}", resp.id);
                let (addr, is_write) = addrs[resp.id as usize];
                assert_eq!(resp.addr, addr & !63);
                assert_eq!(resp.kind == ReqKind::Write, is_write);
                pending -= 1;
            }
            assert!(
                cycles < 2_000_000,
                "seed {seed}: simulation did not converge"
            );
        }
        assert_eq!(seen.len(), addrs.len());
    }
}

/// Row-hit + miss + conflict classification counts every first command
/// exactly once per DRAM-visiting request.
#[test]
fn classification_is_total() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xC33 + seed);
        let n = rng.random_range(1..100);
        let addrs: Vec<u64> = (0..n).map(|_| rng.next_u64() & ((1 << 22) - 1)).collect();
        let mut cfg = DramConfig::ddr4_2400r();
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg);
        let mut sent = 0usize;
        let mut done = 0usize;
        // Only reads, distinct tags; store-to-load forwarding impossible.
        while done < addrs.len() {
            if sent < addrs.len() && mem.try_enqueue(MemRequest::read(addrs[sent], sent as u64)) {
                sent += 1;
            }
            mem.tick();
            while mem.pop_response().is_some() {
                done += 1;
            }
        }
        let s = mem.stats();
        assert_eq!(
            (s.row_hits + s.row_misses + s.row_conflicts) as usize,
            addrs.len()
        );
        assert_eq!(s.reads as usize, addrs.len());
    }
}
