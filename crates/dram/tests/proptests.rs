//! Property-based tests of the DRAM simulator: address mapping bijectivity
//! and end-to-end request completion under arbitrary access patterns.

use proptest::prelude::*;

use menda_dram::{
    AddressMapper, DramConfig, MappingScheme, MemRequest, MemorySystem, Organization, ReqKind,
};

fn arb_scheme() -> impl Strategy<Value = MappingScheme> {
    prop_oneof![
        Just(MappingScheme::RoBaRaCoCh),
        Just(MappingScheme::ChRaBaRoCo),
        Just(MappingScheme::RoCoBaRaCh),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Decoding is injective over line addresses and every coordinate is in
    /// range, for every scheme and several organizations.
    #[test]
    fn decode_is_injective(
        scheme in arb_scheme(),
        channels_pow in 0u32..2,
        ranks_pow in 0u32..2,
        lines in proptest::collection::btree_set(0u64..4096, 1..200),
    ) {
        let mut org = Organization::ddr4_4gb_x8();
        org.channels = 1 << channels_pow;
        org.ranks = 1 << ranks_pow;
        org.rows = 64; // keep the exhaustive space small
        org.columns = 8;
        let mapper = AddressMapper::new(org, scheme);
        let mut seen = std::collections::HashSet::new();
        let capacity_lines = (org.capacity_bytes() / 64) as u64;
        for &line in &lines {
            let line = line % capacity_lines;
            let coord = mapper.decode(line * 64);
            prop_assert!(coord.channel < org.channels);
            prop_assert!(coord.rank < org.ranks);
            prop_assert!(coord.bank_group < org.bank_groups);
            prop_assert!(coord.bank < org.banks_per_group);
            prop_assert!(coord.row < org.rows);
            prop_assert!(coord.column < org.columns);
            seen.insert(coord);
        }
        let distinct: std::collections::HashSet<u64> =
            lines.iter().map(|l| l % capacity_lines).collect();
        prop_assert_eq!(seen.len(), distinct.len());
    }

    /// Every enqueued request eventually completes exactly once, whatever
    /// the address mix, and read responses match their requests.
    #[test]
    fn all_requests_complete_exactly_once(
        addrs in proptest::collection::vec((0u64..(1 << 24), any::<bool>()), 1..120),
        channels_pow in 0u32..2,
    ) {
        let mut cfg = DramConfig::ddr4_2400r().with_channels(1 << channels_pow);
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg);
        let mut pending = addrs.len();
        let mut sent = 0usize;
        let mut seen = std::collections::HashSet::new();
        let mut cycles = 0u64;
        while pending > 0 {
            if sent < addrs.len() {
                let (addr, is_write) = addrs[sent];
                let req = if is_write {
                    MemRequest::write(addr, sent as u64)
                } else {
                    MemRequest::read(addr, sent as u64)
                };
                if mem.try_enqueue(req) {
                    sent += 1;
                }
            }
            mem.tick();
            cycles += 1;
            while let Some(resp) = mem.pop_response() {
                prop_assert!(seen.insert(resp.id), "duplicate completion {}", resp.id);
                let (addr, is_write) = addrs[resp.id as usize];
                prop_assert_eq!(resp.addr, addr & !63);
                prop_assert_eq!(resp.kind == ReqKind::Write, is_write);
                pending -= 1;
            }
            prop_assert!(cycles < 2_000_000, "simulation did not converge");
        }
        prop_assert_eq!(seen.len(), addrs.len());
    }

    /// Row-hit + miss + conflict classification counts every first command
    /// exactly once per DRAM-visiting request.
    #[test]
    fn classification_is_total(
        addrs in proptest::collection::vec(0u64..(1 << 22), 1..100),
    ) {
        let mut cfg = DramConfig::ddr4_2400r();
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg);
        let mut sent = 0usize;
        let mut done = 0usize;
        // Only reads, distinct tags; store-to-load forwarding impossible.
        while done < addrs.len() {
            if sent < addrs.len() && mem.try_enqueue(MemRequest::read(addrs[sent], sent as u64)) {
                sent += 1;
            }
            mem.tick();
            while mem.pop_response().is_some() {
                done += 1;
            }
        }
        let s = mem.stats();
        prop_assert_eq!(
            (s.row_hits + s.row_misses + s.row_conflicts) as usize,
            addrs.len()
        );
        prop_assert_eq!(s.reads as usize, addrs.len());
    }
}
