//! Row-buffer policy ablation: open-page wins on streaming (row hits),
//! closed-page removes conflicts on row-thrashing patterns.

use menda_dram::{validate_trace, DramConfig, MemRequest, MemorySystem, RowPolicy};

fn run(policy: RowPolicy, addr_of: impl Fn(u64) -> u64, count: u64) -> (u64, MemorySystem) {
    let mut cfg = DramConfig::ddr4_2400r();
    cfg.refresh_enabled = false;
    cfg.row_policy = policy;
    cfg.log_commands = true;
    let mut mem = MemorySystem::new(cfg);
    let (mut sent, mut done, mut cycles) = (0u64, 0u64, 0u64);
    while done < count {
        if sent < count && mem.try_enqueue(MemRequest::read(addr_of(sent), sent)) {
            sent += 1;
        }
        mem.tick();
        cycles += 1;
        while mem.pop_response().is_some() {
            done += 1;
        }
        assert!(cycles < 10_000_000, "deadlock");
    }
    (cycles, mem)
}

#[test]
fn open_page_wins_on_streaming() {
    let n = 1024;
    let (open, _) = run(RowPolicy::OpenPage, |i| i * 64, n);
    let (closed, _) = run(RowPolicy::ClosedPage, |i| i * 64, n);
    assert!(
        open * 3 < closed * 2,
        "open page {open} not clearly faster than closed {closed} on a stream"
    );
}

#[test]
fn closed_page_removes_conflicts_on_thrashing() {
    // Two interleaved streams in the same bank, different rows.
    let pattern = |i: u64| (i / 2) * 64 + (i % 2) * (256 << 20);
    let n = 1024;
    let (_, open_mem) = run(RowPolicy::OpenPage, pattern, n);
    let (_, closed_mem) = run(RowPolicy::ClosedPage, pattern, n);
    // Under closed page every access finds its bank precharged: zero
    // conflicts by construction.
    assert_eq!(closed_mem.stats().row_conflicts, 0);
    assert!(closed_mem.stats().row_hits <= open_mem.stats().row_hits);
}

#[test]
fn closed_page_traffic_is_protocol_clean() {
    let (_, mem) = run(RowPolicy::ClosedPage, |i| i * 4096, 512);
    let cfg = mem.config().clone();
    validate_trace(mem.command_log(0), &cfg.timing, &cfg.org)
        .expect("closed-page schedule violates the protocol");
}

#[test]
fn hbm2_config_is_functional_and_clean() {
    let mut cfg = DramConfig::hbm2_pseudo_channel();
    cfg.refresh_enabled = false;
    cfg.log_commands = true;
    let mut mem = MemorySystem::new(cfg.clone());
    let (mut sent, mut done) = (0u64, 0u64);
    while done < 512 {
        if sent < 512 && mem.try_enqueue(MemRequest::read(sent * 640, sent)) {
            sent += 1;
        }
        mem.tick();
        while mem.pop_response().is_some() {
            done += 1;
        }
    }
    assert_eq!(mem.stats().reads, 512);
    validate_trace(mem.command_log(0), &cfg.timing, &cfg.org).expect("protocol clean");
    // 16 GB/s-class pseudo-channel.
    assert!((cfg.peak_bandwidth_gbs() - 16.0).abs() < 0.1);
}
