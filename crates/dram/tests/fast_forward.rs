//! Seeded property test for the event-driven fast path at the DRAM level:
//! random traffic driven through [`MemorySystem::advance`] must produce
//! the same per-channel command logs (same commands, same issue cycles),
//! the same statistics and the same response completion times as the
//! per-cycle [`MemorySystem::tick`] reference.
//!
//! The driver injects requests from a pre-generated schedule with
//! head-of-line blocking: a request whose channel queue is full blocks all
//! later arrivals until it fits. Queue room only changes at channel
//! events, so retrying every cycle (reference) and retrying at
//! `next_event_cycle()` (fast) admit each request at the same cycle.

use menda_dram::{DramConfig, MemRequest, MemResponse, MemorySystem, RowPolicy};
use menda_sparse::rng::StdRng;

struct Outcome {
    logs: Vec<Vec<menda_dram::CommandRecord>>,
    stats: Vec<menda_dram::DramStats>,
    responses: Vec<(u64, u64, u64)>,
}

fn drive(config: &DramConfig, schedule: &[(u64, MemRequest)], horizon: u64, fast: bool) -> Outcome {
    let mut mem = MemorySystem::new(config.clone());
    let mut responses: Vec<MemResponse> = Vec::new();
    let mut next = 0usize;
    while mem.now() < horizon || next < schedule.len() {
        while next < schedule.len() && schedule[next].0 <= mem.now() {
            if mem.try_enqueue(schedule[next].1) {
                next += 1;
            } else {
                break;
            }
        }
        let blocked = next < schedule.len() && schedule[next].0 <= mem.now();
        if fast {
            let ticks = if blocked {
                // Room only appears when a command issues, i.e. at the
                // next channel event.
                let ev = mem
                    .next_event_cycle()
                    .expect("blocked enqueue with no pending events: deadlock");
                ev - mem.now()
            } else if next < schedule.len() {
                schedule[next].0.min(horizon.max(mem.now() + 1)) - mem.now()
            } else {
                horizon.saturating_sub(mem.now()).max(1)
            };
            mem.advance(ticks);
        } else {
            mem.tick();
        }
        responses.extend(mem.drain_responses());
        assert!(mem.now() < horizon + 1_000_000, "driver ran away");
    }
    if config.log_commands {
        mem.verify_command_logs()
            .unwrap_or_else(|(ch, v)| panic!("channel {ch} (fast={fast}): {v}"));
    }
    let mut resp: Vec<(u64, u64, u64)> = responses
        .iter()
        .map(|r| (r.done_at, r.id, r.addr))
        .collect();
    resp.sort_unstable();
    let channels = config.org.channels;
    Outcome {
        logs: (0..channels).map(|c| mem.command_log(c).to_vec()).collect(),
        stats: (0..channels).map(|c| *mem.channel_stats(c)).collect(),
        responses: resp,
    }
}

/// Random traffic with bursty arrivals, mixed reads/writes and address
/// locality knobs, across row policies and channel/rank shapes.
#[test]
fn random_traffic_matches_per_cycle_reference() {
    let mut rng = StdRng::seed_from_u64(0x0FA5_7F0D);
    for seed_ix in 0..24 {
        let channels = 1 << (seed_ix % 2);
        let ranks = 1 << (seed_ix % 3 % 2);
        let mut config = DramConfig::ddr4_2400r()
            .with_channels(channels)
            .with_ranks(ranks);
        config.log_commands = true;
        if seed_ix % 5 == 0 {
            config.refresh_enabled = false;
        }
        if seed_ix % 3 == 0 {
            config.row_policy = RowPolicy::ClosedPage;
        }
        if seed_ix % 4 == 0 {
            // Some seeds also run the live checker on both paths.
            menda_dram::set_check_protocol_default(Some(true));
        }

        // Bursty schedule: clustered arrivals + occasional row reuse so
        // both open-row hits and full queues occur; the horizon crosses
        // several tREFI windows.
        let n_reqs = 300 + rng.random_range(0..200);
        let mut schedule = Vec::with_capacity(n_reqs);
        let mut at = 0u64;
        let mut hot_rows: Vec<u64> = (0..4).map(|_| rng.next_u64() % (1 << 22)).collect();
        for i in 0..n_reqs {
            at += match rng.random_range(0..10) {
                0..=5 => rng.random_range(0..4) as u64,
                6..=8 => rng.random_range(0..200) as u64,
                _ => rng.random_range(0..4000) as u64,
            };
            let base = if rng.random_range(0..10) < 6 {
                hot_rows[rng.random_range(0..hot_rows.len())]
            } else {
                let fresh = rng.next_u64() % (1 << 22);
                let slot = rng.random_range(0..hot_rows.len());
                hot_rows[slot] = fresh;
                fresh
            };
            let addr = (base << 6) | (rng.next_u64() & 0x3F & !0x7);
            let req = if rng.random_range(0..4) == 0 {
                MemRequest::write(addr, i as u64)
            } else {
                MemRequest::read(addr, i as u64)
            };
            schedule.push((at, req));
        }
        let horizon = at + 40_000;

        let reference = drive(&config, &schedule, horizon, false);
        let fast = drive(&config, &schedule, horizon, true);
        menda_dram::set_check_protocol_default(None);

        for ch in 0..channels {
            assert_eq!(
                reference.logs[ch], fast.logs[ch],
                "seed {seed_ix}: channel {ch} command logs diverge"
            );
            assert_eq!(
                reference.stats[ch], fast.stats[ch],
                "seed {seed_ix}: channel {ch} stats diverge"
            );
            assert!(
                reference.logs[ch]
                    .iter()
                    .any(|c| c.kind == menda_dram::CommandKind::Ref)
                    == config.refresh_enabled,
                "seed {seed_ix}: refresh liveness mismatch on channel {ch}"
            );
        }
        assert_eq!(
            reference.responses, fast.responses,
            "seed {seed_ix}: response completion times diverge"
        );
        assert!(
            !reference.responses.is_empty(),
            "seed {seed_ix}: no traffic"
        );
    }
}

/// The recorded fast-path command stream passes the offline protocol
/// checker for a mixed open/closed-page multi-rank configuration.
#[test]
fn fast_path_command_logs_pass_offline_checker() {
    let mut rng = StdRng::seed_from_u64(0xC4EC);
    for policy in [RowPolicy::OpenPage, RowPolicy::ClosedPage] {
        let mut config = DramConfig::ddr4_2400r().with_channels(2).with_ranks(2);
        config.log_commands = true;
        config.row_policy = policy;
        let mut mem = MemorySystem::new(config.clone());
        let mut sent = 0u64;
        let mut next_inject = 0u64;
        while mem.now() < 30_000 {
            if sent < 400 && mem.now() >= next_inject {
                let addr = (rng.next_u64() % (1 << 28)) & !0x7;
                let req = if sent.is_multiple_of(3) {
                    MemRequest::write(addr, sent)
                } else {
                    MemRequest::read(addr, sent)
                };
                if mem.try_enqueue(req) {
                    sent += 1;
                    next_inject = mem.now() + 7;
                }
            }
            let stop = if sent < 400 {
                next_inject.max(mem.now() + 1)
            } else {
                30_000
            };
            let ticks = mem
                .next_event_cycle()
                .map_or(stop, |ev| ev.min(stop))
                .saturating_sub(mem.now())
                .max(1);
            mem.advance(ticks);
            mem.drain_responses();
        }
        mem.verify_command_logs()
            .unwrap_or_else(|(ch, v)| panic!("{policy:?}: channel {ch}: {v}"));
        assert!(sent >= 400, "{policy:?}: only {sent} requests injected");
    }
}
