//! Independent DDR4 protocol checker.
//!
//! [`ProtocolChecker`] consumes the issued command stream of **one
//! channel** — live (behind [`crate::DramConfig::check_protocol`]) or
//! offline (from [`crate::ChannelController::command_log`]) — and
//! re-derives every JEDEC constraint from scratch with its own shadow
//! state. It deliberately shares **no** code with the controller's
//! "earliest-allowed" bookkeeping in [`crate::Bank`]/[`crate::bank`]: the
//! controller decides issuability from the same state its debug asserts
//! check, so a forgotten constraint there is self-certifying. The checker
//! exists to break that circularity.
//!
//! Checked rules:
//!
//! * **per bank** — `tRCD` (ACT→CAS), `tRAS` (ACT→PRE), `tRP` (PRE→ACT),
//!   `tRC` (ACT→ACT), `tRTP` (RD→PRE), write recovery
//!   (`tCWL + tBL + tWR`, WR→PRE);
//! * **per rank** — `tRRD_S/L` and `tFAW` activation throttling,
//!   `tCCD_S/L` CAS spacing, `tWTR` write-to-read turnaround, `tRFC`
//!   (no command to a refreshing rank, REF→REF spacing);
//! * **data bus** — RD/WR burst windows (`issue + tCL/tCWL` for `tBL`
//!   cycles) must never overlap, including across ranks;
//! * **state machine** — no ACT to an open bank, no CAS to a closed bank
//!   or a mismatching row, no REF with an open bank, cycle-monotonic
//!   command streams;
//! * **liveness** — every due refresh is serviced within the JEDEC
//!   postpone budget ([`REFRESH_DEADLINE_INTERVALS`]`×tREFI`), and — in
//!   live mode, where the controller reports queue ages — every request
//!   retires within [`ProtocolChecker::request_age_bound`] cycles.
//!
//! Unlike [`crate::validate_trace`] (which post-processes a finished
//! trace), the checker is incremental: the controller feeds it one
//! command at a time, so a violation aborts the simulation at the cycle
//! it happens with the full constraint name in the panic message.

use crate::command::{CommandKind, CommandRecord};
use crate::{DramConfig, DramTiming};

/// A refresh must be serviced within this many `tREFI` of becoming due
/// (JEDEC DDR4 allows postponing at most 8 `tREFI`; the deadline for the
/// pending refresh is therefore 9 intervals after the previous one).
pub const REFRESH_DEADLINE_INTERVALS: u64 = 9;

/// A detected protocol or liveness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// Violated rule (e.g. `"tRCD"`, `"bus-collision"`,
    /// `"refresh-starvation"`).
    pub rule: &'static str,
    /// Bus cycle at which the violation was detected.
    pub cycle: u64,
    /// Human-readable context (command indices, required vs observed
    /// separations, coordinates).
    pub message: String,
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at cycle {}: {}", self.rule, self.cycle, self.message)
    }
}

impl std::error::Error for ProtocolViolation {}

/// Shadow row-buffer and command-history state of one bank.
#[derive(Debug, Clone, Copy, Default)]
struct ShadowBank {
    open_row: Option<usize>,
    last_act: Option<u64>,
    last_pre: Option<u64>,
    last_rd: Option<u64>,
    last_wr: Option<u64>,
}

/// Shadow per-rank state: activation window, CAS history and refresh
/// bookkeeping.
#[derive(Debug, Clone, Default)]
struct ShadowRank {
    /// Up to the last four ACTs: `(cycle, flat_bank, bank_group)`.
    acts: Vec<(u64, usize, usize)>,
    /// Last CAS: `(cycle, bank_group)`.
    last_cas: Option<(u64, usize)>,
    /// Last WR CAS cycle (for `tWTR`).
    last_wr_cas: Option<u64>,
    /// Refreshes observed so far.
    refs_done: u64,
    /// Last REF cycle (for REF→REF `tRFC` spacing).
    last_ref: Option<u64>,
    /// Rank is busy refreshing until this cycle.
    ref_busy_until: u64,
}

/// Incremental shadow-state checker for one channel's command stream.
///
/// Construct with [`ProtocolChecker::new`], then feed every command in
/// issue order to [`ProtocolChecker::observe`]; call
/// [`ProtocolChecker::advance`] on idle cycles so refresh deadlines are
/// still enforced, and [`ProtocolChecker::finish`] at end of simulation.
/// For recorded traces, [`ProtocolChecker::check_trace`] does all of the
/// above in one call.
#[derive(Debug, Clone)]
pub struct ProtocolChecker {
    t: DramTiming,
    banks_per_rank: usize,
    banks_per_group: usize,
    refresh_enabled: bool,
    request_age_bound: u64,
    banks: Vec<ShadowBank>,
    ranks: Vec<ShadowRank>,
    /// End (exclusive) of the last data burst on the channel bus.
    bus_busy_until: u64,
    /// Start of the last data burst (bursts must also start in order).
    last_burst_start: u64,
    last_cycle: u64,
    /// Commands observed so far (used in violation messages).
    observed: usize,
}

impl ProtocolChecker {
    /// Creates a checker for one channel of `config`, with fresh shadow
    /// state (all banks precharged, first refresh due after one `tREFI`).
    pub fn new(config: &DramConfig) -> Self {
        let t = config.timing;
        let queue_depth = (config.read_queue + config.write_queue) as u64;
        Self {
            t,
            banks_per_rank: config.org.banks_per_rank(),
            banks_per_group: config.org.banks_per_group,
            refresh_enabled: config.refresh_enabled,
            // Worst case: every queued predecessor pays a full row cycle,
            // plus a refresh catch-up burst after a postponed refresh.
            request_age_bound: queue_depth * (t.t_rc + t.t_bl)
                + 2 * t.t_refi
                + (REFRESH_DEADLINE_INTERVALS + 1) * t.t_rfc,
            banks: vec![ShadowBank::default(); config.org.ranks * config.org.banks_per_rank()],
            ranks: vec![ShadowRank::default(); config.org.ranks],
            bus_busy_until: 0,
            last_burst_start: 0,
            last_cycle: 0,
            observed: 0,
        }
    }

    /// Cycles within which every request must retire (see `liveness` in
    /// the module docs). Derived from queue depths and refresh timing.
    pub fn request_age_bound(&self) -> u64 {
        self.request_age_bound
    }

    /// Checks the age of an outstanding request against
    /// [`Self::request_age_bound`].
    ///
    /// # Errors
    ///
    /// Returns a `request-starvation` violation when the bound is
    /// exceeded.
    pub fn check_request_age(&self, enq_at: u64, now: u64) -> Result<(), ProtocolViolation> {
        let age = now.saturating_sub(enq_at);
        if age > self.request_age_bound {
            return Err(ProtocolViolation {
                rule: "request-starvation",
                cycle: now,
                message: format!(
                    "request enqueued at cycle {enq_at} still outstanding after {age} cycles \
                     (bound {})",
                    self.request_age_bound
                ),
            });
        }
        Ok(())
    }

    /// Verifies time-based liveness up to `now` without observing a
    /// command: every rank's pending refresh must still be within its
    /// postpone deadline.
    ///
    /// # Errors
    ///
    /// Returns a `refresh-starvation` violation when a rank's refresh is
    /// overdue past [`REFRESH_DEADLINE_INTERVALS`]`×tREFI`.
    pub fn advance(&self, now: u64) -> Result<(), ProtocolViolation> {
        if !self.refresh_enabled {
            return Ok(());
        }
        for (rank, r) in self.ranks.iter().enumerate() {
            let due = (r.refs_done + 1) * self.t.t_refi;
            let deadline = due + REFRESH_DEADLINE_INTERVALS * self.t.t_refi;
            if now > deadline {
                return Err(ProtocolViolation {
                    rule: "refresh-starvation",
                    cycle: now,
                    message: format!(
                        "rank {rank} refresh #{} due at cycle {due} not serviced by its \
                         deadline {deadline} ({REFRESH_DEADLINE_INTERVALS}x tREFI postpone limit)",
                        r.refs_done + 1
                    ),
                });
            }
        }
        Ok(())
    }

    /// End-of-simulation hook: runs the liveness checks at `now`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::advance`].
    pub fn finish(&self, now: u64) -> Result<(), ProtocolViolation> {
        self.advance(now)
    }

    fn viol(
        &self,
        rule: &'static str,
        cycle: u64,
        message: String,
    ) -> Result<(), ProtocolViolation> {
        Err(ProtocolViolation {
            rule,
            cycle,
            message: format!("command #{}: {message}", self.observed),
        })
    }

    fn gap(
        &self,
        rule: &'static str,
        earlier: Option<u64>,
        cycle: u64,
        required: u64,
    ) -> Result<(), ProtocolViolation> {
        if let Some(when) = earlier {
            if cycle < when + required {
                return self.viol(
                    rule,
                    cycle,
                    format!(
                        "need {required} cycles after cycle {when}, got {}",
                        cycle - when
                    ),
                );
            }
        }
        Ok(())
    }

    /// Observes one issued command, updating shadow state and checking
    /// every constraint it participates in.
    ///
    /// # Errors
    ///
    /// Returns the violated rule; the checker state is then unspecified
    /// (one violation is terminal — the simulation is wrong).
    pub fn observe(&mut self, cmd: &CommandRecord) -> Result<(), ProtocolViolation> {
        if cmd.cycle < self.last_cycle {
            return self.viol(
                "non-monotonic-trace",
                cmd.cycle,
                format!(
                    "command issued at cycle {} after cycle {}",
                    cmd.cycle, self.last_cycle
                ),
            );
        }
        self.last_cycle = cmd.cycle;
        self.advance(cmd.cycle)?;

        let t = self.t;
        let rank = cmd.coord.rank;
        let flat = rank * self.banks_per_rank
            + cmd.coord.bank_group * self.banks_per_group
            + cmd.coord.bank;
        // REF targets a rank; every other command targets a bank and must
        // not land inside the rank's tRFC window.
        if cmd.kind != CommandKind::Ref && cmd.cycle < self.ranks[rank].ref_busy_until {
            return self.viol(
                "tRFC",
                cmd.cycle,
                format!(
                    "{:?} to rank {rank} while refreshing until cycle {}",
                    cmd.kind, self.ranks[rank].ref_busy_until
                ),
            );
        }
        match cmd.kind {
            CommandKind::Act => {
                let b = self.banks[flat];
                if let Some(row) = b.open_row {
                    return self.viol(
                        "ACT-on-open-bank",
                        cmd.cycle,
                        format!("bank {flat} already has row {row} open"),
                    );
                }
                self.gap("tRC", b.last_act, cmd.cycle, t.t_rc)?;
                self.gap("tRP", b.last_pre, cmd.cycle, t.t_rp)?;
                for &(when, other_flat, bg) in self.ranks[rank].acts.iter().rev() {
                    if other_flat == flat {
                        continue; // same bank is governed by tRC
                    }
                    let (rule, required) = if bg == cmd.coord.bank_group {
                        ("tRRD_L", t.t_rrd_l)
                    } else {
                        ("tRRD_S", t.t_rrd_s)
                    };
                    self.gap(rule, Some(when), cmd.cycle, required)?;
                }
                if self.ranks[rank].acts.len() == 4 {
                    self.gap("tFAW", Some(self.ranks[rank].acts[0].0), cmd.cycle, t.t_faw)?;
                }
                self.banks[flat].open_row = Some(cmd.coord.row);
                self.banks[flat].last_act = Some(cmd.cycle);
                let r = &mut self.ranks[rank];
                if r.acts.len() == 4 {
                    r.acts.remove(0);
                }
                r.acts.push((cmd.cycle, flat, cmd.coord.bank_group));
            }
            CommandKind::Pre => {
                let b = self.banks[flat];
                if b.open_row.is_some() {
                    self.gap("tRAS", b.last_act, cmd.cycle, t.t_ras)?;
                    self.gap("tRTP", b.last_rd, cmd.cycle, t.t_rtp)?;
                    self.gap("tWR", b.last_wr, cmd.cycle, t.t_cwl + t.t_bl + t.t_wr)?;
                }
                // PRE to an already-precharged bank is a JEDEC no-op.
                self.banks[flat].open_row = None;
                self.banks[flat].last_pre = Some(cmd.cycle);
            }
            CommandKind::Rd | CommandKind::Wr => {
                let is_read = cmd.kind == CommandKind::Rd;
                let b = self.banks[flat];
                match b.open_row {
                    None => {
                        return self.viol(
                            "CAS-on-closed-bank",
                            cmd.cycle,
                            format!("{:?} to precharged bank {flat}", cmd.kind),
                        );
                    }
                    Some(row) if row != cmd.coord.row => {
                        return self.viol(
                            "CAS-row-mismatch",
                            cmd.cycle,
                            format!(
                                "{:?} to row {} but bank {flat} has row {row} open",
                                cmd.kind, cmd.coord.row
                            ),
                        );
                    }
                    _ => {}
                }
                self.gap("tRCD", b.last_act, cmd.cycle, t.t_rcd)?;
                if let Some((when, bg)) = self.ranks[rank].last_cas {
                    let (rule, required) = if bg == cmd.coord.bank_group {
                        ("tCCD_L", t.t_ccd_l)
                    } else {
                        ("tCCD_S", t.t_ccd_s)
                    };
                    self.gap(rule, Some(when), cmd.cycle, required)?;
                }
                if is_read {
                    self.gap(
                        "tWTR",
                        self.ranks[rank].last_wr_cas,
                        cmd.cycle,
                        t.t_cwl + t.t_bl + t.t_wtr,
                    )?;
                }
                // Data-bus occupancy: the burst must start at or after the
                // end of the previous burst, whatever rank issued it.
                let start = cmd.cycle + if is_read { t.t_cl } else { t.t_cwl };
                if start < self.bus_busy_until || start < self.last_burst_start {
                    return self.viol(
                        "bus-collision",
                        cmd.cycle,
                        format!(
                            "burst [{start}, {}) overlaps bus busy until {} \
                             (previous burst started at {})",
                            start + t.t_bl,
                            self.bus_busy_until,
                            self.last_burst_start
                        ),
                    );
                }
                self.last_burst_start = start;
                self.bus_busy_until = start + t.t_bl;
                if is_read {
                    self.banks[flat].last_rd = Some(cmd.cycle);
                } else {
                    self.banks[flat].last_wr = Some(cmd.cycle);
                    self.ranks[rank].last_wr_cas = Some(cmd.cycle);
                }
                self.ranks[rank].last_cas = Some((cmd.cycle, cmd.coord.bank_group));
            }
            CommandKind::Ref => {
                let base = rank * self.banks_per_rank;
                for b in 0..self.banks_per_rank {
                    if let Some(row) = self.banks[base + b].open_row {
                        return self.viol(
                            "REF-with-open-bank",
                            cmd.cycle,
                            format!("rank {rank} bank {b} still has row {row} open"),
                        );
                    }
                }
                let last_ref = self.ranks[rank].last_ref;
                self.gap("tRFC", last_ref, cmd.cycle, t.t_rfc)?;
                let r = &mut self.ranks[rank];
                r.refs_done += 1;
                r.last_ref = Some(cmd.cycle);
                r.ref_busy_until = cmd.cycle + t.t_rfc;
            }
        }
        self.observed += 1;
        Ok(())
    }

    /// Serializes the checker's dynamic shadow state (everything except
    /// the config-derived constants).
    pub fn save_state(&self, enc: &mut crate::snap::Encoder) {
        enc.seq(self.banks.len());
        for b in &self.banks {
            enc.opt_u64(b.open_row.map(|r| r as u64));
            enc.opt_u64(b.last_act);
            enc.opt_u64(b.last_pre);
            enc.opt_u64(b.last_rd);
            enc.opt_u64(b.last_wr);
        }
        enc.seq(self.ranks.len());
        for r in &self.ranks {
            enc.seq(r.acts.len());
            for &(cycle, flat, bg) in &r.acts {
                enc.u64(cycle);
                enc.usize(flat);
                enc.usize(bg);
            }
            match r.last_cas {
                Some((cycle, bg)) => {
                    enc.bool(true);
                    enc.u64(cycle);
                    enc.usize(bg);
                }
                None => enc.bool(false),
            }
            enc.opt_u64(r.last_wr_cas);
            enc.u64(r.refs_done);
            enc.opt_u64(r.last_ref);
            enc.u64(r.ref_busy_until);
        }
        enc.u64(self.bus_busy_until);
        enc.u64(self.last_burst_start);
        enc.u64(self.last_cycle);
        enc.usize(self.observed);
    }

    /// Restores shadow state saved by [`ProtocolChecker::save_state`]
    /// onto a checker freshly built for the same config.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::snap::SnapError`] on truncated or out-of-domain
    /// bytes; the checker is left unspecified on error (callers discard
    /// it).
    pub fn restore_state(
        &mut self,
        dec: &mut crate::snap::Decoder<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        use crate::snap::SnapError;
        let n_banks = dec.len_capped(5)?;
        if n_banks != self.banks.len() {
            return Err(SnapError::BadValue);
        }
        for b in &mut self.banks {
            b.open_row = dec.opt_u64()?.map(|r| r as usize);
            b.last_act = dec.opt_u64()?;
            b.last_pre = dec.opt_u64()?;
            b.last_rd = dec.opt_u64()?;
            b.last_wr = dec.opt_u64()?;
        }
        let n_ranks = dec.len_capped(5)?;
        if n_ranks != self.ranks.len() {
            return Err(SnapError::BadValue);
        }
        for r in &mut self.ranks {
            let n_acts = dec.len_capped(24)?;
            if n_acts > 4 {
                return Err(SnapError::BadValue);
            }
            r.acts.clear();
            for _ in 0..n_acts {
                r.acts.push((dec.u64()?, dec.usize()?, dec.usize()?));
            }
            r.last_cas = match dec.bool()? {
                true => Some((dec.u64()?, dec.usize()?)),
                false => None,
            };
            r.last_wr_cas = dec.opt_u64()?;
            r.refs_done = dec.u64()?;
            r.last_ref = dec.opt_u64()?;
            r.ref_busy_until = dec.u64()?;
        }
        self.bus_busy_until = dec.u64()?;
        self.last_burst_start = dec.u64()?;
        self.last_cycle = dec.u64()?;
        self.observed = dec.usize()?;
        Ok(())
    }

    /// Validates a complete recorded command stream of one channel,
    /// including refresh-deadline liveness between commands.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_trace(
        trace: &[CommandRecord],
        config: &DramConfig,
    ) -> Result<(), ProtocolViolation> {
        let mut checker = Self::new(config);
        for cmd in trace {
            checker.observe(cmd)?;
        }
        checker.finish(trace.last().map_or(0, |c| c.cycle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramCoord;

    fn cfg() -> DramConfig {
        let mut c = DramConfig::ddr4_2400r();
        c.refresh_enabled = false;
        c
    }

    fn coord(bank: usize, row: usize, column: usize) -> DramCoord {
        DramCoord {
            channel: 0,
            rank: 0,
            bank_group: bank / 4,
            bank: bank % 4,
            row,
            column,
        }
    }

    fn cmd(cycle: u64, kind: CommandKind, c: DramCoord) -> CommandRecord {
        CommandRecord {
            cycle,
            kind,
            coord: c,
        }
    }

    #[test]
    fn legal_sequence_passes() {
        let trace = vec![
            cmd(0, CommandKind::Act, coord(0, 5, 0)),
            cmd(16, CommandKind::Rd, coord(0, 5, 0)),
            cmd(22, CommandKind::Rd, coord(0, 5, 1)),
            cmd(61, CommandKind::Pre, coord(0, 5, 0)),
            cmd(77, CommandKind::Act, coord(0, 6, 0)),
        ];
        ProtocolChecker::check_trace(&trace, &cfg()).expect("legal");
    }

    #[test]
    fn non_monotonic_trace_is_rejected() {
        let trace = vec![
            cmd(20, CommandKind::Act, coord(0, 5, 0)),
            cmd(10, CommandKind::Act, coord(1, 5, 0)),
        ];
        let v = ProtocolChecker::check_trace(&trace, &cfg()).unwrap_err();
        assert_eq!(v.rule, "non-monotonic-trace");
    }

    #[test]
    fn bus_collision_across_ranks_is_detected() {
        // Two reads on different ranks 2 cycles apart: tCCD does not apply
        // (per-rank), but the data bursts overlap on the shared bus.
        let mut c = cfg();
        c.org.ranks = 2;
        let r1 = DramCoord {
            rank: 1,
            ..coord(0, 5, 0)
        };
        let trace = vec![
            cmd(0, CommandKind::Act, coord(0, 5, 0)),
            cmd(1, CommandKind::Act, r1),
            cmd(17, CommandKind::Rd, coord(0, 5, 0)),
            cmd(19, CommandKind::Rd, r1),
        ];
        let v = ProtocolChecker::check_trace(&trace, &c).unwrap_err();
        assert_eq!(v.rule, "bus-collision");
    }

    #[test]
    fn command_during_trfc_is_detected() {
        let mut c = cfg();
        c.refresh_enabled = true;
        let t = c.timing;
        let trace = vec![
            cmd(t.t_refi, CommandKind::Ref, coord(0, 0, 0)),
            cmd(t.t_refi + 10, CommandKind::Act, coord(0, 5, 0)),
        ];
        let v = ProtocolChecker::check_trace(&trace, &c).unwrap_err();
        assert_eq!(v.rule, "tRFC");
    }

    #[test]
    fn back_to_back_refreshes_violate_trfc() {
        let mut c = cfg();
        c.refresh_enabled = true;
        let t = c.timing;
        let trace = vec![
            cmd(t.t_refi, CommandKind::Ref, coord(0, 0, 0)),
            cmd(t.t_refi + 1, CommandKind::Ref, coord(0, 0, 0)),
        ];
        let v = ProtocolChecker::check_trace(&trace, &c).unwrap_err();
        assert_eq!(v.rule, "tRFC");
    }

    #[test]
    fn refresh_with_open_bank_is_detected() {
        let mut c = cfg();
        c.refresh_enabled = true;
        let t = c.timing;
        let trace = vec![
            cmd(0, CommandKind::Act, coord(0, 5, 0)),
            cmd(t.t_refi, CommandKind::Ref, coord(0, 0, 0)),
        ];
        let v = ProtocolChecker::check_trace(&trace, &c).unwrap_err();
        assert_eq!(v.rule, "REF-with-open-bank");
    }

    #[test]
    fn overdue_refresh_is_starvation() {
        let mut c = cfg();
        c.refresh_enabled = true;
        let t = c.timing;
        // A command far past the first refresh deadline with no REF seen.
        let late = t.t_refi * (REFRESH_DEADLINE_INTERVALS + 2);
        let trace = vec![cmd(late, CommandKind::Act, coord(0, 5, 0))];
        let v = ProtocolChecker::check_trace(&trace, &c).unwrap_err();
        assert_eq!(v.rule, "refresh-starvation");
        // `finish` alone catches it too (e.g. a fully idle starved rank).
        let checker = ProtocolChecker::new(&c);
        assert_eq!(checker.finish(late).unwrap_err().rule, "refresh-starvation");
    }

    #[test]
    fn timely_refreshes_satisfy_liveness() {
        let mut c = cfg();
        c.refresh_enabled = true;
        let t = c.timing;
        let trace: Vec<_> = (1..6)
            .map(|i| cmd(i * t.t_refi, CommandKind::Ref, coord(0, 0, 0)))
            .collect();
        ProtocolChecker::check_trace(&trace, &c).expect("on-schedule refreshes are clean");
    }

    #[test]
    fn request_age_bound_is_enforced() {
        let checker = ProtocolChecker::new(&cfg());
        let bound = checker.request_age_bound();
        checker.check_request_age(0, bound).expect("within bound");
        let v = checker.check_request_age(0, bound + 1).unwrap_err();
        assert_eq!(v.rule, "request-starvation");
    }

    #[test]
    fn structural_rules_match_validator() {
        let double_act = vec![
            cmd(0, CommandKind::Act, coord(0, 5, 0)),
            cmd(100, CommandKind::Act, coord(0, 6, 0)),
        ];
        assert_eq!(
            ProtocolChecker::check_trace(&double_act, &cfg())
                .unwrap_err()
                .rule,
            "ACT-on-open-bank"
        );
        let cas_closed = vec![cmd(0, CommandKind::Rd, coord(0, 5, 0))];
        assert_eq!(
            ProtocolChecker::check_trace(&cas_closed, &cfg())
                .unwrap_err()
                .rule,
            "CAS-on-closed-bank"
        );
        let wrong_row = vec![
            cmd(0, CommandKind::Act, coord(0, 5, 0)),
            cmd(20, CommandKind::Rd, coord(0, 7, 0)),
        ];
        assert_eq!(
            ProtocolChecker::check_trace(&wrong_row, &cfg())
                .unwrap_err()
                .rule,
            "CAS-row-mismatch"
        );
    }

    #[test]
    fn violation_display_is_informative() {
        let v = ProtocolViolation {
            rule: "tRCD",
            cycle: 42,
            message: "need 16 cycles, got 10".into(),
        };
        let s = v.to_string();
        assert!(s.contains("tRCD") && s.contains("42") && s.contains("16"));
    }
}
