//! Trace-driven CPU-mode simulation.
//!
//! Replays per-thread memory traces against the DRAM simulator the way the
//! paper runs mergeTrans traces in Ramulator's cpu mode (§5.1): each core
//! has the Table 1 private L1/L2, a shared L3 filters the remaining
//! traffic, each core may have up to 16 outstanding misses (MSHRs), and a
//! custom barrier synchronization keeps threads aligned at algorithm phase
//! boundaries.

use crate::{Cache, CacheConfig, CacheHierarchy, DramConfig, DramStats, MemRequest, MemorySystem};

/// One operation of a core's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Execute `cpu_ops` non-memory instructions, then perform one memory
    /// access at `addr`.
    Access {
        /// Non-memory instructions preceding the access.
        cpu_ops: u32,
        /// Byte address accessed.
        addr: u64,
        /// Whether the access is a store.
        is_write: bool,
    },
    /// Wait until every core reaches its barrier and all memory traffic
    /// drains.
    Barrier,
}

/// A per-core memory trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreTrace {
    ops: Vec<TraceOp>,
}

impl CoreTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a memory access preceded by `cpu_ops` non-memory
    /// instructions.
    pub fn access(&mut self, cpu_ops: u32, addr: u64, is_write: bool) {
        self.ops.push(TraceOp::Access {
            cpu_ops,
            addr,
            is_write,
        });
    }

    /// Appends a barrier.
    pub fn barrier(&mut self) {
        self.ops.push(TraceOp::Barrier);
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }
}

impl FromIterator<TraceOp> for CoreTrace {
    fn from_iter<T: IntoIterator<Item = TraceOp>>(iter: T) -> Self {
        Self {
            ops: iter.into_iter().collect(),
        }
    }
}

/// Configuration of the CPU-mode replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuModeConfig {
    /// Non-memory instructions retired per core per CPU cycle.
    pub ipc: u32,
    /// Outstanding misses per core (Table 1: 16 MSHR entries).
    pub mshr_entries: usize,
    /// CPU cycles per DRAM bus cycle (3 GHz core / 1.2 GHz bus ≈ 2.5 → 2).
    pub cpu_per_dram_tick: u32,
    /// Whether per-core L1/L2 and shared L3 filter the trace.
    pub caches_enabled: bool,
    /// Divides every cache capacity (minimum one set). When the traced
    /// *matrices* are scaled down by N relative to the paper, scaling the
    /// caches by the same N preserves the cache-to-working-set proportion
    /// the paper's experiments had; otherwise a scaled-down intermediate
    /// dataset can sit entirely in the Table 1 L3 and hide the memory
    /// behaviour under study.
    pub cache_scale: usize,
}

impl CpuModeConfig {
    /// Default configuration with caches scaled down by `n`.
    pub fn with_cache_scale(n: usize) -> Self {
        Self {
            cache_scale: n.max(1),
            ..Self::default()
        }
    }
}

impl Default for CpuModeConfig {
    fn default() -> Self {
        Self {
            ipc: 4,
            mshr_entries: 16,
            cpu_per_dram_tick: 2,
            caches_enabled: true,
            cache_scale: 1,
        }
    }
}

/// Scales a cache configuration down by `n`, keeping at least one set.
fn scaled_cache(base: CacheConfig, n: usize) -> CacheConfig {
    let min = base.block_size * base.ways;
    CacheConfig {
        capacity: (base.capacity / n.max(1)).max(min),
        ..base
    }
}

/// Result of a CPU-mode replay.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModeResult {
    /// DRAM bus cycles to complete every trace.
    pub cycles: u64,
    /// Wall-clock seconds implied by the bus clock.
    pub seconds: f64,
    /// Aggregated DRAM statistics.
    pub dram: DramStats,
    /// Achieved DRAM bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Per-level cache hit rates (L1 averaged over cores, then L3).
    pub cache_hit_rates: Vec<f64>,
}

#[derive(Debug)]
struct Core {
    trace: Vec<TraceOp>,
    pc: usize,
    cpu_remaining: u32,
    op_started: bool,
    outstanding: usize,
    at_barrier: bool,
    // Private L1+L2.
    private: CacheHierarchy,
    // Pending DRAM requests that failed to enqueue (retry next tick).
    retry: Vec<MemRequest>,
    done: bool,
}

/// Replays per-core traces on a [`MemorySystem`] and reports timing and
/// bandwidth.
///
/// # Example
///
/// ```
/// use menda_dram::cpu_mode::{CoreTrace, CpuMode, CpuModeConfig};
/// use menda_dram::DramConfig;
///
/// let mut t = CoreTrace::new();
/// for i in 0..64 { t.access(2, i * 64, false); }
/// let result = CpuMode::new(DramConfig::ddr4_2400r(), CpuModeConfig::default())
///     .run(vec![t]);
/// assert!(result.cycles > 0);
/// ```
#[derive(Debug)]
pub struct CpuMode {
    dram_config: DramConfig,
    config: CpuModeConfig,
}

impl CpuMode {
    /// Creates a replayer over the given DRAM and CPU configurations.
    pub fn new(dram_config: DramConfig, config: CpuModeConfig) -> Self {
        Self {
            dram_config,
            config,
        }
    }

    /// Runs the traces to completion and returns timing/bandwidth results.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn run(&self, traces: Vec<CoreTrace>) -> CpuModeResult {
        assert!(!traces.is_empty(), "need at least one core trace");
        let mut mem = MemorySystem::new(self.dram_config.clone());
        let ncores = traces.len();
        let mut cores: Vec<Core> = traces
            .into_iter()
            .map(|t| Core {
                trace: t.ops,
                pc: 0,
                cpu_remaining: 0,
                op_started: false,
                outstanding: 0,
                at_barrier: false,
                private: CacheHierarchy::new(vec![
                    scaled_cache(CacheConfig::l1(), self.config.cache_scale),
                    scaled_cache(CacheConfig::l2(), self.config.cache_scale),
                ]),
                retry: Vec::new(),
                done: false,
            })
            .collect();
        let mut l3 = Cache::new(scaled_cache(CacheConfig::l3(), self.config.cache_scale));
        let mut cycles: u64 = 0;
        // Request ids encode the issuing core so responses can free MSHRs:
        // id = core * 2^32 + seq. Writes use core = ncores (nobody waits).
        let mut seq: u64 = 0;

        loop {
            let all_done = cores.iter().all(|c| c.done);
            if all_done && mem.is_idle() {
                break;
            }
            // Barrier release: every active core at barrier with no
            // outstanding traffic.
            let barrier_release = cores
                .iter()
                .all(|c| c.done || (c.at_barrier && c.outstanding == 0 && c.retry.is_empty()));
            if barrier_release && cores.iter().any(|c| c.at_barrier) {
                for c in &mut cores {
                    if c.at_barrier {
                        c.at_barrier = false;
                        c.pc += 1;
                        if c.pc >= c.trace.len() {
                            c.done = true;
                        }
                    }
                }
            }

            for _ in 0..self.config.cpu_per_dram_tick {
                for (ci, core) in cores.iter_mut().enumerate() {
                    Self::tick_core(ci, core, &mut mem, &mut l3, &self.config, ncores, &mut seq);
                }
            }
            mem.tick();
            cycles += 1;
            while let Some(resp) = mem.pop_response() {
                let core_idx = (resp.id >> 32) as usize;
                if core_idx < ncores {
                    cores[core_idx].outstanding = cores[core_idx].outstanding.saturating_sub(1);
                }
            }
            debug_assert!(cycles < u64::MAX);
        }

        let dram = mem.stats();
        let seconds = cycles as f64 / (self.dram_config.clock_mhz as f64 * 1e6);
        let bandwidth = dram.utilized_bandwidth_gbs(
            self.dram_config.clock_mhz,
            self.dram_config.org.transaction_bytes,
        );
        let mut hit_rates = vec![0.0, 0.0];
        for c in &cores {
            let r = c.private.hit_rates();
            hit_rates[0] += r[0] / ncores as f64;
            hit_rates[1] += r[1] / ncores as f64;
        }
        hit_rates.push(l3.hit_rate());
        CpuModeResult {
            cycles,
            seconds,
            dram,
            bandwidth_gbs: bandwidth,
            cache_hit_rates: hit_rates,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn tick_core(
        ci: usize,
        core: &mut Core,
        mem: &mut MemorySystem,
        l3: &mut Cache,
        cfg: &CpuModeConfig,
        ncores: usize,
        seq: &mut u64,
    ) {
        // Flush retries first; they already passed the caches.
        while let Some(req) = core.retry.pop() {
            if !mem.try_enqueue(req) {
                core.retry.push(req);
                return;
            }
        }
        if core.done || core.at_barrier {
            return;
        }
        let Some(&op) = core.trace.get(core.pc) else {
            core.done = true;
            return;
        };
        match op {
            TraceOp::Barrier => {
                core.at_barrier = true;
            }
            TraceOp::Access {
                cpu_ops,
                addr,
                is_write,
            } => {
                if !core.op_started {
                    core.cpu_remaining = cpu_ops;
                    core.op_started = true;
                }
                if core.cpu_remaining > 0 {
                    core.cpu_remaining = core.cpu_remaining.saturating_sub(cfg.ipc);
                    if core.cpu_remaining > 0 {
                        return;
                    }
                }
                // MSHR gate: stall until a miss slot is free (the access may
                // need one; checking before touching cache state keeps the
                // model consistent).
                if core.outstanding >= cfg.mshr_entries {
                    return;
                }
                // Memory access through the caches.
                let mut fills: Vec<u64> = Vec::new();
                let mut writebacks: Vec<u64> = Vec::new();
                if cfg.caches_enabled {
                    let t = core.private.access(addr, is_write);
                    writebacks.extend(t.writebacks);
                    if let Some(fill) = t.fill {
                        let out = l3.access(fill, false);
                        if let Some(wb) = out.writeback {
                            writebacks.push(wb);
                        }
                        if !out.hit {
                            fills.push(fill);
                        }
                    }
                } else {
                    fills.push(addr & !63);
                }
                for fill in fills {
                    core.outstanding += 1;
                    let id = ((ci as u64) << 32) | (*seq & 0xffff_ffff);
                    *seq += 1;
                    let req = MemRequest::read(fill, id);
                    if !mem.try_enqueue(req) {
                        core.retry.push(req);
                    }
                }
                for wb in writebacks {
                    let id = ((ncores as u64) << 32) | (*seq & 0xffff_ffff);
                    *seq += 1;
                    let req = MemRequest::write(wb, id);
                    if !mem.try_enqueue(req) {
                        core.retry.push(req);
                    }
                }
                core.pc += 1;
                core.op_started = false;
                if core.pc >= core.trace.len() {
                    core.done = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramConfig {
        let mut c = DramConfig::ddr4_2400r();
        c.refresh_enabled = false;
        c
    }

    #[test]
    fn single_core_streaming_completes() {
        let mut t = CoreTrace::new();
        for i in 0..256u64 {
            t.access(0, i * 64, false);
        }
        let r = CpuMode::new(dram(), CpuModeConfig::default()).run(vec![t]);
        assert_eq!(r.dram.reads, 256);
        assert!(r.cycles > 256, "cycles {}", r.cycles);
        assert!(r.bandwidth_gbs > 0.0);
    }

    #[test]
    fn caches_filter_repeated_accesses() {
        let mut t = CoreTrace::new();
        for _ in 0..4 {
            for i in 0..64u64 {
                t.access(0, i * 64, false);
            }
        }
        let r = CpuMode::new(dram(), CpuModeConfig::default()).run(vec![t]);
        // 64 distinct lines: only 64 DRAM reads despite 256 accesses.
        assert_eq!(r.dram.reads, 64);
        assert!(r.cache_hit_rates[0] > 0.7);
    }

    #[test]
    fn more_cores_more_bandwidth_until_saturation() {
        // 4-channel system (the paper's host): a single compute-bound core
        // cannot saturate it; four cores should scale close to linearly.
        let make = |cores: usize| -> f64 {
            let traces: Vec<CoreTrace> = (0..cores)
                .map(|c| {
                    let mut t = CoreTrace::new();
                    // Disjoint 16 MB regions, strided to miss caches, with
                    // enough compute per access to be core-bound alone.
                    for i in 0..512u64 {
                        t.access(64, (c as u64) << 24 | (i * 4096), false);
                    }
                    t
                })
                .collect();
            CpuMode::new(dram().with_channels(4), CpuModeConfig::default())
                .run(traces)
                .bandwidth_gbs
        };
        let one = make(1);
        let four = make(4);
        assert!(four > 1.5 * one, "1 core {one} GB/s, 4 cores {four} GB/s");
    }

    #[test]
    fn barrier_synchronizes_cores() {
        // Core 0 has much more work before the barrier; both must still
        // finish, and the post-barrier access happens after all pre-barrier
        // traffic (checked implicitly by completion).
        let mut t0 = CoreTrace::new();
        for i in 0..128u64 {
            t0.access(8, i * 4096, false);
        }
        t0.barrier();
        t0.access(0, 1 << 26, false);
        let mut t1 = CoreTrace::new();
        t1.access(0, 1 << 27, false);
        t1.barrier();
        t1.access(0, (1 << 27) + 4096, false);
        let r = CpuMode::new(dram(), CpuModeConfig::default()).run(vec![t0, t1]);
        assert_eq!(r.dram.reads, 128 + 1 + 1 + 1);
    }

    #[test]
    fn cpu_ops_slow_execution() {
        let mut fast = CoreTrace::new();
        let mut slow = CoreTrace::new();
        for i in 0..64u64 {
            fast.access(0, i * 4096, false);
            slow.access(400, i * 4096, false);
        }
        let cfg = CpuModeConfig::default();
        let rf = CpuMode::new(dram(), cfg).run(vec![fast]);
        let rs = CpuMode::new(dram(), cfg).run(vec![slow]);
        assert!(
            rs.cycles > 2 * rf.cycles,
            "compute-heavy trace not slower: {} vs {}",
            rs.cycles,
            rf.cycles
        );
    }

    #[test]
    fn writes_generate_dram_writebacks() {
        let mut t = CoreTrace::new();
        // Write a region twice the 3 MB L3 so dirty lines reach DRAM.
        for i in 0..(2 * (3 << 20) / 64_u64) {
            t.access(0, i * 64, true);
        }
        let r = CpuMode::new(dram(), CpuModeConfig::default()).run(vec![t]);
        assert!(r.dram.writes > 10_000, "writebacks {}", r.dram.writes);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_run_panics() {
        let _ = CpuMode::new(dram(), CpuModeConfig::default()).run(vec![]);
    }
}
