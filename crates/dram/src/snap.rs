//! Minimal binary codec for simulator snapshots.
//!
//! Checkpoints serialize component state through this little-endian,
//! length-prefixed encoder/decoder pair. The decoder is hardened against
//! untrusted bytes: every read checks the remaining length first, every
//! length prefix is capped by the bytes actually left (so corrupt input
//! can never trigger an oversized allocation), and every failure is a
//! typed [`SnapError`] — no code path panics on malformed input.

use std::fmt;

/// Decoding failure over untrusted snapshot bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A tag, flag or count held a value outside its domain.
    BadValue,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot bytes truncated"),
            SnapError::BadValue => write!(f, "snapshot field out of domain"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit hash, used for payload checksums and fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Append-only little-endian snapshot writer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder and returns its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes an `f32` by bit pattern (bit-exact round trip).
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Writes an optional `u64` (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Writes a length prefix followed by raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn u64s(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }

    /// Writes a length-prefixed `u32` slice.
    pub fn u32s(&mut self, v: &[u32]) {
        self.usize(v.len());
        for &x in v {
            self.u32(x);
        }
    }

    /// Writes a length-prefixed `u16` slice.
    pub fn u16s(&mut self, v: &[u16]) {
        self.usize(v.len());
        for &x in v {
            self.u16(x);
        }
    }

    /// Writes a length-prefixed `f32` slice (bit patterns).
    pub fn f32s(&mut self, v: &[f32]) {
        self.usize(v.len());
        for &x in v {
            self.f32(x);
        }
    }

    /// Writes a length prefix for a heterogeneous sequence the caller
    /// encodes element by element.
    pub fn seq(&mut self, len: usize) {
        self.usize(len);
    }
}

/// Bounds-checked little-endian snapshot reader.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` (stored as `u64`), rejecting values that do not fit.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::BadValue)
    }

    /// Reads a bool; any byte other than 0/1 is rejected.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::BadValue),
        }
    }

    /// Reads an `f32` by bit pattern.
    pub fn f32(&mut self) -> Result<f32, SnapError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an optional `u64`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        Ok(match self.bool()? {
            true => Some(self.u64()?),
            false => None,
        })
    }

    /// Reads a length-prefixed byte slice (borrowed from the input).
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.len_capped(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn u64s(&mut self) -> Result<Vec<u64>, SnapError> {
        let n = self.len_capped(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn u32s(&mut self) -> Result<Vec<u32>, SnapError> {
        let n = self.len_capped(4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `u16` vector.
    pub fn u16s(&mut self) -> Result<Vec<u16>, SnapError> {
        let n = self.len_capped(2)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u16()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `f32` vector (bit patterns).
    pub fn f32s(&mut self) -> Result<Vec<f32>, SnapError> {
        let n = self.len_capped(4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f32()?);
        }
        Ok(v)
    }

    /// Reads a sequence length whose elements occupy at least
    /// `min_elem_bytes` each, rejecting prefixes the remaining input could
    /// not possibly satisfy — the allocation cap that keeps corrupt
    /// snapshots from requesting absurd reservations.
    pub fn len_capped(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let n = self.usize()?;
        if n.checked_mul(min_elem_bytes.max(1))
            .is_none_or(|total| total > self.remaining())
        {
            return Err(SnapError::Truncated);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u16(65535);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.usize(123);
        e.bool(true);
        e.bool(false);
        e.f32(-0.0);
        e.f32(f32::NAN);
        e.opt_u64(Some(9));
        e.opt_u64(None);
        e.bytes(b"hi");
        e.u64s(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 65535);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.usize().unwrap(), 123);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(d.f32().unwrap().is_nan());
        assert_eq!(d.opt_u64().unwrap(), Some(9));
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.bytes().unwrap(), b"hi");
        assert_eq!(d.u64s().unwrap(), vec![1, 2, 3]);
        assert!(d.is_empty());
    }

    #[test]
    fn truncation_is_typed_not_panicking() {
        let mut e = Encoder::new();
        e.u64s(&[1, 2, 3, 4]);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            assert_eq!(d.u64s().unwrap_err(), SnapError::Truncated, "cut={cut}");
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocation() {
        let mut e = Encoder::new();
        e.u64(u64::MAX); // claims ~2^64 elements
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.u64s().is_err());
        let mut d = Decoder::new(&bytes);
        assert!(d.bytes().is_err());
    }

    #[test]
    fn bad_bool_is_rejected() {
        let mut d = Decoder::new(&[2]);
        assert_eq!(d.bool().unwrap_err(), SnapError::BadValue);
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
