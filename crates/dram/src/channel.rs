use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use menda_trace::TraceReport;

use crate::bank::RankState;
use crate::checker::ProtocolChecker;
use crate::command::{CommandKind, CommandRecord};
use crate::config::RowPolicy;
use crate::scheduler::{Candidate, NeededCommand};
use crate::trace::ChannelTracer;
use crate::{
    BankArray, BankState, DramConfig, DramCoord, DramStats, MemRequest, MemResponse, ReqKind,
};

/// CAS traffic to a rank is cut off once its pending refresh has been
/// postponed this many `tREFI` intervals (the JEDEC budget of 8), so the
/// refresh always beats the checker's 9-interval deadline.
const REFRESH_POSTPONE_INTERVALS: u64 = 8;

/// A request resident in a channel queue.
#[derive(Debug, Clone, Copy)]
struct Queued {
    req: MemRequest,
    coord: DramCoord,
    enq_at: u64,
    /// Monotonic per-queue arrival number; the queue stays sorted by it
    /// (requests enter at the back and leave from arbitrary positions),
    /// which lets the per-bank index map a winner back to its position.
    seq: u64,
    /// Whether the row hit/miss/conflict outcome was already recorded.
    classified: bool,
}

/// Per-bank request index for one queue (read or write).
///
/// Replaces the per-cycle O(queue × banks) FR-FCFS candidate scan with
/// O(occupied banks) work: every resident request is keyed by its arrival
/// sequence number, each flat bank keeps its residents oldest-first, and
/// a cached sublist of the residents hitting the bank's currently open
/// row is rebuilt only when the bank's row state changes (ACT / PRE /
/// auto-precharge / refresh PRE) instead of being rederived every cycle.
#[derive(Debug)]
struct QueueIndex {
    /// Per flat bank: `(seq, row)` of resident requests, oldest first.
    by_bank: Vec<VecDeque<(u64, usize)>>,
    /// Per flat bank: seqs of requests hitting the open row, oldest
    /// first. Empty for closed banks.
    hits: Vec<VecDeque<u64>>,
    /// Flat banks with at least one resident request (unordered).
    occupied: Vec<usize>,
    next_seq: u64,
}

impl QueueIndex {
    fn new(banks: usize) -> Self {
        Self {
            by_bank: vec![VecDeque::new(); banks],
            hits: vec![VecDeque::new(); banks],
            occupied: Vec::new(),
            next_seq: 0,
        }
    }

    /// Registers an arriving request on `flat` targeting `row`; returns
    /// the sequence number assigned to it.
    fn push(&mut self, flat: usize, row: usize, open_row: Option<usize>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.by_bank[flat].is_empty() {
            self.occupied.push(flat);
        }
        self.by_bank[flat].push_back((seq, row));
        if open_row == Some(row) {
            self.hits[flat].push_back(seq);
        }
        seq
    }

    /// Removes a retired request.
    fn remove(&mut self, flat: usize, seq: u64) {
        let list = &mut self.by_bank[flat];
        if let Some(pos) = list.iter().position(|&(s, _)| s == seq) {
            list.remove(pos);
        }
        let hits = &mut self.hits[flat];
        if let Some(pos) = hits.iter().position(|&s| s == seq) {
            hits.remove(pos);
        }
        if self.by_bank[flat].is_empty() {
            if let Some(pos) = self.occupied.iter().position(|&b| b == flat) {
                self.occupied.swap_remove(pos);
            }
        }
    }

    /// Re-registers a resident with its *original* sequence number during
    /// state restore. Callers feed residents in queue order (globally
    /// seq-sorted), which keeps each bank's list oldest-first — the same
    /// invariant `push` maintains.
    fn reinsert(&mut self, flat: usize, seq: u64, row: usize, open_row: Option<usize>) {
        if self.by_bank[flat].is_empty() {
            self.occupied.push(flat);
        }
        self.by_bank[flat].push_back((seq, row));
        if open_row == Some(row) {
            self.hits[flat].push_back(seq);
        }
    }

    /// Rebuilds the open-row hit cache of `flat` after its row state
    /// changed.
    fn on_row_change(&mut self, flat: usize, open_row: Option<usize>) {
        let hits = &mut self.hits[flat];
        hits.clear();
        if let Some(row) = open_row {
            for &(seq, r) in &self.by_bank[flat] {
                if r == row {
                    hits.push_back(seq);
                }
            }
        }
    }
}

/// One memory channel: read/write queues, per-bank and per-rank state, the
/// FR-FCFS-PriorHit scheduler, refresh management and response delivery.
///
/// The controller issues at most one DRAM command per bus cycle and models
/// the shared data bus at burst granularity.
#[derive(Debug)]
pub struct ChannelController {
    config: DramConfig,
    banks: BankArray,
    ranks: Vec<RankState>,
    refresh_pending: Vec<bool>,
    read_q: VecDeque<Queued>,
    write_q: VecDeque<Queued>,
    read_ix: QueueIndex,
    write_ix: QueueIndex,
    /// Earliest `refresh_due` across ranks; lets `service_refresh` skip
    /// its per-rank scan entirely between tREFI windows.
    refresh_next_due: u64,
    /// Number of ranks with `refresh_pending` set.
    refresh_pending_count: usize,
    responses: BinaryHeap<Reverse<(u64, u64)>>,
    response_data: Vec<Option<MemResponse>>,
    response_seq: u64,
    now: u64,
    bus_free_at: u64,
    draining_writes: bool,
    stats: DramStats,
    command_log: Vec<CommandRecord>,
    /// Live protocol verifier (present when `config.check_protocol`).
    checker: Option<ProtocolChecker>,
    /// Instrumentation hooks (present when `config.trace` is enabled).
    /// Purely observational: never feeds back into scheduling or timing.
    tracer: Option<ChannelTracer>,
    /// Auto-precharges (RDA/WRA under `RowPolicy::ClosedPage`) whose
    /// effective cycle has not been reached yet; emitted into the command
    /// log / checker when `now` catches up so the stream stays
    /// cycle-monotonic.
    pending_autopre: Vec<CommandRecord>,
    /// Sched-sleep cache: a failed scheduling scan stores the earliest
    /// cycle either queue's *timing* constraints could admit any command
    /// ([`Self::queue_issue_event`], which ignores refresh vetoes — they
    /// only delay, so the bound is conservative). Until that cycle the
    /// per-tick scans are provably fruitless and are skipped in O(1).
    /// Every scheduler-state mutation (enqueue, issued command, refresh
    /// activity) resets the cache to 0.
    sched_sleep_until: u64,
    /// Cached [`Self::next_active_event_cycle`] lower bound, valid until
    /// the next state mutation. The PU model advances the bus clock one
    /// or two ticks per PU cycle; without this cache every such
    /// [`Self::advance_to`] call would re-derive the bound (a scan over
    /// every occupied bank) only to learn again that nothing can happen
    /// for dozens of cycles. Maintained by [`Self::tick`] itself: a tick
    /// that acts resets it to 0, a non-issuing tick refreshes it from
    /// the scheduling scan it already paid for plus the O(1)
    /// bookkeeping terms. Enqueues tighten it incrementally; response
    /// pops only *remove* event terms, so the
    /// bound stays a valid lower bound across them. Derived state: not
    /// serialized, reset on restore.
    event_bound: u64,
    /// Flat bank index → `(rank, bank_group)`, precomputed from the
    /// organization. [`Self::rank_bg_of`] sits inside every per-bank
    /// term of the scheduling scans; a table load replaces two integer
    /// divisions there. Derived from config, never serialized.
    bank_coord: Vec<(u16, u16)>,
}

impl ChannelController {
    /// Creates a controller for one channel of `config`.
    pub fn new(config: DramConfig) -> Self {
        let nbanks = config.org.ranks * config.org.banks_per_rank();
        let ranks: Vec<RankState> = (0..config.org.ranks)
            .map(|_| RankState::new(&config.timing))
            .collect();
        let refresh_next_due = ranks
            .iter()
            .map(|r| r.refresh_due)
            .min()
            .unwrap_or(u64::MAX);
        Self {
            banks: BankArray::new(nbanks),
            ranks,
            refresh_pending: vec![false; config.org.ranks],
            read_q: VecDeque::with_capacity(config.read_queue),
            write_q: VecDeque::with_capacity(config.write_queue),
            read_ix: QueueIndex::new(nbanks),
            write_ix: QueueIndex::new(nbanks),
            refresh_next_due,
            refresh_pending_count: 0,
            responses: BinaryHeap::new(),
            response_data: Vec::new(),
            response_seq: 0,
            now: 0,
            bus_free_at: 0,
            draining_writes: false,
            stats: DramStats::new(),
            command_log: Vec::new(),
            checker: config.check_protocol.then(|| ProtocolChecker::new(&config)),
            tracer: ChannelTracer::new(
                &config.trace,
                1,
                nbanks,
                config.read_queue,
                config.write_queue,
            ),
            pending_autopre: Vec::new(),
            sched_sleep_until: 0,
            event_bound: 0,
            bank_coord: (0..nbanks)
                .map(|flat| {
                    let bpr = config.org.banks_per_rank();
                    (
                        (flat / bpr) as u16,
                        ((flat % bpr) / config.org.banks_per_group) as u16,
                    )
                })
                .collect(),
            config,
        }
    }

    /// Moves this channel's trace events to `track` (the owning memory
    /// system assigns track `1 + channel index`; track 0 is the PU clock).
    pub fn set_trace_track(&mut self, track: u32) {
        if let Some(t) = self.tracer.as_mut() {
            t.set_track(track);
        }
    }

    /// Ends instrumentation and returns this channel's trace report, or
    /// `None` when tracing is off. The channel records nothing afterwards.
    pub fn take_trace_report(&mut self) -> Option<TraceReport> {
        self.tracer.take().map(|t| t.into_report(self.now))
    }

    /// Current bus cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Read queue occupancy.
    pub fn read_queue_len(&self) -> usize {
        self.read_q.len()
    }

    /// Write queue occupancy.
    pub fn write_queue_len(&self) -> usize {
        self.write_q.len()
    }

    /// Whether all queues are empty and no responses are pending.
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty() && self.responses.is_empty()
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// The recorded command stream (empty unless
    /// [`DramConfig::log_commands`] is set).
    pub fn command_log(&self) -> &[CommandRecord] {
        &self.command_log
    }

    /// Records `kind` at `cycle` in the command log and feeds it to the
    /// live protocol checker.
    ///
    /// # Panics
    ///
    /// Panics when [`DramConfig::check_protocol`] is set and the command
    /// violates a protocol rule — the simulation result would be wrong.
    fn emit(&mut self, cycle: u64, kind: CommandKind, coord: DramCoord) {
        let record = CommandRecord { cycle, kind, coord };
        if self.config.log_commands {
            self.command_log.push(record);
        }
        if let Some(checker) = self.checker.as_mut() {
            if let Err(v) = checker.observe(&record) {
                panic!("DRAM protocol violation: {v}");
            }
        }
    }

    /// Emits pending auto-precharges whose effective cycle has arrived,
    /// oldest first, keeping the observable command stream monotonic.
    fn flush_pending_autopre(&mut self) {
        if self.pending_autopre.is_empty() {
            return;
        }
        self.pending_autopre.sort_by_key(|r| r.cycle);
        while self
            .pending_autopre
            .first()
            .is_some_and(|r| r.cycle <= self.now)
        {
            let r = self.pending_autopre.remove(0);
            self.emit(r.cycle, r.kind, r.coord);
        }
    }

    /// Time-based liveness checks: refresh postpone deadlines and request
    /// retirement bounds (queues are age-ordered, so the fronts are the
    /// oldest requests).
    ///
    /// # Panics
    ///
    /// Panics on refresh starvation or an over-age request.
    fn check_liveness(&self) {
        let Some(checker) = self.checker.as_ref() else {
            return;
        };
        if let Err(v) = checker.advance(self.now) {
            panic!("DRAM protocol violation: {v}");
        }
        for front in [self.read_q.front(), self.write_q.front()]
            .into_iter()
            .flatten()
        {
            if let Err(v) = checker.check_request_age(front.enq_at, self.now) {
                panic!("DRAM protocol violation: {v}");
            }
        }
    }

    /// Attempts to enqueue a request already decoded to `coord` (which must
    /// belong to this channel). Returns `false` when the target queue is
    /// full.
    ///
    /// Reads that match a queued write's line are served by store-to-load
    /// forwarding and complete on the next cycle without a DRAM access.
    pub fn try_enqueue(&mut self, req: MemRequest, coord: DramCoord) -> bool {
        let line_mask = !(self.config.org.transaction_bytes as u64 - 1);
        let addr = req.addr & line_mask;
        match req.kind {
            ReqKind::Read => {
                if self.write_q.iter().any(|w| w.req.addr & line_mask == addr) {
                    // Forwarded reads complete without a DRAM access but
                    // are still served requests: count them (and their
                    // one-cycle latency) so bandwidth totals include them.
                    self.stats.reads += 1;
                    self.stats.forwarded_reads += 1;
                    self.stats.read_latency_sum += 1;
                    self.stats.read_latency_max = self.stats.read_latency_max.max(1);
                    self.push_response(MemResponse {
                        id: req.id,
                        addr,
                        kind: ReqKind::Read,
                        done_at: self.now + 1,
                    });
                    return true;
                }
                if self.read_q.len() >= self.config.read_queue {
                    self.stats.queue_full_rejections += 1;
                    return false;
                }
                let flat = self.flat_bank(&coord);
                let seq = self.read_ix.push(flat, coord.row, self.open_row(flat));
                // Tighten the scheduler sleep bound with just this bank's
                // term: every other bank's earliest-issue estimate is
                // untouched by the push (timing state is frozen while no
                // command issues), so the incremental min equals a full
                // re-scan.
                let ev = self.bank_issue_event(&self.read_ix, flat, true);
                self.sched_sleep_until = self.sched_sleep_until.min(ev);
                self.event_bound = self.event_bound.min(ev);
                self.read_q.push_back(Queued {
                    req: MemRequest { addr, ..req },
                    coord,
                    enq_at: self.now,
                    seq,
                    classified: false,
                });
                true
            }
            ReqKind::Write => {
                if self.write_q.len() >= self.config.write_queue {
                    self.stats.queue_full_rejections += 1;
                    return false;
                }
                let flat = self.flat_bank(&coord);
                let seq = self.write_ix.push(flat, coord.row, self.open_row(flat));
                let ev = self.bank_issue_event(&self.write_ix, flat, false);
                self.sched_sleep_until = self.sched_sleep_until.min(ev);
                self.event_bound = self.event_bound.min(ev);
                self.write_q.push_back(Queued {
                    req: MemRequest { addr, ..req },
                    coord,
                    enq_at: self.now,
                    seq,
                    classified: false,
                });
                true
            }
        }
    }

    /// Pops the next completed response, if any has finished by now.
    pub fn pop_response(&mut self) -> Option<MemResponse> {
        if let Some(&Reverse((done_at, seq))) = self.responses.peek() {
            if done_at <= self.now {
                self.responses.pop();
                let resp = self.response_data[seq as usize].take();
                // Compact the backing store when fully drained.
                if self.responses.is_empty() && self.response_data.len() > 1024 {
                    self.response_data.clear();
                    self.response_seq = 0;
                }
                return resp;
            }
        }
        None
    }

    fn push_response(&mut self, resp: MemResponse) {
        let seq = self.response_seq;
        self.response_seq += 1;
        self.response_data.push(Some(resp));
        self.responses.push(Reverse((resp.done_at, seq)));
    }

    /// Earliest `done_at` among in-flight responses.
    pub fn next_response_at(&self) -> Option<u64> {
        self.responses.peek().map(|&Reverse((done_at, _))| done_at)
    }

    /// Conservative lower bound on the earliest bus cycle at which a
    /// *read* response whose id has no bit of `exclude_id_mask` set
    /// could become poppable — the horizon the PU's epoch calculus
    /// batches merge-tree cycles under (write responses are filtered
    /// out by the PU with no side effects, so only read data matters).
    ///
    /// Two sources feed the bound:
    /// * matching responses already in flight (exact `done_at`s), and
    /// * matching reads still sitting in the read queue, whose CAS
    ///   cannot issue before the next tick and whose data then needs a
    ///   full `tCL + tBL`, giving `now + tCL + tBL` as a floor.
    ///
    /// Store-to-load forwarded reads are not a hole in the bound: their
    /// response is pushed at *enqueue* time with `done_at = now + 1`,
    /// so a caller that re-queries after each enqueue always sees them.
    /// `None` means no matching read is anywhere in the pipeline, so no
    /// such response can appear before the caller enqueues one.
    pub fn earliest_read_response_at(&self, exclude_id_mask: u64) -> Option<u64> {
        let mut ev = u64::MAX;
        for &Reverse((done_at, seq)) in &self.responses {
            if done_at >= ev {
                continue;
            }
            if let Some(r) = &self.response_data[seq as usize] {
                if r.kind == ReqKind::Read && r.id & exclude_id_mask == 0 {
                    ev = done_at;
                }
            }
        }
        if self.read_q.iter().any(|q| q.req.id & exclude_id_mask == 0) {
            let t = &self.config.timing;
            ev = ev.min(self.now + t.t_cl + t.t_bl);
        }
        (ev != u64::MAX).then_some(ev)
    }

    /// Pops the earliest matured response only when it is one the owner
    /// discards unseen: a write acknowledgment, or traffic whose id
    /// matches `discard_id_mask` (the PU's concurrent-host marker).
    /// Read data responses stay queued — the fast-forward epoch drain
    /// calls this to keep the event horizon moving without consuming
    /// data the per-cycle delivery step must observe in order.
    pub fn pop_discardable_response(&mut self, discard_id_mask: u64) -> Option<MemResponse> {
        let &Reverse((done_at, seq)) = self.responses.peek()?;
        if done_at > self.now {
            return None;
        }
        let keep = self.response_data[seq as usize]
            .as_ref()
            .is_some_and(|r| r.kind == ReqKind::Read && r.id & discard_id_mask == 0);
        if keep {
            return None;
        }
        self.responses.pop();
        let resp = self.response_data[seq as usize].take();
        if self.responses.is_empty() && self.response_data.len() > 1024 {
            self.response_data.clear();
            self.response_seq = 0;
        }
        resp
    }

    /// The earliest bus cycle strictly after `now` at which this channel's
    /// observable state can change.
    ///
    /// This is a *conservative lower bound*: the controller may wake at
    /// that cycle and find it still cannot act (a pending refresh vetoes
    /// CAS/ACT, say — vetoes are deliberately ignored because they only
    /// delay), but it never sleeps through a cycle where `tick()` would
    /// have issued a command, matured a response, emitted a buffered
    /// auto-precharge, or run refresh bookkeeping. `None` means the
    /// channel is fully inert (no residents, no responses, refresh
    /// disabled), so any jump is safe.
    pub fn next_event_cycle(&self) -> Option<u64> {
        // The tick-maintained skip bound is itself a conservative lower
        // bound on the next active event (see `event_bound`'s field
        // docs); while it is ahead of `now`, reuse it instead of paying
        // the per-bank scan — the PU quiescence calculus probes this on
        // every candidate skip, and an early wake-up is merely a no-op
        // re-probe (the skip machinery is split-invariant). A bound at
        // or behind `now` (the last tick acted, or none ran yet) falls
        // back to the full derivation.
        let mut ev = if self.event_bound > self.now {
            self.event_bound
        } else {
            self.next_active_event_cycle()
        };
        // Responses mature at `done_at` (observable via `pop_response`).
        if let Some(&Reverse((done_at, _))) = self.responses.peek() {
            ev = ev.min(done_at);
        }
        (ev != u64::MAX).then_some(ev.max(self.now + 1))
    }

    /// The *active* subset of [`Self::next_event_cycle`]: the earliest
    /// cycle a real [`Self::tick`] must run because the controller itself
    /// acts — a command could issue, a refresh could fire, a starved
    /// front crosses its deadline, or a buffered auto-precharge falls
    /// due. Response maturation is deliberately excluded: a response is
    /// passive state (its `done_at` is fixed at push time and
    /// [`Self::pop_response`] gates on `done_at <= now` no matter how
    /// `now` got there), so the clock may fast-forward across it. This is
    /// the bound [`Self::advance_to`] skips on.
    fn next_active_event_cycle(&self) -> u64 {
        let mut ev = self.bookkeeping_event_cycle();
        ev = ev.min(self.queue_issue_event(&self.read_ix, true));
        ev = ev.min(self.queue_issue_event(&self.write_ix, false));
        ev
    }

    /// The O(1)-ish terms of [`Self::next_active_event_cycle`] — every
    /// active event *except* command issuability: buffered
    /// auto-precharges falling due, refresh activity, and starvation
    /// deadlines. A non-issuing [`Self::tick`] combines this with the
    /// issue bound its scheduling scan already produced to refresh
    /// [`Self::event_bound`] without a second per-bank pass.
    fn bookkeeping_event_cycle(&self) -> u64 {
        let mut ev = u64::MAX;
        for r in &self.pending_autopre {
            ev = ev.min(r.cycle);
        }
        if self.config.refresh_enabled {
            ev = ev.min(self.refresh_event());
        }
        for front in [self.read_q.front(), self.write_q.front()]
            .into_iter()
            .flatten()
        {
            ev = ev.min(front.enq_at + self.config.timing.t_refi + 1);
        }
        ev
    }

    /// Earliest cycle at which `service_refresh` could act: a new rank
    /// becoming due, a pending rank's first closable open bank, or — all
    /// banks closed — the last bank's `tRP` expiring so REF can fire.
    fn refresh_event(&self) -> u64 {
        let mut ev = self.refresh_next_due;
        if self.refresh_pending_count == 0 {
            return ev;
        }
        let banks_per_rank = self.config.org.banks_per_rank();
        for rank in 0..self.ranks.len() {
            if !self.refresh_pending[rank] {
                continue;
            }
            let base = rank * banks_per_rank;
            let mut any_open = false;
            let mut pre_at = u64::MAX;
            let mut act_ready = 0u64;
            for b in base..base + banks_per_rank {
                match self.banks.state(b) {
                    BankState::Opened(_) => {
                        any_open = true;
                        pre_at = pre_at.min(self.banks.next_pre(b));
                    }
                    BankState::Closed => act_ready = act_ready.max(self.banks.next_act(b)),
                }
            }
            ev = ev.min(if any_open { pre_at } else { act_ready });
        }
        ev
    }

    /// Earliest cycle any command on behalf of `ix`'s residents could
    /// become issuable. Refresh vetoes are ignored (they only delay;
    /// `refresh_event` bounds their expiry), so this is a lower bound.
    /// All timing inputs (bank/rank state, `bus_free_at`, queue
    /// contents) are frozen while no command issues, which is exactly
    /// the window this bound protects.
    fn queue_issue_event(&self, ix: &QueueIndex, is_read: bool) -> u64 {
        let mut ev = u64::MAX;
        for &flat in &ix.occupied {
            ev = ev.min(self.bank_issue_event(ix, flat, is_read));
        }
        ev
    }

    /// The single-bank term of [`Self::queue_issue_event`]: the earliest
    /// cycle any command serving `ix`'s residents of bank `flat` could
    /// become issuable. Factored out so `try_enqueue` can tighten the
    /// scheduler sleep bound incrementally — pushing a request changes
    /// only its own bank's term, so re-scanning every occupied bank on
    /// each enqueue is wasted work.
    fn bank_issue_event(&self, ix: &QueueIndex, flat: usize, is_read: bool) -> u64 {
        let t = &self.config.timing;
        let cas_lat = if is_read { t.t_cl } else { t.t_cwl };
        let (rank_idx, bg) = self.rank_bg_of(flat);
        let rank = &self.ranks[rank_idx];
        let mut ev = u64::MAX;
        match self.banks.state(flat) {
            BankState::Closed => {
                ev = ev.min(self.banks.next_act(flat).max(rank.act_allowed_at(bg, t)));
            }
            BankState::Opened(_) => {
                let oldest_hit = ix.hits[flat].front().copied();
                if oldest_hit.is_some() {
                    let bank_ready = if is_read {
                        self.banks.next_rd(flat)
                    } else {
                        self.banks.next_wr(flat)
                    };
                    ev = ev.min(
                        bank_ready
                            .max(rank.cas_allowed_at(bg, is_read, t))
                            .max(self.bus_free_at.saturating_sub(cas_lat)),
                    );
                }
                let &(oldest_seq, _) = ix.by_bank[flat]
                    .front()
                    .expect("occupied bank has residents");
                if oldest_hit != Some(oldest_seq) {
                    ev = ev.min(self.banks.next_pre(flat));
                }
            }
        }
        ev
    }

    /// Jumps directly to bus cycle `target` without simulating the
    /// intermediate cycles, which the caller guarantees (via
    /// [`Self::next_active_event_cycle`]) are controller no-ops: no
    /// command can issue, no refresh bookkeeping runs. Responses *may*
    /// mature inside the span — maturation is passive (see
    /// [`Self::next_active_event_cycle`]). Skipped cycles are
    /// bulk-accounted into the stats and the trace samples the per-cycle
    /// path would have produced are emitted at each sampling interval;
    /// the liveness check runs once at the target (equivalent for clean
    /// runs — its deadline comparisons are monotone in `now`).
    pub fn fast_forward_to(&mut self, target: u64) {
        if target <= self.now {
            return;
        }
        debug_assert!(
            self.next_active_event_cycle().max(self.now + 1) > target,
            "fast-forward across a channel event"
        );
        if let Some(t) = self.tracer.as_mut() {
            t.on_idle_span(self.now, target, self.read_q.len(), self.write_q.len());
        }
        self.now = target;
        self.stats.cycles = self.now;
        self.check_liveness();
    }

    /// Advances this channel to bus cycle `end`, fast-forwarding across
    /// spans where the controller provably does nothing. Tick-exact: the
    /// resulting observable state (commands and their cycles, stats,
    /// responses, trace) is bit-identical to calling [`Self::tick`]
    /// `end - now` times.
    ///
    /// The skip bound is the cached [`Self::next_active_event_cycle`]
    /// (see [`Self::event_bound`'s field docs]): across the one-or-two
    /// tick spans the PU model advances per PU cycle, the cache makes the
    /// common "nothing can happen yet" case O(1) instead of a scan over
    /// every occupied bank. The cache may be stale-*tight* (a popped
    /// response removed its event term), in which case the cycle it names
    /// runs through a real `tick` that does nothing — identical to the
    /// per-cycle path — and the bound is re-derived.
    pub fn advance_to(&mut self, end: u64) {
        while self.now < end {
            // Skip to just before the next active event (the event cycle
            // itself must run through `tick` so the controller can act).
            // `tick` maintains the bound itself — an issuing tick resets
            // it to 0 (forcing the next cycle through `tick`), a
            // non-issuing tick derives it from the scheduling scan it
            // already paid for — so no separate bound scan runs here.
            if self.event_bound > self.now + 1 {
                self.fast_forward_to((self.event_bound - 1).min(end));
                if self.now >= end {
                    break;
                }
            }
            self.tick();
        }
    }

    /// Advances one bus cycle: handles refresh, schedules at most one
    /// command, and retires finished bursts.
    pub fn tick(&mut self) {
        // Pessimistic default: a tick that acts (issues a command, fires
        // refresh, runs starvation recovery) creates new — possibly
        // earlier — events, so the skip bound resets and the next cycle
        // runs through `tick` again. The non-issuing exits below restore
        // a real bound from the scan they already performed.
        self.event_bound = 0;
        self.now += 1;
        self.stats.cycles = self.now;
        if let Some(t) = self.tracer.as_mut() {
            t.on_tick(self.now, self.read_q.len(), self.write_q.len());
        }
        self.flush_pending_autopre();
        self.check_liveness();

        if self.config.refresh_enabled && self.service_refresh() {
            // Refresh PRE/REF touched bank state; re-derive the sleep
            // bound on the next scan.
            self.sched_sleep_until = 0;
            return;
        }

        // Starvation recovery: a front-of-queue request that has waited a
        // full refresh interval gets the channel to itself until it
        // retires — no row-hit jumping, no other-queue fallback. FR-FCFS
        // hit priority plus write draining can otherwise monopolize a
        // bank indefinitely (younger requests keep re-opening it on other
        // rows faster than the victim's ACT window comes around), and a
        // lone write under a perpetual row-hit read stream has its
        // turnaround (tCL+tBL+2-tCWL) re-armed faster than it expires.
        let read_age = self.read_q.front().map_or(0, |r| self.now - r.enq_at);
        let write_age = self.write_q.front().map_or(0, |w| self.now - w.enq_at);
        if read_age.max(write_age) > self.config.timing.t_refi {
            let kind = if read_age >= write_age {
                ReqKind::Read
            } else {
                ReqKind::Write
            };
            self.schedule_front(kind);
            return;
        }

        // Sched-sleep gate: while `now` is below the cached bound no
        // command can possibly issue from either queue (the bound is a
        // timing lower bound over every resident, and every timing input
        // is frozen while nothing issues), so the candidate scans are
        // skipped outright. The starvation check above still runs every
        // cycle — its deadline is not part of the bound.
        if self.now < self.sched_sleep_until {
            #[cfg(debug_assertions)]
            {
                // Shadow check: the full reference scan must agree that
                // neither queue has an issuable candidate this cycle.
                self.assert_matches_reference_scan(ReqKind::Read, None);
                self.assert_matches_reference_scan(ReqKind::Write, None);
            }
            self.event_bound = self.sched_sleep_until.min(self.bookkeeping_event_cycle());
            return;
        }

        // Read-priority scheduling: writes are served when the read queue
        // is empty, or forced when the write queue crosses its high
        // watermark (reads would otherwise starve the write drain and the
        // requester's store path back-pressures anyway).
        let hi = (self.config.write_queue * 3) / 4;
        self.draining_writes = self.write_q.len() >= hi;
        let serve_writes =
            !self.write_q.is_empty() && (self.draining_writes || self.read_q.is_empty());

        // Opportunistic fallback: if the preferred queue cannot issue any
        // command this cycle, give the other queue the command slot. A
        // failed attempt hands back the queue's issue-event bound from
        // the same per-bank pass (`u64::MAX` for a queue never scanned
        // because it is empty — exactly the bound an explicit scan of an
        // empty index would produce; an enqueue resets the cache).
        let (mut ev_read, mut ev_write) = (u64::MAX, u64::MAX);
        let issued = if serve_writes {
            match self.schedule_queue(ReqKind::Write) {
                None => true,
                Some(w) => {
                    ev_write = w;
                    !self.read_q.is_empty()
                        && match self.schedule_queue(ReqKind::Read) {
                            None => true,
                            Some(r) => {
                                ev_read = r;
                                false
                            }
                        }
                }
            }
        } else if !self.read_q.is_empty() {
            match self.schedule_queue(ReqKind::Read) {
                None => true,
                Some(r) => {
                    ev_read = r;
                    !self.write_q.is_empty()
                        && match self.schedule_queue(ReqKind::Write) {
                            None => true,
                            Some(w) => {
                                ev_write = w;
                                false
                            }
                        }
                }
            }
        } else {
            false
        };
        if !issued {
            // Nothing could issue: sleep until the earliest cycle the
            // timing constraints could admit any command. The bounds fell
            // out of the scheduling scans above, so a non-issuing tick
            // pays one per-bank pass per non-empty queue, not two.
            self.sched_sleep_until = ev_read.min(ev_write);
            self.event_bound = self.sched_sleep_until.min(self.bookkeeping_event_cycle());
        }
    }

    /// Serves only the front (oldest) request of `kind`'s queue: issues its
    /// next needed command as soon as it is legal, bypassing row-hit
    /// priority. Used for starvation recovery.
    fn schedule_front(&mut self, kind: ReqKind) -> bool {
        let queue = match kind {
            ReqKind::Read => &self.read_q,
            ReqKind::Write => &self.write_q,
        };
        let Some(q) = queue.front().copied() else {
            return false;
        };
        let flat = self.flat_bank(&q.coord);
        let needed = match self.banks.state(flat) {
            BankState::Opened(r) if r == q.coord.row => NeededCommand::Cas,
            BankState::Opened(_) => NeededCommand::Precharge,
            BankState::Closed => NeededCommand::Activate,
        };
        let issuable = match needed {
            NeededCommand::Cas => self.cas_issuable(&q),
            NeededCommand::Activate => self.act_issuable(&q),
            NeededCommand::Precharge => self.now >= self.banks.next_pre(flat),
        };
        if !issuable {
            return false;
        }
        self.issue(
            kind,
            Candidate {
                queue_pos: 0,
                needed,
                issuable_now: true,
            },
        );
        true
    }

    /// Handles due refreshes. Returns `true` if this cycle's command slot
    /// was consumed by refresh management.
    ///
    /// Every rank is examined each cycle: a rank stuck waiting on an open
    /// bank's `tRTP`/`tWR` window or on `tRP` must not stall the due
    /// refreshes of the other ranks.
    fn service_refresh(&mut self) -> bool {
        // Between tREFI windows nothing is due and nothing is pending:
        // skip the per-rank/bank scan (it used to run every cycle). The
        // cached deadline is the min over ranks, so the scan resumes on
        // exactly the cycle the first rank's refresh becomes due.
        if self.refresh_pending_count == 0 && self.now < self.refresh_next_due {
            return false;
        }
        let t = self.config.timing;
        let banks_per_rank = self.config.org.banks_per_rank();
        for rank in 0..self.ranks.len() {
            if self.now >= self.ranks[rank].refresh_due && !self.refresh_pending[rank] {
                self.refresh_pending[rank] = true;
                self.refresh_pending_count += 1;
            }
            if !self.refresh_pending[rank] {
                continue;
            }
            let base = rank * banks_per_rank;
            // Precharge the first open bank that may close (one PRE per
            // cycle). If banks are open but none can close yet, let the
            // other ranks use this cycle's command slot.
            let mut any_open = false;
            for b in 0..banks_per_rank {
                let flat = base + b;
                if let BankState::Opened(row) = self.banks.state(flat) {
                    if self.now >= self.banks.next_pre(flat) {
                        self.banks.do_precharge(flat, self.now, &t);
                        self.stats.precharges += 1;
                        self.on_bank_row_change(flat);
                        self.emit(
                            self.now,
                            CommandKind::Pre,
                            DramCoord {
                                channel: 0,
                                rank,
                                bank_group: b / self.config.org.banks_per_group,
                                bank: b % self.config.org.banks_per_group,
                                row,
                                column: 0,
                            },
                        );
                        return true;
                    }
                    any_open = true;
                }
            }
            if any_open {
                continue;
            }
            // All banks closed; wait for tRP to elapse on every bank.
            let ready = (0..banks_per_rank).all(|b| self.now >= self.banks.next_act(base + b));
            if ready {
                self.ranks[rank].record_refresh(self.now, &t);
                let blocked_until = self.now + t.t_rfc;
                for b in 0..banks_per_rank {
                    self.banks.delay_act_until(base + b, blocked_until);
                }
                self.refresh_pending[rank] = false;
                self.refresh_pending_count -= 1;
                self.refresh_next_due = self
                    .ranks
                    .iter()
                    .map(|r| r.refresh_due)
                    .min()
                    .unwrap_or(u64::MAX);
                self.stats.refreshes += 1;
                if let Some(tr) = self.tracer.as_mut() {
                    tr.on_refresh(self.now);
                }
                self.emit(
                    self.now,
                    CommandKind::Ref,
                    DramCoord {
                        channel: 0,
                        rank,
                        bank_group: 0,
                        bank: 0,
                        row: 0,
                        column: 0,
                    },
                );
                return true;
            }
        }
        false
    }

    /// FR-FCFS-PriorHit over the per-bank index. Returns `None` when a
    /// command was issued; otherwise `Some(bound)` — the earliest cycle
    /// any command on behalf of this queue's residents could become
    /// issuable (`u64::MAX` for an empty queue), computed in the same
    /// per-bank pass so a non-issuing `tick` does not rescan via
    /// [`Self::queue_issue_event`].
    ///
    /// Per occupied bank at most two candidates exist — the bank's oldest
    /// open-row hit (CAS) and the bank's oldest resident (ACT on a closed
    /// bank; PRE on an open one, legal only when that oldest resident is
    /// not itself a hit, since a PRE for a younger request must never
    /// close a row an older request still hits). Issuability of each
    /// command kind is uniform across a bank's residents, so the oldest
    /// issuable CAS across banks — else the oldest issuable ACT/PRE — is
    /// exactly the request the full-queue scan used to select (the
    /// debug-build shadow check below re-derives it the old way).
    ///
    /// Each candidate's readiness cycle is the term [`Self::bank_issue_event`]
    /// derives for that bank, and issuability this cycle is exactly
    /// `now >= readiness` plus the refresh vetoes — which the returned
    /// bound deliberately ignores, matching `bank_issue_event` (vetoes
    /// only delay; [`Self::refresh_event`] bounds their expiry).
    fn schedule_queue(&mut self, kind: ReqKind) -> Option<u64> {
        let t = &self.config.timing;
        let is_read = kind == ReqKind::Read;
        let cas_lat = if is_read { t.t_cl } else { t.t_cwl };
        let ix = match kind {
            ReqKind::Read => &self.read_ix,
            ReqKind::Write => &self.write_ix,
        };
        let mut best_cas: Option<u64> = None;
        let mut best_other: Option<(u64, NeededCommand)> = None;
        let mut bound = u64::MAX;
        for &flat in &ix.occupied {
            let &(oldest_seq, _) = ix.by_bank[flat]
                .front()
                .expect("occupied bank has residents");
            let (rank_idx, bg) = self.rank_bg_of(flat);
            let rank = &self.ranks[rank_idx];
            match self.banks.state(flat) {
                BankState::Closed => {
                    let ready = self.banks.next_act(flat).max(rank.act_allowed_at(bg, t));
                    bound = bound.min(ready);
                    if best_other.is_none_or(|(s, _)| oldest_seq < s)
                        && self.now >= ready
                        && !self.refresh_pending[rank_idx]
                    {
                        best_other = Some((oldest_seq, NeededCommand::Activate));
                    }
                }
                BankState::Opened(_) => {
                    let oldest_hit = ix.hits[flat].front().copied();
                    if let Some(h) = oldest_hit {
                        let bank_ready = if is_read {
                            self.banks.next_rd(flat)
                        } else {
                            self.banks.next_wr(flat)
                        };
                        let ready = bank_ready
                            .max(rank.cas_allowed_at(bg, is_read, t))
                            .max(self.bus_free_at.saturating_sub(cas_lat));
                        bound = bound.min(ready);
                        if best_cas.is_none_or(|s| h < s)
                            && self.now >= ready
                            && !(self.refresh_pending[rank_idx]
                                && rank.refresh_overdue(self.now, t, REFRESH_POSTPONE_INTERVALS))
                        {
                            best_cas = Some(h);
                        }
                    }
                    if oldest_hit != Some(oldest_seq) {
                        let ready = self.banks.next_pre(flat);
                        bound = bound.min(ready);
                        if best_other.is_none_or(|(s, _)| oldest_seq < s) && self.now >= ready {
                            best_other = Some((oldest_seq, NeededCommand::Precharge));
                        }
                    }
                }
            }
        }
        let (seq, needed) = match (best_cas, best_other) {
            (Some(s), _) => (s, NeededCommand::Cas),
            (None, Some(o)) => o,
            (None, None) => {
                #[cfg(debug_assertions)]
                self.assert_matches_reference_scan(kind, None);
                debug_assert_eq!(bound, self.queue_issue_event(ix, is_read));
                return Some(bound);
            }
        };
        let queue = match kind {
            ReqKind::Read => &self.read_q,
            ReqKind::Write => &self.write_q,
        };
        let queue_pos = queue
            .binary_search_by_key(&seq, |q| q.seq)
            .expect("indexed request resident in queue");
        let choice = Candidate {
            queue_pos,
            needed,
            issuable_now: true,
        };
        #[cfg(debug_assertions)]
        self.assert_matches_reference_scan(kind, Some(choice));
        self.issue(kind, choice);
        None
    }

    /// Debug-only cross-check: re-derives the scheduling decision with
    /// the original full-queue scan and asserts the indexed selection
    /// matches it exactly. Compiled out of release builds.
    #[cfg(debug_assertions)]
    fn assert_matches_reference_scan(&self, kind: ReqKind, choice: Option<Candidate>) {
        let queue = match kind {
            ReqKind::Read => &self.read_q,
            ReqKind::Write => &self.write_q,
        };
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut older_hit = vec![false; self.banks.len()];
        for (pos, q) in queue.iter().enumerate() {
            let flat = self.flat_bank(&q.coord);
            let needed = match self.banks.state(flat) {
                BankState::Opened(r) if r == q.coord.row => NeededCommand::Cas,
                BankState::Opened(_) => NeededCommand::Precharge,
                BankState::Closed => NeededCommand::Activate,
            };
            let issuable = match needed {
                NeededCommand::Cas => self.cas_issuable(q),
                NeededCommand::Activate => self.act_issuable(q),
                NeededCommand::Precharge => {
                    !older_hit[flat] && self.now >= self.banks.next_pre(flat)
                }
            };
            if needed == NeededCommand::Cas {
                older_hit[flat] = true;
            }
            candidates.push(Candidate {
                queue_pos: pos,
                needed,
                issuable_now: issuable,
            });
        }
        let reference = crate::FrfcfsPriorHit::new().select(&candidates);
        assert_eq!(
            choice.map(|c| (c.queue_pos, c.needed)),
            reference.map(|c| (c.queue_pos, c.needed)),
            "indexed scheduler diverged from reference scan at cycle {}",
            self.now
        );
    }

    /// Serializes the channel's complete dynamic state: bank/rank timing
    /// shadow, refresh bookkeeping, both request queues (with their index
    /// sequence counters), in-flight responses in retirement order, stats,
    /// command log, buffered auto-precharges, live-checker shadow state and
    /// the scheduler sleep cache. Everything config-derived (mapper,
    /// queue capacities, tracer) is rebuilt from the config at restore.
    pub fn save_state(&self, enc: &mut crate::snap::Encoder) {
        self.banks.save_state(enc);
        enc.seq(self.ranks.len());
        for r in &self.ranks {
            enc.u64s(&r.faw_window);
            save_opt_pair(enc, r.last_act);
            save_opt_pair(enc, r.last_cas);
            enc.u64(r.next_rd);
            enc.u64(r.next_wr);
            enc.u64(r.refresh_due);
            enc.u64(r.ready_at);
        }
        enc.seq(self.refresh_pending.len());
        for &p in &self.refresh_pending {
            enc.bool(p);
        }
        enc.u64(self.refresh_next_due);
        enc.usize(self.refresh_pending_count);
        save_queue(enc, &self.read_q);
        enc.u64(self.read_ix.next_seq);
        save_queue(enc, &self.write_q);
        enc.u64(self.write_ix.next_seq);
        // Responses leave in (done_at, seq) order; serializing them in that
        // order lets restore re-assign dense sequence numbers 0..n while
        // preserving the exact tie-breaking the original heap would use.
        let mut heap = self.responses.clone();
        enc.seq(heap.len());
        while let Some(Reverse((_, seq))) = heap.pop() {
            let resp = self.response_data[seq as usize].expect("heap entry has data");
            enc.u64(resp.id);
            enc.u64(resp.addr);
            enc.u8((resp.kind == ReqKind::Write) as u8);
            enc.u64(resp.done_at);
        }
        enc.u64(self.now);
        enc.u64(self.bus_free_at);
        enc.bool(self.draining_writes);
        self.stats.save_state(enc);
        enc.seq(self.command_log.len());
        for r in &self.command_log {
            save_record(enc, r);
        }
        enc.seq(self.pending_autopre.len());
        for r in &self.pending_autopre {
            save_record(enc, r);
        }
        match &self.checker {
            Some(c) => {
                enc.bool(true);
                c.save_state(enc);
            }
            None => enc.bool(false),
        }
        enc.u64(self.sched_sleep_until);
    }

    /// Restores state saved by [`ChannelController::save_state`] onto a
    /// controller freshly built from the *same* config. The per-bank
    /// queue indexes are rebuilt from the restored queues (selection is
    /// min-over-seq, so index-internal ordering is behavior-neutral).
    ///
    /// # Errors
    ///
    /// Returns a [`crate::snap::SnapError`] on truncated or out-of-domain
    /// bytes (including coordinates that don't fit this config's
    /// organization, and structural inconsistencies like unsorted queue
    /// sequence numbers). On error the controller is left unspecified and
    /// must be discarded — no partial restore is ever used.
    pub fn restore_state(
        &mut self,
        dec: &mut crate::snap::Decoder<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        use crate::snap::SnapError;
        self.banks.restore_state(dec)?;
        let n_ranks = dec.len_capped(1)?;
        if n_ranks != self.ranks.len() {
            return Err(SnapError::BadValue);
        }
        for r in &mut self.ranks {
            let faw = dec.u64s()?;
            if faw.len() > 4 {
                return Err(SnapError::BadValue);
            }
            r.faw_window = faw;
            r.last_act = load_opt_pair(dec)?;
            r.last_cas = load_opt_pair(dec)?;
            r.next_rd = dec.u64()?;
            r.next_wr = dec.u64()?;
            r.refresh_due = dec.u64()?;
            r.ready_at = dec.u64()?;
        }
        let n_rp = dec.len_capped(1)?;
        if n_rp != self.refresh_pending.len() {
            return Err(SnapError::BadValue);
        }
        for p in &mut self.refresh_pending {
            *p = dec.bool()?;
        }
        self.refresh_next_due = dec.u64()?;
        self.refresh_pending_count = dec.usize()?;
        if self.refresh_pending_count > self.ranks.len() {
            return Err(SnapError::BadValue);
        }
        self.read_q = self.load_queue(dec)?;
        let read_next_seq = dec.u64()?;
        self.write_q = self.load_queue(dec)?;
        let write_next_seq = dec.u64()?;
        let nbanks = self.banks.len();
        self.read_ix = QueueIndex::new(nbanks);
        self.read_ix.next_seq = read_next_seq;
        self.write_ix = QueueIndex::new(nbanks);
        self.write_ix.next_seq = write_next_seq;
        for i in 0..self.read_q.len() {
            let q = self.read_q[i];
            if i > 0 && self.read_q[i - 1].seq >= q.seq || q.seq >= read_next_seq {
                return Err(SnapError::BadValue);
            }
            let flat = self.flat_bank(&q.coord);
            let open = self.banks.open_row(flat);
            self.read_ix.reinsert(flat, q.seq, q.coord.row, open);
        }
        for i in 0..self.write_q.len() {
            let q = self.write_q[i];
            if i > 0 && self.write_q[i - 1].seq >= q.seq || q.seq >= write_next_seq {
                return Err(SnapError::BadValue);
            }
            let flat = self.flat_bank(&q.coord);
            let open = self.banks.open_row(flat);
            self.write_ix.reinsert(flat, q.seq, q.coord.row, open);
        }
        let n_resp = dec.len_capped(25)?;
        self.responses = BinaryHeap::new();
        self.response_data = Vec::new();
        self.response_seq = 0;
        for _ in 0..n_resp {
            let id = dec.u64()?;
            let addr = dec.u64()?;
            let kind = match dec.u8()? {
                0 => ReqKind::Read,
                1 => ReqKind::Write,
                _ => return Err(SnapError::BadValue),
            };
            let done_at = dec.u64()?;
            self.push_response(MemResponse {
                id,
                addr,
                kind,
                done_at,
            });
        }
        self.now = dec.u64()?;
        self.bus_free_at = dec.u64()?;
        self.draining_writes = dec.bool()?;
        self.stats.restore_state(dec)?;
        let n_log = dec.len_capped(57)?;
        self.command_log = Vec::with_capacity(n_log);
        for _ in 0..n_log {
            let r = self.load_record(dec)?;
            self.command_log.push(r);
        }
        let n_ap = dec.len_capped(57)?;
        self.pending_autopre = Vec::with_capacity(n_ap);
        for _ in 0..n_ap {
            let r = self.load_record(dec)?;
            self.pending_autopre.push(r);
        }
        if dec.bool()? != self.checker.is_some() {
            return Err(SnapError::BadValue);
        }
        if let Some(c) = self.checker.as_mut() {
            c.restore_state(dec)?;
        }
        self.sched_sleep_until = dec.u64()?;
        // Derived skip-bound cache: re-derive lazily rather than persist.
        self.event_bound = 0;
        Ok(())
    }

    /// Decodes one queue, validating every coordinate against this
    /// config's organization (out-of-range coordinates would panic on
    /// later bank/rank indexing, which corrupt bytes must never do).
    fn load_queue(
        &self,
        dec: &mut crate::snap::Decoder<'_>,
    ) -> Result<VecDeque<Queued>, crate::snap::SnapError> {
        use crate::snap::SnapError;
        let n = dec.len_capped(82)?;
        let mut q = VecDeque::with_capacity(n);
        for _ in 0..n {
            let addr = dec.u64()?;
            let kind = match dec.u8()? {
                0 => ReqKind::Read,
                1 => ReqKind::Write,
                _ => return Err(SnapError::BadValue),
            };
            let id = dec.u64()?;
            let coord = self.load_coord(dec)?;
            q.push_back(Queued {
                req: MemRequest { addr, kind, id },
                coord,
                enq_at: dec.u64()?,
                seq: dec.u64()?,
                classified: dec.bool()?,
            });
        }
        Ok(q)
    }

    /// Decodes a coordinate, rejecting anything outside this config's
    /// organization.
    fn load_coord(
        &self,
        dec: &mut crate::snap::Decoder<'_>,
    ) -> Result<DramCoord, crate::snap::SnapError> {
        let c = DramCoord {
            channel: dec.usize()?,
            rank: dec.usize()?,
            bank_group: dec.usize()?,
            bank: dec.usize()?,
            row: dec.usize()?,
            column: dec.usize()?,
        };
        if c.rank >= self.ranks.len()
            || c.bank_group >= self.config.org.banks_per_rank() / self.config.org.banks_per_group
            || c.bank >= self.config.org.banks_per_group
            || self.flat_bank(&c) >= self.banks.len()
        {
            return Err(crate::snap::SnapError::BadValue);
        }
        Ok(c)
    }

    /// Decodes one command record with coordinate validation.
    fn load_record(
        &self,
        dec: &mut crate::snap::Decoder<'_>,
    ) -> Result<CommandRecord, crate::snap::SnapError> {
        let cycle = dec.u64()?;
        let kind = match dec.u8()? {
            0 => CommandKind::Act,
            1 => CommandKind::Pre,
            2 => CommandKind::Rd,
            3 => CommandKind::Wr,
            4 => CommandKind::Ref,
            _ => return Err(crate::snap::SnapError::BadValue),
        };
        let coord = self.load_coord(dec)?;
        Ok(CommandRecord { cycle, kind, coord })
    }

    fn flat_bank(&self, c: &DramCoord) -> usize {
        c.rank * self.config.org.banks_per_rank()
            + c.bank_group * self.config.org.banks_per_group
            + c.bank
    }

    /// The rank and bank-group indices of flat bank `flat`.
    #[inline]
    fn rank_bg_of(&self, flat: usize) -> (usize, usize) {
        let (r, bg) = self.bank_coord[flat];
        (r as usize, bg as usize)
    }

    /// The row currently open on flat bank `flat`, if any.
    fn open_row(&self, flat: usize) -> Option<usize> {
        self.banks.open_row(flat)
    }

    /// Re-syncs both queues' open-row hit caches after `flat`'s row state
    /// changed (ACT, PRE, auto-precharge, refresh PRE).
    fn on_bank_row_change(&mut self, flat: usize) {
        let open_row = self.open_row(flat);
        self.read_ix.on_row_change(flat, open_row);
        self.write_ix.on_row_change(flat, open_row);
    }

    fn cas_issuable(&self, q: &Queued) -> bool {
        self.cas_issuable_at(self.flat_bank(&q.coord), q.req.is_read())
    }

    /// Whether a CAS may issue this cycle on flat bank `flat` (uniform
    /// for every resident of one queue: they share rank, bank group and
    /// direction).
    fn cas_issuable_at(&self, flat: usize, is_read: bool) -> bool {
        let t = &self.config.timing;
        let (rank_idx, bg) = self.rank_bg_of(flat);
        let rank = &self.ranks[rank_idx];
        // A rank whose pending refresh has exhausted its postpone budget
        // takes no more CAS traffic: every CAS extends `next_pre`
        // (tRTP/write recovery), so a row-hit stream would defer REF
        // forever.
        if self.refresh_pending[rank_idx]
            && rank.refresh_overdue(self.now, t, REFRESH_POSTPONE_INTERVALS)
        {
            return false;
        }
        let bank_ready = if is_read {
            self.now >= self.banks.next_rd(flat)
        } else {
            self.now >= self.banks.next_wr(flat)
        };
        let rank_ready = self.now >= rank.cas_allowed_at(bg, is_read, t);
        let burst_start = self.now + if is_read { t.t_cl } else { t.t_cwl };
        bank_ready && rank_ready && burst_start >= self.bus_free_at
    }

    fn act_issuable(&self, q: &Queued) -> bool {
        self.act_issuable_at(self.flat_bank(&q.coord))
    }

    /// Whether an ACT may issue this cycle on flat bank `flat`.
    fn act_issuable_at(&self, flat: usize) -> bool {
        let t = &self.config.timing;
        let (rank_idx, bg) = self.rank_bg_of(flat);
        !self.refresh_pending[rank_idx]
            && self.now >= self.banks.next_act(flat)
            && self.now >= self.ranks[rank_idx].act_allowed_at(bg, t)
    }

    fn issue(&mut self, kind: ReqKind, choice: Candidate) {
        // Any issued command mutates bank/rank/bus timing state.
        self.sched_sleep_until = 0;
        let t = self.config.timing;
        let queue = match kind {
            ReqKind::Read => &mut self.read_q,
            ReqKind::Write => &mut self.write_q,
        };
        let entry = queue[choice.queue_pos];
        let flat = self.flat_bank(&entry.coord);
        // First command on behalf of this request classifies it.
        if !entry.classified {
            match choice.needed {
                NeededCommand::Cas => self.stats.row_hits += 1,
                NeededCommand::Activate => self.stats.row_misses += 1,
                NeededCommand::Precharge => self.stats.row_conflicts += 1,
            }
            if let Some(t) = self.tracer.as_mut() {
                t.on_classify(flat, choice.needed);
            }
            match kind {
                ReqKind::Read => self.read_q[choice.queue_pos].classified = true,
                ReqKind::Write => self.write_q[choice.queue_pos].classified = true,
            }
        }
        match choice.needed {
            NeededCommand::Precharge => {
                // Log the row being closed, not the requested row.
                let open_row = self.banks.open_row(flat).unwrap_or(entry.coord.row);
                self.banks.do_precharge(flat, self.now, &t);
                self.stats.precharges += 1;
                self.on_bank_row_change(flat);
                self.emit(
                    self.now,
                    CommandKind::Pre,
                    DramCoord {
                        row: open_row,
                        ..entry.coord
                    },
                );
            }
            NeededCommand::Activate => {
                self.banks.do_activate(flat, self.now, entry.coord.row, &t);
                self.ranks[entry.coord.rank].record_act(self.now, entry.coord.bank_group);
                self.stats.activates += 1;
                self.on_bank_row_change(flat);
                self.emit(self.now, CommandKind::Act, entry.coord);
            }
            NeededCommand::Cas => {
                let is_read = entry.req.is_read();
                let cas_lat = if is_read {
                    self.banks.do_read(flat, self.now, &t);
                    t.t_cl
                } else {
                    self.banks.do_write(flat, self.now, &t);
                    t.t_cwl
                };
                self.emit(
                    self.now,
                    if is_read {
                        CommandKind::Rd
                    } else {
                        CommandKind::Wr
                    },
                    entry.coord,
                );
                self.ranks[entry.coord.rank].record_cas(
                    self.now,
                    entry.coord.bank_group,
                    is_read,
                    &t,
                );
                let done_at = self.now + cas_lat + t.t_bl;
                self.bus_free_at = done_at;
                self.stats.bus_busy_cycles += t.t_bl;
                if is_read {
                    self.stats.reads += 1;
                    let latency = done_at - entry.enq_at;
                    self.stats.read_latency_sum += latency;
                    self.stats.read_latency_max = self.stats.read_latency_max.max(latency);
                } else {
                    self.stats.writes += 1;
                }
                self.push_response(MemResponse {
                    id: entry.req.id,
                    addr: entry.req.addr,
                    kind: entry.req.kind,
                    done_at,
                });
                if self.config.row_policy == RowPolicy::ClosedPage {
                    // Auto-precharge (RDA/WRA): takes effect at the
                    // earliest legal precharge time the bank now carries.
                    // The record is buffered until that cycle arrives so
                    // the observable command stream stays monotonic.
                    let pre_at = self.banks.next_pre(flat);
                    self.banks.do_precharge(flat, pre_at, &t);
                    self.stats.precharges += 1;
                    if self.config.log_commands || self.checker.is_some() {
                        self.pending_autopre.push(CommandRecord {
                            cycle: pre_at,
                            kind: CommandKind::Pre,
                            coord: entry.coord,
                        });
                    }
                }
                match kind {
                    ReqKind::Read => {
                        self.read_q.remove(choice.queue_pos);
                        self.read_ix.remove(flat, entry.seq);
                    }
                    ReqKind::Write => {
                        self.write_q.remove(choice.queue_pos);
                        self.write_ix.remove(flat, entry.seq);
                    }
                }
                // The CAS closed the bank under ClosedPage (and the row
                // state seen by the hit caches changed); the retired
                // request itself was already dropped from both indexes.
                if self.config.row_policy == RowPolicy::ClosedPage {
                    self.on_bank_row_change(flat);
                }
            }
        }
    }
}

fn save_opt_pair(enc: &mut crate::snap::Encoder, v: Option<(u64, usize)>) {
    match v {
        Some((a, b)) => {
            enc.bool(true);
            enc.u64(a);
            enc.usize(b);
        }
        None => enc.bool(false),
    }
}

fn load_opt_pair(
    dec: &mut crate::snap::Decoder<'_>,
) -> Result<Option<(u64, usize)>, crate::snap::SnapError> {
    Ok(match dec.bool()? {
        true => Some((dec.u64()?, dec.usize()?)),
        false => None,
    })
}

fn save_coord(enc: &mut crate::snap::Encoder, c: &DramCoord) {
    enc.usize(c.channel);
    enc.usize(c.rank);
    enc.usize(c.bank_group);
    enc.usize(c.bank);
    enc.usize(c.row);
    enc.usize(c.column);
}

fn save_record(enc: &mut crate::snap::Encoder, r: &CommandRecord) {
    enc.u64(r.cycle);
    enc.u8(match r.kind {
        CommandKind::Act => 0,
        CommandKind::Pre => 1,
        CommandKind::Rd => 2,
        CommandKind::Wr => 3,
        CommandKind::Ref => 4,
    });
    save_coord(enc, &r.coord);
}

fn save_queue(enc: &mut crate::snap::Encoder, q: &VecDeque<Queued>) {
    enc.seq(q.len());
    for e in q {
        enc.u64(e.req.addr);
        enc.u8((e.req.kind == ReqKind::Write) as u8);
        enc.u64(e.req.id);
        save_coord(enc, &e.coord);
        enc.u64(e.enq_at);
        enc.u64(e.seq);
        enc.bool(e.classified);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AddressMapper;

    fn controller() -> (ChannelController, AddressMapper) {
        let mut cfg = DramConfig::ddr4_2400r();
        cfg.refresh_enabled = false;
        let mapper = AddressMapper::new(cfg.org, cfg.mapping);
        (ChannelController::new(cfg), mapper)
    }

    fn run_until_response(ctrl: &mut ChannelController, max: u64) -> Option<MemResponse> {
        for _ in 0..max {
            ctrl.tick();
            if let Some(r) = ctrl.pop_response() {
                return Some(r);
            }
        }
        None
    }

    #[test]
    fn cold_read_latency_is_rcd_plus_cl_plus_bl() {
        let (mut ctrl, map) = controller();
        assert!(ctrl.try_enqueue(MemRequest::read(0, 1), map.decode(0)));
        let resp = run_until_response(&mut ctrl, 200).unwrap();
        // ACT at cycle 1, RD at 1+tRCD=17, data done 17+tCL+tBL=37.
        assert_eq!(resp.done_at, 37);
        assert_eq!(ctrl.stats().row_misses, 1);
    }

    #[test]
    fn row_hit_read_is_faster() {
        let (mut ctrl, map) = controller();
        assert!(ctrl.try_enqueue(MemRequest::read(0, 1), map.decode(0)));
        let first = run_until_response(&mut ctrl, 200).unwrap();
        assert!(ctrl.try_enqueue(MemRequest::read(64, 2), map.decode(64)));
        let second = run_until_response(&mut ctrl, 200).unwrap();
        // Second access hits the open row: latency tCL + tBL only.
        assert_eq!(second.done_at - first.done_at, 16 + 4 + 1);
        assert_eq!(ctrl.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_requires_pre_act() {
        let (mut ctrl, map) = controller();
        // Two reads to the same bank, different rows.
        let row_stride = 64 * 128 * 16; // columns * banks (RoBaRaCoCh: row above bank bits)
        assert!(ctrl.try_enqueue(MemRequest::read(0, 1), map.decode(0)));
        let _ = run_until_response(&mut ctrl, 200).unwrap();
        let addr2 = row_stride as u64;
        let c2 = map.decode(addr2);
        assert_eq!(
            c2.flat_bank(map.organization()),
            map.decode(0).flat_bank(map.organization())
        );
        assert_ne!(c2.row, map.decode(0).row);
        assert!(ctrl.try_enqueue(MemRequest::read(addr2, 2), c2));
        let _ = run_until_response(&mut ctrl, 400).unwrap();
        assert_eq!(ctrl.stats().row_conflicts, 1);
        assert!(ctrl.stats().precharges >= 1);
    }

    #[test]
    fn queue_rejects_when_full() {
        let (mut ctrl, map) = controller();
        for i in 0..32 {
            assert!(ctrl.try_enqueue(
                MemRequest::read((i * 4096) as u64, i as u64),
                map.decode((i * 4096) as u64)
            ));
        }
        assert!(!ctrl.try_enqueue(MemRequest::read(1 << 20, 99), map.decode(1 << 20)));
        assert_eq!(ctrl.stats().queue_full_rejections, 1);
    }

    #[test]
    fn store_to_load_forwarding() {
        let (mut ctrl, map) = controller();
        assert!(ctrl.try_enqueue(MemRequest::write(256, 1), map.decode(256)));
        assert!(ctrl.try_enqueue(MemRequest::read(256, 2), map.decode(256)));
        ctrl.tick();
        let resp = ctrl.pop_response().unwrap();
        assert_eq!(resp.id, 2);
        assert_eq!(resp.done_at, 1);
    }

    #[test]
    fn writes_complete() {
        let (mut ctrl, map) = controller();
        assert!(ctrl.try_enqueue(MemRequest::write(0, 7), map.decode(0)));
        let resp = run_until_response(&mut ctrl, 200).unwrap();
        assert_eq!(resp.kind, ReqKind::Write);
        assert_eq!(ctrl.stats().writes, 1);
    }

    #[test]
    fn streaming_reads_saturate_bus() {
        let (mut ctrl, map) = controller();
        // 64 sequential lines in the same row: after warm-up, one burst per
        // tCCD_S-to-tBL cycles. Feed continuously.
        let mut sent = 0u64;
        let mut got = 0u64;
        let mut cycles = 0u64;
        while got < 64 {
            if sent < 64 {
                let addr = sent * 64;
                if ctrl.try_enqueue(MemRequest::read(addr, sent), map.decode(addr)) {
                    sent += 1;
                }
            }
            ctrl.tick();
            cycles += 1;
            while ctrl.pop_response().is_some() {
                got += 1;
            }
            assert!(cycles < 4000, "deadlock");
        }
        // 64 bursts of 4 cycles = 256 busy cycles; utilization should be
        // high once warm (allow generous margin for the fill phase).
        assert!(cycles < 450, "took {cycles} cycles for 64 streaming reads");
        assert_eq!(ctrl.stats().row_hits, 63);
    }

    #[test]
    fn refresh_eventually_issues() {
        let mut cfg = DramConfig::ddr4_2400r();
        cfg.refresh_enabled = true;
        let map = AddressMapper::new(cfg.org, cfg.mapping);
        let mut ctrl = ChannelController::new(cfg);
        // Idle past one tREFI.
        for _ in 0..11_000 {
            ctrl.tick();
        }
        assert!(ctrl.stats().refreshes >= 1);
        // Requests still complete after refresh.
        assert!(ctrl.try_enqueue(MemRequest::read(0, 1), map.decode(0)));
        assert!(run_until_response(&mut ctrl, 1000).is_some());
    }

    #[test]
    fn refresh_closes_open_rows() {
        let mut cfg = DramConfig::ddr4_2400r();
        cfg.refresh_enabled = true;
        let map = AddressMapper::new(cfg.org, cfg.mapping);
        let mut ctrl = ChannelController::new(cfg);
        assert!(ctrl.try_enqueue(MemRequest::read(0, 1), map.decode(0)));
        let _ = run_until_response(&mut ctrl, 200);
        // Run past refresh; the PRE for the open row counts.
        for _ in 0..11_000 {
            ctrl.tick();
        }
        assert!(ctrl.stats().refreshes >= 1);
        assert!(ctrl.stats().precharges >= 1);
    }

    #[test]
    fn write_drain_hysteresis_prioritizes_writes() {
        let (mut ctrl, map) = controller();
        // Fill write queue to high watermark with same-row writes.
        for i in 0..24u64 {
            assert!(ctrl.try_enqueue(MemRequest::write(i * 64, i), map.decode(i * 64)));
        }
        assert!(ctrl.try_enqueue(MemRequest::read(1 << 22, 100), map.decode(1 << 22)));
        // Drain: writes should start completing before the read finishes its
        // ACT+CAS (writes were enqueued first and drain mode is on).
        let mut first_done: Option<ReqKind> = None;
        for _ in 0..400 {
            ctrl.tick();
            if let Some(r) = ctrl.pop_response() {
                first_done = Some(r.kind);
                break;
            }
        }
        assert_eq!(first_done, Some(ReqKind::Write));
    }

    #[test]
    fn is_idle_reflects_state() {
        let (mut ctrl, map) = controller();
        assert!(ctrl.is_idle());
        ctrl.try_enqueue(MemRequest::read(0, 1), map.decode(0));
        assert!(!ctrl.is_idle());
        let _ = run_until_response(&mut ctrl, 200);
        assert!(ctrl.is_idle());
    }
}
