use crate::Organization;

/// Decoded DRAM coordinates of a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramCoord {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank group index within the rank.
    pub bank_group: usize,
    /// Bank index within the bank group.
    pub bank: usize,
    /// Row index within the bank.
    pub row: usize,
    /// Column (cache-line) index within the row.
    pub column: usize,
}

impl DramCoord {
    /// Flat bank identifier within a channel
    /// (`rank * banks_per_rank + bank_group * banks_per_group + bank`).
    pub fn flat_bank(&self, org: &Organization) -> usize {
        self.rank * org.banks_per_rank() + self.bank_group * org.banks_per_group + self.bank
    }
}

/// Physical-address interleaving scheme, named low-bits-first (the
/// right-most field consumes the least-significant address bits above the
/// transaction offset).
///
/// * [`MappingScheme::RoBaRaCoCh`] — row : bank : rank : column : channel.
///   Adjacent lines stripe across channels then columns, maximizing
///   row-buffer locality for streams; Ramulator's default for multichannel.
/// * [`MappingScheme::ChRaBaRoCo`] — channel : rank : bank : row : column.
///   Adjacent lines walk a row buffer before switching banks.
/// * [`MappingScheme::RoCoBaRaCh`] — row : column : bank : rank : channel.
///   Bank-interleaved at line granularity, maximizing bank-level
///   parallelism for random streams (the layout MeNDA uses for COO
///   intermediates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingScheme {
    /// row : bank-group : bank : rank : column : channel (low to high: channel, column, ...).
    RoBaRaCoCh,
    /// channel : rank : bank : row : column (low to high: column, row, ...).
    ChRaBaRoCo,
    /// row : column : bank : rank : channel (low to high: channel, rank, bank, column, row).
    RoCoBaRaCh,
}

/// Translates physical addresses to [`DramCoord`]s for an
/// [`Organization`] under a [`MappingScheme`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMapper {
    org: Organization,
    scheme: MappingScheme,
}

impl AddressMapper {
    /// Creates a mapper for the given organization and scheme.
    ///
    /// # Panics
    ///
    /// Panics if any organization field is not a power of two (required for
    /// bit-slicing) except `channels`/`ranks` which may be any value ≥ 1.
    pub fn new(org: Organization, scheme: MappingScheme) -> Self {
        assert!(org.transaction_bytes.is_power_of_two());
        assert!(org.columns.is_power_of_two());
        assert!(org.rows.is_power_of_two());
        assert!(org.bank_groups.is_power_of_two());
        assert!(org.banks_per_group.is_power_of_two());
        assert!(org.channels >= 1 && org.ranks >= 1);
        Self { org, scheme }
    }

    /// The organization this mapper decodes for.
    pub fn organization(&self) -> &Organization {
        &self.org
    }

    /// Decodes a physical byte address into DRAM coordinates.
    ///
    /// Addresses beyond the configured capacity wrap (the simulator's
    /// address space is a torus; callers allocate within capacity).
    pub fn decode(&self, addr: u64) -> DramCoord {
        let mut line = addr / self.org.transaction_bytes as u64;
        let mut take = |n: usize| -> usize {
            if n <= 1 {
                return 0;
            }
            let v = (line % n as u64) as usize;
            line /= n as u64;
            v
        };
        let o = self.org;
        match self.scheme {
            MappingScheme::RoBaRaCoCh => {
                let channel = take(o.channels);
                let column = take(o.columns);
                let rank = take(o.ranks);
                let bank = take(o.banks_per_group);
                let bank_group = take(o.bank_groups);
                let row = take(o.rows);
                DramCoord {
                    channel,
                    rank,
                    bank_group,
                    bank,
                    row,
                    column,
                }
            }
            MappingScheme::ChRaBaRoCo => {
                let column = take(o.columns);
                let row = take(o.rows);
                let bank = take(o.banks_per_group);
                let bank_group = take(o.bank_groups);
                let rank = take(o.ranks);
                let channel = take(o.channels);
                DramCoord {
                    channel,
                    rank,
                    bank_group,
                    bank,
                    row,
                    column,
                }
            }
            MappingScheme::RoCoBaRaCh => {
                let channel = take(o.channels);
                let rank = take(o.ranks);
                let bank = take(o.banks_per_group);
                let bank_group = take(o.bank_groups);
                let column = take(o.columns);
                let row = take(o.rows);
                DramCoord {
                    channel,
                    rank,
                    bank_group,
                    bank,
                    row,
                    column,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org() -> Organization {
        Organization::ddr4_4gb_x8()
    }

    #[test]
    fn sequential_lines_hit_same_row_in_robaracoch_single_channel() {
        let m = AddressMapper::new(org(), MappingScheme::RoBaRaCoCh);
        let a = m.decode(0);
        let b = m.decode(64);
        assert_eq!(a.row, b.row);
        assert_eq!(a.flat_bank(&org()), b.flat_bank(&org()));
        assert_eq!(b.column, a.column + 1);
    }

    #[test]
    fn channel_bit_is_lowest_in_robaracoch() {
        let mut o = org();
        o.channels = 2;
        let m = AddressMapper::new(o, MappingScheme::RoBaRaCoCh);
        assert_eq!(m.decode(0).channel, 0);
        assert_eq!(m.decode(64).channel, 1);
        assert_eq!(m.decode(128).channel, 0);
    }

    #[test]
    fn rocobarach_interleaves_banks_at_line_granularity() {
        let m = AddressMapper::new(org(), MappingScheme::RoCoBaRaCh);
        let a = m.decode(0);
        let b = m.decode(64);
        assert_ne!(a.flat_bank(&org()), b.flat_bank(&org()));
        assert_eq!(a.row, b.row);
    }

    #[test]
    fn chrabaroco_walks_columns_first() {
        let m = AddressMapper::new(org(), MappingScheme::ChRaBaRoCo);
        let a = m.decode(0);
        let b = m.decode(64);
        assert_eq!(a.row, b.row);
        assert_eq!(b.column, 1);
        // After a full row (128 lines * 64B), the row advances.
        let c = m.decode(128 * 64);
        assert_eq!(c.row, 1);
        assert_eq!(c.column, 0);
    }

    #[test]
    fn decode_is_injective_within_capacity() {
        let mut o = org();
        o.rows = 64; // shrink for an exhaustive check
        o.columns = 8;
        o.channels = 2;
        o.ranks = 2;
        for scheme in [
            MappingScheme::RoBaRaCoCh,
            MappingScheme::ChRaBaRoCo,
            MappingScheme::RoCoBaRaCh,
        ] {
            let m = AddressMapper::new(o, scheme);
            let lines = o.capacity_bytes() / 64;
            let mut seen = std::collections::HashSet::new();
            for i in 0..lines as u64 {
                let c = m.decode(i * 64);
                assert!(c.channel < o.channels);
                assert!(c.rank < o.ranks);
                assert!(c.row < o.rows);
                assert!(c.column < o.columns);
                assert!(seen.insert(c), "collision at line {i} under {scheme:?}");
            }
        }
    }

    #[test]
    fn same_line_same_coord() {
        let m = AddressMapper::new(org(), MappingScheme::RoBaRaCoCh);
        assert_eq!(m.decode(100), m.decode(127));
        assert_ne!(m.decode(100), m.decode(128));
    }

    #[test]
    fn flat_bank_ranges() {
        let mut o = org();
        o.ranks = 2;
        let m = AddressMapper::new(o, MappingScheme::RoCoBaRaCh);
        let max_flat = (0..(1u64 << 20))
            .step_by(64)
            .map(|a| m.decode(a).flat_bank(&o))
            .max()
            .unwrap();
        assert!(max_flat < o.ranks * o.banks_per_rank());
    }
}
