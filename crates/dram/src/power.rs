//! First-order DDR4 energy model (Micron power-calculator style).
//!
//! Converts the event counts in [`DramStats`] into energy: each command
//! class carries a fixed energy derived from IDD currents at 1.2 V, plus
//! time-proportional background power. MeNDA's energy claims rest on
//! *traffic reduction* (fewer intermediate passes) and on avoiding the
//! off-chip interface; this model quantifies the device-side part.

use crate::{DramConfig, DramStats};

/// Energy per ACT+PRE pair, in nanojoules (IDD0-derived, 4 Gb x8 DDR4).
pub const ACT_PRE_NJ: f64 = 2.0;
/// Energy per 64 B read burst, device side (IDD4R-derived).
pub const READ_NJ: f64 = 2.7;
/// Energy per 64 B write burst (IDD4W-derived).
pub const WRITE_NJ: f64 = 2.9;
/// Additional I/O + termination energy per 64 B transferred across the
/// *off-chip* interface. Near-memory access through the DIMM buffer chip
/// avoids most of this — the NMP energy advantage.
pub const OFFCHIP_IO_NJ: f64 = 4.3;
/// On-DIMM (buffer-chip) I/O energy per 64 B, much shorter wires.
pub const ONDIMM_IO_NJ: f64 = 1.1;
/// Energy per refresh command (IDD5-derived).
pub const REFRESH_NJ: f64 = 28.0;
/// Background power per rank in milliwatts (standby, clocking).
pub const BACKGROUND_MW_PER_RANK: f64 = 95.0;

/// Where the requester sits relative to the device, which decides the I/O
/// energy per transferred block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interface {
    /// Host access across the off-chip channel (baseline CPUs/GPUs).
    OffChip,
    /// Near-memory access from the DIMM buffer chip (MeNDA PUs).
    OnDimm,
}

/// Energy breakdown of a simulated interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Row activate + precharge energy (joules).
    pub activation_j: f64,
    /// Read/write burst energy (joules).
    pub burst_j: f64,
    /// Interface (I/O + termination) energy (joules).
    pub io_j: f64,
    /// Refresh energy (joules).
    pub refresh_j: f64,
    /// Background energy (joules).
    pub background_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.activation_j + self.burst_j + self.io_j + self.refresh_j + self.background_j
    }

    /// Average power in watts over `seconds`.
    pub fn average_w(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        self.total_j() / seconds
    }
}

/// Computes the device energy of a simulated interval from its statistics.
pub fn energy(stats: &DramStats, config: &DramConfig, interface: Interface) -> EnergyBreakdown {
    let seconds = stats.cycles as f64 / (config.clock_mhz as f64 * 1e6);
    // Forwarded reads are served from the write queue and never touch the
    // device or the data bus.
    let device_reads = (stats.reads - stats.forwarded_reads) as f64;
    let blocks = device_reads + stats.writes as f64;
    let io_per_block = match interface {
        Interface::OffChip => OFFCHIP_IO_NJ,
        Interface::OnDimm => ONDIMM_IO_NJ,
    };
    EnergyBreakdown {
        activation_j: stats.activates as f64 * ACT_PRE_NJ * 1e-9,
        burst_j: (device_reads * READ_NJ + stats.writes as f64 * WRITE_NJ) * 1e-9,
        io_j: blocks * io_per_block * 1e-9,
        refresh_j: stats.refreshes as f64 * REFRESH_NJ * 1e-9,
        background_j: BACKGROUND_MW_PER_RANK
            * 1e-3
            * config.org.ranks as f64
            * config.org.channels as f64
            * seconds,
    }
}

/// Energy per useful byte moved, in nanojoules — the traffic-efficiency
/// metric that improves when merge passes are eliminated.
pub fn nj_per_byte(stats: &DramStats, config: &DramConfig, interface: Interface) -> f64 {
    let bytes = stats.bytes_transferred(config.org.transaction_bytes) as f64;
    if bytes == 0.0 {
        return 0.0;
    }
    energy(stats, config, interface).total_j() * 1e9 / bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemRequest, MemorySystem};

    fn run_stream(blocks: u64) -> (DramStats, DramConfig) {
        let mut cfg = DramConfig::ddr4_2400r();
        cfg.refresh_enabled = false;
        let mut mem = MemorySystem::new(cfg.clone());
        let mut sent = 0u64;
        let mut done = 0u64;
        while done < blocks {
            if sent < blocks && mem.try_enqueue(MemRequest::read(sent * 64, sent)) {
                sent += 1;
            }
            mem.tick();
            while mem.pop_response().is_some() {
                done += 1;
            }
        }
        (mem.stats(), cfg)
    }

    #[test]
    fn energy_components_are_positive_and_sum() {
        let (stats, cfg) = run_stream(512);
        let e = energy(&stats, &cfg, Interface::OffChip);
        assert!(e.activation_j > 0.0);
        assert!(e.burst_j > 0.0);
        assert!(e.io_j > 0.0);
        assert!(e.background_j > 0.0);
        let total = e.activation_j + e.burst_j + e.io_j + e.refresh_j + e.background_j;
        assert!((e.total_j() - total).abs() < 1e-18);
    }

    #[test]
    fn on_dimm_access_is_cheaper_than_off_chip() {
        let (stats, cfg) = run_stream(512);
        let off = energy(&stats, &cfg, Interface::OffChip).total_j();
        let on = energy(&stats, &cfg, Interface::OnDimm).total_j();
        assert!(on < off);
        // The delta is exactly the I/O difference.
        let expected = (OFFCHIP_IO_NJ - ONDIMM_IO_NJ) * 1e-9 * 512.0;
        assert!((off - on - expected).abs() < 1e-12);
    }

    #[test]
    fn streaming_is_more_efficient_per_byte_than_thrashing() {
        let (seq_stats, cfg) = run_stream(512);
        // Row-thrashing pattern: one block per row.
        let mut mem = MemorySystem::new(cfg.clone());
        let mut sent = 0u64;
        let mut done = 0u64;
        while done < 512 {
            if sent < 512 && mem.try_enqueue(MemRequest::read(sent * 8192, sent)) {
                sent += 1;
            }
            mem.tick();
            while mem.pop_response().is_some() {
                done += 1;
            }
        }
        let thrash = nj_per_byte(&mem.stats(), &cfg, Interface::OffChip);
        let seq = nj_per_byte(&seq_stats, &cfg, Interface::OffChip);
        assert!(
            seq < thrash,
            "sequential {seq} nJ/B not cheaper than thrashing {thrash}"
        );
    }

    #[test]
    fn forwarded_reads_carry_no_device_energy() {
        let stats = DramStats {
            cycles: 100,
            reads: 10,
            forwarded_reads: 10,
            ..Default::default()
        };
        let cfg = DramConfig::ddr4_2400r();
        let e = energy(&stats, &cfg, Interface::OffChip);
        assert_eq!(e.burst_j, 0.0);
        assert_eq!(e.io_j, 0.0);
    }

    #[test]
    fn zero_traffic_is_zero_per_byte() {
        let cfg = DramConfig::ddr4_2400r();
        assert_eq!(nj_per_byte(&DramStats::new(), &cfg, Interface::OnDimm), 0.0);
    }

    #[test]
    fn average_power_is_finite_and_plausible() {
        let (stats, cfg) = run_stream(2048);
        let seconds = stats.cycles as f64 / (cfg.clock_mhz as f64 * 1e6);
        let w = energy(&stats, &cfg, Interface::OffChip).average_w(seconds);
        // A busy DDR4 rank burns hundreds of milliwatts to a few watts.
        assert!((0.1..10.0).contains(&w), "{w} W");
    }
}
