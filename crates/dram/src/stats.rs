/// Counters collected by the DRAM simulator.
///
/// Per-channel controllers keep their own copy; [`crate::MemorySystem`]
/// aggregates them on demand.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Bus cycles elapsed.
    pub cycles: u64,
    /// Read transactions completed (data delivered), including reads
    /// served by store-to-load forwarding from the write queue.
    pub reads: u64,
    /// Reads served by store-to-load forwarding (no DRAM access; subset
    /// of [`DramStats::reads`]).
    pub forwarded_reads: u64,
    /// Write transactions completed (data transferred).
    pub writes: u64,
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// REF commands issued.
    pub refreshes: u64,
    /// CAS commands that hit an open row.
    pub row_hits: u64,
    /// Requests that found their bank closed.
    pub row_misses: u64,
    /// Requests that found a different row open (needs PRE + ACT).
    pub row_conflicts: u64,
    /// Sum of read latencies (enqueue → data completion), in bus cycles.
    pub read_latency_sum: u64,
    /// Maximum observed read latency.
    pub read_latency_max: u64,
    /// Cycles during which a data burst occupied the bus.
    pub bus_busy_cycles: u64,
    /// Enqueue attempts rejected because a queue was full.
    pub queue_full_rejections: u64,
}

impl DramStats {
    /// Fresh zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes moved over the data bus (64 B per completed transaction).
    pub fn bytes_transferred(&self, transaction_bytes: usize) -> u64 {
        (self.reads + self.writes) * transaction_bytes as u64
    }

    /// Achieved bandwidth in GB/s over the elapsed cycles, given the bus
    /// clock in MHz and transaction size.
    pub fn utilized_bandwidth_gbs(&self, clock_mhz: u64, transaction_bytes: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let seconds = self.cycles as f64 / (clock_mhz as f64 * 1e6);
        self.bytes_transferred(transaction_bytes) as f64 / seconds / 1e9
    }

    /// Fraction of CAS accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            return 0.0;
        }
        self.row_hits as f64 / total as f64
    }

    /// Fraction of requests that conflicted with an open row.
    pub fn row_conflict_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            return 0.0;
        }
        self.row_conflicts as f64 / total as f64
    }

    /// Mean read latency in bus cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.read_latency_sum as f64 / self.reads as f64
    }

    /// Fraction of cycles the data bus carried a burst.
    pub fn bus_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.bus_busy_cycles as f64 / self.cycles as f64
    }

    /// Serializes every counter for checkpointing.
    pub fn save_state(&self, enc: &mut crate::snap::Encoder) {
        enc.u64(self.cycles);
        enc.u64(self.reads);
        enc.u64(self.forwarded_reads);
        enc.u64(self.writes);
        enc.u64(self.activates);
        enc.u64(self.precharges);
        enc.u64(self.refreshes);
        enc.u64(self.row_hits);
        enc.u64(self.row_misses);
        enc.u64(self.row_conflicts);
        enc.u64(self.read_latency_sum);
        enc.u64(self.read_latency_max);
        enc.u64(self.bus_busy_cycles);
        enc.u64(self.queue_full_rejections);
    }

    /// Restores counters saved by [`DramStats::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::snap::SnapError`] on truncated input.
    pub fn restore_state(
        &mut self,
        dec: &mut crate::snap::Decoder<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        self.cycles = dec.u64()?;
        self.reads = dec.u64()?;
        self.forwarded_reads = dec.u64()?;
        self.writes = dec.u64()?;
        self.activates = dec.u64()?;
        self.precharges = dec.u64()?;
        self.refreshes = dec.u64()?;
        self.row_hits = dec.u64()?;
        self.row_misses = dec.u64()?;
        self.row_conflicts = dec.u64()?;
        self.read_latency_sum = dec.u64()?;
        self.read_latency_max = dec.u64()?;
        self.bus_busy_cycles = dec.u64()?;
        self.queue_full_rejections = dec.u64()?;
        Ok(())
    }

    /// Accumulates `other` into `self` (cycle counts take the max, event
    /// counts add), used to aggregate per-channel stats.
    pub fn merge(&mut self, other: &DramStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.reads += other.reads;
        self.forwarded_reads += other.forwarded_reads;
        self.writes += other.writes;
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.refreshes += other.refreshes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.read_latency_sum += other.read_latency_sum;
        self.read_latency_max = self.read_latency_max.max(other.read_latency_max);
        self.bus_busy_cycles += other.bus_busy_cycles;
        self.queue_full_rejections += other.queue_full_rejections;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_computation() {
        let s = DramStats {
            cycles: 1200,
            reads: 100,
            writes: 0,
            ..Default::default()
        };
        // 1200 cycles at 1200 MHz = 1 us; 6400 B / 1 us = 6.4 GB/s.
        let bw = s.utilized_bandwidth_gbs(1200, 64);
        assert!((bw - 6.4).abs() < 1e-9, "{bw}");
    }

    #[test]
    fn rates_handle_zero() {
        let s = DramStats::new();
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.avg_read_latency(), 0.0);
        assert_eq!(s.bus_utilization(), 0.0);
        assert_eq!(s.utilized_bandwidth_gbs(1200, 64), 0.0);
    }

    #[test]
    fn hit_rate() {
        let s = DramStats {
            row_hits: 3,
            row_misses: 1,
            row_conflicts: 1,
            ..Default::default()
        };
        assert!((s.row_hit_rate() - 0.6).abs() < 1e-12);
        assert!((s.row_conflict_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_events_and_maxes_cycles() {
        let mut a = DramStats {
            cycles: 100,
            reads: 5,
            read_latency_max: 40,
            ..Default::default()
        };
        let b = DramStats {
            cycles: 80,
            reads: 7,
            read_latency_max: 60,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 100);
        assert_eq!(a.reads, 12);
        assert_eq!(a.read_latency_max, 60);
    }
}
