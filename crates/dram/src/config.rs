use std::sync::atomic::{AtomicU8, Ordering};

use menda_trace::TraceConfig;

use crate::MappingScheme;

/// Process-wide default for [`DramConfig::check_protocol`]:
/// 0 = follow the `MENDA_CHECK_PROTOCOL` environment variable,
/// 1 = forced off, 2 = forced on.
static CHECK_PROTOCOL_DEFAULT: AtomicU8 = AtomicU8::new(0);

/// Overrides the default value of [`DramConfig::check_protocol`] for
/// configurations constructed afterwards in this process.
///
/// `Some(true)`/`Some(false)` force the default on/off; `None` restores
/// the environment-driven behaviour (`MENDA_CHECK_PROTOCOL` set to a
/// non-`"0"` value enables checking — the hook CI uses to run the whole
/// suite under live protocol verification).
pub fn set_check_protocol_default(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    CHECK_PROTOCOL_DEFAULT.store(v, Ordering::Relaxed);
}

fn check_protocol_default() -> bool {
    match CHECK_PROTOCOL_DEFAULT.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => std::env::var("MENDA_CHECK_PROTOCOL").is_ok_and(|v| !v.is_empty() && v != "0"),
    }
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Leave the row open after a CAS (FR-FCFS exploits hits) — the policy
    /// the paper's `FRFCFS_PriorHit` configuration implies.
    #[default]
    OpenPage,
    /// Auto-precharge after every CAS; each access pays ACT+CAS but row
    /// conflicts disappear. Useful for random-access ablations.
    ClosedPage,
}

/// DRAM device organization: how many channels, ranks, bank groups, banks,
/// rows and columns the simulated memory has.
///
/// The defaults model the paper's `4Gb_x8` DDR4 organization: 4 bank
/// groups × 4 banks, 32K rows (scaled), 1K columns, 8-byte bus with burst
/// length 8 (64-byte transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Organization {
    /// Number of independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Bank groups per rank.
    pub bank_groups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Column *cache lines* per row (row buffer size / transaction size).
    pub columns: usize,
    /// Bytes per transaction (bus width × burst length); 64 B for DDR4 x64.
    pub transaction_bytes: usize,
}

impl Organization {
    /// The `4Gb_x8` DDR4 organization of Table 1 (one channel, one rank by
    /// default — the MeNDA system scales channels and ranks explicitly).
    pub fn ddr4_4gb_x8() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 32_768,
            columns: 128, // 8KB row buffer / 64B lines
            transaction_bytes: 64,
        }
    }

    /// Total banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    /// Total addressable bytes across all channels.
    pub fn capacity_bytes(&self) -> usize {
        self.channels
            * self.ranks
            * self.banks_per_rank()
            * self.rows
            * self.columns
            * self.transaction_bytes
    }
}

/// DDR4 timing parameters, in DRAM *bus-clock* cycles.
///
/// The names and nominal values follow Table 1 of the paper
/// (`DDR4_2400R`): `tRC=55, tRCD=16, tCL=16, tRP=16, tBL=4, tCCDS=4,
/// tCCDL=6, tRRDS=4, tRRDL=6, tFAW=26`. Parameters the table omits but the
/// protocol requires (`tRAS`, `tCWL`, `tWR`, `tWTR`, `tRTP`, refresh) use
/// standard DDR4-2400 values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// ACT-to-ACT delay, same bank (row cycle).
    pub t_rc: u64,
    /// ACT-to-RD/WR delay (RAS-to-CAS).
    pub t_rcd: u64,
    /// RD-to-first-data delay (CAS latency).
    pub t_cl: u64,
    /// WR command to first data (CAS write latency).
    pub t_cwl: u64,
    /// PRE-to-ACT delay (row precharge).
    pub t_rp: u64,
    /// ACT-to-PRE minimum (row active time).
    pub t_ras: u64,
    /// Data burst duration on the bus (BL8 = 4 bus cycles).
    pub t_bl: u64,
    /// CAS-to-CAS, different bank group.
    pub t_ccd_s: u64,
    /// CAS-to-CAS, same bank group.
    pub t_ccd_l: u64,
    /// ACT-to-ACT, different bank, different bank group.
    pub t_rrd_s: u64,
    /// ACT-to-ACT, different bank, same bank group.
    pub t_rrd_l: u64,
    /// Four-activate window per rank.
    pub t_faw: u64,
    /// Write-to-read turnaround (same rank, after last write data).
    pub t_wtr: u64,
    /// Write recovery (last write data to PRE).
    pub t_wr: u64,
    /// Read-to-precharge delay.
    pub t_rtp: u64,
    /// Average refresh interval.
    pub t_refi: u64,
    /// Refresh cycle time (rank blocked).
    pub t_rfc: u64,
}

impl DramTiming {
    /// The `DDR4_2400R` timing set of Table 1 (bus clock 1200 MHz,
    /// tCK = 0.833 ns).
    pub fn ddr4_2400r() -> Self {
        Self {
            t_rc: 55,
            t_rcd: 16,
            t_cl: 16,
            t_cwl: 12,
            t_rp: 16,
            t_ras: 39, // tRC - tRP
            t_bl: 4,
            t_ccd_s: 4,
            t_ccd_l: 6,
            t_rrd_s: 4,
            t_rrd_l: 6,
            t_faw: 26,
            t_wtr: 9,
            t_wr: 18,
            t_rtp: 9,
            t_refi: 9363, // 7.8 us at 0.833 ns
            t_rfc: 313,   // 260 ns for a 4Gb device
        }
    }
}

/// Complete DRAM simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Device organization.
    pub org: Organization,
    /// Timing parameters in bus-clock cycles.
    pub timing: DramTiming,
    /// Physical-address interleaving scheme.
    pub mapping: MappingScheme,
    /// Read queue capacity per channel (Table 1: 32).
    pub read_queue: usize,
    /// Write queue capacity per channel (Table 1: 32).
    pub write_queue: usize,
    /// Bus clock frequency in MHz (data rate is 2×).
    pub clock_mhz: u64,
    /// Whether periodic refresh is simulated.
    pub refresh_enabled: bool,
    /// Record every issued command (see [`crate::command::validate_trace`]).
    pub log_commands: bool,
    /// Re-check every issued command live against the full DDR4 protocol
    /// with an independent [`crate::ProtocolChecker`]; a violation panics
    /// at the offending cycle. Defaults to the `MENDA_CHECK_PROTOCOL`
    /// environment variable (see [`set_check_protocol_default`]).
    pub check_protocol: bool,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
    /// Instrumentation settings (see [`menda_trace::TraceConfig`]). Off by
    /// default; defaults to the `MENDA_TRACE` environment variable.
    pub trace: TraceConfig,
    /// Advance the channels of a multi-channel system on one scoped
    /// thread each during [`crate::MemorySystem::advance`] spans. The
    /// channels share no state, so the result is bit-identical to serial
    /// ticking; this only changes wall-clock time. Off by default (the
    /// per-channel threads only pay off when spans are long and cores
    /// are free — the engine already parallelizes across PUs).
    pub parallel_channels: bool,
}

impl DramConfig {
    /// The paper's Table 1 configuration: `DDR4_2400R`, `4Gb_x8`, 32-entry
    /// queues, `FRFCFS_PriorHit` scheduling (the scheduler itself lives in
    /// [`crate::FrfcfsPriorHit`]).
    pub fn ddr4_2400r() -> Self {
        Self {
            org: Organization::ddr4_4gb_x8(),
            timing: DramTiming::ddr4_2400r(),
            mapping: MappingScheme::RoBaRaCoCh,
            read_queue: 32,
            write_queue: 32,
            clock_mhz: 1200,
            refresh_enabled: true,
            log_commands: false,
            check_protocol: check_protocol_default(),
            row_policy: RowPolicy::OpenPage,
            trace: TraceConfig::from_env(),
            parallel_channels: false,
        }
    }

    /// An HBM2-class pseudo-channel configuration (64-byte transactions on
    /// a 64-bit pseudo-channel at 1000 MHz ≈ 16 GB/s each; Sadi et al.'s
    /// four stacks expose 64 such pseudo-channels). Timings follow HBM2's
    /// tighter core parameters.
    pub fn hbm2_pseudo_channel() -> Self {
        let mut cfg = Self::ddr4_2400r();
        cfg.clock_mhz = 1000;
        cfg.org.bank_groups = 4;
        cfg.org.banks_per_group = 4;
        cfg.org.rows = 16_384;
        cfg.org.columns = 32; // 2 KB row buffer per pseudo-channel
        cfg.timing = DramTiming {
            t_rc: 47,
            t_rcd: 14,
            t_cl: 14,
            t_cwl: 7,
            t_rp: 14,
            t_ras: 33,
            t_bl: 4,
            t_ccd_s: 2,
            t_ccd_l: 4,
            t_rrd_s: 4,
            t_rrd_l: 6,
            t_faw: 16,
            t_wtr: 8,
            t_wr: 16,
            t_rtp: 5,
            t_refi: 3900,
            t_rfc: 260,
        };
        cfg
    }

    /// An LPDDR4-3200-class configuration (one 16-bit channel pair modeled
    /// as an 8-byte bus at 1600 MHz, 25.6 GB/s) — the memory of
    /// Transmuter-class substrates used by the CoSPARSE integration study.
    pub fn lpddr4_3200() -> Self {
        let mut cfg = Self::ddr4_2400r();
        cfg.clock_mhz = 1600;
        cfg.timing = DramTiming {
            t_rc: 97,
            t_rcd: 29,
            t_cl: 28,
            t_cwl: 14,
            t_rp: 29,
            t_ras: 68,
            t_bl: 4,
            t_ccd_s: 8,
            t_ccd_l: 8,
            t_rrd_s: 16,
            t_rrd_l: 16,
            t_faw: 64,
            t_wtr: 16,
            t_wr: 29,
            t_rtp: 12,
            t_refi: 6240,
            t_rfc: 448,
        };
        cfg
    }

    /// Same as [`DramConfig::ddr4_2400r`] with a given channel count.
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.org.channels = channels;
        self
    }

    /// Same configuration with a given rank count per channel.
    pub fn with_ranks(mut self, ranks: usize) -> Self {
        self.org.ranks = ranks;
        self
    }

    /// Same configuration with channel-parallel `advance` spans enabled
    /// (see [`DramConfig::parallel_channels`]).
    pub fn with_parallel_channels(mut self, parallel: bool) -> Self {
        self.parallel_channels = parallel;
        self
    }

    /// Theoretical peak bandwidth in bytes per second across all channels
    /// (data rate × 8 bytes × channels).
    pub fn peak_bandwidth_bytes_per_sec(&self) -> f64 {
        (self.clock_mhz as f64) * 1e6 * 2.0 * 8.0 * self.org.channels as f64
    }

    /// Theoretical peak bandwidth in GB/s.
    ///
    /// One DDR4-2400 channel provides 19.2 GB/s; the paper's 4-channel host
    /// system peaks at 76.8 GB/s (Fig. 3b's green line).
    pub fn peak_bandwidth_gbs(&self) -> f64 {
        self.peak_bandwidth_bytes_per_sec() / 1e9
    }

    /// Duration of one bus cycle in nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        1e3 / self.clock_mhz as f64
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr4_2400r()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_timing_values() {
        let t = DramTiming::ddr4_2400r();
        assert_eq!(t.t_rc, 55);
        assert_eq!(t.t_rcd, 16);
        assert_eq!(t.t_cl, 16);
        assert_eq!(t.t_rp, 16);
        assert_eq!(t.t_bl, 4);
        assert_eq!(t.t_ccd_s, 4);
        assert_eq!(t.t_ccd_l, 6);
        assert_eq!(t.t_rrd_s, 4);
        assert_eq!(t.t_rrd_l, 6);
        assert_eq!(t.t_faw, 26);
        assert_eq!(t.t_ras + t.t_rp, t.t_rc);
    }

    #[test]
    fn peak_bandwidth_matches_paper() {
        let one = DramConfig::ddr4_2400r();
        assert!((one.peak_bandwidth_gbs() - 19.2).abs() < 0.01);
        let four = one.with_channels(4);
        assert!((four.peak_bandwidth_gbs() - 76.8).abs() < 0.01);
    }

    #[test]
    fn organization_counts() {
        let org = Organization::ddr4_4gb_x8();
        assert_eq!(org.banks_per_rank(), 16);
        // 16 banks * 32768 rows * 128 cols * 64B = 4 GiB per rank
        assert_eq!(org.capacity_bytes(), 4 << 30);
    }

    #[test]
    fn queue_sizes_match_table1() {
        let c = DramConfig::ddr4_2400r();
        assert_eq!(c.read_queue, 32);
        assert_eq!(c.write_queue, 32);
    }

    #[test]
    fn builders_adjust_org() {
        let c = DramConfig::ddr4_2400r().with_channels(2).with_ranks(4);
        assert_eq!(c.org.channels, 2);
        assert_eq!(c.org.ranks, 4);
    }
}
