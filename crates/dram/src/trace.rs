//! Per-channel instrumentation state (see the `menda-trace` crate).
//!
//! Built by [`crate::ChannelController`] only when
//! [`crate::DramConfig::trace`] enables a sink; every hook is purely
//! observational, so traced and untraced runs are cycle-identical (the
//! differential suite in `menda-core` enforces this).

use menda_trace::{Histogram, TraceConfig, TraceReport, Tracer};

use crate::scheduler::{NeededCommand, SchedCounters};

/// Instrumentation state of one channel controller: a cycle-stamped
/// tracer on the channel's track plus occupancy histograms and per-bank
/// row-outcome tallies maintained directly by the hooks.
#[derive(Debug)]
pub(crate) struct ChannelTracer {
    tracer: Tracer,
    interval: u64,
    read_q: Histogram,
    write_q: Histogram,
    /// Per flat bank index: requests first served by a row-hit CAS.
    bank_hits: Vec<u64>,
    /// Per flat bank index: requests whose bank was closed (ACT first).
    bank_misses: Vec<u64>,
    /// Per flat bank index: requests that conflicted (PRE first).
    bank_conflicts: Vec<u64>,
    sched: SchedCounters,
    refreshes: u64,
}

impl ChannelTracer {
    /// Builds the tracer for a channel with `banks` flat banks and the
    /// given queue capacities, or `None` when tracing is off.
    pub(crate) fn new(
        cfg: &TraceConfig,
        track: u32,
        banks: usize,
        read_queue: usize,
        write_queue: usize,
    ) -> Option<Self> {
        let tracer = cfg.make_tracer(track)?;
        Some(Self {
            tracer,
            interval: cfg.sample_interval,
            read_q: Histogram::up_to(read_queue as u64),
            write_q: Histogram::up_to(write_queue as u64),
            bank_hits: vec![0; banks],
            bank_misses: vec![0; banks],
            bank_conflicts: vec![0; banks],
            sched: SchedCounters::default(),
            refreshes: 0,
        })
    }

    /// Moves subsequent events to `track` (channel index within the
    /// owning memory system).
    pub(crate) fn set_track(&mut self, track: u32) {
        self.tracer.set_track(track);
    }

    /// Per-bus-cycle hook: samples queue occupancy every
    /// `sample_interval` cycles.
    pub(crate) fn on_tick(&mut self, now: u64, read_len: usize, write_len: usize) {
        if now.is_multiple_of(self.interval) {
            self.read_q.record(read_len as u64);
            self.write_q.record(write_len as u64);
            self.tracer.counter(now, "dram.read_queue", read_len as u64);
            self.tracer
                .counter(now, "dram.write_queue", write_len as u64);
        }
    }

    /// Bulk equivalent of [`Self::on_tick`] for a fast-forwarded span:
    /// emits exactly the samples the per-cycle path would have produced
    /// at each sampling interval in `(from, to]`. Queue occupancies are
    /// frozen across a skipped span (nothing enqueues or issues), so
    /// every sample carries the same values.
    pub(crate) fn on_idle_span(&mut self, from: u64, to: u64, read_len: usize, write_len: usize) {
        if self.interval == 0 {
            return;
        }
        // First sampling instant strictly after `from`.
        let mut at = (from / self.interval + 1) * self.interval;
        while at <= to {
            self.on_tick(at, read_len, write_len);
            at += self.interval;
        }
    }

    /// Request-classification hook: the first command issued on behalf
    /// of a request determines its row outcome on `flat` bank.
    pub(crate) fn on_classify(&mut self, flat: usize, needed: NeededCommand) {
        self.sched.record(needed);
        match needed {
            NeededCommand::Cas => self.bank_hits[flat] += 1,
            NeededCommand::Activate => self.bank_misses[flat] += 1,
            NeededCommand::Precharge => self.bank_conflicts[flat] += 1,
        }
    }

    /// REF-issued hook.
    pub(crate) fn on_refresh(&mut self, now: u64) {
        self.refreshes += 1;
        self.tracer.instant(now, "dram.refresh");
    }

    /// Ends recording and packages everything as a [`TraceReport`].
    pub(crate) fn into_report(self, cycles: u64) -> TraceReport {
        let mut report = TraceReport {
            sink: self.tracer.finish(),
            ..Default::default()
        };
        report.add_counter("dram.cycles", cycles);
        report.add_counter("dram.refreshes", self.refreshes);
        report.add_counter("dram.sched.cas", self.sched.cas);
        report.add_counter("dram.sched.activate", self.sched.activate);
        report.add_counter("dram.sched.precharge", self.sched.precharge);
        let mut hits = 0;
        let mut misses = 0;
        let mut conflicts = 0;
        for (bank, ((h, m), c)) in self
            .bank_hits
            .iter()
            .zip(&self.bank_misses)
            .zip(&self.bank_conflicts)
            .enumerate()
        {
            hits += h;
            misses += m;
            conflicts += c;
            // Only banks that saw traffic get per-bank entries, keeping
            // reports compact on wide systems.
            if h + m + c > 0 {
                report.add_counter(&format!("dram.bank{bank}.row_hits"), *h);
                report.add_counter(&format!("dram.bank{bank}.row_misses"), *m);
                report.add_counter(&format!("dram.bank{bank}.row_conflicts"), *c);
            }
        }
        report.add_counter("dram.row_hits", hits);
        report.add_counter("dram.row_misses", misses);
        report.add_counter("dram.row_conflicts", conflicts);
        report.set_histogram("dram.read_queue", self.read_q);
        report.set_histogram("dram.write_queue", self.write_q);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer() -> ChannelTracer {
        ChannelTracer::new(
            &TraceConfig::counting().with_sample_interval(1),
            1,
            4,
            32,
            32,
        )
        .expect("enabled")
    }

    #[test]
    fn off_config_builds_nothing() {
        assert!(ChannelTracer::new(&TraceConfig::off(), 1, 4, 32, 32).is_none());
    }

    #[test]
    fn classification_rolls_up_per_bank_and_totals() {
        let mut t = tracer();
        t.on_classify(0, NeededCommand::Cas);
        t.on_classify(0, NeededCommand::Cas);
        t.on_classify(2, NeededCommand::Activate);
        t.on_classify(3, NeededCommand::Precharge);
        let r = t.into_report(100);
        assert_eq!(r.counter("dram.row_hits"), 2);
        assert_eq!(r.counter("dram.row_misses"), 1);
        assert_eq!(r.counter("dram.row_conflicts"), 1);
        assert_eq!(r.counter("dram.bank0.row_hits"), 2);
        assert_eq!(r.counter("dram.bank2.row_misses"), 1);
        assert_eq!(r.counter("dram.sched.cas"), 2);
        // Untouched bank 1 stays out of the report.
        assert_eq!(r.counter("dram.bank1.row_hits"), 0);
        assert!(!r.counters.contains_key("dram.bank1.row_hits"));
        assert_eq!(r.counter("dram.cycles"), 100);
    }

    #[test]
    fn tick_samples_queue_occupancy() {
        let mut t = tracer();
        for now in 1..=10 {
            t.on_tick(now, 3, 1);
        }
        let r = t.into_report(10);
        let h = r.histogram("dram.read_queue").unwrap();
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 30);
        assert_eq!(r.histogram("dram.write_queue").unwrap().sum(), 10);
        assert_eq!(r.sink.counter_samples, 20);
    }

    #[test]
    fn refreshes_are_counted_and_marked() {
        let mut t = tracer();
        t.on_refresh(50);
        t.on_refresh(9400);
        let r = t.into_report(10_000);
        assert_eq!(r.counter("dram.refreshes"), 2);
        assert_eq!(r.sink.instants, 2);
    }
}
