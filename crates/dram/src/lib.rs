//! Cycle-level DDR4 DRAM simulator — the Ramulator-equivalent substrate of
//! the MeNDA reproduction.
//!
//! The MeNDA paper models its memory system with Ramulator configured as
//! `DDR4_2400R`, `4Gb_x8`, 32-entry read/write queues and the
//! `FRFCFS_PriorHit` scheduler (Table 1). No mature Rust DRAM simulator
//! exists, so this crate rebuilds that functionality from scratch:
//!
//! * [`DramConfig`] — organization (channels / ranks / bank groups / banks /
//!   rows / columns) and the full DDR4 timing set of Table 1,
//! * [`AddressMapper`] — physical-address → DRAM-coordinate decoding with
//!   several interleaving schemes,
//! * bank/rank state machines with every timing constraint the evaluation
//!   depends on (`tRCD`, `tCL`, `tRP`, `tRC`, `tCCD_S/L`, `tRRD_S/L`,
//!   `tFAW`, `tWTR`, write recovery, refresh),
//! * [`MemorySystem`] — multi-channel front end with per-channel FR-FCFS
//!   row-hit-first scheduling, 32-entry read/write queues, write draining
//!   and response delivery,
//! * [`CacheHierarchy`] — the L1/L2/L3 cache model of Table 1 used by the
//!   trace-driven CPU mode,
//! * [`cpu_mode`] — multi-core trace replay with barrier synchronization,
//!   used for the paper's §2.2 characterization experiments,
//! * [`DramStats`] — row hits/misses/conflicts, bandwidth utilization and
//!   latency statistics,
//! * [`ProtocolChecker`] — an independent shadow-state verifier that
//!   re-derives every JEDEC constraint over the issued command stream,
//!   live (behind [`DramConfig::check_protocol`]) or offline.
//!
//! # Example
//!
//! ```
//! use menda_dram::{DramConfig, MemorySystem, MemRequest};
//!
//! let mut mem = MemorySystem::new(DramConfig::ddr4_2400r());
//! assert!(mem.try_enqueue(MemRequest::read(0x40, 1)));
//! let mut done = None;
//! for _ in 0..1000 {
//!     mem.tick();
//!     if let Some(resp) = mem.pop_response() {
//!         done = Some(resp);
//!         break;
//!     }
//! }
//! let resp = done.expect("read must complete");
//! assert_eq!(resp.id, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod address;
mod bank;
mod cache;
mod channel;
pub mod checker;
pub mod command;
mod config;
pub mod cpu_mode;
pub mod dram_mode;
pub mod power;
mod request;
mod scheduler;
pub mod snap;
mod stats;
mod system;
mod trace;

pub use address::{AddressMapper, DramCoord, MappingScheme};
pub use bank::{Bank, BankArray, BankState};
pub use cache::{Cache, CacheConfig, CacheHierarchy};
pub use channel::ChannelController;
pub use checker::{ProtocolChecker, ProtocolViolation, REFRESH_DEADLINE_INTERVALS};
pub use command::{validate_trace, CommandKind, CommandRecord, TimingViolation};
pub use config::{set_check_protocol_default, DramConfig, DramTiming, Organization, RowPolicy};
pub use request::{MemRequest, MemResponse, ReqKind};
pub use scheduler::{FrfcfsPriorHit, SchedCounters};
pub use snap::{fnv1a, Decoder, Encoder, SnapError};
pub use stats::DramStats;
pub use system::MemorySystem;
// Convenience re-exports so downstream crates can configure tracing
// without naming `menda-trace` directly.
pub use menda_trace::{TraceConfig, TraceMode, TraceReport};
