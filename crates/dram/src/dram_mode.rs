//! Trace-driven **dram mode**: replay a raw, timestamped memory-request
//! trace directly against the memory system — Ramulator's second trace
//! mode, which the paper uses for the CoSPARSE re-mapping study (§5.1,
//! "both the original and the re-mapped memory trace are then executed on
//! Ramulator in dram mode").
//!
//! Unlike [`crate::cpu_mode`], there are no cores or caches: each trace
//! entry is a request that becomes eligible at its timestamp; the replay
//! preserves arrival order and measures how long the memory system takes
//! to retire everything.

use crate::{DramConfig, DramStats, MemRequest, MemorySystem, ReqKind};

/// One entry of a dram-mode trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRequest {
    /// Bus cycle at which the request arrives at the controller.
    pub at_cycle: u64,
    /// Physical byte address.
    pub addr: u64,
    /// Read or write.
    pub kind: ReqKind,
}

impl TraceRequest {
    /// A read arriving at `at_cycle`.
    pub fn read(at_cycle: u64, addr: u64) -> Self {
        Self {
            at_cycle,
            addr,
            kind: ReqKind::Read,
        }
    }

    /// A write arriving at `at_cycle`.
    pub fn write(at_cycle: u64, addr: u64) -> Self {
        Self {
            at_cycle,
            addr,
            kind: ReqKind::Write,
        }
    }
}

/// Result of a dram-mode replay.
#[derive(Debug, Clone, PartialEq)]
pub struct DramModeResult {
    /// Cycle at which the last request retired.
    pub finished_at: u64,
    /// Aggregated statistics.
    pub stats: DramStats,
    /// Mean retirement latency (arrival → completion) in bus cycles.
    pub avg_latency: f64,
    /// Maximum retirement latency.
    pub max_latency: u64,
}

/// Replays `trace` (sorted by `at_cycle`) against a fresh memory system.
///
/// Requests whose arrival cycle has passed wait in arrival order for a
/// queue slot; the replay ends when every request has completed.
///
/// # Panics
///
/// Panics if the trace is not sorted by `at_cycle`.
pub fn replay(config: DramConfig, trace: &[TraceRequest]) -> DramModeResult {
    assert!(
        trace.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle),
        "trace must be sorted by arrival cycle"
    );
    let mut mem = MemorySystem::new(config);
    let mut next = 0usize;
    let mut done = 0usize;
    let mut lat_sum = 0u64;
    let mut lat_max = 0u64;
    let mut finished_at = 0u64;
    while done < trace.len() {
        let now = mem.now();
        while next < trace.len() && trace[next].at_cycle <= now {
            let t = trace[next];
            let req = MemRequest {
                addr: t.addr,
                kind: t.kind,
                id: next as u64,
            };
            if mem.try_enqueue(req) {
                next += 1;
            } else {
                break; // queue full: retry next cycle, preserving order
            }
        }
        mem.tick();
        while let Some(resp) = mem.pop_response() {
            let arrived = trace[resp.id as usize].at_cycle;
            let lat = resp.done_at.saturating_sub(arrived);
            lat_sum += lat;
            lat_max = lat_max.max(lat);
            finished_at = finished_at.max(resp.done_at);
            done += 1;
        }
    }
    DramModeResult {
        finished_at,
        stats: mem.stats(),
        avg_latency: if trace.is_empty() {
            0.0
        } else {
            lat_sum as f64 / trace.len() as f64
        },
        max_latency: lat_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        let mut c = DramConfig::ddr4_2400r();
        c.refresh_enabled = false;
        c
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let r = replay(cfg(), &[]);
        assert_eq!(r.avg_latency, 0.0);
        assert_eq!(r.stats.reads, 0);
    }

    #[test]
    fn sequential_trace_retires_all() {
        let trace: Vec<TraceRequest> = (0..256).map(|i| TraceRequest::read(i, i * 64)).collect();
        let r = replay(cfg(), &trace);
        assert_eq!(r.stats.reads, 256);
        assert!(r.finished_at > 255);
        assert!(r.avg_latency > 0.0);
        assert!(r.max_latency >= r.avg_latency as u64);
    }

    #[test]
    fn bursty_trace_sees_queueing_delay() {
        // All requests arrive at cycle 0: deep queueing.
        let burst: Vec<TraceRequest> = (0..128).map(|i| TraceRequest::read(0, i * 4096)).collect();
        // The same requests spread out: little queueing.
        let spread: Vec<TraceRequest> = (0..128)
            .map(|i| TraceRequest::read(i * 60, i * 4096))
            .collect();
        let rb = replay(cfg(), &burst);
        let rs = replay(cfg(), &spread);
        assert!(
            rb.avg_latency > 2.0 * rs.avg_latency,
            "burst {} vs spread {}",
            rb.avg_latency,
            rs.avg_latency
        );
    }

    #[test]
    fn mixed_reads_and_writes_complete() {
        let trace: Vec<TraceRequest> = (0..200)
            .map(|i| {
                if i % 3 == 0 {
                    TraceRequest::write(i, i * 640)
                } else {
                    TraceRequest::read(i, i * 640 + 64)
                }
            })
            .collect();
        let r = replay(cfg(), &trace);
        assert_eq!(r.stats.reads + r.stats.writes, 200);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_panics() {
        let trace = vec![TraceRequest::read(10, 0), TraceRequest::read(5, 64)];
        let _ = replay(cfg(), &trace);
    }
}
