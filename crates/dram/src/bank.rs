use crate::DramTiming;

/// Row-buffer state of a DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// All rows precharged.
    Closed,
    /// The given row is open in the row buffer.
    Opened(usize),
}

/// One DRAM bank: row-buffer state plus the earliest bus cycle at which
/// each command class may next be issued to it.
///
/// Timing is maintained in the "earliest allowed" style: issuing a command
/// pushes forward the earliest-allowed times of the commands it constrains
/// (`ACT→CAS` via `tRCD`, `ACT→PRE` via `tRAS`, `CAS→PRE` via `tRTP`/write
/// recovery, `PRE→ACT` via `tRP`, `ACT→ACT` via `tRC`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bank {
    /// Current row-buffer state.
    pub state: BankState,
    /// Earliest cycle an ACT may issue.
    pub next_act: u64,
    /// Earliest cycle a RD may issue.
    pub next_rd: u64,
    /// Earliest cycle a WR may issue.
    pub next_wr: u64,
    /// Earliest cycle a PRE may issue.
    pub next_pre: u64,
}

impl Bank {
    /// A freshly precharged bank with no timing debt.
    pub fn new() -> Self {
        Self {
            state: BankState::Closed,
            next_act: 0,
            next_rd: 0,
            next_wr: 0,
            next_pre: 0,
        }
    }

    /// Whether `row` is open in the row buffer.
    pub fn is_open(&self, row: usize) -> bool {
        self.state == BankState::Opened(row)
    }

    /// Applies the timing effects of an ACT issued at `now`.
    pub fn do_activate(&mut self, now: u64, row: usize, t: &DramTiming) {
        debug_assert_eq!(self.state, BankState::Closed, "ACT to open bank");
        debug_assert!(now >= self.next_act, "ACT violates tRC/tRP");
        self.state = BankState::Opened(row);
        self.next_rd = self.next_rd.max(now + t.t_rcd);
        self.next_wr = self.next_wr.max(now + t.t_rcd);
        self.next_pre = self.next_pre.max(now + t.t_ras);
        self.next_act = self.next_act.max(now + t.t_rc);
    }

    /// Applies the timing effects of a PRE issued at `now`.
    pub fn do_precharge(&mut self, now: u64, t: &DramTiming) {
        debug_assert!(now >= self.next_pre, "PRE violates tRAS/tRTP/tWR");
        self.state = BankState::Closed;
        self.next_act = self.next_act.max(now + t.t_rp);
    }

    /// Applies the timing effects of a RD issued at `now`.
    pub fn do_read(&mut self, now: u64, t: &DramTiming) {
        debug_assert!(
            matches!(self.state, BankState::Opened(_)),
            "RD to closed bank"
        );
        debug_assert!(now >= self.next_rd, "RD violates tRCD/tCCD");
        self.next_pre = self.next_pre.max(now + t.t_rtp);
    }

    /// Applies the timing effects of a WR issued at `now`.
    pub fn do_write(&mut self, now: u64, t: &DramTiming) {
        debug_assert!(
            matches!(self.state, BankState::Opened(_)),
            "WR to closed bank"
        );
        debug_assert!(now >= self.next_wr, "WR violates tRCD/tCCD");
        // Write recovery: data lands at now + tCWL + tBL, row must stay open
        // tWR beyond that.
        self.next_pre = self.next_pre.max(now + t.t_cwl + t.t_bl + t.t_wr);
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

/// Struct-of-arrays bank state for one channel.
///
/// The scheduler's per-cycle scans (`queue_issue_event`, FR-FCFS candidate
/// selection, refresh bookkeeping) each touch only one or two timing
/// fields of many banks, so each field lives in its own densely packed
/// array instead of an array of [`Bank`] structs — a scan over 16–64
/// banks then walks one cache line per field instead of one 40-byte
/// struct per bank. Transitions replicate [`Bank`]'s "earliest-allowed"
/// updates exactly; the unit tests drive both layouts with the same
/// command sequences and assert identical state.
#[derive(Debug, Clone)]
pub struct BankArray {
    /// Open row per bank, or [`CLOSED_ROW`] when precharged.
    open_row: Vec<usize>,
    next_act: Vec<u64>,
    next_rd: Vec<u64>,
    next_wr: Vec<u64>,
    next_pre: Vec<u64>,
}

/// Sentinel in [`BankArray::open_row`] marking a precharged bank. Real
/// row indices are bounded by the organization's rows-per-bank and never
/// reach it.
const CLOSED_ROW: usize = usize::MAX;

impl BankArray {
    /// `banks` freshly precharged banks with no timing debt.
    pub fn new(banks: usize) -> Self {
        Self {
            open_row: vec![CLOSED_ROW; banks],
            next_act: vec![0; banks],
            next_rd: vec![0; banks],
            next_wr: vec![0; banks],
            next_pre: vec![0; banks],
        }
    }

    /// Number of banks.
    pub fn len(&self) -> usize {
        self.open_row.len()
    }

    /// Whether the array holds no banks.
    pub fn is_empty(&self) -> bool {
        self.open_row.is_empty()
    }

    /// Row-buffer state of bank `b`.
    #[inline]
    pub fn state(&self, b: usize) -> BankState {
        match self.open_row[b] {
            CLOSED_ROW => BankState::Closed,
            row => BankState::Opened(row),
        }
    }

    /// The row open on bank `b`, if any.
    #[inline]
    pub fn open_row(&self, b: usize) -> Option<usize> {
        match self.open_row[b] {
            CLOSED_ROW => None,
            row => Some(row),
        }
    }

    /// Earliest cycle an ACT may issue to bank `b`.
    #[inline]
    pub fn next_act(&self, b: usize) -> u64 {
        self.next_act[b]
    }

    /// Earliest cycle a RD may issue to bank `b`.
    #[inline]
    pub fn next_rd(&self, b: usize) -> u64 {
        self.next_rd[b]
    }

    /// Earliest cycle a WR may issue to bank `b`.
    #[inline]
    pub fn next_wr(&self, b: usize) -> u64 {
        self.next_wr[b]
    }

    /// Earliest cycle a PRE may issue to bank `b`.
    #[inline]
    pub fn next_pre(&self, b: usize) -> u64 {
        self.next_pre[b]
    }

    /// Pushes bank `b`'s earliest-allowed ACT out to at least `cycle`
    /// (refresh `tRFC` blackout).
    pub fn delay_act_until(&mut self, b: usize, cycle: u64) {
        self.next_act[b] = self.next_act[b].max(cycle);
    }

    /// Applies the timing effects of an ACT issued at `now` to bank `b`.
    pub fn do_activate(&mut self, b: usize, now: u64, row: usize, t: &DramTiming) {
        debug_assert_eq!(self.open_row[b], CLOSED_ROW, "ACT to open bank");
        debug_assert!(now >= self.next_act[b], "ACT violates tRC/tRP");
        debug_assert_ne!(row, CLOSED_ROW);
        self.open_row[b] = row;
        self.next_rd[b] = self.next_rd[b].max(now + t.t_rcd);
        self.next_wr[b] = self.next_wr[b].max(now + t.t_rcd);
        self.next_pre[b] = self.next_pre[b].max(now + t.t_ras);
        self.next_act[b] = self.next_act[b].max(now + t.t_rc);
    }

    /// Applies the timing effects of a PRE issued at `now` to bank `b`.
    pub fn do_precharge(&mut self, b: usize, now: u64, t: &DramTiming) {
        debug_assert!(now >= self.next_pre[b], "PRE violates tRAS/tRTP/tWR");
        self.open_row[b] = CLOSED_ROW;
        self.next_act[b] = self.next_act[b].max(now + t.t_rp);
    }

    /// Applies the timing effects of a RD issued at `now` to bank `b`.
    pub fn do_read(&mut self, b: usize, now: u64, t: &DramTiming) {
        debug_assert_ne!(self.open_row[b], CLOSED_ROW, "RD to closed bank");
        debug_assert!(now >= self.next_rd[b], "RD violates tRCD/tCCD");
        self.next_pre[b] = self.next_pre[b].max(now + t.t_rtp);
    }

    /// Applies the timing effects of a WR issued at `now` to bank `b`.
    pub fn do_write(&mut self, b: usize, now: u64, t: &DramTiming) {
        debug_assert_ne!(self.open_row[b], CLOSED_ROW, "WR to closed bank");
        debug_assert!(now >= self.next_wr[b], "WR violates tRCD/tCCD");
        self.next_pre[b] = self.next_pre[b].max(now + t.t_cwl + t.t_bl + t.t_wr);
    }
}

impl BankArray {
    /// Serializes every bank's dynamic state.
    pub(crate) fn save_state(&self, enc: &mut crate::snap::Encoder) {
        enc.u64s(&self.open_row.iter().map(|&r| r as u64).collect::<Vec<_>>());
        enc.u64s(&self.next_act);
        enc.u64s(&self.next_rd);
        enc.u64s(&self.next_wr);
        enc.u64s(&self.next_pre);
    }

    /// Restores bank state saved by [`BankArray::save_state`]. The array
    /// must have been freshly built for the same organization.
    pub(crate) fn restore_state(
        &mut self,
        dec: &mut crate::snap::Decoder<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        let open = dec.u64s()?;
        let act = dec.u64s()?;
        let rd = dec.u64s()?;
        let wr = dec.u64s()?;
        let pre = dec.u64s()?;
        if [&open, &act, &rd, &wr, &pre]
            .iter()
            .any(|v| v.len() != self.open_row.len())
        {
            return Err(crate::snap::SnapError::BadValue);
        }
        self.open_row = open.into_iter().map(|r| r as usize).collect();
        self.next_act = act;
        self.next_rd = rd;
        self.next_wr = wr;
        self.next_pre = pre;
        Ok(())
    }
}

/// Per-rank shared timing state: `tRRD`/`tFAW` activation throttling,
/// CAS-to-CAS (`tCCD`) spacing, write-to-read turnaround and refresh
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct RankState {
    /// Issue cycles of the last four ACTs (for `tFAW`).
    pub faw_window: Vec<u64>,
    /// Time and bank group of the last ACT (for `tRRD_S/L`).
    pub last_act: Option<(u64, usize)>,
    /// Time and bank group of the last CAS (for `tCCD_S/L`).
    pub last_cas: Option<(u64, usize)>,
    /// Earliest cycle a RD may issue (write-to-read turnaround).
    pub next_rd: u64,
    /// Earliest cycle a WR may issue (read-to-write turnaround).
    pub next_wr: u64,
    /// Cycle at which the next refresh becomes due.
    pub refresh_due: u64,
    /// Earliest cycle any command may issue (set while refreshing).
    pub ready_at: u64,
}

impl RankState {
    /// Fresh rank state with the first refresh due after one `tREFI`.
    pub fn new(t: &DramTiming) -> Self {
        Self {
            faw_window: Vec::with_capacity(4),
            last_act: None,
            last_cas: None,
            next_rd: 0,
            next_wr: 0,
            refresh_due: t.t_refi,
            ready_at: 0,
        }
    }

    /// Earliest cycle an ACT to `bank_group` may issue under
    /// `tRRD`/`tFAW`/refresh constraints (bank-level constraints excluded).
    pub fn act_allowed_at(&self, bank_group: usize, t: &DramTiming) -> u64 {
        let mut at = self.ready_at;
        if let Some((when, bg)) = self.last_act {
            let gap = if bg == bank_group {
                t.t_rrd_l
            } else {
                t.t_rrd_s
            };
            at = at.max(when + gap);
        }
        if self.faw_window.len() == 4 {
            at = at.max(self.faw_window[0] + t.t_faw);
        }
        at
    }

    /// Earliest cycle a CAS (RD/WR) to `bank_group` may issue under
    /// `tCCD`/turnaround/refresh constraints.
    pub fn cas_allowed_at(&self, bank_group: usize, is_read: bool, t: &DramTiming) -> u64 {
        let mut at = self
            .ready_at
            .max(if is_read { self.next_rd } else { self.next_wr });
        if let Some((when, bg)) = self.last_cas {
            let gap = if bg == bank_group {
                t.t_ccd_l
            } else {
                t.t_ccd_s
            };
            at = at.max(when + gap);
        }
        at
    }

    /// Records an ACT issued at `now` to `bank_group`.
    pub fn record_act(&mut self, now: u64, bank_group: usize) {
        if self.faw_window.len() == 4 {
            self.faw_window.remove(0);
        }
        self.faw_window.push(now);
        self.last_act = Some((now, bank_group));
    }

    /// Records a CAS issued at `now` to `bank_group`.
    pub fn record_cas(&mut self, now: u64, bank_group: usize, is_read: bool, t: &DramTiming) {
        self.last_cas = Some((now, bank_group));
        if is_read {
            // Read-to-write turnaround: the write burst must not collide
            // with the read burst on the shared bus.
            let rtw = (t.t_cl + t.t_bl + 2).saturating_sub(t.t_cwl);
            self.next_wr = self.next_wr.max(now + rtw);
        } else {
            // Write-to-read turnaround (tWTR after the write data lands).
            self.next_rd = self.next_rd.max(now + t.t_cwl + t.t_bl + t.t_wtr);
        }
    }

    /// Records a refresh starting at `now`; the rank is blocked for `tRFC`.
    pub fn record_refresh(&mut self, now: u64, t: &DramTiming) {
        self.ready_at = now + t.t_rfc;
        self.refresh_due += t.t_refi;
    }

    /// Whether the pending refresh (due at [`RankState::refresh_due`]) has
    /// been postponed by at least `intervals` refresh intervals at `now`.
    ///
    /// The channel controller uses this to stop feeding CAS traffic to a
    /// rank whose refresh has exhausted its postpone budget — otherwise a
    /// row-hit stream keeps extending `next_pre` and defers REF forever.
    pub fn refresh_overdue(&self, now: u64, t: &DramTiming, intervals: u64) -> bool {
        now >= self.refresh_due + intervals * t.t_refi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::ddr4_2400r()
    }

    #[test]
    fn activate_sets_rcd_ras_rc() {
        let mut b = Bank::new();
        b.do_activate(100, 7, &t());
        assert!(b.is_open(7));
        assert_eq!(b.next_rd, 100 + 16);
        assert_eq!(b.next_pre, 100 + 39);
        assert_eq!(b.next_act, 100 + 55);
    }

    #[test]
    fn precharge_sets_rp() {
        let mut b = Bank::new();
        b.do_activate(0, 3, &t());
        b.do_precharge(39, &t());
        assert_eq!(b.state, BankState::Closed);
        assert_eq!(b.next_act, 55); // tRC dominates tRAS + tRP here
    }

    #[test]
    fn read_extends_pre_window() {
        let mut b = Bank::new();
        b.do_activate(0, 1, &t());
        b.do_read(40, &t());
        assert_eq!(b.next_pre, 49); // 40 + tRTP=9 > tRAS=39
    }

    #[test]
    fn write_recovery_extends_pre() {
        let mut b = Bank::new();
        b.do_activate(0, 1, &t());
        b.do_write(16, &t());
        // 16 + tCWL(12) + tBL(4) + tWR(18) = 50
        assert_eq!(b.next_pre, 50);
    }

    #[test]
    fn rrd_same_group_is_longer() {
        let mut r = RankState::new(&t());
        r.record_act(100, 2);
        assert_eq!(r.act_allowed_at(2, &t()), 106); // tRRD_L
        assert_eq!(r.act_allowed_at(1, &t()), 104); // tRRD_S
    }

    #[test]
    fn faw_limits_fifth_activate() {
        let mut r = RankState::new(&t());
        for (i, cyc) in [0u64, 4, 8, 12].iter().enumerate() {
            r.record_act(*cyc, i % 4);
        }
        // Fifth ACT must wait until first + tFAW = 26.
        assert_eq!(r.act_allowed_at(0, &t()).max(12 + 4), 26);
    }

    #[test]
    fn ccd_same_group_is_longer() {
        let mut r = RankState::new(&t());
        r.record_cas(50, 1, true, &t());
        assert_eq!(r.cas_allowed_at(1, true, &t()), 56); // tCCD_L
        assert_eq!(r.cas_allowed_at(0, true, &t()), 54); // tCCD_S
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut r = RankState::new(&t());
        r.record_cas(10, 0, false, &t());
        // 10 + tCWL(12) + tBL(4) + tWTR(9) = 35
        assert_eq!(r.cas_allowed_at(0, true, &t()).max(10 + 6), 35);
    }

    /// Drives a [`Bank`] array and a [`BankArray`] with the same legal
    /// command sequence and asserts every field stays identical — the SoA
    /// layout must be a pure re-arrangement of the reference struct.
    #[test]
    fn bank_array_matches_struct_layout() {
        let timing = t();
        let nbanks = 8;
        let mut aos: Vec<Bank> = vec![Bank::new(); nbanks];
        let mut soa = BankArray::new(nbanks);
        // Deterministic LCG; no external RNG in this crate.
        let mut state = 0x2545_F491_4F6C_DD1D_u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut now = 0u64;
        for _ in 0..2000 {
            let b = rng() % nbanks;
            now += (rng() % 4) as u64;
            match aos[b].state {
                BankState::Closed => {
                    let row = rng() % 4096;
                    let at = now.max(aos[b].next_act);
                    aos[b].do_activate(at, row, &timing);
                    soa.do_activate(b, at, row, &timing);
                    now = at;
                }
                BankState::Opened(_) => match rng() % 4 {
                    0 => {
                        let at = now.max(aos[b].next_pre);
                        aos[b].do_precharge(at, &timing);
                        soa.do_precharge(b, at, &timing);
                        now = at;
                    }
                    1 => {
                        let at = now.max(aos[b].next_wr);
                        aos[b].do_write(at, &timing);
                        soa.do_write(b, at, &timing);
                        now = at;
                    }
                    2 => {
                        let until = now + (rng() % 400) as u64;
                        aos[b].next_act = aos[b].next_act.max(until);
                        soa.delay_act_until(b, until);
                    }
                    _ => {
                        let at = now.max(aos[b].next_rd);
                        aos[b].do_read(at, &timing);
                        soa.do_read(b, at, &timing);
                        now = at;
                    }
                },
            }
            for (i, bank) in aos.iter().enumerate() {
                assert_eq!(soa.state(i), bank.state, "bank {i} state");
                assert_eq!(soa.next_act(i), bank.next_act, "bank {i} next_act");
                assert_eq!(soa.next_rd(i), bank.next_rd, "bank {i} next_rd");
                assert_eq!(soa.next_wr(i), bank.next_wr, "bank {i} next_wr");
                assert_eq!(soa.next_pre(i), bank.next_pre, "bank {i} next_pre");
            }
        }
    }

    #[test]
    fn refresh_blocks_rank() {
        let mut r = RankState::new(&t());
        let due = r.refresh_due;
        r.record_refresh(due, &t());
        assert_eq!(r.ready_at, due + 313);
        assert_eq!(r.refresh_due, 2 * due);
        assert!(r.act_allowed_at(0, &t()) >= due + 313);
    }
}
