//! DRAM command records and an independent timing validator.
//!
//! When [`crate::DramConfig::log_commands`] is set, every command a channel
//! issues is recorded. [`validate_trace`] then re-checks the full DDR4
//! protocol over the recorded stream with logic completely separate from
//! the scheduler's issue checks — a strong end-to-end guarantee that the
//! simulator never emits a timing-violating schedule, used by the test
//! suite on randomized workloads.

use crate::{DramCoord, DramTiming, Organization};

/// A DRAM command kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Row activate.
    Act,
    /// Precharge.
    Pre,
    /// Column read.
    Rd,
    /// Column write.
    Wr,
    /// Rank refresh.
    Ref,
}

/// One issued command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandRecord {
    /// Bus cycle of issue.
    pub cycle: u64,
    /// Command kind.
    pub kind: CommandKind,
    /// Target coordinates (row/column meaningful per kind; `Ref` targets a
    /// whole rank).
    pub coord: DramCoord,
}

/// A detected protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingViolation {
    /// Constraint name (e.g. `"tRCD"`).
    pub constraint: &'static str,
    /// Index of the earlier command in the trace.
    pub first: usize,
    /// Index of the violating command.
    pub second: usize,
    /// Required minimum separation in cycles.
    pub required: u64,
    /// Observed separation.
    pub observed: u64,
}

impl std::fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} violated between commands {} and {}: need {} cycles, got {}",
            self.constraint, self.first, self.second, self.required, self.observed
        )
    }
}

impl std::error::Error for TimingViolation {}

#[derive(Debug, Clone, Copy, Default)]
struct BankCheck {
    open_row: Option<usize>,
    last_act: Option<(u64, usize)>,
    last_pre: Option<(u64, usize)>,
    last_rd: Option<(u64, usize)>,
    last_wr: Option<(u64, usize)>,
}

/// Re-checks a recorded command stream of **one channel** against the DDR4
/// constraints.
///
/// Validated rules: same-bank `tRC`, `tRCD`, `tRP`, `tRAS`, `tRTP`, write
/// recovery; same-rank `tRRD_S/L`, `tFAW`, `tCCD_S/L`, write-to-read
/// turnaround; structural legality (no ACT on an open bank, no CAS to a
/// closed or mismatching row, refresh only with all banks of the rank
/// precharged).
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_trace(
    trace: &[CommandRecord],
    t: &DramTiming,
    org: &Organization,
) -> Result<(), TimingViolation> {
    let banks_per_rank = org.banks_per_rank();
    let nbanks = org.ranks * banks_per_rank;
    let mut banks: Vec<BankCheck> = vec![BankCheck::default(); nbanks];
    // Per-rank state.
    let mut acts: Vec<Vec<(u64, usize, usize)>> = vec![Vec::new(); org.ranks]; // (cycle, idx, bg)
    let mut cas: Vec<Vec<(u64, usize, usize, bool)>> = vec![Vec::new(); org.ranks];

    let viol =
        |constraint: &'static str, first: usize, second: usize, required: u64, observed: u64| {
            Err(TimingViolation {
                constraint,
                first,
                second,
                required,
                observed,
            })
        };

    for (i, cmd) in trace.iter().enumerate() {
        let rank = cmd.coord.rank;
        let flat =
            rank * banks_per_rank + cmd.coord.bank_group * org.banks_per_group + cmd.coord.bank;
        match cmd.kind {
            CommandKind::Act => {
                let b = banks[flat];
                if b.open_row.is_some() {
                    return viol("ACT-on-open-bank", i, i, 0, 0);
                }
                if let Some((when, j)) = b.last_act {
                    if cmd.cycle < when + t.t_rc {
                        return viol("tRC", j, i, t.t_rc, cmd.cycle - when);
                    }
                }
                if let Some((when, j)) = b.last_pre {
                    if cmd.cycle < when + t.t_rp {
                        return viol("tRP", j, i, t.t_rp, cmd.cycle - when);
                    }
                }
                for &(when, j, bg) in acts[rank].iter().rev().take(8) {
                    if bg == cmd.coord.bank_group && cmd.cycle < when + t.t_rrd_l {
                        // Same bank is governed by tRC (checked above).
                        if flat
                            != trace[j].coord.rank * banks_per_rank
                                + trace[j].coord.bank_group * org.banks_per_group
                                + trace[j].coord.bank
                        {
                            return viol("tRRD_L", j, i, t.t_rrd_l, cmd.cycle - when);
                        }
                    } else if bg != cmd.coord.bank_group && cmd.cycle < when + t.t_rrd_s {
                        return viol("tRRD_S", j, i, t.t_rrd_s, cmd.cycle - when);
                    }
                }
                // tFAW: this and the three preceding ACTs to the rank.
                let n = acts[rank].len();
                if n >= 4 {
                    let (w0, j, _) = acts[rank][n - 4];
                    if cmd.cycle < w0 + t.t_faw {
                        return viol("tFAW", j, i, t.t_faw, cmd.cycle - w0);
                    }
                }
                banks[flat].open_row = Some(cmd.coord.row);
                banks[flat].last_act = Some((cmd.cycle, i));
                acts[rank].push((cmd.cycle, i, cmd.coord.bank_group));
            }
            CommandKind::Pre => {
                let b = banks[flat];
                if let Some((when, j)) = b.last_act {
                    if cmd.cycle < when + t.t_ras {
                        return viol("tRAS", j, i, t.t_ras, cmd.cycle - when);
                    }
                }
                if let Some((when, j)) = b.last_rd {
                    if cmd.cycle < when + t.t_rtp {
                        return viol("tRTP", j, i, t.t_rtp, cmd.cycle - when);
                    }
                }
                if let Some((when, j)) = b.last_wr {
                    let wr_recovery = t.t_cwl + t.t_bl + t.t_wr;
                    if cmd.cycle < when + wr_recovery {
                        return viol("tWR", j, i, wr_recovery, cmd.cycle - when);
                    }
                }
                banks[flat].open_row = None;
                banks[flat].last_pre = Some((cmd.cycle, i));
            }
            CommandKind::Rd | CommandKind::Wr => {
                let is_read = cmd.kind == CommandKind::Rd;
                let b = banks[flat];
                match b.open_row {
                    None => return viol("CAS-on-closed-bank", i, i, 0, 0),
                    Some(r) if r != cmd.coord.row => return viol("CAS-row-mismatch", i, i, 0, 0),
                    _ => {}
                }
                if let Some((when, j)) = b.last_act {
                    if cmd.cycle < when + t.t_rcd {
                        return viol("tRCD", j, i, t.t_rcd, cmd.cycle - when);
                    }
                }
                if let Some(&(when, j, bg, prev_read)) = cas[rank].last() {
                    let gap = if bg == cmd.coord.bank_group {
                        t.t_ccd_l
                    } else {
                        t.t_ccd_s
                    };
                    if cmd.cycle < when + gap {
                        return viol(
                            if bg == cmd.coord.bank_group {
                                "tCCD_L"
                            } else {
                                "tCCD_S"
                            },
                            j,
                            i,
                            gap,
                            cmd.cycle - when,
                        );
                    }
                    if is_read && !prev_read {
                        let wtr = t.t_cwl + t.t_bl + t.t_wtr;
                        if cmd.cycle < when + wtr {
                            return viol("tWTR", j, i, wtr, cmd.cycle - when);
                        }
                    }
                }
                if is_read {
                    banks[flat].last_rd = Some((cmd.cycle, i));
                } else {
                    banks[flat].last_wr = Some((cmd.cycle, i));
                }
                cas[rank].push((cmd.cycle, i, cmd.coord.bank_group, is_read));
            }
            CommandKind::Ref => {
                let base = rank * banks_per_rank;
                for b in 0..banks_per_rank {
                    if banks[base + b].open_row.is_some() {
                        return viol("REF-with-open-bank", i, i, 0, 0);
                    }
                }
                // Block the rank for tRFC: model as an ACT-blocking window
                // by faking a precharge time on every bank.
                for b in 0..banks_per_rank {
                    banks[base + b].last_pre = Some((cmd.cycle + t.t_rfc - t.t_rp, i));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramCoord;

    fn coord(bank: usize, row: usize, column: usize) -> DramCoord {
        DramCoord {
            channel: 0,
            rank: 0,
            bank_group: bank / 4,
            bank: bank % 4,
            row,
            column,
        }
    }

    fn t() -> DramTiming {
        DramTiming::ddr4_2400r()
    }

    fn org() -> Organization {
        Organization::ddr4_4gb_x8()
    }

    fn cmd(cycle: u64, kind: CommandKind, c: DramCoord) -> CommandRecord {
        CommandRecord {
            cycle,
            kind,
            coord: c,
        }
    }

    #[test]
    fn legal_sequence_passes() {
        let trace = vec![
            cmd(0, CommandKind::Act, coord(0, 5, 0)),
            cmd(16, CommandKind::Rd, coord(0, 5, 0)),
            cmd(22, CommandKind::Rd, coord(0, 5, 1)),
            cmd(61, CommandKind::Pre, coord(0, 5, 0)),
            cmd(77, CommandKind::Act, coord(0, 6, 0)),
        ];
        validate_trace(&trace, &t(), &org()).expect("legal");
    }

    #[test]
    fn trcd_violation_detected() {
        let trace = vec![
            cmd(0, CommandKind::Act, coord(0, 5, 0)),
            cmd(10, CommandKind::Rd, coord(0, 5, 0)),
        ];
        let v = validate_trace(&trace, &t(), &org()).unwrap_err();
        assert_eq!(v.constraint, "tRCD");
    }

    #[test]
    fn trp_violation_detected() {
        // Precharge late enough that tRC is satisfied but tRP is not.
        let trace = vec![
            cmd(0, CommandKind::Act, coord(0, 5, 0)),
            cmd(60, CommandKind::Pre, coord(0, 5, 0)),
            cmd(70, CommandKind::Act, coord(0, 6, 0)),
        ];
        let v = validate_trace(&trace, &t(), &org()).unwrap_err();
        assert_eq!(v.constraint, "tRP");
    }

    #[test]
    fn tras_violation_detected() {
        let trace = vec![
            cmd(0, CommandKind::Act, coord(0, 5, 0)),
            cmd(20, CommandKind::Pre, coord(0, 5, 0)),
        ];
        let v = validate_trace(&trace, &t(), &org()).unwrap_err();
        assert_eq!(v.constraint, "tRAS");
    }

    #[test]
    fn faw_violation_detected() {
        // Five ACTs to distinct banks within tFAW.
        let trace: Vec<_> = (0..5)
            .map(|i| cmd(i as u64 * 6, CommandKind::Act, coord(i, 1, 0)))
            .collect();
        let v = validate_trace(&trace, &t(), &org()).unwrap_err();
        assert_eq!(v.constraint, "tFAW");
    }

    #[test]
    fn ccd_violation_detected() {
        let trace = vec![
            cmd(0, CommandKind::Act, coord(0, 5, 0)),
            cmd(16, CommandKind::Rd, coord(0, 5, 0)),
            cmd(19, CommandKind::Rd, coord(0, 5, 1)),
        ];
        let v = validate_trace(&trace, &t(), &org()).unwrap_err();
        assert_eq!(v.constraint, "tCCD_L");
    }

    #[test]
    fn structural_violations_detected() {
        let double_act = vec![
            cmd(0, CommandKind::Act, coord(0, 5, 0)),
            cmd(100, CommandKind::Act, coord(0, 6, 0)),
        ];
        assert_eq!(
            validate_trace(&double_act, &t(), &org())
                .unwrap_err()
                .constraint,
            "ACT-on-open-bank"
        );
        let cas_closed = vec![cmd(0, CommandKind::Rd, coord(0, 5, 0))];
        assert_eq!(
            validate_trace(&cas_closed, &t(), &org())
                .unwrap_err()
                .constraint,
            "CAS-on-closed-bank"
        );
        let wrong_row = vec![
            cmd(0, CommandKind::Act, coord(0, 5, 0)),
            cmd(20, CommandKind::Rd, coord(0, 7, 0)),
        ];
        assert_eq!(
            validate_trace(&wrong_row, &t(), &org())
                .unwrap_err()
                .constraint,
            "CAS-row-mismatch"
        );
    }

    #[test]
    fn write_to_read_turnaround_detected() {
        let trace = vec![
            cmd(0, CommandKind::Act, coord(0, 5, 0)),
            cmd(16, CommandKind::Wr, coord(0, 5, 0)),
            cmd(26, CommandKind::Rd, coord(0, 5, 1)),
        ];
        let v = validate_trace(&trace, &t(), &org()).unwrap_err();
        assert_eq!(v.constraint, "tWTR");
    }

    #[test]
    fn violation_display_is_informative() {
        let v = TimingViolation {
            constraint: "tRCD",
            first: 0,
            second: 1,
            required: 16,
            observed: 10,
        };
        let s = v.to_string();
        assert!(s.contains("tRCD") && s.contains("16") && s.contains("10"));
    }
}
