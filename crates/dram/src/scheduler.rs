/// The next DRAM command a queued request needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeededCommand {
    /// Row open and matching: issue the column access (RD or WR).
    Cas,
    /// Bank closed: issue ACT.
    Activate,
    /// Row conflict: issue PRE first.
    Precharge,
}

/// Scheduling view of one queued request, prepared by the channel
/// controller each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Position in the (age-ordered) queue; lower = older.
    pub queue_pos: usize,
    /// The command the request needs next.
    pub needed: NeededCommand,
    /// Whether that command satisfies all timing constraints this cycle.
    pub issuable_now: bool,
}

/// The `FRFCFS_PriorHit` scheduling policy of Table 1: first-ready,
/// first-come-first-serve, with row hits prioritized.
///
/// Selection order among the candidates of one queue:
/// 1. the *oldest* request whose needed command is a row-hit CAS and is
///    issuable this cycle,
/// 2. otherwise the oldest request whose needed command (ACT or PRE) is
///    issuable this cycle,
/// 3. otherwise none (the channel idles this cycle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrfcfsPriorHit;

impl FrfcfsPriorHit {
    /// Creates the policy (stateless).
    pub fn new() -> Self {
        Self
    }

    /// Picks the queue position of the request to serve, per the policy.
    /// `candidates` must be ordered oldest-first.
    pub fn select(&self, candidates: &[Candidate]) -> Option<Candidate> {
        let mut best_other: Option<Candidate> = None;
        for c in candidates {
            if !c.issuable_now {
                continue;
            }
            if c.needed == NeededCommand::Cas {
                return Some(*c); // oldest issuable row hit wins outright
            }
            if best_other.is_none() {
                best_other = Some(*c);
            }
        }
        best_other
    }
}

/// Tallies of scheduling decisions by the command they issued, kept by
/// the channel's trace hook (see `menda-trace`) to expose how often the
/// FR-FCFS policy found a row hit versus paying ACT or PRE+ACT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Requests first served by a row-hit CAS.
    pub cas: u64,
    /// Requests whose first command was an ACT (bank closed).
    pub activate: u64,
    /// Requests whose first command was a PRE (row conflict).
    pub precharge: u64,
}

impl SchedCounters {
    /// Records one scheduling decision.
    pub fn record(&mut self, needed: NeededCommand) {
        match needed {
            NeededCommand::Cas => self.cas += 1,
            NeededCommand::Activate => self.activate += 1,
            NeededCommand::Precharge => self.precharge += 1,
        }
    }

    /// Total decisions recorded.
    pub fn total(&self) -> u64 {
        self.cas + self.activate + self.precharge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(pos: usize, needed: NeededCommand, ok: bool) -> Candidate {
        Candidate {
            queue_pos: pos,
            needed,
            issuable_now: ok,
        }
    }

    #[test]
    fn row_hit_beats_older_miss() {
        let sched = FrfcfsPriorHit::new();
        let picked = sched
            .select(&[
                cand(0, NeededCommand::Activate, true),
                cand(1, NeededCommand::Cas, true),
            ])
            .unwrap();
        assert_eq!(picked.queue_pos, 1);
    }

    #[test]
    fn oldest_hit_wins_among_hits() {
        let sched = FrfcfsPriorHit::new();
        let picked = sched
            .select(&[
                cand(0, NeededCommand::Cas, true),
                cand(1, NeededCommand::Cas, true),
            ])
            .unwrap();
        assert_eq!(picked.queue_pos, 0);
    }

    #[test]
    fn unissuable_hit_is_skipped() {
        let sched = FrfcfsPriorHit::new();
        let picked = sched
            .select(&[
                cand(0, NeededCommand::Cas, false),
                cand(1, NeededCommand::Precharge, true),
            ])
            .unwrap();
        assert_eq!(picked.queue_pos, 1);
        assert_eq!(picked.needed, NeededCommand::Precharge);
    }

    #[test]
    fn nothing_issuable_returns_none() {
        let sched = FrfcfsPriorHit::new();
        assert_eq!(
            sched.select(&[
                cand(0, NeededCommand::Cas, false),
                cand(1, NeededCommand::Activate, false)
            ]),
            None
        );
        assert_eq!(sched.select(&[]), None);
    }

    #[test]
    fn sched_counters_tally_by_kind() {
        let mut c = SchedCounters::default();
        c.record(NeededCommand::Cas);
        c.record(NeededCommand::Cas);
        c.record(NeededCommand::Activate);
        c.record(NeededCommand::Precharge);
        assert_eq!(c.cas, 2);
        assert_eq!(c.activate, 1);
        assert_eq!(c.precharge, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn first_ready_miss_when_no_hits() {
        let sched = FrfcfsPriorHit::new();
        let picked = sched
            .select(&[
                cand(0, NeededCommand::Activate, false),
                cand(1, NeededCommand::Activate, true),
                cand(2, NeededCommand::Activate, true),
            ])
            .unwrap();
        assert_eq!(picked.queue_pos, 1);
    }
}
