use crate::{AddressMapper, ChannelController, DramConfig, DramStats, MemRequest, MemResponse};

/// The multi-channel memory system front end.
///
/// Routes requests to per-channel [`ChannelController`]s through an
/// [`AddressMapper`], ticks all channels in lock step on the bus clock, and
/// delivers responses.
///
/// # Example
///
/// ```
/// use menda_dram::{DramConfig, MemorySystem, MemRequest};
///
/// let mut mem = MemorySystem::new(DramConfig::ddr4_2400r().with_channels(2));
/// mem.try_enqueue(MemRequest::read(0, 0));
/// mem.try_enqueue(MemRequest::read(64, 1)); // lands on the other channel
/// for _ in 0..100 { mem.tick(); }
/// assert_eq!(mem.drain_responses().len(), 2);
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    config: DramConfig,
    mapper: AddressMapper,
    channels: Vec<ChannelController>,
    rr_next: usize,
}

impl MemorySystem {
    /// Creates a memory system with `config.org.channels` channels.
    pub fn new(config: DramConfig) -> Self {
        let mapper = AddressMapper::new(config.org, config.mapping);
        let channels = (0..config.org.channels)
            .map(|ch| {
                let mut ctrl = ChannelController::new(config.clone());
                // Track 0 is the PU clock domain; channel `ch` traces on
                // track 1 + ch so multi-channel timelines stay distinct.
                ctrl.set_trace_track(1 + ch as u32);
                ctrl
            })
            .collect();
        Self {
            config,
            mapper,
            channels,
            rr_next: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The address mapper in effect.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Current bus cycle.
    pub fn now(&self) -> u64 {
        self.channels[0].now()
    }

    /// Attempts to enqueue `req`; returns `false` if the owning channel's
    /// queue is full.
    pub fn try_enqueue(&mut self, req: MemRequest) -> bool {
        let coord = self.mapper.decode(req.addr);
        self.channels[coord.channel].try_enqueue(req, coord)
    }

    /// Whether the owning channel currently has room for `req`.
    pub fn can_accept(&self, req: &MemRequest) -> bool {
        let coord = self.mapper.decode(req.addr);
        let ch = &self.channels[coord.channel];
        if req.is_read() {
            ch.read_queue_len() < self.config.read_queue
        } else {
            ch.write_queue_len() < self.config.write_queue
        }
    }

    /// Advances every channel one bus cycle.
    pub fn tick(&mut self) {
        for ch in &mut self.channels {
            ch.tick();
        }
    }

    /// The earliest bus cycle strictly after `now` at which any channel's
    /// observable state can change (see
    /// [`ChannelController::next_event_cycle`]). `None` means every
    /// channel is inert, so any jump is safe.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.channels
            .iter()
            .filter_map(|c| c.next_event_cycle())
            .min()
    }

    /// Earliest `done_at` among in-flight responses on any channel.
    pub fn next_response_at(&self) -> Option<u64> {
        self.channels
            .iter()
            .filter_map(|c| c.next_response_at())
            .min()
    }

    /// Conservative lower bound, over all channels, on the earliest bus
    /// cycle at which a *read* response whose id has no bit of
    /// `exclude_id_mask` set could become poppable (see
    /// [`ChannelController::earliest_read_response_at`]). `None` means
    /// no such read is anywhere in the pipeline.
    pub fn earliest_read_response_at(&self, exclude_id_mask: u64) -> Option<u64> {
        self.channels
            .iter()
            .filter_map(|c| c.earliest_read_response_at(exclude_id_mask))
            .min()
    }

    /// Pops one matured response the owner discards unseen (a write
    /// acknowledgment or traffic matching `discard_id_mask`), leaving
    /// read data responses queued — see
    /// [`ChannelController::pop_discardable_response`]. Round-robin
    /// over channels like [`MemorySystem::pop_response`].
    pub fn pop_discardable_response(&mut self, discard_id_mask: u64) -> Option<MemResponse> {
        let n = self.channels.len();
        for i in 0..n {
            let idx = (self.rr_next + i) % n;
            if let Some(resp) = self.channels[idx].pop_discardable_response(discard_id_mask) {
                self.rr_next = (idx + 1) % n;
                return Some(resp);
            }
        }
        None
    }

    /// Advances `ticks` bus cycles, jumping over provably event-free
    /// spans instead of simulating them cycle by cycle. Tick-exact: the
    /// resulting state (commands issued and their cycles, stats, trace
    /// samples, responses) is bit-identical to calling [`Self::tick`]
    /// `ticks` times, as long as no requests are enqueued and no
    /// responses popped in between — which is how the PU model drives it.
    ///
    /// Channels share no state, so each advances independently with its
    /// *own* event bound (tighter than the old lock-step global minimum:
    /// one channel's event no longer forces the others through a real
    /// tick). With [`DramConfig::parallel_channels`] set and more than
    /// one channel, each channel runs the span on its own scoped thread.
    pub fn advance(&mut self, ticks: u64) {
        let end = self.now() + ticks;
        if self.config.parallel_channels && self.channels.len() > 1 {
            std::thread::scope(|scope| {
                for ch in &mut self.channels {
                    scope.spawn(move || Self::advance_channel(ch, end));
                }
            });
        } else {
            for ch in &mut self.channels {
                Self::advance_channel(ch, end);
            }
        }
    }

    /// Advances one channel to bus cycle `end`, fast-forwarding across
    /// its event-free spans (see [`ChannelController::advance_to`] — the
    /// skip bound is cached channel-side, so the short spans the PU model
    /// requests cycle-by-cycle don't each pay a bound re-derivation).
    fn advance_channel(ch: &mut ChannelController, end: u64) {
        ch.advance_to(end);
    }

    /// Pops one completed response, round-robin across channels.
    pub fn pop_response(&mut self) -> Option<MemResponse> {
        let n = self.channels.len();
        for i in 0..n {
            let idx = (self.rr_next + i) % n;
            if let Some(resp) = self.channels[idx].pop_response() {
                self.rr_next = (idx + 1) % n;
                return Some(resp);
            }
        }
        None
    }

    /// Drains every response completed so far.
    pub fn drain_responses(&mut self) -> Vec<MemResponse> {
        let mut out = Vec::new();
        while let Some(r) = self.pop_response() {
            out.push(r);
        }
        out
    }

    /// Whether every channel is idle (queues empty, no in-flight bursts).
    pub fn is_idle(&self) -> bool {
        self.channels.iter().all(|c| c.is_idle())
    }

    /// Aggregated statistics across channels.
    pub fn stats(&self) -> DramStats {
        let mut agg = DramStats::new();
        for ch in &self.channels {
            agg.merge(ch.stats());
        }
        agg
    }

    /// Statistics of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_stats(&self, channel: usize) -> &DramStats {
        self.channels[channel].stats()
    }

    /// The recorded command stream of one channel (empty unless
    /// [`DramConfig::log_commands`] is set).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn command_log(&self, channel: usize) -> &[crate::CommandRecord] {
        self.channels[channel].command_log()
    }

    /// Re-validates every channel's recorded command stream offline with
    /// an independent [`crate::ProtocolChecker`] (requires
    /// [`DramConfig::log_commands`]).
    ///
    /// # Errors
    ///
    /// Returns the first violation found, tagged with its channel.
    pub fn verify_command_logs(&self) -> Result<(), (usize, crate::ProtocolViolation)> {
        for (ch, controller) in self.channels.iter().enumerate() {
            crate::ProtocolChecker::check_trace(controller.command_log(), &self.config)
                .map_err(|v| (ch, v))?;
        }
        Ok(())
    }

    /// Ends instrumentation and returns the merged trace report of all
    /// channels, or `None` when tracing is off (see
    /// [`crate::DramConfig::trace`]). Channels record nothing afterwards.
    pub fn take_trace_report(&mut self) -> Option<menda_trace::TraceReport> {
        let mut merged: Option<menda_trace::TraceReport> = None;
        for ch in &mut self.channels {
            if let Some(report) = ch.take_trace_report() {
                merged.get_or_insert_with(Default::default).merge(report);
            }
        }
        merged
    }

    /// Serializes the full dynamic state of every channel plus the
    /// response round-robin cursor. Pairs with
    /// [`MemorySystem::restore_state`] on a freshly built system of the
    /// same config.
    pub fn save_state(&self, enc: &mut crate::snap::Encoder) {
        enc.seq(self.channels.len());
        for ch in &self.channels {
            ch.save_state(enc);
        }
        enc.usize(self.rr_next);
    }

    /// Restores state saved by [`MemorySystem::save_state`] onto a system
    /// freshly constructed from the *same* config.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::snap::SnapError`] on truncated or out-of-domain
    /// bytes; the system must then be discarded (no partial restore).
    pub fn restore_state(
        &mut self,
        dec: &mut crate::snap::Decoder<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        let n = dec.len_capped(1)?;
        if n != self.channels.len() {
            return Err(crate::snap::SnapError::BadValue);
        }
        for ch in &mut self.channels {
            ch.restore_state(dec)?;
        }
        self.rr_next = dec.usize()?;
        if self.rr_next >= self.channels.len() {
            return Err(crate::snap::SnapError::BadValue);
        }
        Ok(())
    }

    /// Achieved bandwidth in GB/s over the simulation so far.
    pub fn utilized_bandwidth_gbs(&self) -> f64 {
        self.stats()
            .utilized_bandwidth_gbs(self.config.clock_mhz, self.config.org.transaction_bytes)
    }

    /// Fraction of data-bus cycles carrying a burst, averaged over
    /// channels (the aggregated [`DramStats::bus_utilization`] sums busy
    /// cycles across channels and would exceed 1.0 on multi-channel
    /// systems).
    pub fn bus_utilization(&self) -> f64 {
        let s = self.stats();
        if s.cycles == 0 {
            return 0.0;
        }
        s.bus_busy_cycles as f64 / (s.cycles as f64 * self.channels.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReqKind;

    fn no_refresh(channels: usize) -> DramConfig {
        let mut c = DramConfig::ddr4_2400r().with_channels(channels);
        c.refresh_enabled = false;
        c
    }

    #[test]
    fn requests_route_to_channels() {
        let mut mem = MemorySystem::new(no_refresh(2));
        assert!(mem.try_enqueue(MemRequest::read(0, 0)));
        assert!(mem.try_enqueue(MemRequest::read(64, 1)));
        assert_eq!(mem.channel_stats(0).cycles, 0);
        for _ in 0..100 {
            mem.tick();
        }
        let resp = mem.drain_responses();
        assert_eq!(resp.len(), 2);
        assert!(mem.is_idle());
    }

    #[test]
    fn two_channels_double_throughput() {
        let run = |channels: usize| -> u64 {
            let mut mem = MemorySystem::new(no_refresh(channels));
            let total = 256u64;
            let mut sent = 0u64;
            let mut got = 0u64;
            let mut cycles = 0u64;
            while got < total {
                while sent < total {
                    // Stride across rows to create bank parallelism.
                    let addr = sent * 64;
                    if mem.try_enqueue(MemRequest::read(addr, sent)) {
                        sent += 1;
                    } else {
                        break;
                    }
                }
                mem.tick();
                cycles += 1;
                while mem.pop_response().is_some() {
                    got += 1;
                }
                assert!(cycles < 100_000, "deadlock");
            }
            cycles
        };
        let one = run(1);
        let two = run(2);
        assert!(
            (two as f64) < 0.7 * one as f64,
            "2ch {two} cycles not much faster than 1ch {one}"
        );
    }

    #[test]
    fn bandwidth_is_bounded_by_peak() {
        let mut mem = MemorySystem::new(no_refresh(1));
        let mut sent = 0u64;
        for _ in 0..5000 {
            let addr = sent * 64;
            if mem.try_enqueue(MemRequest::read(addr, sent)) {
                sent += 1;
            }
            mem.tick();
            while mem.pop_response().is_some() {}
        }
        let bw = mem.utilized_bandwidth_gbs();
        assert!(bw > 5.0, "streaming bandwidth too low: {bw}");
        assert!(bw <= mem.config().peak_bandwidth_gbs() + 1e-9);
    }

    /// Phased random traffic driven three ways — per-cycle `tick`,
    /// serial `advance`, and channel-parallel `advance` — must produce
    /// identical responses, stats and per-channel command logs.
    #[test]
    fn parallel_channel_advance_matches_serial_ticking() {
        let mk = |parallel: bool| {
            let mut c = DramConfig::ddr4_2400r().with_channels(4);
            c.log_commands = true;
            c.parallel_channels = parallel;
            MemorySystem::new(c)
        };
        let mut ticked = mk(false);
        let mut serial = mk(false);
        let mut parallel = mk(true);
        let mut id = 0u64;
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for phase in 0..40u64 {
            for _ in 0..8 {
                let addr = (rng() % (1 << 26)) & !63;
                let req = if rng() % 3 == 0 {
                    MemRequest::write(addr, id)
                } else {
                    MemRequest::read(addr, id)
                };
                id += 1;
                let a = ticked.try_enqueue(req);
                let b = serial.try_enqueue(req);
                let c = parallel.try_enqueue(req);
                assert_eq!(a, b);
                assert_eq!(a, c);
            }
            let span = 50 + (phase % 7) * 37;
            for _ in 0..span {
                ticked.tick();
            }
            serial.advance(span);
            parallel.advance(span);
            let r1 = ticked.drain_responses();
            let r2 = serial.drain_responses();
            let r3 = parallel.drain_responses();
            assert_eq!(r1, r2, "serial advance diverged in phase {phase}");
            assert_eq!(r1, r3, "parallel advance diverged in phase {phase}");
        }
        assert_eq!(ticked.stats(), serial.stats());
        assert_eq!(ticked.stats(), parallel.stats());
        for ch in 0..4 {
            assert_eq!(ticked.command_log(ch), serial.command_log(ch));
            assert_eq!(ticked.command_log(ch), parallel.command_log(ch));
        }
    }

    /// Snapshot a system mid-flight (requests queued, bursts in the air,
    /// refresh counters running, live checker on), restore onto a fresh
    /// system, and run both to quiescence: responses, stats and command
    /// logs must match bit for bit.
    #[test]
    fn save_restore_mid_flight_is_bit_identical() {
        let mut c = DramConfig::ddr4_2400r().with_channels(2);
        c.log_commands = true;
        c.check_protocol = true;
        let mut sys = MemorySystem::new(c.clone());
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for id in 0..48u64 {
            let addr = (rng() % (1 << 26)) & !63;
            let req = if rng() % 3 == 0 {
                MemRequest::write(addr, id)
            } else {
                MemRequest::read(addr, id)
            };
            sys.try_enqueue(req);
            if id % 6 == 5 {
                for _ in 0..7 {
                    sys.tick();
                }
            }
        }
        // Mid-burst, queues non-empty.
        assert!(!sys.is_idle());
        let mut enc = crate::snap::Encoder::new();
        sys.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = MemorySystem::new(c);
        let mut dec = crate::snap::Decoder::new(&bytes);
        restored.restore_state(&mut dec).expect("clean restore");
        assert!(dec.is_empty(), "trailing bytes after restore");
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        for _ in 0..20_000 {
            sys.tick();
            restored.tick();
            got_a.extend(sys.drain_responses());
            got_b.extend(restored.drain_responses());
        }
        assert!(sys.is_idle());
        assert!(!got_a.is_empty());
        assert_eq!(got_a, got_b);
        assert_eq!(sys.stats(), restored.stats());
        for ch in 0..2 {
            assert_eq!(sys.command_log(ch), restored.command_log(ch));
        }
        sys.verify_command_logs().expect("original log clean");
        restored.verify_command_logs().expect("restored log clean");
    }

    /// Corrupting any single byte of a snapshot must yield a typed error
    /// or a decode that still never panics — no partial-restore crashes.
    #[test]
    fn corrupt_restore_never_panics() {
        let mut c = DramConfig::ddr4_2400r();
        c.log_commands = true;
        let mut sys = MemorySystem::new(c.clone());
        for id in 0..16u64 {
            sys.try_enqueue(MemRequest::read(id * 4096, id));
        }
        for _ in 0..40 {
            sys.tick();
        }
        let mut enc = crate::snap::Encoder::new();
        sys.save_state(&mut enc);
        let bytes = enc.into_bytes();
        // Truncations at every length.
        for cut in 0..bytes.len() {
            let mut fresh = MemorySystem::new(c.clone());
            let mut dec = crate::snap::Decoder::new(&bytes[..cut]);
            let _ = fresh.restore_state(&mut dec);
        }
        // Single-byte flips at a stride (full sweep is slow in debug).
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0xA5;
            let mut fresh = MemorySystem::new(c.clone());
            let mut dec = crate::snap::Decoder::new(&bad);
            let _ = fresh.restore_state(&mut dec);
        }
    }

    #[test]
    fn can_accept_tracks_occupancy() {
        let mut mem = MemorySystem::new(no_refresh(1));
        let probe = MemRequest::read(0, 999);
        assert!(mem.can_accept(&probe));
        for i in 0..32u64 {
            mem.try_enqueue(MemRequest::read(i << 20, i));
        }
        assert!(!mem.can_accept(&probe));
        assert!(mem.can_accept(&MemRequest::write(0, 1000)));
    }

    #[test]
    fn writes_and_reads_complete_in_mixed_stream() {
        let mut mem = MemorySystem::new(no_refresh(1));
        let mut reads = 0;
        let mut writes = 0;
        let mut sent = 0u64;
        while reads + writes < 100 {
            if sent < 100 {
                let req = if sent.is_multiple_of(2) {
                    MemRequest::read(sent * 4096, sent)
                } else {
                    MemRequest::write(sent * 4096 + 2048, sent)
                };
                if mem.try_enqueue(req) {
                    sent += 1;
                }
            }
            mem.tick();
            while let Some(r) = mem.pop_response() {
                match r.kind {
                    ReqKind::Read => reads += 1,
                    ReqKind::Write => writes += 1,
                }
            }
        }
        assert_eq!(reads, 50);
        assert_eq!(writes, 50);
    }
}
