/// Kind of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// A 64-byte read transaction.
    Read,
    /// A 64-byte write transaction.
    Write,
}

/// A memory transaction presented to the [`crate::MemorySystem`].
///
/// Requests operate at cache-line (transaction) granularity; the `id` is an
/// opaque tag echoed back in the matching [`MemResponse`] so callers can
/// correlate completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Physical byte address (aligned down to the transaction size
    /// internally).
    pub addr: u64,
    /// Read or write.
    pub kind: ReqKind,
    /// Caller-chosen tag echoed in the response.
    pub id: u64,
}

impl MemRequest {
    /// Creates a read request.
    pub fn read(addr: u64, id: u64) -> Self {
        Self {
            addr,
            kind: ReqKind::Read,
            id,
        }
    }

    /// Creates a write request.
    pub fn write(addr: u64, id: u64) -> Self {
        Self {
            addr,
            kind: ReqKind::Write,
            id,
        }
    }

    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        self.kind == ReqKind::Read
    }
}

/// Completion of a [`MemRequest`].
///
/// Reads complete when their data burst finishes on the bus; writes
/// complete when the write data has been transferred to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// The tag of the completed request.
    pub id: u64,
    /// The (aligned) address of the completed request.
    pub addr: u64,
    /// Read or write.
    pub kind: ReqKind,
    /// Bus-clock cycle at which the transaction completed.
    pub done_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert!(MemRequest::read(0x100, 1).is_read());
        assert!(!MemRequest::write(0x100, 2).is_read());
    }
}
