//! Set-associative cache model used by the trace-driven CPU mode.
//!
//! Table 1 gives the CPU cache hierarchy the paper simulates in front of
//! Ramulator: L1 32 KB, L2 256 KB, L3 3 MB, all with 64 B blocks and 8-way
//! associativity. This module implements an LRU write-back, write-allocate
//! cache and a three-level hierarchy that filters a memory trace down to
//! the DRAM accesses.

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Block (line) size in bytes.
    pub block_size: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Table 1's L1: 32 KB, 64 B blocks, 8-way.
    pub fn l1() -> Self {
        Self {
            capacity: 32 << 10,
            block_size: 64,
            ways: 8,
        }
    }

    /// Table 1's L2: 256 KB, 64 B blocks, 8-way.
    pub fn l2() -> Self {
        Self {
            capacity: 256 << 10,
            block_size: 64,
            ways: 8,
        }
    }

    /// Table 1's L3: 3 MB, 64 B blocks, 8-way.
    pub fn l3() -> Self {
        Self {
            capacity: 3 << 20,
            block_size: 64,
            ways: 8,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity / (self.block_size * self.ways)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp: larger = more recently used.
    lru: u64,
}

/// One set-associative, write-back, write-allocate cache with LRU
/// replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

/// Result of a cache access at one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Address of a dirty block evicted to make room, if any.
    pub writeback: Option<u64>,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two block size or yields
    /// zero sets.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.block_size.is_power_of_two());
        let sets = config.sets();
        assert!(sets > 0, "cache has no sets");
        Self {
            config,
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        lru: 0
                    };
                    config.ways
                ];
                sets
            ],
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let block = addr / self.config.block_size as u64;
        let set = (block % self.sets.len() as u64) as usize;
        let tag = block / self.sets.len() as u64;
        (set, tag)
    }

    /// Accesses `addr`; on a miss the block is allocated, possibly evicting
    /// a dirty victim whose address is returned for write-back.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.stamp += 1;
        let (set_idx, tag) = self.index_tag(addr);
        let sets_count = self.sets.len() as u64;
        let block_size = self.config.block_size as u64;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.stamp;
            line.dirty |= is_write;
            self.hits += 1;
            return AccessOutcome {
                hit: true,
                writeback: None,
            };
        }
        self.misses += 1;
        // Choose victim: invalid first, else LRU.
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("nonzero ways");
        let old = set[victim];
        let writeback = if old.valid && old.dirty {
            Some((old.tag * sets_count + set_idx as u64) * block_size)
        } else {
            None
        };
        set[victim] = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: self.stamp,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Invalidates the block containing `addr` without write-back.
    pub fn invalidate(&mut self, addr: u64) {
        let (set, tag) = self.index_tag(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.valid = false;
            line.dirty = false;
        }
    }

    /// Hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// The DRAM-side traffic produced by one hierarchy access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramTraffic {
    /// Line-aligned fill address when the access missed every level.
    pub fill: Option<u64>,
    /// Dirty evictions that must be written back to DRAM.
    pub writebacks: Vec<u64>,
}

/// The Table 1 three-level hierarchy (per-core L1/L2, shared L3 modeled as
/// one cache; the CPU-mode simulator instantiates one hierarchy per core
/// and a shared L3 separately).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<Cache>,
}

impl CacheHierarchy {
    /// Builds the L1/L2/L3 hierarchy of Table 1.
    pub fn table1() -> Self {
        Self::new(vec![
            CacheConfig::l1(),
            CacheConfig::l2(),
            CacheConfig::l3(),
        ])
    }

    /// Builds a hierarchy from outermost-last configs.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn new(configs: Vec<CacheConfig>) -> Self {
        assert!(!configs.is_empty(), "need at least one level");
        Self {
            levels: configs.into_iter().map(Cache::new).collect(),
        }
    }

    /// Accesses the hierarchy; returns the DRAM traffic required (empty on
    /// a hit at any level). Inclusive allocation: a miss fills every level.
    /// Dirty victims cascade: an eviction from level *i* is written into
    /// level *i + 1*, and only last-level dirty victims reach DRAM.
    pub fn access(&mut self, addr: u64, is_write: bool) -> DramTraffic {
        let mut traffic = DramTraffic::default();
        let mut wbs: Vec<u64> = Vec::new();
        let mut demand = Some(addr);
        for (depth, cache) in self.levels.iter_mut().enumerate() {
            let mut next_wbs = Vec::new();
            for wb in wbs.drain(..) {
                let out = cache.access(wb, true);
                if let Some(v) = out.writeback {
                    next_wbs.push(v);
                }
            }
            if let Some(a) = demand {
                let out = cache.access(a, is_write && depth == 0);
                if let Some(v) = out.writeback {
                    next_wbs.push(v);
                }
                if out.hit {
                    demand = None;
                }
            }
            wbs = next_wbs;
            if demand.is_none() && wbs.is_empty() {
                return traffic;
            }
        }
        let block = self.levels.last().expect("nonempty").config.block_size as u64;
        traffic.writebacks = wbs;
        traffic.fill = demand.map(|a| a & !(block - 1));
        traffic
    }

    /// Per-level hit rates, innermost first.
    pub fn hit_rates(&self) -> Vec<f64> {
        self.levels.iter().map(|c| c.hit_rate()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_of_table1() {
        assert_eq!(CacheConfig::l1().sets(), 64);
        assert_eq!(CacheConfig::l2().sets(), 512);
        assert_eq!(CacheConfig::l3().sets(), 6144);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(CacheConfig::l1());
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1020, false).hit); // same 64B line
        assert!(!c.access(0x1040, false).hit); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1-set cache: capacity = 64B * 2 ways.
        let cfg = CacheConfig {
            capacity: 128,
            block_size: 64,
            ways: 2,
        };
        let mut c = Cache::new(cfg);
        c.access(0, false); // A
        c.access(64, false); // B
        c.access(0, false); // touch A; B is LRU
        c.access(128, false); // evicts B
        assert!(c.access(0, false).hit);
        assert!(!c.access(64, false).hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let cfg = CacheConfig {
            capacity: 64,
            block_size: 64,
            ways: 1,
        };
        let mut c = Cache::new(cfg);
        c.access(0x40, true);
        let out = c.access(0x80, false);
        assert_eq!(out.writeback, Some(0x40));
        // Clean eviction has no writeback.
        let out = c.access(0xC0, false);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut c = Cache::new(CacheConfig::l1());
        c.access(0x2000, true);
        c.invalidate(0x2000);
        assert!(!c.access(0x2000, false).hit);
    }

    #[test]
    fn hierarchy_filters_repeats() {
        let mut h = CacheHierarchy::table1();
        let first = h.access(0x3000, false);
        assert_eq!(first.fill, Some(0x3000));
        let second = h.access(0x3000, false);
        assert_eq!(second.fill, None);
        assert!(second.writebacks.is_empty());
    }

    #[test]
    fn hierarchy_l2_catches_l1_evictions() {
        let mut h = CacheHierarchy::table1();
        // Touch enough distinct lines to overflow L1 (512 lines) but not L2.
        for i in 0..1024u64 {
            h.access(i * 64, false);
        }
        // Re-touch the first line: L1 misses, L2 should hit → no DRAM fill.
        let t = h.access(0, false);
        assert_eq!(t.fill, None);
    }

    #[test]
    fn hierarchy_emits_llc_writebacks() {
        // Tiny custom hierarchy so evictions are easy to force.
        let small = CacheConfig {
            capacity: 64,
            block_size: 64,
            ways: 1,
        };
        let mut h = CacheHierarchy::new(vec![small, small]);
        h.access(0, true);
        let t = h.access(64, false);
        assert_eq!(t.fill, Some(64));
        assert_eq!(t.writebacks, vec![0]);
    }

    #[test]
    fn writes_only_dirty_l1() {
        let mut h = CacheHierarchy::table1();
        h.access(0x5000, true);
        let rates = h.hit_rates();
        assert_eq!(rates.len(), 3);
    }
}
