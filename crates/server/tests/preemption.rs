//! Server preemption seam (ISSUE 9 satellite): a job checkpointed and
//! restored at quantum boundaries must finish with a [`JobOutcome`]
//! byte-identical — JSON serialization and output digest — to the
//! uninterrupted run, both through the library seam
//! ([`menda_server::execute_preemptible`]) and through a live daemon
//! whose workers run with [`ServerConfig::preemption_quantum`] set.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use menda_core::{BackendKind, JobKernel, JobProgress, JobSpec, MatrixSource};
use menda_server::{execute_preemptible, ServerConfig, ServerHandle};
use menda_trace::json::{self, JsonValue};

fn base_spec() -> JobSpec {
    let mut spec = JobSpec::new(MatrixSource::Rmat { dim: 96, nnz: 768 });
    spec.channels = 1;
    spec.ranks_per_channel = 2;
    spec.leaves = 16;
    spec.prefetch_buffer_entries = 4;
    spec.threads = Some(1);
    spec.seed = 33;
    spec
}

/// The seam proof: quantum-sliced execution equals one-shot execution,
/// byte for byte, across kernels and backends.
#[test]
fn preempted_outcome_is_byte_identical() {
    for kernel in [JobKernel::Transpose, JobKernel::Spmv, JobKernel::Spgemm] {
        for backend in [BackendKind::Menda, BackendKind::Pim] {
            let mut spec = base_spec();
            spec.kernel = kernel;
            spec.backend = backend;
            let straight = spec.execute().expect("uninterrupted run");
            // A small quantum forces many snapshot/restore round trips.
            let preempted = execute_preemptible(&spec, 400).expect("preempted run");
            assert_eq!(
                straight.to_json(),
                preempted.to_json(),
                "{kernel:?}/{backend:?}: outcome JSON diverged across preemption"
            );
            assert_eq!(
                straight.digest(),
                preempted.digest(),
                "{kernel:?}/{backend:?}: outcome digest diverged across preemption"
            );
        }
    }
}

/// The snapshot is a real externalizable artifact: pause, carry the
/// bytes across engine instances, resume, and chain further pauses.
#[test]
fn snapshot_round_trips_through_pause_chain() {
    let spec = base_spec();
    let straight = spec.execute().expect("uninterrupted run");
    let mut progress = spec.execute_to_cycle(300).expect("first quantum");
    let mut pause_at = 300;
    let mut hops = 0u32;
    let resumed = loop {
        match progress {
            JobProgress::Finished(outcome) => break outcome,
            JobProgress::Paused(snapshot) => {
                hops += 1;
                pause_at += 300;
                progress = spec
                    .resume_to_cycle(&snapshot, pause_at)
                    .expect("resume hop");
            }
        }
    };
    assert!(hops >= 2, "job too short to exercise chained pauses");
    assert_eq!(straight.to_json(), resumed.to_json());
}

/// A snapshot from one job must not restore into another.
#[test]
fn snapshot_rejected_for_different_job() {
    let spec = base_spec();
    let other = {
        let mut s = base_spec();
        s.seed = 34;
        s
    };
    let JobProgress::Paused(snapshot) = spec.execute_to_cycle(300).expect("pause") else {
        panic!("job finished before the pause target");
    };
    let err = other.resume(&snapshot).expect_err("must reject");
    assert!(
        err.to_string().contains("snapshot"),
        "unexpected error: {err}"
    );
    // The owning job still resumes fine.
    assert!(spec.resume(&snapshot).is_ok());
}

/// A daemon with the preemption quantum set serves byte-identical
/// results to the batch path.
#[test]
fn daemon_with_quantum_matches_batch() {
    let server = ServerHandle::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            preemption_quantum: Some(500),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");

    let spec = base_spec();
    let batch = spec.execute().expect("batch run");

    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(format!("{{\"op\":\"submit\",\"job\":{}}}\n", spec.to_json()).as_bytes())
        .expect("send");

    let result = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("recv") > 0, "hangup");
        let value = json::parse(line.trim()).expect("response parses");
        match value.get("type").and_then(JsonValue::as_str) {
            Some("result") => break value,
            Some(_) => continue,
            None => panic!("response missing 'type': {value:?}"),
        }
    };
    assert!(
        matches!(result.get("ok"), Some(JsonValue::Bool(true))),
        "job failed over the wire: {result:?}"
    );
    // The wire digest is computed over the outcome-JSON bytes, so
    // equality here is byte-identity of the full preempted outcome
    // against the batch outcome.
    let wire_digest = result
        .get("stats_digest")
        .and_then(JsonValue::as_str)
        .expect("stats_digest")
        .to_string();
    assert_eq!(wire_digest, format!("{:016x}", batch.digest()));
    let stats = result.get("stats").expect("stats object");
    let wire_cycles = stats
        .get("cycles")
        .and_then(JsonValue::as_num)
        .expect("cycles") as u64;
    assert_eq!(wire_cycles, batch.cycles);

    let mut server = server;
    server.shutdown(true);
    server.join();
}
