//! End-to-end tests for the simulation service: every protocol error
//! path answers with a structured error and the daemon keeps serving;
//! a wire-submitted job is bit-identical to the batch path; shutdown
//! drains cleanly.
//!
//! Wire taxonomy (see `menda_server::protocol`): every response carries
//! `type` and `ok`; job terminations are `type: "result"` with
//! `ok: true` (stats) or `ok: false` (error string).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use menda_core::{Digest, JobKernel, JobSpec, MatrixSource};
use menda_server::{ServerConfig, ServerHandle};
use menda_trace::json::{self, JsonValue};

/// A test client: line-in/line-out over one connection. `recv` keeps the
/// raw line around for byte-level assertions.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    last_line: String,
}

impl Client {
    fn connect(server: &ServerHandle) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        Client {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
            last_line: String::new(),
        }
    }

    fn send(&mut self, line: &str) {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .expect("send");
    }

    fn recv(&mut self) -> JsonValue {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed connection unexpectedly");
        let value = json::parse(line.trim()).expect("response parses as JSON");
        self.last_line = line.trim().to_string();
        value
    }

    /// Receives lines until one has `type == kind`, skipping others
    /// (e.g. `started` progress lines).
    fn recv_type(&mut self, kind: &str) -> JsonValue {
        for _ in 0..100 {
            let value = self.recv();
            if type_of(&value) == kind {
                return value;
            }
        }
        panic!("never received a {kind:?} response");
    }

    /// Submits `spec`, waits through accepted/started, returns the
    /// terminal `result` line (ok or failed).
    fn run_job(&mut self, spec: &JobSpec) -> JsonValue {
        self.send(&format!("{{\"op\":\"submit\",\"job\":{}}}", spec.to_json()));
        let ack = self.recv();
        assert_eq!(type_of(&ack), "accepted", "submit not accepted: {ack:?}");
        self.recv_type("result")
    }
}

fn type_of(value: &JsonValue) -> String {
    value
        .get("type")
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("response missing 'type': {value:?}"))
        .to_string()
}

fn is_ok(value: &JsonValue) -> bool {
    matches!(value.get("ok"), Some(JsonValue::Bool(true)))
}

fn str_field(value: &JsonValue, key: &str) -> String {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("response missing string {key:?}: {value:?}"))
        .to_string()
}

fn num_field(value: &JsonValue, key: &str) -> f64 {
    value
        .get(key)
        .and_then(JsonValue::as_num)
        .unwrap_or_else(|| panic!("response missing number {key:?}: {value:?}"))
}

fn start_server(config: ServerConfig) -> ServerHandle {
    ServerHandle::bind("127.0.0.1:0", config).expect("bind ephemeral port")
}

fn tiny_spec() -> JobSpec {
    let mut spec = JobSpec::new(MatrixSource::Uniform { dim: 64, nnz: 512 });
    spec.channels = 1;
    spec.ranks_per_channel = 1;
    spec.leaves = 16;
    spec.threads = Some(1);
    spec
}

#[test]
fn ping_status_and_roundtrip() {
    let mut server = start_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&server);
    client.send("{\"op\":\"ping\"}");
    assert_eq!(type_of(&client.recv()), "pong");

    let result = client.run_job(&tiny_spec());
    assert!(is_ok(&result), "job failed: {result:?}");
    assert!(num_field(&result, "run_ms") >= 0.0);

    client.send("{\"op\":\"status\"}");
    let status = client.recv_type("status");
    assert_eq!(num_field(&status, "completed"), 1.0);
    assert_eq!(num_field(&status, "failed"), 0.0);
    server.shutdown(true);
    server.join();
}

#[test]
fn wire_result_is_bit_identical_to_batch_path() {
    let mut server = start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut spec = tiny_spec();
    spec.kernel = JobKernel::Spmv;
    spec.seed = 7;

    // Batch path: the same validated JobSpec executed in-process.
    let batch = spec.execute().expect("batch execution");
    let batch_stats = batch.to_json();
    let batch_digest = format!("{:016x}", Digest::of(batch_stats.as_bytes()));

    // Wire path: submitted over TCP to the daemon.
    let mut client = Client::connect(&server);
    let result = client.run_job(&spec);
    assert!(is_ok(&result), "wire job failed: {result:?}");
    assert_eq!(str_field(&result, "stats_digest"), batch_digest);
    // The raw wire line embeds the batch stats JSON byte-for-byte.
    assert!(
        client.last_line.contains(&batch_stats),
        "wire stats must be byte-identical to the batch path:\nwire: {}\nbatch: {batch_stats}",
        client.last_line
    );
    server.shutdown(true);
    server.join();
}

#[test]
fn malformed_lines_get_structured_errors_and_daemon_survives() {
    let mut server = start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&server);
    let bad_lines = [
        "this is not json",
        "{\"op\":\"submit\"}",
        "{\"op\":\"warp\"}",
        "{\"no_op_at_all\":1}",
        "[1,2,3]",
        "{\"op\":\"submit\",\"job\":{\"matrix\":{\"source\":\"uniform\",\"dim\":64,\"nnz\":512},\"kernel\":\"fft\"}}",
        "{\"op\":\"submit\",\"job\":{\"matrix\":{\"source\":\"uniform\",\"dim\":64,\"nnz\":512},\"backend\":\"gpu\"}}",
        "{\"op\":\"submit\",\"job\":{\"matrix\":{\"source\":\"table3\",\"name\":\"Z9\"}}}",
        "{\"op\":\"submit\",\"job\":{\"matrix\":{\"source\":\"uniform\",\"dim\":64,\"nnz\":512},\"bogus_field\":1}}",
        "{\"op\":\"cancel\"}",
    ];
    for line in bad_lines {
        client.send(line);
        let response = client.recv();
        assert_eq!(
            type_of(&response),
            "error",
            "line {line:?} must answer a structured error, got {response:?}"
        );
        assert!(!str_field(&response, "message").is_empty());
    }
    // Daemon still serves real work afterwards.
    let result = client.run_job(&tiny_spec());
    assert!(is_ok(&result));
    server.shutdown(true);
    server.join();
}

#[test]
fn oversized_job_and_bad_deadline_are_rejected() {
    let mut server = start_server(ServerConfig {
        workers: 1,
        max_job_nnz: 1_000,
        max_deadline_ms: 10_000,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&server);

    let mut big = tiny_spec();
    big.matrix = MatrixSource::Uniform {
        dim: 4096,
        nnz: 100_000,
    };
    client.send(&format!("{{\"op\":\"submit\",\"job\":{}}}", big.to_json()));
    let response = client.recv();
    assert_eq!(type_of(&response), "rejected");
    assert_eq!(str_field(&response, "reason"), "too_large");

    client.send(&format!(
        "{{\"op\":\"submit\",\"job\":{},\"deadline_ms\":999999}}",
        tiny_spec().to_json()
    ));
    let response = client.recv();
    assert_eq!(type_of(&response), "rejected");
    assert_eq!(str_field(&response, "reason"), "bad_deadline");

    // Deadline of 1 ms expires in the queue behind real jobs: the
    // worker fails it without running it.
    for _ in 0..3 {
        client.send(&format!(
            "{{\"op\":\"submit\",\"job\":{}}}",
            tiny_spec().to_json()
        ));
    }
    client.send(&format!(
        "{{\"op\":\"submit\",\"job\":{},\"deadline_ms\":1}}",
        tiny_spec().to_json()
    ));
    let mut saw_deadline_failure = false;
    for _ in 0..30 {
        let value = client.recv();
        if type_of(&value) == "result" && !is_ok(&value) {
            assert!(str_field(&value, "error").contains("deadline_exceeded"));
            saw_deadline_failure = true;
            break;
        }
    }
    assert!(saw_deadline_failure, "1 ms deadline job must fail");
    server.shutdown(true);
    server.join();
}

#[test]
fn queue_full_rejects_and_recovers() {
    let mut server = start_server(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&server);
    // Burst far past capacity: worker 1 + queue 1 can hold 2; the rest
    // of an 8-job burst must see queue_full at least once.
    let spec = tiny_spec();
    for _ in 0..8 {
        client.send(&format!("{{\"op\":\"submit\",\"job\":{}}}", spec.to_json()));
    }
    let mut accepted = 0;
    let mut queue_full = 0;
    let mut results = 0;
    while results < accepted || accepted + queue_full < 8 {
        let value = client.recv();
        match type_of(&value).as_str() {
            "accepted" => accepted += 1,
            "rejected" => {
                assert_eq!(str_field(&value, "reason"), "queue_full");
                queue_full += 1;
            }
            "result" => {
                assert!(is_ok(&value), "burst job failed: {value:?}");
                results += 1;
            }
            "started" => {}
            other => panic!("unexpected response type {other:?}"),
        }
    }
    assert!(queue_full > 0, "burst must hit backpressure");
    assert_eq!(results, accepted, "every accepted job must complete");

    // Recovery: queue drains, a fresh submit is accepted again.
    let result = client.run_job(&spec);
    assert!(is_ok(&result));
    server.shutdown(true);
    server.join();
}

#[test]
fn cancel_removes_queued_job_and_unknown_cancel_is_rejected() {
    let mut server = start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&server);
    // Occupy the single worker with a job big enough to outlast the
    // cancel round-trip, then queue a tiny victim job behind it.
    let mut blocker = tiny_spec();
    blocker.matrix = MatrixSource::Uniform {
        dim: 2048,
        nnz: 65_536,
    };
    client.send(&format!(
        "{{\"op\":\"submit\",\"job\":{}}}",
        blocker.to_json()
    ));
    let first = client.recv_type("accepted");
    let first_id = num_field(&first, "job_id") as u64;
    client.send(&format!(
        "{{\"op\":\"submit\",\"job\":{}}}",
        tiny_spec().to_json()
    ));
    let second = client.recv_type("accepted");
    let victim_id = num_field(&second, "job_id") as u64;

    client.send(&format!("{{\"op\":\"cancel\",\"job_id\":{victim_id}}}"));
    // The cancel ack (type "accepted"), the victim's failure line and
    // job 1's result interleave; collect until all three are observed —
    // leaving the ack unread would desync the next round-trip below.
    let mut cancelled = false;
    let mut first_done = false;
    let mut acked = false;
    for _ in 0..20 {
        let value = client.recv();
        match type_of(&value).as_str() {
            "result" if !is_ok(&value) => {
                assert_eq!(num_field(&value, "job_id") as u64, victim_id);
                assert!(str_field(&value, "error").contains("cancelled"));
                cancelled = true;
            }
            "result" => {
                assert_eq!(num_field(&value, "job_id") as u64, first_id);
                first_done = true;
            }
            "accepted" => {
                assert_eq!(num_field(&value, "job_id") as u64, victim_id);
                acked = true;
            }
            "started" => {}
            other => panic!("unexpected response type {other:?}"),
        }
        if cancelled && first_done && acked {
            break;
        }
    }
    assert!(cancelled && first_done && acked);

    client.send("{\"op\":\"cancel\",\"job_id\":424242}");
    let response = client.recv();
    assert_eq!(type_of(&response), "rejected");
    assert_eq!(str_field(&response, "reason"), "not_queued");
    server.shutdown(true);
    server.join();
}

#[test]
fn client_disconnect_mid_job_does_not_kill_daemon() {
    let mut server = start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    {
        let mut doomed = Client::connect(&server);
        // Big enough that the job is still running when the dropped
        // socket's EOF has torn the connection down — a tiny job can
        // finish (and deliver) before the disconnect propagates.
        let mut orphan = tiny_spec();
        orphan.matrix = MatrixSource::Uniform {
            dim: 2048,
            nnz: 65_536,
        };
        doomed.send(&format!(
            "{{\"op\":\"submit\",\"job\":{}}}",
            orphan.to_json()
        ));
        doomed.recv_type("accepted");
        // Drop both halves: the client vanishes while its job runs.
    }
    // A second client still gets full service; the orphaned result is
    // absorbed into the undeliverable counter.
    let mut client = Client::connect(&server);
    let result = client.run_job(&tiny_spec());
    assert!(is_ok(&result));
    for _ in 0..200 {
        client.send("{\"op\":\"status\"}");
        let status = client.recv_type("status");
        if num_field(&status, "undeliverable") >= 1.0 && num_field(&status, "running") == 0.0 {
            server.shutdown(true);
            server.join();
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("orphaned job never accounted as undeliverable");
}

#[test]
fn oversized_line_is_rejected_without_closing_connection() {
    let mut server = start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&server);
    let huge = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(2 << 20));
    client.send(&huge);
    let response = client.recv();
    assert_eq!(type_of(&response), "error");
    assert!(str_field(&response, "message").contains("exceeds"));
    client.send("{\"op\":\"ping\"}");
    assert_eq!(type_of(&client.recv()), "pong");
    server.shutdown(true);
    server.join();
}

#[test]
fn shutdown_drains_queued_work_then_stops_accepting() {
    let server = start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&server);
    for _ in 0..3 {
        client.send(&format!(
            "{{\"op\":\"submit\",\"job\":{}}}",
            tiny_spec().to_json()
        ));
    }
    for _ in 0..3 {
        client.recv_type("accepted");
    }
    // Drain from a second connection while jobs are queued.
    let mut admin = Client::connect(&server);
    admin.send("{\"op\":\"shutdown\",\"drain\":true}");
    let ack = admin.recv_type("shutdown");
    assert_eq!(num_field(&ack, "completed"), 3.0, "drain must finish all 3");
    // All three results were delivered to the submitting client.
    let mut results = 0;
    for _ in 0..20 {
        let value = client.recv();
        if type_of(&value) == "result" {
            assert!(is_ok(&value));
            results += 1;
            if results == 3 {
                break;
            }
        }
    }
    assert_eq!(results, 3);
    server.join();
}

#[test]
fn submits_after_drain_are_rejected_shutting_down() {
    let server = start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    // Hold the worker busy, start a drain, then try to submit.
    let mut client = Client::connect(&server);
    client.send(&format!(
        "{{\"op\":\"submit\",\"job\":{}}}",
        tiny_spec().to_json()
    ));
    client.recv_type("accepted");

    let admin = std::thread::spawn({
        let addr = server.local_addr();
        move || {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            writer
                .write_all(b"{\"op\":\"shutdown\",\"drain\":true}\n")
                .expect("send shutdown");
            let mut line = String::new();
            reader.read_line(&mut line).expect("ack");
        }
    });
    // Give the drain a moment to flip `accepting`.
    std::thread::sleep(Duration::from_millis(50));
    client.send(&format!(
        "{{\"op\":\"submit\",\"job\":{}}}",
        tiny_spec().to_json()
    ));
    let mut saw_reject = false;
    for _ in 0..10 {
        let value = client.recv();
        if type_of(&value) == "rejected" {
            assert_eq!(str_field(&value, "reason"), "shutting_down");
            saw_reject = true;
            break;
        }
    }
    assert!(saw_reject, "submit during drain must be rejected");
    admin.join().expect("admin thread");
    server.join();
}
