//! menda-server: the resident multi-tenant simulation service.
//!
//! The batch `repro` binary answers one question per process; this crate
//! keeps a daemon resident so many tenants can share one simulator
//! deployment. Jobs — a matrix source or generator seed, a kernel, a
//! backend, and config overrides — arrive as line-delimited JSON over
//! TCP ([`protocol`]), pass through the same validated
//! [`JobSpec`](menda_core::JobSpec) path as the CLI, wait in a bounded
//! queue, and fan out across a worker pool ([`server`]). Clients stream
//! back `accepted`/`started`/`result` events; results embed the
//! deterministic [`JobOutcome`](menda_core::JobOutcome) stats JSON plus
//! an FNV-1a digest so a wire-submitted job can be proven bit-identical
//! to the same job run through the batch path.
//!
//! [`loadgen`] is the offline load driver: it replays hundreds of queued
//! jobs against a daemon, retries backpressure rejections, spot-checks
//! wire results against local batch re-execution, and reports throughput
//! plus p50/p90/p99 latency (persisted as `results/SERVER_8.json`).
//!
//! Start a daemon with the `menda-server` binary (or `repro serve`), and
//! drive it with the `loadgen` binary (or `repro serve-bench`):
//!
//! ```text
//! $ menda-server --addr 127.0.0.1:7870 --workers 4 --queue 64
//! $ loadgen --addr 127.0.0.1:7870 --jobs 500 --connections 4
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod loadgen;
pub mod protocol;
pub mod server;

pub use loadgen::{LoadgenOptions, LoadgenReport};
pub use protocol::{RejectReason, Request, Response, StatusSnapshot, MAX_LINE_BYTES};
pub use server::{execute_preemptible, ServerConfig, ServerHandle};
