//! The resident daemon: acceptor, bounded job queue, worker pool.
//!
//! ```text
//!           TCP clients (line-delimited JSON)
//!                │ reader thread per connection
//!                ▼
//!   admission (parse → validate → cost/deadline caps)
//!                │ try_push
//!                ▼
//!        bounded FIFO queue ──▶ rejected{queue_full} when at capacity
//!                │ pop
//!                ▼
//!        worker pool (N threads) — JobSpec::execute, panics caught
//!                │ per-connection mpsc
//!                ▼
//!        writer thread per connection ──▶ client
//! ```
//!
//! Robustness rules:
//!
//! * **No untrusted panic paths.** Requests are parsed and validated by
//!   the non-panicking [`JobSpec`](menda_core::JobSpec) path; the
//!   execution itself runs under `catch_unwind` so even a simulator bug
//!   fails one job, not the daemon.
//! * **Backpressure is explicit.** A full queue answers
//!   `rejected{queue_full}` immediately; clients retry. Nothing blocks
//!   the reader thread on queue space.
//! * **Deadlines are enforced at dispatch.** A job whose deadline expired
//!   while queued is failed without running; a job that finishes past its
//!   deadline is reported `deadline_exceeded` (simulation is not
//!   preemptible mid-kernel, so over-deadline completions are discarded
//!   rather than interrupted).
//! * **Cancellation is queue-level.** `cancel` removes a queued job; a
//!   running job cannot be preempted and the cancel is rejected.
//! * **Disconnects are absorbed.** If the submitting client is gone when
//!   a result is ready, delivery fails silently into the `undeliverable`
//!   counter and the worker moves on.
//! * **Shutdown drains.** `shutdown` (drain mode) stops admission,
//!   finishes queued work, then stops workers and the acceptor;
//!   `drain: false` cancels the queue first.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use menda_core::{JobError, JobSpec};

use crate::protocol::{RejectReason, Request, Response, StatusSnapshot, MAX_LINE_BYTES};

/// Tuning knobs of a server instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads executing jobs (`0` = one per available core).
    pub workers: usize,
    /// Bounded queue capacity; submits beyond it are rejected.
    pub queue_capacity: usize,
    /// Per-job size cap in simulated nonzeros
    /// ([`JobSpec::cost_nnz`]); larger jobs are rejected `too_large`.
    pub max_job_nnz: u64,
    /// Largest accepted `deadline_ms`.
    pub max_deadline_ms: u64,
    /// When set, workers execute jobs preemptibly in quanta of this many
    /// device cycles through the checkpoint/replay seam
    /// ([`JobSpec::execute_to_cycle`] / [`JobSpec::resume_to_cycle`])
    /// instead of one uninterrupted [`JobSpec::execute`]. Outcomes are
    /// byte-identical either way (the preemption suite asserts it); the
    /// snapshot boundary is where a future scheduler can park a job.
    /// Jobs with counting instrumentation fall back to uninterrupted
    /// execution (checkpointing refuses active tracing).
    pub preemption_quantum: Option<u64>,
    /// Engine worker threads applied at admission to jobs that leave
    /// `threads` unset (`None` keeps the engine's own auto default).
    /// Simulated outcomes are bit-identical at every thread count —
    /// the pipelined multi-core mode only changes the wall clock — so
    /// this is purely a throughput knob.
    pub default_threads: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 64,
            max_job_nnz: 64_000_000,
            max_deadline_ms: 3_600_000,
            preemption_quantum: None,
            default_threads: None,
        }
    }
}

impl ServerConfig {
    /// The effective worker count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Lifetime counters (a superset of [`StatusSnapshot`]'s).
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    cancelled: u64,
    undeliverable: u64,
}

/// One queued job.
struct QueuedJob {
    id: u64,
    tag: Option<String>,
    spec: JobSpec,
    deadline: Option<Duration>,
    enqueued_at: Instant,
    reply: mpsc::Sender<String>,
}

/// Mutex-guarded scheduler state.
struct QueueState {
    queue: VecDeque<QueuedJob>,
    /// New submits accepted.
    accepting: bool,
    /// Workers must exit once the queue is empty.
    stopping: bool,
    running: usize,
    next_job_id: u64,
    counters: Counters,
}

struct Shared {
    config: ServerConfig,
    state: Mutex<QueueState>,
    /// Signals workers that a job (or stop) is available.
    work: Condvar,
    /// Signals the drainer that queue+running hit zero.
    idle: Condvar,
}

impl Shared {
    fn snapshot(&self) -> StatusSnapshot {
        let s = self.state.lock().expect("state lock");
        StatusSnapshot {
            queued: s.queue.len(),
            running: s.running,
            submitted: s.counters.submitted,
            completed: s.counters.completed,
            failed: s.counters.failed,
            rejected: s.counters.rejected,
            cancelled: s.counters.cancelled,
            undeliverable: s.counters.undeliverable,
            workers: self.config.effective_workers(),
            queue_capacity: self.config.queue_capacity,
            draining: !s.accepting,
        }
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`ServerHandle::shutdown`] (or send a `shutdown` request) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the acceptor and worker pool.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(config.queue_capacity),
                accepting: true,
                stopping: false,
                running: 0,
                next_job_id: 1,
                counters: Counters::default(),
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            config,
        });

        let workers = (0..shared.config.effective_workers())
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("menda-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("menda-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))
                .expect("spawn acceptor")
        };

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current status counters.
    pub fn status(&self) -> StatusSnapshot {
        self.shared.snapshot()
    }

    /// Initiates shutdown from the hosting process: drains if asked, then
    /// stops workers and the acceptor. Blocks until the drain completes.
    pub fn shutdown(&mut self, drain: bool) {
        initiate_shutdown(&self.shared, drain, self.addr);
    }

    /// Waits for the server to stop (after [`ServerHandle::shutdown`] or
    /// a client `shutdown` request).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Stops admission, optionally drains, then stops all threads. Returns
/// the number of jobs cancelled (non-drain mode).
fn initiate_shutdown(shared: &Arc<Shared>, drain: bool, addr: SocketAddr) -> u64 {
    let mut cancelled = 0;
    {
        let mut s = shared.state.lock().expect("state lock");
        s.accepting = false;
        if !drain {
            while let Some(job) = s.queue.pop_front() {
                let line = Response::Failed {
                    job_id: job.id,
                    tag: job.tag,
                    error: "cancelled: server shutting down".into(),
                }
                .serialize();
                let _ = job.reply.send(line);
                s.counters.cancelled += 1;
                cancelled += 1;
            }
        }
        while !s.queue.is_empty() || s.running > 0 {
            s = shared.idle.wait(s).expect("idle wait");
        }
        s.stopping = true;
        shared.work.notify_all();
    }
    // Unblock the acceptor's blocking accept() with a throwaway
    // connection; it observes `stopping` and exits.
    let _ = TcpStream::connect(addr);
    cancelled
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.state.lock().expect("state lock").stopping {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let addr = listener.local_addr().expect("listener addr");
        // Connection reader threads are detached: they exit when the
        // client disconnects or the shutdown ack is delivered.
        let _ = std::thread::Builder::new()
            .name("menda-conn".into())
            .spawn(move || handle_connection(stream, &shared, addr));
    }
}

/// Reads one `\n`-terminated line with a hard length cap. Returns
/// `Ok(None)` on EOF and `Err(())` when the line exceeds the cap (the
/// oversized remainder is drained so the connection can continue).
fn read_line_capped(reader: &mut BufReader<TcpStream>, buf: &mut String) -> Result<Option<()>, ()> {
    buf.clear();
    let mut truncated = false;
    loop {
        let available = match reader.fill_buf() {
            Ok(b) => b,
            Err(_) => return Ok(None),
        };
        if available.is_empty() {
            return if buf.is_empty() && !truncated {
                Ok(None)
            } else if truncated {
                Err(())
            } else {
                Ok(Some(()))
            };
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if !truncated && buf.len() + take <= MAX_LINE_BYTES {
            buf.push_str(&String::from_utf8_lossy(&available[..take]));
        } else {
            truncated = true;
        }
        reader.consume(take);
        if newline.is_some() {
            return if truncated { Err(()) } else { Ok(Some(())) };
        }
    }
}

/// In-band close marker from reader to writer: never a valid JSON line,
/// so it cannot collide with a real response.
const CLOSE_SENTINEL: &str = "\0";

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, addr: SocketAddr) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<String>();
    // Dedicated writer: workers and the reader both enqueue lines. The
    // reader ends the writer with a sentinel when the client hangs up —
    // dropping the receiver — so a worker delivering a result to a gone
    // client gets a failed send and counts it undeliverable instead of
    // writing into a dead socket's kernel buffer.
    let writer = std::thread::Builder::new()
        .name("menda-conn-writer".into())
        .spawn(move || {
            let mut out = write_half;
            for line in rx {
                if line == CLOSE_SENTINEL {
                    return;
                }
                if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                    return;
                }
                let _ = out.flush();
            }
        })
        .expect("spawn writer");

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_line_capped(&mut reader, &mut line) {
            Ok(None) => break,
            Err(()) => {
                let resp = Response::Error {
                    message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                };
                if tx.send(resp.serialize()).is_err() {
                    break;
                }
                continue;
            }
            Ok(Some(())) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let shutdown = handle_request(trimmed, shared, &tx, addr);
        if shutdown {
            break;
        }
    }
    let _ = tx.send(CLOSE_SENTINEL.to_string());
    drop(tx);
    let _ = writer.join();
}

/// Handles one request line; returns `true` when the connection should
/// close (after a shutdown ack).
fn handle_request(
    line: &str,
    shared: &Arc<Shared>,
    tx: &mpsc::Sender<String>,
    addr: SocketAddr,
) -> bool {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(message) => {
            let _ = tx.send(Response::Error { message }.serialize());
            return false;
        }
    };
    match request {
        Request::Ping => {
            let _ = tx.send(Response::Pong.serialize());
        }
        Request::Status => {
            let _ = tx.send(Response::Status(shared.snapshot()).serialize());
        }
        Request::Submit {
            job,
            tag,
            deadline_ms,
        } => {
            // admit() sends the accepted/rejected line itself before
            // waking a worker, so a fast job's `started` event cannot
            // overtake the acceptance on the wire.
            admit(shared, *job, tag, deadline_ms, tx);
        }
        Request::Cancel { job_id } => {
            let response = cancel(shared, job_id);
            let _ = tx.send(response.serialize());
        }
        Request::Shutdown { drain } => {
            let cancelled = initiate_shutdown(shared, drain, addr);
            let completed = shared.state.lock().expect("state lock").counters.completed;
            let _ = tx.send(
                Response::ShutdownAck {
                    completed,
                    cancelled,
                }
                .serialize(),
            );
            return true;
        }
    }
    false
}

fn admit(
    shared: &Arc<Shared>,
    mut spec: JobSpec,
    tag: Option<String>,
    deadline_ms: Option<u64>,
    tx: &mpsc::Sender<String>,
) {
    // The server-wide thread default applies only when the job didn't
    // choose; an explicit `threads` in the submission always wins.
    if spec.threads.is_none() {
        spec.threads = shared.config.default_threads;
    }
    let reject = |reason: RejectReason, detail: String, shared: &Arc<Shared>| {
        shared.state.lock().expect("state lock").counters.rejected += 1;
        let _ = tx.send(Response::Rejected { reason, detail }.serialize());
    };
    let cost = spec.cost_nnz();
    if cost > shared.config.max_job_nnz {
        return reject(
            RejectReason::TooLarge,
            format!(
                "job simulates {cost} nonzeros, cap is {}",
                shared.config.max_job_nnz
            ),
            shared,
        );
    }
    if let Some(ms) = deadline_ms {
        if ms == 0 || ms > shared.config.max_deadline_ms {
            return reject(
                RejectReason::BadDeadline,
                format!(
                    "deadline_ms must be in [1, {}], got {ms}",
                    shared.config.max_deadline_ms
                ),
                shared,
            );
        }
    }
    let mut s = shared.state.lock().expect("state lock");
    if !s.accepting {
        s.counters.rejected += 1;
        let _ = tx.send(
            Response::Rejected {
                reason: RejectReason::ShuttingDown,
                detail: "server is draining".into(),
            }
            .serialize(),
        );
        return;
    }
    if s.queue.len() >= shared.config.queue_capacity {
        s.counters.rejected += 1;
        let _ = tx.send(
            Response::Rejected {
                reason: RejectReason::QueueFull,
                detail: format!("queue at capacity ({})", shared.config.queue_capacity),
            }
            .serialize(),
        );
        return;
    }
    let job_id = s.next_job_id;
    s.next_job_id += 1;
    s.counters.submitted += 1;
    s.queue.push_back(QueuedJob {
        id: job_id,
        tag,
        spec,
        deadline: deadline_ms.map(Duration::from_millis),
        enqueued_at: Instant::now(),
        reply: tx.clone(),
    });
    let queued = s.queue.len();
    // The acceptance must be on the writer's channel before any worker
    // can emit `started` for this job: send it while still holding the
    // state lock, then wake a worker.
    let _ = tx.send(Response::Accepted { job_id, queued }.serialize());
    shared.work.notify_one();
}

fn cancel(shared: &Arc<Shared>, job_id: u64) -> Response {
    let mut s = shared.state.lock().expect("state lock");
    let Some(pos) = s.queue.iter().position(|j| j.id == job_id) else {
        s.counters.rejected += 1;
        return Response::Rejected {
            reason: RejectReason::NotQueued,
            detail: format!("job {job_id} is not queued (unknown, running or finished)"),
        };
    };
    let job = s.queue.remove(pos).expect("position just found");
    s.counters.cancelled += 1;
    let queued = s.queue.len();
    drop(s);
    // The submitter (possibly a different connection) learns via a
    // failed line; the canceller gets an ack.
    let line = Response::Failed {
        job_id: job.id,
        tag: job.tag,
        error: "cancelled".into(),
    }
    .serialize();
    let _ = job.reply.send(line);
    Response::Accepted { job_id, queued }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut s = shared.state.lock().expect("state lock");
            loop {
                if let Some(job) = s.queue.pop_front() {
                    s.running += 1;
                    break job;
                }
                if s.stopping {
                    return;
                }
                s = shared.work.wait(s).expect("work wait");
            }
        };
        let queue_wait = job.enqueued_at.elapsed();
        let response = if job.deadline.is_some_and(|d| queue_wait > d) {
            Response::Failed {
                job_id: job.id,
                tag: job.tag.clone(),
                error: format!(
                    "deadline_exceeded: waited {} ms in queue",
                    queue_wait.as_millis()
                ),
            }
        } else {
            let _ = job
                .reply
                .send(Response::Started { job_id: job.id }.serialize());
            let run_started = Instant::now();
            let result = match shared.config.preemption_quantum {
                Some(quantum) if !job.spec.trace_counting => {
                    execute_preemptible(&job.spec, quantum)
                }
                _ => job.spec.execute(),
            };
            let run_wall = run_started.elapsed();
            let total = job.enqueued_at.elapsed();
            match result {
                Ok(outcome) => {
                    if job.deadline.is_some_and(|d| total > d) {
                        Response::Failed {
                            job_id: job.id,
                            tag: job.tag.clone(),
                            error: format!(
                                "deadline_exceeded: finished after {} ms",
                                total.as_millis()
                            ),
                        }
                    } else {
                        Response::from_outcome(
                            job.id,
                            job.tag.clone(),
                            queue_wait.as_millis() as u64,
                            run_wall.as_millis() as u64,
                            &outcome,
                        )
                    }
                }
                Err(err) => Response::from_job_error(job.id, job.tag.clone(), &err),
            }
        };
        let failed = matches!(response, Response::Failed { .. });
        let delivered = job.reply.send(response.serialize()).is_ok();
        let mut s = shared.state.lock().expect("state lock");
        s.running -= 1;
        if failed {
            s.counters.failed += 1;
        } else {
            s.counters.completed += 1;
        }
        if !delivered {
            s.counters.undeliverable += 1;
        }
        if s.queue.is_empty() && s.running == 0 {
            shared.idle.notify_all();
        }
    }
}

/// Convenience for clients and tests: executes `spec` exactly the way a
/// worker would, returning the failure response a worker would produce
/// for it. Used to assert batch/wire equivalence.
///
/// # Errors
///
/// Propagates [`JobError`] from validation or execution.
pub fn execute_like_worker(spec: &JobSpec) -> Result<menda_core::JobOutcome, JobError> {
    spec.execute()
}

/// Executes `spec` in preemption quanta of `quantum` device cycles: run
/// to the first quantum boundary, snapshot, restore, run to the next,
/// and so on until the job finishes — exactly what a worker does when
/// [`ServerConfig::preemption_quantum`] is set. Every quantum boundary
/// round-trips the full simulator state through the checkpoint
/// container, so the returned [`menda_core::JobOutcome`] (JSON and
/// output digest included) is byte-identical to an uninterrupted
/// [`JobSpec::execute`] — the preemption differential suite asserts
/// that.
///
/// # Errors
///
/// Propagates [`JobError`] from validation, snapshot handling or
/// execution.
pub fn execute_preemptible(
    spec: &JobSpec,
    quantum: u64,
) -> Result<menda_core::JobOutcome, JobError> {
    let quantum = quantum.max(1);
    let mut pause_at = quantum;
    let mut progress = spec.execute_to_cycle(pause_at)?;
    loop {
        match progress {
            menda_core::JobProgress::Finished(outcome) => return Ok(outcome),
            menda_core::JobProgress::Paused(snapshot) => {
                pause_at += quantum;
                progress = spec.resume_to_cycle(&snapshot, pause_at)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.queue_capacity > 0);
        assert!(c.effective_workers() >= 1);
        assert!(ServerConfig { workers: 3, ..c }.effective_workers() == 3);
    }
}
