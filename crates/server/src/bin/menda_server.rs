//! Daemon entry point: `menda-server [--addr A] [--workers N] [--queue N]
//! [--max-nnz N] [--preemption-quantum N] [--threads N]`.
//!
//! Binds the address, prints one status line, and serves until a client
//! sends `{"op":"shutdown"}`. Bad arguments exit 2 with a message —
//! never a panic.

use menda_server::{ServerConfig, ServerHandle};

fn usage() -> String {
    concat!(
        "usage: menda-server [options]\n",
        "  --addr HOST:PORT   listen address (default 127.0.0.1:7870; port 0 = ephemeral)\n",
        "  --workers N        worker threads (default: one per core)\n",
        "  --queue N          bounded queue capacity (default 64)\n",
        "  --max-nnz N        per-job simulated-nonzero cap (default 64000000)\n",
        "  --preemption-quantum N\n",
        "                     slice jobs into N-device-cycle quanta via the\n",
        "                     checkpoint subsystem (default: run to completion;\n",
        "                     results are bit-identical either way)\n",
        "  --threads N        engine worker threads for jobs that leave\n",
        "                     'threads' unset, in [1, 1024] (default: engine\n",
        "                     auto; outcomes are bit-identical at every count)\n",
        "  --help             show this message\n",
    )
    .to_string()
}

fn parse_args(args: &[String]) -> Result<(String, ServerConfig), String> {
    let mut addr = "127.0.0.1:7870".to_string();
    let mut config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = take("--addr")?.clone(),
            "--workers" => {
                config.workers = parse_num(take("--workers")?, "--workers")?;
            }
            "--queue" => {
                config.queue_capacity = parse_num(take("--queue")?, "--queue")?;
                if config.queue_capacity == 0 {
                    return Err("--queue must be at least 1".into());
                }
            }
            "--max-nnz" => {
                config.max_job_nnz = parse_num(take("--max-nnz")?, "--max-nnz")?;
            }
            "--preemption-quantum" => {
                let quantum: u64 =
                    parse_num(take("--preemption-quantum")?, "--preemption-quantum")?;
                if quantum == 0 {
                    return Err("--preemption-quantum must be at least 1".into());
                }
                config.preemption_quantum = Some(quantum);
            }
            "--threads" => {
                let threads: usize = parse_num(take("--threads")?, "--threads")?;
                if !(1..=1024).contains(&threads) {
                    return Err(format!("--threads must be in [1, 1024], got {threads}"));
                }
                config.default_threads = Some(threads);
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok((addr, config))
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: invalid number {value:?}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, config) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let server = match ServerHandle::bind(&addr, config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("menda-server: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "menda-server listening on {} ({} workers, queue {})",
        server.local_addr(),
        config.effective_workers(),
        config.queue_capacity
    );
    server.join();
    println!("menda-server: shut down");
}
