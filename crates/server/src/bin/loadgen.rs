//! Load-driver entry point: `loadgen [--addr A] [--jobs N]
//! [--connections N] [--window N] [--scale N] [--deadline-ms N]
//! [--verify-every N] [--out FILE]`.
//!
//! Drives a running daemon with the deterministic job mix, prints the
//! report, optionally writes it as JSON, and exits nonzero when any job
//! failed or any differential check diverged.

use menda_server::loadgen::{self, LoadgenOptions};

fn usage() -> String {
    concat!(
        "usage: loadgen [options]\n",
        "  --addr HOST:PORT   daemon address (default 127.0.0.1:7870)\n",
        "  --jobs N           total jobs to complete (default 500)\n",
        "  --connections N    concurrent client connections (default 4)\n",
        "  --window N         in-flight jobs per connection (default 4)\n",
        "  --scale N          matrix rows per job (default 512)\n",
        "  --deadline-ms N    per-job deadline (default: none)\n",
        "  --verify-every N   differential-check every Nth job, 0=off (default 25)\n",
        "  --out FILE         also write the JSON report to FILE\n",
        "  --help             show this message\n",
    )
    .to_string()
}

fn parse_args(args: &[String]) -> Result<(LoadgenOptions, Option<String>), String> {
    let mut options = LoadgenOptions::default();
    let mut out = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => options.addr = take("--addr")?.clone(),
            "--jobs" => options.jobs = parse_num(take("--jobs")?, "--jobs")?,
            "--connections" => {
                options.connections = parse_num(take("--connections")?, "--connections")?;
            }
            "--window" => options.window = parse_num(take("--window")?, "--window")?,
            "--scale" => options.scale = parse_num(take("--scale")?, "--scale")?,
            "--deadline-ms" => {
                options.deadline_ms = Some(parse_num(take("--deadline-ms")?, "--deadline-ms")?);
            }
            "--verify-every" => {
                options.verify_every = parse_num(take("--verify-every")?, "--verify-every")?;
            }
            "--out" => out = Some(take("--out")?.clone()),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok((options, out))
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: invalid number {value:?}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (options, out) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let report = match loadgen::run(&options) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("loadgen: {message}");
            std::process::exit(1);
        }
    };
    println!(
        "loadgen: {} completed, {} failed, {} retried, {}/{} verified ok, \
         {:.1} jobs/s, p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms",
        report.completed,
        report.failed,
        report.retried,
        report.verified - report.diverged,
        report.verified,
        report.throughput,
        report.p50_ms,
        report.p90_ms,
        report.p99_ms
    );
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{}\n", report.to_json())) {
            eprintln!("loadgen: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("loadgen: report written to {path}");
    }
    if report.failed > 0 || report.diverged > 0 {
        std::process::exit(1);
    }
}
