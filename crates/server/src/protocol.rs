//! The wire protocol: one JSON object per line, in both directions.
//!
//! Requests name an `op`; the server answers every line it receives —
//! malformed input gets a structured `error` response, never silence and
//! never a dead daemon. Responses carry a `type` plus an `ok` flag so
//! thin clients can switch on two fields only.
//!
//! ```text
//! → {"op": "ping"}
//! ← {"ok": true, "type": "pong"}
//! → {"op": "submit", "job": {"matrix": {"source": "table3", "name": "N1"}, "scale": 512}}
//! ← {"ok": true, "type": "accepted", "job_id": 1, "queued": 1}
//! ← {"ok": true, "type": "started", "job_id": 1}
//! ← {"ok": true, "type": "result", "job_id": 1, ..., "stats": {...}}
//! ```
//!
//! The `stats` object inside a successful `result` is the deterministic
//! [`JobOutcome::to_json`](menda_core::JobOutcome::to_json) serialization
//! and `stats_digest` is its FNV-1a digest: a wire-submitted job is
//! byte-identical to the same job run through `repro job`, and the digest
//! is the compact witness clients compare.

use menda_core::{JobError, JobOutcome, JobSpec};
use menda_trace::json::{escape, parse, JsonValue};

/// Longest request line the server accepts, in bytes. Longer lines are
/// answered with an `error` response and skipped.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit a job for execution.
    Submit {
        /// The validated job description.
        job: Box<JobSpec>,
        /// Client-chosen label echoed back in the result.
        tag: Option<String>,
        /// Relative deadline in milliseconds (queue wait + execution).
        deadline_ms: Option<u64>,
    },
    /// Cancel a queued job by id (running jobs cannot be preempted).
    Cancel {
        /// The id returned by `accepted`.
        job_id: u64,
    },
    /// Server status snapshot.
    Status,
    /// Stop the server. `drain` (default) finishes queued jobs first;
    /// otherwise the queue is cancelled.
    Shutdown {
        /// Finish queued work before stopping.
        drain: bool,
    },
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, unknown ops,
    /// missing/unknown fields, or an invalid embedded job description.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value =
            parse(line).map_err(|(pos, msg)| format!("malformed JSON: {msg} at byte {pos}"))?;
        let obj = match &value {
            JsonValue::Obj(m) => m,
            _ => return Err("request must be a JSON object".into()),
        };
        let op = obj
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or("request must have a string 'op' field")?;
        let allow = |keys: &[&str]| -> Result<(), String> {
            for k in obj.keys() {
                if k != "op" && !keys.contains(&k.as_str()) {
                    return Err(format!("unknown field '{k}' for op '{op}'"));
                }
            }
            Ok(())
        };
        match op {
            "ping" => {
                allow(&[])?;
                Ok(Request::Ping)
            }
            "status" => {
                allow(&[])?;
                Ok(Request::Status)
            }
            "submit" => {
                allow(&["job", "tag", "deadline_ms"])?;
                let job_value = obj.get("job").ok_or("submit requires a 'job' object")?;
                let job = JobSpec::from_json(job_value).map_err(|e| e.to_string())?;
                let tag = match obj.get("tag") {
                    Some(v) => Some(v.as_str().ok_or("'tag' must be a string")?.to_string()),
                    None => None,
                };
                let deadline_ms = match obj.get("deadline_ms") {
                    Some(v) => Some(as_u64(v, "deadline_ms")?),
                    None => None,
                };
                Ok(Request::Submit {
                    job: Box::new(job),
                    tag,
                    deadline_ms,
                })
            }
            "cancel" => {
                allow(&["job_id"])?;
                let job_id = as_u64(
                    obj.get("job_id").ok_or("cancel requires 'job_id'")?,
                    "job_id",
                )?;
                Ok(Request::Cancel { job_id })
            }
            "shutdown" => {
                allow(&["drain"])?;
                let drain = match obj.get("drain") {
                    Some(JsonValue::Bool(b)) => *b,
                    Some(_) => return Err("'drain' must be a boolean".into()),
                    None => true,
                };
                Ok(Request::Shutdown { drain })
            }
            other => Err(format!(
                "unknown op '{other}' (expected ping, submit, cancel, status or shutdown)"
            )),
        }
    }
}

fn as_u64(v: &JsonValue, field: &str) -> Result<u64, String> {
    let n = v
        .as_num()
        .ok_or_else(|| format!("'{field}' must be a number"))?;
    if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
        return Err(format!("'{field}' must be a non-negative integer"));
    }
    Ok(n as u64)
}

/// Why a submit was turned away (the machine-readable `reason` of a
/// `rejected` response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at capacity — retry later (backpressure).
    QueueFull,
    /// The job's admitted cost exceeds the server's per-job cap.
    TooLarge,
    /// The requested deadline exceeds the server's maximum.
    BadDeadline,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// Cancel targeted a job that is not queued (unknown, already
    /// running, or already finished).
    NotQueued,
}

impl RejectReason {
    /// The stable identifier clients switch on.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::TooLarge => "too_large",
            RejectReason::BadDeadline => "bad_deadline",
            RejectReason::ShuttingDown => "shutting_down",
            RejectReason::NotQueued => "not_queued",
        }
    }
}

/// Counters reported by a `status` response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatusSnapshot {
    /// Queue depth right now.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs accepted since start.
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs that failed (validation-after-queue, panic, or expired
    /// deadline).
    pub failed: u64,
    /// Submits rejected (all reasons).
    pub rejected: u64,
    /// Queued jobs cancelled by request or non-drain shutdown.
    pub cancelled: u64,
    /// Results that could not be delivered (client went away mid-job).
    pub undeliverable: u64,
    /// Worker threads.
    pub workers: usize,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Whether the server is draining.
    pub draining: bool,
}

/// A server response, serialized as exactly one line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to `ping`.
    Pong,
    /// The job was queued.
    Accepted {
        /// Server-assigned job id (unique per server lifetime).
        job_id: u64,
        /// Queue depth after the push.
        queued: usize,
    },
    /// The submit (or cancel) was turned away.
    Rejected {
        /// Machine-readable reason.
        reason: RejectReason,
        /// Human-readable detail.
        detail: String,
    },
    /// A worker picked the job up.
    Started {
        /// The job.
        job_id: u64,
    },
    /// The job finished successfully.
    Result {
        /// The job.
        job_id: u64,
        /// Echo of the submit tag.
        tag: Option<String>,
        /// Wall milliseconds spent queued.
        queue_ms: u64,
        /// Wall milliseconds spent executing.
        run_ms: u64,
        /// Deterministic outcome JSON (embedded object).
        stats: String,
        /// FNV-1a digest of `stats` — the bit-identity witness.
        stats_digest: u64,
    },
    /// The job failed (bad job caught post-queue, caught panic, expired
    /// deadline, or cancellation).
    Failed {
        /// The job.
        job_id: u64,
        /// Echo of the submit tag.
        tag: Option<String>,
        /// What happened.
        error: String,
    },
    /// A request line could not be understood.
    Error {
        /// What was wrong with it.
        message: String,
    },
    /// Answer to `status`.
    Status(StatusSnapshot),
    /// Answer to `shutdown`, sent once the server has stopped.
    ShutdownAck {
        /// Jobs completed over the server's lifetime.
        completed: u64,
        /// Queued jobs cancelled by a non-drain shutdown.
        cancelled: u64,
    },
}

impl Response {
    /// Serializes the response as one JSON line (no trailing newline).
    pub fn serialize(&self) -> String {
        match self {
            Response::Pong => "{\"ok\": true, \"type\": \"pong\"}".into(),
            Response::Accepted { job_id, queued } => format!(
                "{{\"ok\": true, \"type\": \"accepted\", \"job_id\": {job_id}, \"queued\": {queued}}}"
            ),
            Response::Rejected { reason, detail } => format!(
                "{{\"ok\": false, \"type\": \"rejected\", \"reason\": \"{}\", \"detail\": \"{}\"}}",
                reason.label(),
                escape(detail)
            ),
            Response::Started { job_id } => {
                format!("{{\"ok\": true, \"type\": \"started\", \"job_id\": {job_id}}}")
            }
            Response::Result {
                job_id,
                tag,
                queue_ms,
                run_ms,
                stats,
                stats_digest,
            } => format!(
                concat!(
                    "{{\"ok\": true, \"type\": \"result\", \"job_id\": {}, {}",
                    "\"queue_ms\": {}, \"run_ms\": {}, \"stats_digest\": \"{:016x}\", ",
                    "\"stats\": {}}}"
                ),
                job_id,
                tag_field(tag),
                queue_ms,
                run_ms,
                stats_digest,
                stats
            ),
            Response::Failed { job_id, tag, error } => format!(
                "{{\"ok\": false, \"type\": \"result\", \"job_id\": {}, {}\"error\": \"{}\"}}",
                job_id,
                tag_field(tag),
                escape(error)
            ),
            Response::Error { message } => format!(
                "{{\"ok\": false, \"type\": \"error\", \"message\": \"{}\"}}",
                escape(message)
            ),
            Response::Status(s) => format!(
                concat!(
                    "{{\"ok\": true, \"type\": \"status\", \"draining\": {}, \"queued\": {}, ",
                    "\"running\": {}, \"submitted\": {}, \"completed\": {}, \"failed\": {}, ",
                    "\"rejected\": {}, \"cancelled\": {}, \"undeliverable\": {}, ",
                    "\"workers\": {}, \"queue_capacity\": {}}}"
                ),
                s.draining,
                s.queued,
                s.running,
                s.submitted,
                s.completed,
                s.failed,
                s.rejected,
                s.cancelled,
                s.undeliverable,
                s.workers,
                s.queue_capacity
            ),
            Response::ShutdownAck {
                completed,
                cancelled,
            } => format!(
                "{{\"ok\": true, \"type\": \"shutdown\", \"completed\": {completed}, \"cancelled\": {cancelled}}}"
            ),
        }
    }

    /// Builds a successful result response from a finished outcome.
    pub fn from_outcome(
        job_id: u64,
        tag: Option<String>,
        queue_ms: u64,
        run_ms: u64,
        outcome: &JobOutcome,
    ) -> Response {
        Response::Result {
            job_id,
            tag,
            queue_ms,
            run_ms,
            stats: outcome.to_json(),
            stats_digest: outcome.digest(),
        }
    }

    /// Builds a failure result from a job error.
    pub fn from_job_error(job_id: u64, tag: Option<String>, err: &JobError) -> Response {
        Response::Failed {
            job_id,
            tag,
            error: err.to_string(),
        }
    }
}

fn tag_field(tag: &Option<String>) -> String {
    match tag {
        Some(t) => format!("\"tag\": \"{}\", ", escape(t)),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(Request::parse(r#"{"op": "ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            Request::parse(r#"{"op": "status"}"#).unwrap(),
            Request::Status
        );
        assert_eq!(
            Request::parse(r#"{"op": "cancel", "job_id": 7}"#).unwrap(),
            Request::Cancel { job_id: 7 }
        );
        assert_eq!(
            Request::parse(r#"{"op": "shutdown"}"#).unwrap(),
            Request::Shutdown { drain: true }
        );
        assert_eq!(
            Request::parse(r#"{"op": "shutdown", "drain": false}"#).unwrap(),
            Request::Shutdown { drain: false }
        );
        let r = Request::parse(
            r#"{"op": "submit", "tag": "t1", "deadline_ms": 500,
                "job": {"matrix": {"source": "table3", "name": "N1"}, "scale": 512}}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                job,
                tag,
                deadline_ms,
            } => {
                assert_eq!(tag.as_deref(), Some("t1"));
                assert_eq!(deadline_ms, Some(500));
                assert_eq!(job.scale, 512);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_requests_with_messages() {
        for (line, needle) in [
            ("", "malformed JSON"),
            ("{", "malformed JSON"),
            ("[]", "JSON object"),
            (r#"{"op": 5}"#, "op"),
            (r#"{"op": "fly"}"#, "unknown op"),
            (r#"{"op": "ping", "x": 1}"#, "unknown field"),
            (r#"{"op": "submit"}"#, "requires a 'job'"),
            (r#"{"op": "cancel"}"#, "job_id"),
            (r#"{"op": "cancel", "job_id": -1}"#, "non-negative"),
            (r#"{"op": "shutdown", "drain": 1}"#, "boolean"),
            (
                r#"{"op": "submit", "job": {"matrix": {"source": "table3", "name": "Z9"}}}"#,
                "Z9",
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(
                err.contains(needle),
                "line {line:?}: {err:?} lacks {needle:?}"
            );
        }
    }

    #[test]
    fn responses_serialize_as_parseable_json_lines() {
        let responses = [
            Response::Pong,
            Response::Accepted {
                job_id: 3,
                queued: 2,
            },
            Response::Rejected {
                reason: RejectReason::QueueFull,
                detail: "queue at capacity (4)".into(),
            },
            Response::Started { job_id: 3 },
            Response::Failed {
                job_id: 3,
                tag: Some("a \"quoted\" tag".into()),
                error: "deadline_exceeded".into(),
            },
            Response::Error {
                message: "bad\nline".into(),
            },
            Response::Status(StatusSnapshot {
                queued: 1,
                workers: 2,
                queue_capacity: 4,
                ..Default::default()
            }),
            Response::ShutdownAck {
                completed: 10,
                cancelled: 0,
            },
        ];
        for r in &responses {
            let line = r.serialize();
            assert!(!line.contains('\n'), "{line:?} must be one line");
            let v = parse(&line).expect("serialized response parses");
            assert!(v.get("ok").is_some());
            assert!(v.get("type").is_some());
        }
    }

    #[test]
    fn result_embeds_outcome_verbatim() {
        let spec = JobSpec::from_json_str(
            r#"{"matrix": {"source": "uniform", "dim": 32, "nnz": 64},
                "channels": 1, "ranks_per_channel": 1, "leaves": 4,
                "refresh": false, "threads": 1}"#,
        )
        .unwrap();
        let outcome = spec.execute().unwrap();
        let line = Response::from_outcome(9, None, 1, 2, &outcome).serialize();
        let v = parse(&line).unwrap();
        assert_eq!(
            v.get("stats_digest").unwrap().as_str().unwrap(),
            format!("{:016x}", outcome.digest())
        );
        // The embedded stats object is the outcome JSON verbatim.
        assert!(line.contains(&outcome.to_json()));
    }
}
